//! `pcgraph` — run the channel-based algorithms from the command line.
//!
//! ```text
//! pcgraph <algorithm> [--input FILE | --gen NAME] [options]
//!
//! algorithms: pagerank | wcc | sv | scc | sssp | bfs | kcore | msf | stats
//! options:
//!   --input FILE      whitespace edge list (src dst [weight]); '#'/'%' comments
//!   --gen NAME        synthetic dataset: wikipedia|webuk|facebook|twitter|road|rmat24
//!   --scale N         generator scale, vertices = 2^N        [default 13]
//!   --workers N       simulated workers                      [default 4]
//!   --transport NAME  exchange backend: in-process|tcp       [default in-process]
//!   --variant NAME    basic|scatter|reqresp|both|prop|mirror [default: best]
//!   --iters N         PageRank iterations                    [default 30]
//!   --src N           SSSP/BFS source vertex                 [default 0]
//!   --k N             k-core parameter                       [default 2]
//!   --directed        treat the input file as directed
//!   --partition       place vertices with the LDG partitioner (vs random)
//! ```

use pc_bsp::{Config, Topology, TransportKind};
use pc_graph::{io, partition, stats, Graph, WeightedGraph};
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;

#[derive(Debug)]
struct Opts {
    algorithm: String,
    input: Option<PathBuf>,
    gen: Option<String>,
    scale: u32,
    workers: usize,
    transport: TransportKind,
    variant: String,
    iters: u64,
    src: u32,
    k: u32,
    directed: bool,
    partition: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: pcgraph <pagerank|wcc|sv|scc|sssp|bfs|kcore|msf|stats> \
         [--input FILE | --gen NAME] [--scale N] [--workers N] \
         [--transport in-process|tcp] [--variant NAME] [--iters N] \
         [--src N] [--k N] [--directed] [--partition]"
    );
    exit(2)
}

fn parse_args() -> Opts {
    let mut args = std::env::args().skip(1);
    let algorithm = args.next().unwrap_or_else(|| usage());
    let mut opts = Opts {
        algorithm,
        input: None,
        gen: None,
        scale: 13,
        workers: 4,
        transport: TransportKind::InProcess,
        variant: String::new(),
        iters: 30,
        src: 0,
        k: 2,
        directed: false,
        partition: false,
    };
    let next = |args: &mut dyn Iterator<Item = String>| args.next().unwrap_or_else(|| usage());
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--input" => opts.input = Some(PathBuf::from(next(&mut args))),
            "--gen" => opts.gen = Some(next(&mut args)),
            "--scale" => opts.scale = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--workers" => opts.workers = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--transport" => {
                opts.transport = next(&mut args).parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--variant" => opts.variant = next(&mut args),
            "--iters" => opts.iters = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--src" => opts.src = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--k" => opts.k = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--directed" => opts.directed = true,
            "--partition" => opts.partition = true,
            _ => usage(),
        }
    }
    opts
}

fn load_unweighted(opts: &Opts, want_directed: bool) -> Arc<Graph> {
    if let Some(path) = &opts.input {
        let g = io::read_edge_list(path, opts.directed && want_directed, 0).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            exit(1)
        });
        return Arc::new(g);
    }
    let name = opts.gen.as_deref().unwrap_or("wikipedia");
    use pc_graph::gen::*;
    let g = match name {
        "wikipedia" => rmat(opts.scale, 9 << opts.scale, RmatParams::default(), 1, true),
        "webuk" => rmat(opts.scale, 24 << opts.scale, RmatParams::default(), 2, true),
        "facebook" => rmat(
            opts.scale,
            (3 << opts.scale) / 2,
            RmatParams::default(),
            3,
            false,
        ),
        "twitter" => rmat(
            opts.scale,
            32 << opts.scale,
            RmatParams::default(),
            4,
            false,
        ),
        "road" => {
            let side = 1usize << (opts.scale / 2);
            grid2d((1usize << opts.scale) / side, side, 0.05, 6)
        }
        other => {
            eprintln!("unknown dataset '{other}'");
            exit(2)
        }
    };
    let g = if want_directed { g } else { g.symmetrized() };
    Arc::new(g)
}

fn load_weighted(opts: &Opts) -> Arc<WeightedGraph> {
    if let Some(path) = &opts.input {
        let g = io::read_weighted_edge_list(path, opts.directed, 0).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            exit(1)
        });
        return Arc::new(g);
    }
    use pc_graph::gen::*;
    Arc::new(rmat_weighted(
        opts.scale,
        8 << opts.scale,
        RmatParams::default(),
        7,
        false,
        1000,
    ))
}

fn topology<W: Copy + Default>(g: &Graph<W>, opts: &Opts) -> Arc<Topology> {
    if opts.partition {
        let owners = partition::ldg(g, opts.workers, 2);
        let (cut, total) = partition::edge_cut(g, &owners);
        eprintln!(
            "ldg partition: edge-cut {:.1}%",
            100.0 * cut as f64 / total.max(1) as f64
        );
        Arc::new(Topology::from_owners(opts.workers, owners))
    } else {
        Arc::new(Topology::hashed(g.n(), opts.workers))
    }
}

fn report(stats: &pc_bsp::RunStats) {
    eprintln!(
        "done: {:.1} ms, {:.3} MiB network traffic, {} supersteps, {} rounds",
        stats.millis(),
        stats.remote_mib(),
        stats.supersteps,
        stats.rounds
    );
    for c in &stats.channels {
        eprintln!(
            "  channel {:<12} {:>12} messages {:>14} remote bytes",
            c.name, c.messages, c.bytes.remote
        );
    }
    if stats.transport.frames > 0 {
        eprintln!(
            "  transport {:<10} {:>12} frames {:>14.3} MiB wire {:>8} round-trips",
            stats.transport_name,
            stats.transport.frames,
            stats.wire_mib(),
            stats.transport.round_trips,
        );
    }
}

fn main() {
    let opts = parse_args();
    let cfg = Config {
        transport: opts.transport,
        ..Config::with_workers(opts.workers)
    };
    match opts.algorithm.as_str() {
        "stats" => {
            let g = load_unweighted(&opts, true);
            let s = stats::graph_stats(&g);
            println!(
                "|V| {}  |E| {}  avg deg {:.2}  max deg {}  sinks {}",
                s.n, s.m, s.avg_degree, s.max_degree, s.sinks
            );
        }
        "pagerank" => {
            let g = load_unweighted(&opts, true);
            let topo = topology(&g, &opts);
            let out = match opts.variant.as_str() {
                "basic" => pc_algos::pagerank::channel_basic(&g, &topo, &cfg, opts.iters),
                "mirror" => pc_algos::pagerank::channel_mirror(&g, &topo, &cfg, opts.iters, 16),
                _ => pc_algos::pagerank::channel_scatter(&g, &topo, &cfg, opts.iters),
            };
            let mut top: Vec<(usize, f64)> = out.ranks.iter().copied().enumerate().collect();
            top.sort_by(|a, b| b.1.total_cmp(&a.1));
            for (v, r) in top.iter().take(10) {
                println!("{v}\t{r:.8}");
            }
            report(&out.stats);
        }
        "wcc" => {
            let g = load_unweighted(&opts, false);
            let topo = topology(&g, &opts);
            let out = match opts.variant.as_str() {
                "basic" => pc_algos::wcc::channel_basic(&g, &topo, &cfg),
                "blogel" => pc_algos::wcc::blogel(&g, &topo, &cfg),
                _ => pc_algos::wcc::channel_propagation(&g, &topo, &cfg),
            };
            println!(
                "{} components",
                pc_graph::reference::component_count(&out.labels)
            );
            report(&out.stats);
        }
        "sv" => {
            let g = load_unweighted(&opts, false);
            let topo = topology(&g, &opts);
            let out = match opts.variant.as_str() {
                "basic" => pc_algos::sv::channel_basic(&g, &topo, &cfg),
                "reqresp" => pc_algos::sv::channel_reqresp(&g, &topo, &cfg),
                "scatter" => pc_algos::sv::channel_scatter(&g, &topo, &cfg),
                _ => pc_algos::sv::channel_both(&g, &topo, &cfg),
            };
            println!(
                "{} components",
                pc_graph::reference::component_count(&out.labels)
            );
            report(&out.stats);
        }
        "scc" => {
            let g = load_unweighted(&opts, true);
            let topo = topology(&g, &opts);
            let out = match opts.variant.as_str() {
                "basic" => pc_algos::scc::channel_basic(&g, &topo, &cfg),
                _ => pc_algos::scc::channel_propagation(&g, &topo, &cfg),
            };
            println!("{} SCCs", pc_graph::reference::component_count(&out.labels));
            report(&out.stats);
        }
        "sssp" => {
            let g = load_weighted(&opts);
            let topo = topology(&g, &opts);
            let out = match opts.variant.as_str() {
                "basic" => pc_algos::sssp::channel_basic(&g, &topo, &cfg, opts.src),
                _ => pc_algos::sssp::channel_propagation(&g, &topo, &cfg, opts.src),
            };
            let reached = out
                .dist
                .iter()
                .filter(|&&d| d != pc_algos::sssp::UNREACHED)
                .count();
            println!("{reached} reachable from {}", opts.src);
            report(&out.stats);
        }
        "bfs" => {
            let g = load_unweighted(&opts, true);
            let topo = topology(&g, &opts);
            let out = pc_algos::kernels::bfs(&g, &topo, &cfg, opts.src);
            let reached = out
                .level
                .iter()
                .filter(|&&l| l != pc_algos::kernels::UNREACHED)
                .count();
            let depth = out
                .level
                .iter()
                .filter(|&&l| l != pc_algos::kernels::UNREACHED)
                .max();
            println!("{reached} reachable, depth {:?}", depth);
            report(&out.stats);
        }
        "kcore" => {
            let g = load_unweighted(&opts, false);
            let topo = topology(&g, &opts);
            let out = pc_algos::kernels::kcore(&g, &topo, &cfg, opts.k);
            println!(
                "{} of {} vertices in the {}-core",
                out.in_core.iter().filter(|&&a| a).count(),
                g.n(),
                opts.k
            );
            report(&out.stats);
        }
        "msf" => {
            let g = load_weighted(&opts);
            let topo = topology(&g, &opts);
            let out = pc_algos::msf::channel_basic(&g, &topo, &cfg);
            println!(
                "forest weight {} over {} edges",
                out.total_weight, out.edge_count
            );
            report(&out.stats);
        }
        _ => usage(),
    }
}
