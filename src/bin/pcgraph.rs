//! `pcgraph` — run the channel-based algorithms from the command line.
//!
//! Three execution shapes share one binary:
//!
//! * **Single process** (default): the simulated cluster — worker threads
//!   over the in-process hub or a loopback TCP mesh.
//! * **Launcher** (`--ranks M`): spawn `M` OS processes (one rank each),
//!   supervise them, and let rank 0 print the merged results. Only rank 0
//!   reads the input; every other rank receives its partition over the
//!   bootstrap connection.
//! * **Rank** (`--rank N --ranks M --coordinator HOST:PORT`): one rank of
//!   a multi-process cluster, normally spawned by the launcher but usable
//!   by hand (or across hosts with a reachable coordinator address).
//!
//! Run `pcgraph --help` for the full flag reference. Exit codes: 0
//! success, 1 runtime error (including `--verify` mismatches), 2 usage,
//! 3 bootstrap/transport failure.

use pc_bsp::{
    CkptPolicy, Config, ExecMode, MirrorPlan, RunStats, Tcp, TcpOptions, Topology, TransportError,
    TransportKind,
};
use pc_ckpt::{Advertisement, ControlReplica, RunId, Store};
use pc_dist::bootstrap::{
    decode_ctrl, encode_ctrl, BootstrapOptions, Coordinator, CtrlState, Follower, TAG_CTRL,
    TAG_PLAN,
};
use pc_dist::launch::{
    self, pick_rendezvous_addr, LaunchSpec, EXIT_BOOTSTRAP, EXIT_OK, EXIT_RUNTIME, EXIT_USAGE,
};
use pc_dist::{ship, Backoff};
use pc_graph::{io, partition, stats, Graph, WeightedGraph};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `--mirror-threshold`: an explicit τ or the degree-aware heuristic
/// ([`partition::default_mirror_threshold`]).
#[derive(Debug, Clone, Copy, PartialEq)]
enum MirrorArg {
    Auto,
    Fixed(usize),
}

/// `--standby`: which rank replicates the control plane and takes over
/// if the acting coordinator dies. `auto` (the default when failover is
/// armed) picks the lowest-ranked follower.
#[derive(Debug, Clone, Copy, PartialEq)]
enum StandbyArg {
    Auto,
    Fixed(usize),
}

#[derive(Debug, Clone)]
struct Opts {
    algorithm: String,
    input: Option<PathBuf>,
    gen: Option<String>,
    scale: u32,
    workers: usize,
    transport: TransportKind,
    variant: String,
    iters: u64,
    src: u32,
    k: u32,
    directed: bool,
    partition: bool,
    /// Vertex placement strategy (`--partitioner`); `--partition` is the
    /// historical alias for `ldg`. `None` means hash/random placement.
    partitioner: Option<String>,
    /// Mirror hubs with out-degree ≥ τ (`--mirror-threshold`); builds and
    /// ships a [`MirrorPlan`] so every rank pre-wires its Mirror channel.
    mirror_threshold: Option<MirrorArg>,
    /// Total ranks of a multi-process run (launcher or rank mode).
    ranks: Option<usize>,
    /// This process's rank (rank mode only; the launcher spawns these).
    rank: Option<usize>,
    /// Rendezvous address rank 0 listens on.
    coordinator: Option<SocketAddr>,
    /// After a distributed run, rank 0 re-runs the sequential engine on
    /// the full graph and fails (exit 1) unless values and stats match.
    verify: bool,
    /// Explicit SpinBarrier budget (in-process transport).
    spin_budget: Option<u32>,
    /// Checkpoint cadence in supersteps (requires `--checkpoint-dir`).
    checkpoint_every: Option<u64>,
    /// Checkpoint directory; with `--ranks`, also enables rank-failure
    /// recovery (launcher respawns dead non-zero ranks, the cluster
    /// resumes from the last committed checkpoint).
    checkpoint_dir: Option<PathBuf>,
    /// Standby-coordinator designation (`--standby N|auto`); only
    /// meaningful when coordinator failover is armed (checkpointing on a
    /// multi-rank run).
    standby: Option<StandbyArg>,
    /// Interface address the data-plane listeners bind (rank mode);
    /// default loopback. First step toward multi-host deployments.
    bind: Option<IpAddr>,
    /// Record per-rank span timelines and export Chrome trace-event JSON
    /// here (Single / rank 0 writes; followers record and ship streams).
    trace: Option<PathBuf>,
    /// Print the merged per-superstep summary table to stderr. Enables
    /// tracing like `--trace` does, with or without an export file.
    superstep_table: bool,
    /// Dump the final merged `RunStats` as JSON. Does NOT enable tracing
    /// by itself — the timeline array is empty unless `--trace` or
    /// `--superstep-table` also rides along.
    stats_json: Option<PathBuf>,
}

impl Opts {
    /// The effective partitioner after alias normalization in
    /// `parse_args` (`--partition` ⇒ `ldg`; default `hash`).
    fn partitioner_name(&self) -> &str {
        self.partitioner.as_deref().unwrap_or("hash")
    }

    /// Whether the engine should record spans and per-superstep rows.
    /// `--stats-json` alone does not count: a stats dump without tracing
    /// is free, and asking for it must not perturb the run.
    fn tracing_enabled(&self) -> bool {
        self.trace.is_some() || self.superstep_table
    }
}

const HELP: &str = "\
pcgraph — channel-composed vertex-centric graph processing

USAGE:
    pcgraph <ALGORITHM> [OPTIONS]

ALGORITHMS:
    pagerank | wcc | sv | scc | sssp | bfs | kcore | msf | stats

INPUT (rank 0 / single process only):
    --input FILE      whitespace edge list (src dst [weight]); '#'/'%' comments
    --gen NAME        synthetic dataset: wikipedia|webuk|facebook|twitter|road
    --scale N         generator scale, vertices = 2^N            [default 13]
    --directed        treat the input file as directed

EXECUTION:
    --workers N       simulated workers (single process)         [default 4]
    --transport NAME  exchange backend: in-process|tcp|tcp-batched
                      (tcp-batched = non-blocking pipelined sends with
                      frame coalescing; also drives the multi-process
                      mesh when combined with --ranks)            [default in-process]
    --partitioner P   vertex placement: hash|ldg|ldg-deg|bfs     [default hash]
                      (ldg-deg streams vertices in descending-degree order so
                      hubs are placed first — the skew-resistant choice)
    --partition       alias for --partitioner ldg (kept for compatibility)
    --mirror-threshold T  mirror vertices with out-degree ≥ T across ranks:
                      a hub's broadcast becomes one message per rank instead
                      of one per edge. T is a number or 'auto' (degree-aware
                      heuristic, ≥ 16). Builds a mirror plan at ship time and
                      pre-wires every rank's Mirror channel from it
    --spin-budget N   barrier spin iterations before yielding, in-process
                      transport only                             [default adaptive]

MULTI-PROCESS:
    --ranks M         launcher mode: run M OS processes (one worker each);
                      rank 0 loads the graph and ships every other rank its
                      partition — no other process touches the input
    --rank N          rank mode: be rank N of an M-rank cluster (requires
                      --ranks and --coordinator; normally set by the launcher)
    --coordinator A   rendezvous address rank 0 listens on (HOST:PORT)
    --bind IP         interface the data-plane listeners bind (rank mode;
                      default 127.0.0.1) — use a routable address to spread
                      ranks across hosts
    --verify          after the distributed run, rank 0 re-runs the
                      sequential engine and fails on any mismatch

FAULT TOLERANCE:
    --checkpoint-every N   snapshot every rank's state after every N-th
                      superstep (atomic per-rank segments, committed by a
                      rank-0 manifest — a checkpoint is complete or invisible)
    --checkpoint-dir PATH  where checkpoints live (required with
                      --checkpoint-every). With --ranks this also arms
                      recovery: a SIGKILL'd non-zero rank is respawned, the
                      surviving ranks re-rendezvous, and the job resumes from
                      the last committed checkpoint. With 2+ ranks it also
                      arms coordinator failover: a standby rank replicates
                      the control plane and takes over if rank 0 dies
    --standby R       which rank is the standby coordinator: a rank number
                      or 'auto' (lowest-ranked follower)       [default auto]

OBSERVABILITY:
    --trace FILE      trace every rank (span timelines + per-superstep
                      counters) and write Chrome trace-event JSON — load
                      it in Perfetto (ui.perfetto.dev) or chrome://tracing;
                      one track per rank
    --superstep-table print the merged per-superstep summary (active
                      vertices, messages, remote bytes, stall µs, pool
                      misses, compute/exchange µs) to stderr; enables
                      tracing like --trace
    --stats-json FILE dump the final merged RunStats as JSON (includes the
                      per-superstep timeline when tracing is on; does not
                      enable tracing by itself)

ALGORITHM PARAMETERS:
    --variant NAME    basic|scatter|reqresp|both|prop|mirror|blogel [default: best]
    --iters N         PageRank iterations                        [default 30]
    --src N           SSSP/BFS source vertex                     [default 0]
    --k N             k-core parameter                           [default 2]

ENVIRONMENT:
    PC_DIST_CONNECT_TIMEOUT_MS   rendezvous/mesh connect deadline [10000]
    PC_DIST_JOIN_TIMEOUT_MS      launcher whole-run deadline      [600000]
    PC_DIST_MAX_RESPAWNS         per-rank respawn budget when
                                 checkpointing is enabled         [3]

EXIT CODES:
    0 success   1 runtime error / verify mismatch   2 usage   3 bootstrap failure
";

fn usage_error(msg: &str) -> ! {
    eprintln!("pcgraph: {msg}");
    eprintln!("run 'pcgraph --help' for usage");
    exit(EXIT_USAGE)
}

fn parse_args() -> Opts {
    let mut args = std::env::args().skip(1).peekable();
    let algorithm = match args.next() {
        Some(a) if a == "--help" || a == "-h" => {
            print!("{HELP}");
            exit(EXIT_OK)
        }
        Some(a) if a.starts_with('-') => usage_error(&format!("expected an algorithm, got '{a}'")),
        Some(a) => a,
        None => usage_error("no algorithm given"),
    };
    let mut opts = Opts {
        algorithm,
        input: None,
        gen: None,
        scale: 13,
        workers: 4,
        transport: TransportKind::InProcess,
        variant: String::new(),
        iters: 30,
        src: 0,
        k: 2,
        directed: false,
        partition: false,
        partitioner: None,
        mirror_threshold: None,
        ranks: None,
        rank: None,
        coordinator: None,
        verify: false,
        spin_budget: None,
        checkpoint_every: None,
        checkpoint_dir: None,
        standby: None,
        bind: None,
        trace: None,
        superstep_table: false,
        stats_json: None,
    };
    fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
        args.next()
            .unwrap_or_else(|| usage_error(&format!("flag {flag} needs a value")))
    }
    fn number<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
        let v = value(args, flag);
        v.parse()
            .unwrap_or_else(|_| usage_error(&format!("flag {flag} expects a number, got '{v}'")))
    }
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                print!("{HELP}");
                exit(EXIT_OK)
            }
            "--input" => opts.input = Some(PathBuf::from(value(&mut args, "--input"))),
            "--gen" => opts.gen = Some(value(&mut args, "--gen")),
            "--scale" => opts.scale = number(&mut args, "--scale"),
            "--workers" => opts.workers = number(&mut args, "--workers"),
            "--transport" => {
                let v = value(&mut args, "--transport");
                opts.transport = v.parse().unwrap_or_else(|e: String| usage_error(&e));
            }
            "--variant" => opts.variant = value(&mut args, "--variant"),
            "--iters" => opts.iters = number(&mut args, "--iters"),
            "--src" => opts.src = number(&mut args, "--src"),
            "--k" => opts.k = number(&mut args, "--k"),
            "--directed" => opts.directed = true,
            "--partition" => opts.partition = true,
            "--partitioner" => {
                let v = value(&mut args, "--partitioner");
                match v.as_str() {
                    "hash" | "ldg" | "ldg-deg" | "bfs" => opts.partitioner = Some(v),
                    other => usage_error(&format!(
                        "--partitioner expects hash|ldg|ldg-deg|bfs, got '{other}'"
                    )),
                }
            }
            "--mirror-threshold" => {
                let v = value(&mut args, "--mirror-threshold");
                opts.mirror_threshold = Some(if v == "auto" {
                    MirrorArg::Auto
                } else {
                    match v.parse() {
                        Ok(0) => usage_error("--mirror-threshold must be at least 1"),
                        Ok(t) => MirrorArg::Fixed(t),
                        Err(_) => usage_error(&format!(
                            "--mirror-threshold expects a number or 'auto', got '{v}'"
                        )),
                    }
                });
            }
            "--ranks" => opts.ranks = Some(number(&mut args, "--ranks")),
            "--rank" => opts.rank = Some(number(&mut args, "--rank")),
            "--coordinator" => {
                let v = value(&mut args, "--coordinator");
                opts.coordinator = Some(v.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--coordinator expects HOST:PORT, got '{v}'"))
                }));
            }
            "--verify" => opts.verify = true,
            "--spin-budget" => opts.spin_budget = Some(number(&mut args, "--spin-budget")),
            "--checkpoint-every" => {
                opts.checkpoint_every = Some(number(&mut args, "--checkpoint-every"))
            }
            "--checkpoint-dir" => {
                opts.checkpoint_dir = Some(PathBuf::from(value(&mut args, "--checkpoint-dir")))
            }
            "--standby" => {
                let v = value(&mut args, "--standby");
                opts.standby = Some(if v == "auto" {
                    StandbyArg::Auto
                } else {
                    match v.parse() {
                        Ok(0) => usage_error(
                            "--standby 0 is meaningless: rank 0 is the initial coordinator",
                        ),
                        Ok(r) => StandbyArg::Fixed(r),
                        Err(_) => usage_error(&format!(
                            "--standby expects a rank number or 'auto', got '{v}'"
                        )),
                    }
                });
            }
            "--trace" => opts.trace = Some(PathBuf::from(value(&mut args, "--trace"))),
            "--superstep-table" => opts.superstep_table = true,
            "--stats-json" => {
                opts.stats_json = Some(PathBuf::from(value(&mut args, "--stats-json")))
            }
            "--bind" => {
                let v = value(&mut args, "--bind");
                opts.bind = Some(v.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--bind expects an IP address, got '{v}'"))
                }));
            }
            other if other.starts_with('-') => usage_error(&format!("unknown flag '{other}'")),
            other => usage_error(&format!("unexpected argument '{other}'")),
        }
    }
    // Cross-flag validation.
    if opts.partition {
        // Normalize the historical alias so everything downstream asks
        // `partitioner_name()` only.
        match opts.partitioner.as_deref() {
            None => opts.partitioner = Some("ldg".to_string()),
            Some("ldg") => {}
            Some(p) => usage_error(&format!(
                "--partition is an alias for --partitioner ldg and contradicts --partitioner {p}"
            )),
        }
    }
    if let Some(ranks) = opts.ranks {
        if ranks == 0 {
            usage_error("--ranks must be at least 1");
        }
        if let Some(rank) = opts.rank {
            if rank >= ranks {
                usage_error(&format!("--rank {rank} out of range 0..{ranks}"));
            }
            if opts.coordinator.is_none() {
                usage_error("--rank requires --coordinator");
            }
        }
    } else if opts.rank.is_some() {
        usage_error("--rank requires --ranks");
    } else {
        // Flags that only mean something in a multi-process run must not
        // be silently ignored.
        if opts.verify {
            usage_error("--verify compares a multi-process run against the sequential engine; it requires --ranks");
        }
        if opts.coordinator.is_some() {
            usage_error("--coordinator requires --ranks (and --rank for rank mode)");
        }
        if opts.bind.is_some() {
            usage_error(
                "--bind configures multi-process data-plane listeners; it requires --ranks",
            );
        }
    }
    if opts.workers == 0 {
        usage_error("--workers must be at least 1");
    }
    match (&opts.checkpoint_every, &opts.checkpoint_dir) {
        (Some(0), _) => usage_error("--checkpoint-every must be at least 1"),
        (Some(_), None) => usage_error("--checkpoint-every requires --checkpoint-dir"),
        (None, Some(_)) => usage_error("--checkpoint-dir requires --checkpoint-every"),
        (Some(_), Some(_)) if opts.variant == "blogel" => usage_error(
            "--variant blogel runs on the Pregel baseline engine, which has no checkpoint support",
        ),
        _ => {}
    }
    if let Some(standby) = opts.standby {
        if opts.checkpoint_every.is_none() {
            usage_error(
                "--standby configures coordinator failover, which needs checkpoints to \
                 resume from; add --checkpoint-every/--checkpoint-dir",
            );
        }
        match (standby, opts.ranks) {
            (_, None) => usage_error(
                "--standby designates a rank of a multi-process run; it requires --ranks",
            ),
            (StandbyArg::Fixed(r), Some(ranks)) if r >= ranks => {
                usage_error(&format!("--standby {r} out of range 1..{ranks}"))
            }
            _ => {}
        }
    }
    // Observability flags only mean something on an engine run that
    // produces RunStats; silently ignoring them would be worse than
    // refusing.
    if opts.tracing_enabled() || opts.stats_json.is_some() {
        if opts.algorithm == "stats" {
            usage_error("'stats' prints static graph properties; --trace/--superstep-table/--stats-json need an algorithm run");
        }
        if opts.tracing_enabled() && opts.variant == "blogel" {
            usage_error(
                "--variant blogel runs on the Pregel baseline engine, which has no trace support",
            );
        }
    }
    if let Some(ip) = opts.bind {
        if ip.is_unspecified() {
            usage_error(
                "--bind needs a concrete interface address (peers must be able to dial it); \
                 0.0.0.0/:: is not routable",
            );
        }
    }
    opts
}

/// The engine-facing checkpoint policy, when both flags are present.
fn ckpt_policy(opts: &Opts) -> Option<CkptPolicy> {
    match (&opts.checkpoint_every, &opts.checkpoint_dir) {
        (Some(every), Some(dir)) => Some(CkptPolicy {
            every: *every,
            dir: dir.clone(),
        }),
        _ => None,
    }
}

/// Whether coordinator failover is armed: checkpointing (the state a
/// takeover resumes from) on a run with at least one follower to elect.
fn failover_armed(opts: &Opts) -> bool {
    ckpt_policy(opts).is_some() && opts.ranks.is_some_and(|r| r >= 2)
}

/// Identity pinning the control-plane replica to this job. Unlike the
/// engine's checkpoint `RunId` (keyed on the algorithm *type*), this one
/// is keyed on the command line — every rank can derive it from its own
/// argv plus the shipped vertex count, with no engine types in sight.
fn replica_run_id(opts: &Opts, ranks: usize, n: usize) -> RunId {
    RunId {
        workers: ranks as u32,
        n: n as u64,
        algo: format!("ctrl/{}/{}", opts.algorithm, opts.variant),
    }
}

/// The standby for the epoch an acting coordinator is about to publish:
/// the `--standby` designation when it names someone else, otherwise the
/// lowest rank that is not the acting coordinator (rank 1 at bootstrap;
/// rank 0 itself once a takeover made it a plain follower).
fn pick_standby(opts: &Opts, acting: usize, ranks: usize) -> u32 {
    let fixed = match opts.standby {
        Some(StandbyArg::Fixed(r)) if r != acting => Some(r),
        _ => None,
    };
    fixed.unwrap_or_else(|| (0..ranks).find(|&r| r != acting).expect("ranks >= 2")) as u32
}

/// Open the checkpoint store that carries the control replica and the
/// coordinator advertisement.
fn ctrl_store(opts: &Opts) -> Store {
    let dir = opts
        .checkpoint_dir
        .as_ref()
        .expect("failover is armed, so --checkpoint-dir is set");
    Store::open(dir).unwrap_or_else(|e| {
        eprintln!("pcgraph: cannot open checkpoint store: {e}");
        exit(EXIT_RUNTIME)
    })
}

/// Publish this epoch's control-plane state: pick the standby, persist
/// the replica and the coordinator advertisement (tmp→fsync→rename, so
/// a torn publish leaves the previous epoch intact), and ship a `CTRL`
/// frame to every follower — plans ride only on the standby's frame.
/// Failures to persist are fatal (like checkpoint I/O); a dead control
/// link is tolerated (the next recovery epoch repairs it).
fn publish_ctrl(
    coordinator: &mut Coordinator,
    store: &Store,
    id: &RunId,
    plans: &[Vec<u8>],
    opts: &Opts,
) -> u32 {
    let acting = coordinator.acting_rank();
    let ranks = coordinator.ranks();
    let epoch = coordinator.epoch();
    let standby = pick_standby(opts, acting, ranks);
    store
        .write_replica(&ControlReplica {
            id: id.clone(),
            epoch,
            standby,
            plans: plans.to_vec(),
        })
        .unwrap_or_else(|e| {
            eprintln!("pcgraph: cannot persist control replica: {e}");
            exit(EXIT_RUNTIME)
        });
    let addr = coordinator
        .control_addr()
        .unwrap_or_else(|e| bail_bootstrap(e));
    store
        .advertise(&Advertisement {
            epoch,
            acting: acting as u32,
            addr: addr.to_string(),
        })
        .unwrap_or_else(|e| {
            eprintln!("pcgraph: cannot publish coordinator advertisement: {e}");
            exit(EXIT_RUNTIME)
        });
    for rank in (0..ranks).filter(|&r| r != acting) {
        let state = CtrlState {
            epoch,
            standby,
            plans: (rank as u32 == standby).then(|| plans.to_vec()),
        };
        if let Err(e) = coordinator.send(rank, TAG_CTRL, &encode_ctrl(&state)) {
            eprintln!(
                "pcgraph: rank {acting}: cannot ship CTRL to rank {rank} ({e}); \
                 deferring to the next recovery epoch"
            );
        }
    }
    standby
}

/// Per-rank respawn budget of the supervising launcher when
/// checkpointing (and with it recovery) is armed.
fn respawn_budget() -> u32 {
    match std::env::var("PC_DIST_MAX_RESPAWNS") {
        Err(_) => 3,
        Ok(v) => v.parse().unwrap_or_else(|_| {
            usage_error(&format!("PC_DIST_MAX_RESPAWNS expects a number, got '{v}'"))
        }),
    }
}

fn env_ms(name: &str, default_ms: u64) -> Duration {
    match std::env::var(name) {
        Err(_) => Duration::from_millis(default_ms),
        Ok(v) => match v.parse() {
            Ok(ms) => Duration::from_millis(ms),
            // A set-but-unparsable deadline must not silently become the
            // default — that is how a wedged cluster outlives its CI job.
            Err(_) => usage_error(&format!("{name} expects milliseconds, got '{v}'")),
        },
    }
}

fn bootstrap_options(tolerate_lost: bool) -> BootstrapOptions {
    BootstrapOptions {
        connect_timeout: env_ms("PC_DIST_CONNECT_TIMEOUT_MS", 10_000),
        tolerate_lost,
        ..BootstrapOptions::default()
    }
}

/// Mesh options for a rank's data plane. `--transport tcp-batched` runs
/// the multi-process mesh under the non-blocking batched driver;
/// `in-process` makes no sense across processes and falls back to the
/// synchronous socket driver.
fn tcp_options(kind: TransportKind) -> TcpOptions {
    TcpOptions {
        connect_timeout: env_ms("PC_DIST_CONNECT_TIMEOUT_MS", 10_000),
        batched: kind == TransportKind::TcpBatched,
        ..TcpOptions::default()
    }
}

// ---------------------------------------------------------------------
// Graph loading and partition shipping
// ---------------------------------------------------------------------

/// What kind of graph data an algorithm walks.
#[derive(Debug, Clone, Copy)]
struct Need {
    weighted: bool,
    directed: bool,
    /// Also needs the transposed graph (SCC).
    rev: bool,
}

fn need_of(algorithm: &str) -> Need {
    match algorithm {
        "pagerank" | "bfs" => Need {
            weighted: false,
            directed: true,
            rev: false,
        },
        "scc" => Need {
            weighted: false,
            directed: true,
            rev: true,
        },
        "sssp" | "msf" => Need {
            weighted: true,
            directed: false,
            rev: false,
        },
        // wcc | sv | kcore (and anything undirected).
        _ => Need {
            weighted: false,
            directed: false,
            rev: false,
        },
    }
}

/// The graph data an algorithm runs on — full graphs in single-process
/// mode, shipped row slices in rank mode.
#[derive(Debug)]
enum Gdata {
    U {
        g: Arc<Graph>,
        rev: Option<Arc<Graph>>,
    },
    W(Arc<WeightedGraph>),
}

impl Gdata {
    fn unweighted(&self) -> &Arc<Graph> {
        match self {
            Gdata::U { g, .. } => g,
            Gdata::W(_) => unreachable!("algorithm asked for an unweighted graph"),
        }
    }
    fn rev(&self) -> &Arc<Graph> {
        match self {
            Gdata::U { rev: Some(r), .. } => r,
            _ => unreachable!("algorithm asked for a reverse graph that was not prepared"),
        }
    }
    fn weighted(&self) -> &Arc<WeightedGraph> {
        match self {
            Gdata::W(g) => g,
            Gdata::U { .. } => unreachable!("algorithm asked for a weighted graph"),
        }
    }
    fn n(&self) -> usize {
        match self {
            Gdata::U { g, .. } => g.n(),
            Gdata::W(g) => g.n(),
        }
    }
}

fn load_unweighted(opts: &Opts, want_directed: bool) -> Arc<Graph> {
    if let Some(path) = &opts.input {
        let g = io::read_edge_list(path, opts.directed && want_directed, 0).unwrap_or_else(|e| {
            eprintln!("pcgraph: cannot read {}: {e}", path.display());
            exit(EXIT_RUNTIME)
        });
        return Arc::new(g);
    }
    let name = opts.gen.as_deref().unwrap_or("wikipedia");
    use pc_graph::gen::*;
    let g = match name {
        "wikipedia" => rmat(opts.scale, 9 << opts.scale, RmatParams::default(), 1, true),
        "webuk" => rmat(opts.scale, 24 << opts.scale, RmatParams::default(), 2, true),
        "facebook" => rmat(
            opts.scale,
            (3 << opts.scale) / 2,
            RmatParams::default(),
            3,
            false,
        ),
        "twitter" => rmat(
            opts.scale,
            32 << opts.scale,
            RmatParams::default(),
            4,
            false,
        ),
        "road" => {
            let side = 1usize << (opts.scale / 2);
            grid2d((1usize << opts.scale) / side, side, 0.05, 6)
        }
        other => usage_error(&format!("unknown dataset '{other}'")),
    };
    let g = if want_directed { g } else { g.symmetrized() };
    Arc::new(g)
}

fn load_weighted(opts: &Opts) -> Arc<WeightedGraph> {
    if let Some(path) = &opts.input {
        let g = io::read_weighted_edge_list(path, opts.directed, 0).unwrap_or_else(|e| {
            eprintln!("pcgraph: cannot read {}: {e}", path.display());
            exit(EXIT_RUNTIME)
        });
        return Arc::new(g);
    }
    use pc_graph::gen::*;
    Arc::new(rmat_weighted(
        opts.scale,
        8 << opts.scale,
        RmatParams::default(),
        7,
        false,
        1000,
    ))
}

/// Load the full graph(s) the algorithm needs (rank 0 / single process).
fn load(opts: &Opts, need: Need) -> Gdata {
    if need.weighted {
        Gdata::W(load_weighted(opts))
    } else {
        let g = load_unweighted(opts, need.directed);
        let rev = need.rev.then(|| Arc::new(g.reverse()));
        Gdata::U { g, rev }
    }
}

/// Partition one graph with the selected streaming partitioner and
/// report the edge-cut.
fn stream_owners<W: Copy>(g: &Graph<W>, parts: usize, name: &str) -> Vec<u16> {
    let owners = match name {
        "ldg" => partition::ldg(g, parts, 2),
        "ldg-deg" => partition::ldg_deg(g, parts, 2),
        "bfs" => partition::bfs_blocks(g, parts),
        _ => unreachable!("validated in parse_args"),
    };
    let (cut, total) = partition::edge_cut(g, &owners);
    eprintln!(
        "{name} partition: edge-cut {:.1}%",
        100.0 * cut as f64 / total.max(1) as f64
    );
    owners
}

/// Owner table for a `parts`-way split of `data` (streaming partitioner
/// or random placement).
fn owners_for(data: &Gdata, opts: &Opts, parts: usize) -> Vec<u16> {
    let name = opts.partitioner_name();
    if name == "hash" {
        return partition::random_owners(data.n(), parts);
    }
    match data {
        Gdata::U { g, .. } => stream_owners(g.as_ref(), parts, name),
        Gdata::W(g) => stream_owners(g.as_ref(), parts, name),
    }
}

/// The effective mirroring threshold τ, when `--mirror-threshold` was
/// given. `auto` resolves through the degree-aware heuristic — on the
/// **full** graph only (rank 0 / single process); followers take τ from
/// the shipped plan instead.
fn resolved_threshold(data: &Gdata, opts: &Opts) -> Option<usize> {
    opts.mirror_threshold.map(|m| match m {
        MirrorArg::Fixed(t) => t,
        MirrorArg::Auto => match data {
            Gdata::U { g, .. } => partition::default_mirror_threshold(g.as_ref()),
            Gdata::W(g) => partition::default_mirror_threshold(g.as_ref()),
        },
    })
}

/// Build the mirror plan for `data` over `topo` and attach it — and
/// print the partition/replication report while we have everything in
/// hand. No-op unless `--mirror-threshold` was given.
fn attach_mirror(data: &Gdata, opts: &Opts, topo: Topology) -> Topology {
    let Some(threshold) = resolved_threshold(data, opts) else {
        return topo;
    };
    let parts = topo.workers();
    let owner: Vec<u16> = (0..topo.n() as u32)
        .map(|v| topo.worker_of(v) as u16)
        .collect();
    let (plan, report) = match data {
        Gdata::U { g, .. } => {
            let p = partition::build_mirror_plan(g.as_ref(), &topo, threshold);
            let r = partition::partition_report(g.as_ref(), &owner, parts, Some(&p));
            (p, r)
        }
        Gdata::W(g) => {
            let p = partition::build_mirror_plan(g.as_ref(), &topo, threshold);
            let r = partition::partition_report(g.as_ref(), &owner, parts, Some(&p));
            (p, r)
        }
    };
    eprintln!("{report}");
    topo.with_mirror(Arc::new(plan))
}

/// The row slices `rank` needs, in the order `decode_slices` restores.
fn slices_for(data: &Gdata, topo: &Topology, rank: usize) -> Gdata {
    match data {
        Gdata::U { g, rev } => Gdata::U {
            g: Arc::new(ship::slice_for_rank(g, topo, rank)),
            rev: rev
                .as_ref()
                .map(|r| Arc::new(ship::slice_for_rank(r, topo, rank))),
        },
        Gdata::W(g) => Gdata::W(Arc::new(ship::slice_for_rank(g, topo, rank))),
    }
}

fn encode_plan(owner: &[u16], data: &Gdata, mirror: Option<&MirrorPlan>) -> Vec<u8> {
    match data {
        Gdata::U { g, rev: None } => ship::encode_plan(owner, &[g.as_ref()], mirror),
        Gdata::U { g, rev: Some(r) } => ship::encode_plan(owner, &[g.as_ref(), r.as_ref()], mirror),
        Gdata::W(g) => ship::encode_plan(owner, &[g.as_ref()], mirror),
    }
}

fn decode_plan(
    payload: &[u8],
    need: Need,
) -> Result<(Vec<u16>, Gdata, Option<MirrorPlan>), String> {
    if need.weighted {
        let (owner, mut graphs, mirror) = ship::decode_plan::<u32>(payload)?;
        if graphs.len() != 1 {
            return Err(format!("expected 1 graph slice, got {}", graphs.len()));
        }
        Ok((owner, Gdata::W(Arc::new(graphs.remove(0))), mirror))
    } else {
        let (owner, graphs, mirror) = ship::decode_plan::<()>(payload)?;
        let expected = if need.rev { 2 } else { 1 };
        if graphs.len() != expected {
            return Err(format!(
                "expected {expected} graph slice(s), got {}",
                graphs.len()
            ));
        }
        let mut it = graphs.into_iter();
        let g = Arc::new(it.next().unwrap());
        let rev = it.next().map(Arc::new);
        Ok((owner, Gdata::U { g, rev }, mirror))
    }
}

/// Rebuild the full input graph from the replicated per-rank `PLAN`
/// frames — the `--verify` path of a takeover coordinator, which never
/// loaded the input. Inverse of the `slices_for` + `encode_plan`
/// shipping pipeline, so the result is bit-exact.
fn rebuild_full(plans: &[Vec<u8>], need: Need) -> Result<Gdata, String> {
    if need.weighted {
        let mut owner = Vec::new();
        let mut slices = Vec::new();
        for p in plans {
            let (o, mut graphs, _) = ship::decode_plan::<u32>(p)?;
            if graphs.len() != 1 {
                return Err(format!("expected 1 graph slice, got {}", graphs.len()));
            }
            owner = o;
            slices.push(graphs.remove(0));
        }
        return Ok(Gdata::W(Arc::new(ship::merge_slices(&owner, &slices)?)));
    }
    let mut owner = Vec::new();
    let (mut fwd, mut rev) = (Vec::new(), Vec::new());
    let expected = if need.rev { 2 } else { 1 };
    for p in plans {
        let (o, graphs, _) = ship::decode_plan::<()>(p)?;
        if graphs.len() != expected {
            return Err(format!(
                "expected {expected} graph slice(s), got {}",
                graphs.len()
            ));
        }
        let mut it = graphs.into_iter();
        fwd.push(it.next().unwrap());
        rev.extend(it.next());
        owner = o;
    }
    let g = Arc::new(ship::merge_slices(&owner, &fwd)?);
    let rev = if need.rev {
        Some(Arc::new(ship::merge_slices(&owner, &rev)?))
    } else {
        None
    };
    Ok(Gdata::U { g, rev })
}

// ---------------------------------------------------------------------
// Session preparation (single process / rank 0 / follower)
// ---------------------------------------------------------------------

enum Role {
    Single,
    /// The acting coordinator of a multi-process run — rank 0 at launch,
    /// or a standby that took over after rank 0's death. Keeps the full
    /// graph only when `--verify` will need it (a takeover coordinator
    /// reconstructs it from the replicated plans instead); the run itself
    /// uses this rank's slice.
    Rank0 {
        full: Option<Gdata>,
        /// Keeps the control links (and the rendezvous listener) open for
        /// the lifetime of the run; recovery runs through it.
        coordinator: Coordinator,
        /// Encoded `PLAN` frames per rank (index 0 empty unless failover
        /// is armed), kept only when recovery is armed so a respawned
        /// rank's partition can be re-shipped without reloading the
        /// input.
        plans: Option<Vec<Vec<u8>>>,
        /// Failover bookkeeping (armed runs): the store carrying the
        /// replica + advertisement, and the replica identity.
        failover: Option<(Store, RunId)>,
    },
    Follower {
        /// The control link to the coordinator, kept only when recovery
        /// is armed (a surviving rank re-joins over it).
        ctrl: Option<Follower>,
        /// The latest replicated control state (armed runs): the epoch,
        /// the designated standby, and — on the standby itself — every
        /// rank's plan.
        ctrl_state: Option<CtrlState>,
        /// Which rank is acting coordinator for the current epoch (0
        /// until a takeover; then whatever the advertisement named).
        acting: usize,
    },
}

struct Prepared {
    cfg: Config,
    topo: Arc<Topology>,
    data: Gdata,
    role: Role,
    /// Recovery epochs this rank has participated in, and the wall-clock
    /// µs they cost — merged into `RunStats` through the gather.
    recoveries: u64,
    recovery_us: u64,
}

fn bail_bootstrap(e: impl std::fmt::Display) -> ! {
    eprintln!("pcgraph: bootstrap failed: {e}");
    exit(EXIT_BOOTSTRAP)
}

/// Bind this rank's data-plane listener on the `--bind` interface
/// (loopback by default); peers will dial the resulting address from the
/// rebroadcast peer table.
fn bind_data_listener(opts: &Opts) -> (TcpListener, SocketAddr) {
    let ip = opts.bind.unwrap_or(IpAddr::V4(Ipv4Addr::LOCALHOST));
    let listener = TcpListener::bind((ip, 0))
        .unwrap_or_else(|e| bail_bootstrap(format!("bind data-plane listener on {ip}: {e}")));
    let addr = listener
        .local_addr()
        .unwrap_or_else(|e| bail_bootstrap(format!("data-plane local_addr: {e}")));
    (listener, addr)
}

/// The engine config for one rank over a fresh mesh.
fn rank_config(opts: &Opts, ranks: usize, rank: usize, tcp: Tcp) -> Config {
    Config {
        spin_budget: opts.spin_budget,
        ckpt: ckpt_policy(opts),
        trace: opts.tracing_enabled(),
        ..Config::rank(ranks, rank, Arc::new(tcp))
    }
}

fn prepare(opts: &Opts, need: Need) -> Prepared {
    let Some(rank) = opts.rank else {
        // Single-process shape (the original pcgraph).
        let data = load(opts, need);
        let base = if opts.partitioner_name() == "hash" {
            Topology::hashed(data.n(), opts.workers)
        } else {
            Topology::from_owners(opts.workers, owners_for(&data, opts, opts.workers))
        };
        let topo = Arc::new(attach_mirror(&data, opts, base));
        let cfg = Config {
            transport: opts.transport,
            spin_budget: opts.spin_budget,
            ckpt: ckpt_policy(opts),
            trace: opts.tracing_enabled(),
            ..Config::with_workers(opts.workers)
        };
        return Prepared {
            cfg,
            topo,
            data,
            role: Role::Single,
            recoveries: 0,
            recovery_us: 0,
        };
    };
    // Rank mode: one worker per process over a real socket mesh.
    let ranks = opts.ranks.expect("validated in parse_args");
    let coordinator_addr = opts.coordinator.expect("validated in parse_args");
    if opts.variant == "blogel" {
        usage_error(
            "--variant blogel runs on the Pregel baseline engine, which has no multi-process mode",
        );
    }
    // Recovery needs the control plane (and on rank 0 the encoded plans)
    // to outlive the bootstrap.
    let recovery = ckpt_policy(opts).is_some();
    let armed = failover_armed(opts);
    let (listener, data_addr) = bind_data_listener(opts);
    let bopts = bootstrap_options(recovery);
    if rank != 0 {
        return prepare_follower(opts, need, ranks, rank, listener, data_addr, bopts);
    }
    // A prior rank-0 incarnation leaves its advertisement in the
    // checkpoint store (the launcher wipes the store only at job start),
    // so finding one means this process is a *respawn*: the standby is
    // taking over (or already has), and rank 0 rejoins the advertised
    // coordinator as a plain follower instead of rendezvousing anew.
    if armed && matches!(ctrl_store(opts).read_advertisement(), Ok(Some(_))) {
        eprintln!("pcgraph: rank 0: prior incarnation detected; rejoining as a follower");
        return prepare_follower(opts, need, ranks, 0, listener, data_addr, bopts);
    }
    // Rendezvous before loading: followers dial under the (short)
    // connect deadline, which must not also have to cover a long
    // graph load. Once joined, they wait for their plan under the
    // generous control-plane io deadline instead.
    let mut coordinator = Coordinator::rendezvous(coordinator_addr, ranks, data_addr, bopts)
        .unwrap_or_else(|e| bail_bootstrap(e));
    let full = load(opts, need);
    let owner = owners_for(&full, opts, ranks);
    let topo = Arc::new(attach_mirror(
        &full,
        opts,
        Topology::from_owners(ranks, owner.clone()),
    ));
    let mirror = topo.mirror_plan().map(|p| p.as_ref().clone());
    // Partition shipping: every follower gets the owner table plus
    // exactly its row slices (and the mirror plan, when one was
    // built) — no other process opens the input. With failover armed,
    // rank 0's own plan is encoded too: the replica must let a takeover
    // coordinator re-ship a respawned rank 0's slice (and reconstruct
    // the full graph for --verify) without ever seeing the input.
    let mut plans: Vec<Vec<u8>> = vec![Vec::new()];
    if armed {
        plans[0] = encode_plan(&owner, &slices_for(&full, &topo, 0), mirror.as_ref());
    }
    for r in 1..ranks {
        let plan = encode_plan(&owner, &slices_for(&full, &topo, r), mirror.as_ref());
        if let Err(e) = coordinator.send(r, TAG_PLAN, &plan) {
            if !recovery {
                bail_bootstrap(e);
            }
            // The rank died between joining and receiving its plan.
            // With recovery armed this is survivable: the launcher is
            // respawning it, the data plane will fault, and the
            // recovery rendezvous re-ships this cached plan.
            eprintln!(
                "pcgraph: rank 0: cannot ship plan to rank {r} ({e}); \
                 deferring to recovery"
            );
        }
        plans.push(if recovery { plan } else { Vec::new() });
    }
    // Failover: persist the control replica + advertisement and ship the
    // CTRL frames (the standby's carries every plan) before the run
    // starts, so rank 0's very first death is already survivable.
    let failover = armed.then(|| {
        let store = ctrl_store(opts);
        let id = replica_run_id(opts, ranks, topo.n());
        publish_ctrl(&mut coordinator, &store, &id, &plans, opts);
        (store, id)
    });
    let data = slices_for(&full, &topo, 0);
    let tcp = Tcp::mesh(
        0,
        coordinator.peers().to_vec(),
        listener,
        tcp_options(opts.transport),
    )
    .unwrap_or_else(|e| bail_bootstrap(e));
    Prepared {
        cfg: rank_config(opts, ranks, 0, tcp),
        topo,
        data,
        role: Role::Rank0 {
            full: opts.verify.then_some(full),
            coordinator,
            plans: recovery.then_some(plans),
            failover,
        },
        recoveries: 0,
        recovery_us: 0,
    }
}

/// A follower's side of [`prepare`] — also the path a respawned rank 0
/// takes once a prior incarnation's advertisement shows this cluster
/// elects its coordinators. Resolves the live rendezvous address through
/// the advertisement when failover is armed (the `--coordinator` flag
/// names rank 0's listener, which dies with rank 0), joins, receives the
/// shipped plan (and the replicated control state when armed), and
/// builds this rank's mesh endpoint.
fn prepare_follower(
    opts: &Opts,
    need: Need,
    ranks: usize,
    rank: usize,
    listener: TcpListener,
    data_addr: SocketAddr,
    bopts: BootstrapOptions,
) -> Prepared {
    let recovery = ckpt_policy(opts).is_some();
    let armed = failover_armed(opts);
    // With recovery armed, a failed join retries under a jittered
    // backoff: a respawned rank may arrive while the cluster is still
    // detecting the failure it replaces, and the acting coordinator only
    // drains the rendezvous backlog once its own data plane faults. Each
    // retry is a fresh connection (and a fresh advertisement read, in
    // case the coordinator moved), so the coordinator always finds a
    // live socket.
    let deadline = Instant::now() + bopts.connect_timeout.max(bopts.io_timeout);
    let mut backoff = Backoff::for_connect(rank as u64);
    let mut attempt = 0u32;
    let (mut follower, acting) = loop {
        // Where does the acting coordinator listen? Rank 0 respawns must
        // never dial their own dead incarnation, so they wait for an
        // advertisement naming somebody else; other ranks fall back to
        // the flag-given address when nothing (newer) is advertised.
        let mut target = (rank != 0).then(|| {
            let addr = opts.coordinator.expect("validated in parse_args");
            (addr, 0usize)
        });
        if armed {
            if let Ok(Some(ad)) = ctrl_store(opts).read_advertisement() {
                if ad.acting as usize != rank {
                    if let Ok(addr) = ad.addr.parse::<SocketAddr>() {
                        target = Some((addr, ad.acting as usize));
                    }
                }
            }
        }
        if let Some((addr, acting)) = target {
            attempt += 1;
            match Follower::join(addr, rank, data_addr, bopts) {
                Ok(f) => break (f, acting),
                Err(e) if !recovery => bail_bootstrap(e),
                Err(e) => {
                    eprintln!("pcgraph: rank {rank}: join attempt {attempt} failed ({e}); retrying")
                }
            }
        }
        let now = Instant::now();
        if now >= deadline {
            bail_bootstrap(format!(
                "rank {rank}: no acting coordinator reachable before the deadline"
            ));
        }
        backoff.sleep(deadline - now);
    };
    let mut plan = Vec::new();
    let tag = follower
        .recv(&mut plan)
        .unwrap_or_else(|e| bail_bootstrap(e));
    if tag != TAG_PLAN {
        bail_bootstrap(format!("expected a PLAN frame, got tag {tag:#04x}"));
    }
    let (owner, data, mirror) =
        decode_plan(&plan, need).unwrap_or_else(|e| bail_bootstrap(format!("malformed plan: {e}")));
    // The coordinator follows every plan with the replicated control
    // state: the epoch, who the standby is, and — on the standby's own
    // frame — every rank's plan.
    let ctrl_state = armed.then(|| recv_ctrl(&mut follower));
    let mut base = Topology::from_owners(ranks, owner);
    if let Some(plan) = mirror {
        base = base.with_mirror(Arc::new(plan));
    }
    let topo = Arc::new(base);
    let tcp = Tcp::mesh(
        rank,
        follower.peers().to_vec(),
        listener,
        tcp_options(opts.transport),
    )
    .unwrap_or_else(|e| bail_bootstrap(e));
    let mut cfg = rank_config(opts, ranks, rank, tcp);
    if let Some(d) = cfg.dist.as_mut() {
        d.gather_root = acting;
    }
    Prepared {
        cfg,
        topo,
        data,
        role: Role::Follower {
            ctrl: recovery.then_some(follower),
            ctrl_state,
            acting,
        },
        recoveries: 0,
        recovery_us: 0,
    }
}

/// Receive the `CTRL` frame the coordinator sends after a plan (or after
/// a recovery rendezvous) on an armed run; fatal on failure.
fn recv_ctrl(follower: &mut Follower) -> CtrlState {
    try_recv_ctrl(follower).unwrap_or_else(|e| bail_bootstrap(e))
}

/// [`recv_ctrl`] returning the failure instead — the recovery path turns
/// a lost CTRL frame into an election, not a process exit.
fn try_recv_ctrl(follower: &mut Follower) -> Result<CtrlState, TransportError> {
    let mut buf = Vec::new();
    match follower.recv(&mut buf) {
        Ok(TAG_CTRL) => decode_ctrl(&buf, 0),
        Ok(tag) => Err(TransportError::Protocol {
            peer: 0,
            detail: format!("expected a CTRL frame, got tag {tag:#04x}"),
        }),
        Err(e) => Err(e),
    }
}

// ---------------------------------------------------------------------
// Execution with rank-failure recovery
// ---------------------------------------------------------------------

/// Run the algorithm, and — when this is a rank of a checkpointing
/// multi-process job — survive data-plane failures: a panic whose typed
/// [`TransportError`] the mesh recorded tears the old mesh down, runs a
/// recovery rendezvous over the (still-open) control plane, rebuilds the
/// mesh, and re-enters the engine, which restores the last committed
/// checkpoint and resumes the superstep loop. Non-transport panics (and
/// anything past the attempt budget) propagate unchanged.
fn execute<V>(
    p: &mut Prepared,
    opts: &Opts,
    run: &impl Fn(&Gdata, &Arc<Topology>, &Config) -> (V, RunStats),
) -> (V, RunStats) {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    if p.cfg.dist.is_none() || p.cfg.ckpt.is_none() {
        return run(&p.data, &p.topo, &p.cfg);
    }
    let ranks = opts.ranks.expect("rank mode");
    // Every recovery epoch costs one attempt; the budget scales with the
    // cluster (each rank may be respawned up to the launcher's budget,
    // and every respawn implies one cluster-wide recovery epoch).
    let max_attempts = respawn_budget().saturating_mul(ranks as u32).max(1);
    let mut attempts = 0u32;
    loop {
        match catch_unwind(AssertUnwindSafe(|| run(&p.data, &p.topo, &p.cfg))) {
            Ok(out) => return out,
            Err(payload) => {
                let role = p.cfg.dist.clone().expect("checked above");
                let Some(fault) = role.transport.take_fault() else {
                    resume_unwind(payload); // not a transport failure
                };
                attempts += 1;
                if attempts > max_attempts {
                    eprintln!(
                        "pcgraph: rank {}: giving up after {max_attempts} recovery attempts",
                        role.rank
                    );
                    resume_unwind(payload);
                }
                eprintln!(
                    "pcgraph: rank {}: data-plane failure ({fault}); recovering \
                     (attempt {attempts}/{max_attempts})",
                    role.rank
                );
                // Drop every handle on the failed mesh first: closing its
                // sockets is what unblocks peers still waiting in it.
                p.cfg.dist = None;
                let mut fault_peer = fault.peer();
                drop(role);
                let t0 = Instant::now();
                // A rendezvous that itself fails — the acting coordinator
                // died between re-shipping plans and the mesh completing,
                // or another rank fell over mid-epoch — is a fresh fault,
                // not a fatal exit: re-attribute the failed peer and go
                // around again so the election path can still run. The
                // shared attempt budget keeps a dead cluster bounded.
                while let Err(e) = recover(p, opts, ranks, fault_peer) {
                    attempts += 1;
                    if attempts > max_attempts {
                        bail_bootstrap(format!("recovery rendezvous: {e}"));
                    }
                    eprintln!(
                        "pcgraph: rank {}: recovery rendezvous failed ({e}); retrying \
                         (attempt {attempts}/{max_attempts})",
                        opts.rank.expect("rank mode")
                    );
                    fault_peer = e.peer();
                }
                // Book the epoch on this rank's role record: the gather
                // sums recoveries over ranks and takes the max repair
                // time, so each rank reports only its own share.
                p.recoveries += 1;
                p.recovery_us += t0.elapsed().as_micros() as u64;
                if let Some(d) = p.cfg.dist.as_mut() {
                    d.recoveries = p.recoveries;
                    d.recovery_us = p.recovery_us;
                }
            }
        }
    }
}

/// One recovery rendezvous: agree on a fresh peer table over the control
/// plane, re-ship plans to respawned ranks, rebuild this rank's mesh.
///
/// With failover armed, a fault attributed to the *acting coordinator*
/// (or a control plane that dies mid-rendezvous — the control link rides
/// the same process) escalates to an election instead: the standby takes
/// over, everyone else follows the new advertisement.
fn recover(
    p: &mut Prepared,
    opts: &Opts,
    ranks: usize,
    fault_peer: usize,
) -> Result<(), TransportError> {
    let rank = opts.rank.expect("rank mode");
    let armed = failover_armed(opts);
    let (listener, data_addr) = bind_data_listener(opts);
    match &mut p.role {
        Role::Rank0 {
            coordinator,
            plans,
            failover,
            ..
        } => {
            let acting = coordinator.acting_rank();
            let needs_plan = coordinator.recover(data_addr)?;
            let plans = plans.as_ref().expect("recovery keeps the encoded plans");
            for (r, needs) in needs_plan.iter().enumerate() {
                if r == acting || !*needs {
                    continue;
                }
                if let Err(e) = coordinator.send(r, TAG_PLAN, &plans[r]) {
                    // The respawned rank died again before its plan went
                    // out (crash loop). Same policy as the initial
                    // bootstrap: don't fail the coordinator over it — the
                    // mesh will fault and the next recovery epoch retries.
                    eprintln!(
                        "pcgraph: rank {acting}: cannot re-ship plan to rank {r} ({e}); \
                         deferring to the next recovery epoch"
                    );
                }
            }
            // Refresh the replicated control state at the new epoch: the
            // standby may have been the casualty, and respawned ranks
            // hold no CTRL state at all yet.
            if let Some((store, id)) = failover {
                publish_ctrl(coordinator, store, id, plans, opts);
            }
            let tcp = Tcp::mesh(
                rank,
                coordinator.peers().to_vec(),
                listener,
                tcp_options(opts.transport),
            )?;
            p.cfg = rank_config(opts, ranks, rank, tcp);
            if let Some(d) = p.cfg.dist.as_mut() {
                d.gather_root = acting;
            }
            return Ok(());
        }
        Role::Single => unreachable!("recovery only runs in rank mode"),
        Role::Follower {
            ctrl,
            ctrl_state,
            acting,
        } => {
            let follower = ctrl.as_mut().expect("recovery keeps the control link");
            // The control link lives in the acting coordinator's process:
            // a fault naming the acting rank, a failed rejoin, or a lost
            // CTRL frame all mean the coordinator is gone.
            let outcome = if armed && fault_peer == *acting {
                Err("the data-plane fault names the acting coordinator".to_string())
            } else {
                match follower.rejoin(data_addr) {
                    // The coordinator follows every recovery PEERS with a
                    // fresh CTRL frame.
                    Ok(_epoch) if armed => match try_recv_ctrl(follower) {
                        Ok(state) => Ok(Some(state)),
                        Err(e) => Err(format!("control plane lost after rejoin ({e})")),
                    },
                    Ok(_epoch) => Ok(None),
                    Err(e) if armed => Err(format!("control plane lost during recovery ({e})")),
                    Err(e) => return Err(e),
                }
            };
            match outcome {
                Ok(new_state) => {
                    if let Some(state) = new_state {
                        *ctrl_state = Some(state);
                    }
                    let tcp = Tcp::mesh(
                        rank,
                        follower.peers().to_vec(),
                        listener,
                        tcp_options(opts.transport),
                    )?;
                    p.cfg = rank_config(opts, ranks, rank, tcp);
                    if let Some(d) = p.cfg.dist.as_mut() {
                        d.gather_root = *acting;
                    }
                    return Ok(());
                }
                Err(why) => eprintln!("pcgraph: rank {rank}: {why}; electing a new coordinator"),
            }
        }
    }
    elect(p, opts, ranks, listener, data_addr)
}

/// Coordinator election after the acting coordinator died. No consensus
/// round is needed: every armed rank already agreed (via the last `CTRL`
/// frame) on who the standby is, so the standby simply takes over and
/// everyone else waits for its advertisement. Single-failure model: if
/// the standby died in the same breath, the poll deadline expires, this
/// rank exits with a typed bootstrap failure, and the launcher's respawn
/// budget decides whether the job survives.
fn elect(
    p: &mut Prepared,
    opts: &Opts,
    ranks: usize,
    listener: TcpListener,
    data_addr: SocketAddr,
) -> Result<(), TransportError> {
    let rank = opts.rank.expect("rank mode");
    let state = {
        let Role::Follower { ctrl_state, .. } = &p.role else {
            unreachable!("only followers elect");
        };
        ctrl_state
            .clone()
            .expect("armed runs always hold a CTRL state")
    };
    let store = ctrl_store(opts);
    let bopts = bootstrap_options(true);
    if state.standby as usize == rank {
        // --- Takeover: this rank is the standby. ---
        eprintln!(
            "pcgraph: rank {rank}: coordinator lost; standby taking over at epoch {}",
            state.epoch + 1
        );
        let id = replica_run_id(opts, ranks, p.topo.n());
        // The plans rode on this rank's own CTRL frame; fall back to the
        // persisted replica (e.g. the CTRL refresh after a recovery was
        // lost in the coordinator's death).
        let plans = state
            .plans
            .clone()
            .or_else(|| match store.read_replica(&id) {
                Ok(r) => r.map(|r| r.plans),
                Err(e) => {
                    eprintln!("pcgraph: rank {rank}: cannot read control replica: {e}");
                    None
                }
            })
            .unwrap_or_default();
        if plans.len() != ranks {
            bail_bootstrap(format!(
                "rank {rank}: control replica holds {} plans for {ranks} ranks; cannot take over",
                plans.len()
            ));
        }
        let bind_ip = opts.bind.unwrap_or(IpAddr::V4(Ipv4Addr::LOCALHOST));
        let mut coordinator =
            Coordinator::takeover((bind_ip, 0).into(), ranks, rank, state.epoch, bopts)?;
        // Advertise the fresh listener under the epoch the rendezvous
        // will establish BEFORE blocking in it: the advertisement is how
        // survivors (and the respawned ex-coordinator) find this rank.
        let addr = coordinator.control_addr()?;
        store
            .advertise(&Advertisement {
                epoch: state.epoch + 1,
                acting: rank as u32,
                addr: addr.to_string(),
            })
            .unwrap_or_else(|e| {
                eprintln!("pcgraph: cannot publish coordinator advertisement: {e}");
                exit(EXIT_RUNTIME)
            });
        let needs_plan = coordinator.recover(data_addr)?;
        for (r, needs) in needs_plan.iter().enumerate() {
            if r == rank || !*needs {
                continue;
            }
            if let Err(e) = coordinator.send(r, TAG_PLAN, &plans[r]) {
                eprintln!(
                    "pcgraph: rank {rank}: cannot re-ship plan to rank {r} ({e}); \
                     deferring to the next recovery epoch"
                );
            }
        }
        publish_ctrl(&mut coordinator, &store, &id, &plans, opts);
        let tcp = Tcp::mesh(
            rank,
            coordinator.peers().to_vec(),
            listener,
            tcp_options(opts.transport),
        )?;
        p.cfg = rank_config(opts, ranks, rank, tcp);
        if let Some(d) = p.cfg.dist.as_mut() {
            d.gather_root = rank;
        }
        // `full` stays None: a takeover coordinator never loaded the
        // input — `conclude` reconstructs it from the plans on --verify.
        p.role = Role::Rank0 {
            full: None,
            coordinator,
            plans: Some(plans),
            failover: Some((store, id)),
        };
        return Ok(());
    }
    // --- Follow: wait for the standby's takeover advertisement. ---
    eprintln!(
        "pcgraph: rank {rank}: coordinator lost; waiting for standby rank {}",
        state.standby
    );
    let deadline = Instant::now() + bopts.connect_timeout.max(bopts.io_timeout);
    let mut backoff = Backoff::for_connect(rank as u64);
    let (mut follower, acting) = loop {
        if let Ok(Some(ad)) = store.read_advertisement() {
            // Only an advertisement *newer* than the state this rank
            // last saw counts — the dead coordinator's own is stale.
            if ad.epoch > state.epoch && ad.acting as usize != rank {
                if let Ok(addr) = ad.addr.parse::<SocketAddr>() {
                    // A survivor keeps its partition: join with the
                    // NEEDS_PLAN flag clear.
                    match Follower::join_with(addr, rank, data_addr, 0, bopts) {
                        Ok(f) => break (f, ad.acting as usize),
                        Err(e) => eprintln!(
                            "pcgraph: rank {rank}: cannot join takeover coordinator ({e}); \
                             retrying"
                        ),
                    }
                }
            }
        }
        let now = Instant::now();
        if now >= deadline {
            bail_bootstrap(format!(
                "rank {rank}: no takeover coordinator appeared before the deadline \
                 (standby rank {} may have died with the coordinator)",
                state.standby
            ));
        }
        backoff.sleep(deadline - now);
    };
    // A takeover coordinator dying between PEERS and CTRL surfaces here;
    // propagate so the caller's retry loop re-enters the election rather
    // than exiting this rank.
    let new_state = try_recv_ctrl(&mut follower)?;
    let tcp = Tcp::mesh(
        rank,
        follower.peers().to_vec(),
        listener,
        tcp_options(opts.transport),
    )?;
    p.cfg = rank_config(opts, ranks, rank, tcp);
    if let Some(d) = p.cfg.dist.as_mut() {
        d.gather_root = acting;
    }
    p.role = Role::Follower {
        ctrl: Some(follower),
        ctrl_state: Some(new_state),
        acting,
    };
    Ok(())
}

// ---------------------------------------------------------------------
// Result handling
// ---------------------------------------------------------------------

fn report(stats: &RunStats) {
    eprintln!(
        "done: {:.1} ms, {:.3} MiB network traffic, {} supersteps, {} rounds",
        stats.millis(),
        stats.remote_mib(),
        stats.supersteps,
        stats.rounds
    );
    for c in &stats.channels {
        eprintln!(
            "  channel {:<12} {:>12} messages {:>14} remote bytes",
            c.name, c.messages, c.bytes.remote
        );
    }
    if stats.max_rank_msgs > 0 {
        eprintln!("  skew {:>17} max per-rank messages", stats.max_rank_msgs);
    }
    if stats.mirrored_msgs() > 0 {
        eprintln!(
            "  mirror {:>15} ghost broadcasts {:>10} per-edge sends saved",
            stats.mirrored_msgs(),
            stats.mirror_saved()
        );
    }
    if stats.transport.frames > 0 {
        eprintln!(
            "  transport {:<10} {:>12} frames {:>14.3} MiB wire {:>8} round-trips",
            stats.transport_name,
            stats.transport.frames,
            stats.wire_mib(),
            stats.transport.round_trips,
        );
    }
    if stats.transport.poll_waits > 0 {
        eprintln!(
            "  readiness {:>12} poll waits {:>12} µs send stall {:>8} µs recv stall {:>6} spurious",
            stats.transport.poll_waits,
            stats.transport.send_stall_us,
            stats.transport.recv_stall_us,
            stats.transport.wakeups_spurious,
        );
    }
    if stats.barrier_crossings > 0 {
        eprintln!(
            "  barrier {:>14} crossings {:>13} arrival spins",
            stats.barrier_crossings, stats.barrier_spins,
        );
    }
    if stats.recoveries > 0 {
        eprintln!(
            "  recovery {:>13} epochs {:>16} µs repairing",
            stats.recoveries, stats.recovery_us,
        );
    }
}

fn write_artifact(path: &std::path::Path, what: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("pcgraph: cannot write {what} {}: {e}", path.display());
        exit(EXIT_RUNTIME);
    }
    eprintln!("{what}: wrote {}", path.display());
}

/// Export the observability artifacts from the process that holds the
/// merged stats — Single or rank 0. Followers never reach this: they
/// exit at the top of [`conclude`], so `--trace FILE` can ride to every
/// rank (it is what arms their recorders) without two processes racing
/// on one output path.
fn emit_observability(opts: &Opts, stats: &RunStats) {
    if opts.superstep_table {
        eprint!("{}", pc_bsp::trace::superstep_table(&stats.timeline));
    }
    if let Some(path) = &opts.trace {
        write_artifact(
            path,
            "trace",
            &pc_bsp::trace::chrome_trace_json(&stats.traces),
        );
    }
    if let Some(path) = &opts.stats_json {
        write_artifact(path, "stats", &pc_bench::report::run_stats_json(stats));
    }
}

/// Print (and in `--verify` mode check) the run's results, then exit.
fn conclude<V: PartialEq>(
    prepared: Prepared,
    opts: &Opts,
    values: V,
    stats: RunStats,
    print: impl FnOnce(&V, &RunStats),
    rerun: impl Fn(&Gdata, &Arc<Topology>, &Config) -> (V, RunStats),
) -> ! {
    let Prepared { topo, role, .. } = prepared;
    match role {
        Role::Follower { .. } => exit(EXIT_OK), // results were gathered to rank 0
        Role::Single => {
            print(&values, &stats);
            emit_observability(opts, &stats);
            exit(EXIT_OK)
        }
        Role::Rank0 { full, plans, .. } => {
            print(&values, &stats);
            emit_observability(opts, &stats);
            if opts.verify {
                // Rank 0 kept the graph it loaded; a takeover coordinator
                // never saw the input and rebuilds it — bit-exact — from
                // the replicated per-rank plans.
                let full = full.unwrap_or_else(|| {
                    let plans = plans
                        .as_ref()
                        .expect("a takeover coordinator keeps the replicated plans");
                    rebuild_full(plans, need_of(&opts.algorithm)).unwrap_or_else(|e| {
                        eprintln!(
                            "pcgraph: cannot rebuild the graph from the control replica: {e}"
                        );
                        exit(EXIT_RUNTIME)
                    })
                });
                let seq_cfg = Config {
                    mode: ExecMode::Sequential,
                    ..Config::with_workers(topo.workers())
                };
                let (seq_values, seq_stats) = rerun(&full, &topo, &seq_cfg);
                let mut failures = Vec::new();
                if values != seq_values {
                    failures.push("values".to_string());
                }
                let pairs: [(&str, u64, u64); 8] = [
                    (
                        "remote bytes",
                        stats.remote_bytes(),
                        seq_stats.remote_bytes(),
                    ),
                    ("total bytes", stats.total_bytes(), seq_stats.total_bytes()),
                    ("messages", stats.messages(), seq_stats.messages()),
                    ("supersteps", stats.supersteps, seq_stats.supersteps),
                    ("rounds", stats.rounds, seq_stats.rounds),
                    (
                        "mirrored messages",
                        stats.mirrored_msgs(),
                        seq_stats.mirrored_msgs(),
                    ),
                    (
                        "mirror saved",
                        stats.mirror_saved(),
                        seq_stats.mirror_saved(),
                    ),
                    (
                        "max rank messages",
                        stats.max_rank_msgs,
                        seq_stats.max_rank_msgs,
                    ),
                ];
                for (what, got, want) in pairs {
                    if got != want {
                        failures.push(format!("{what} ({got} vs {want})"));
                    }
                }
                if stats.pool != seq_stats.pool {
                    failures.push(format!(
                        "pool traffic ({:?} vs {:?})",
                        stats.pool, seq_stats.pool
                    ));
                }
                if !failures.is_empty() {
                    eprintln!(
                        "pcgraph: verify FAILED — distributed run diverges from the \
                         sequential reference: {}",
                        failures.join(", ")
                    );
                    exit(EXIT_RUNTIME);
                }
                eprintln!(
                    "verify: distributed run matches the sequential reference \
                     (values, bytes, messages, supersteps, rounds, mirror, pool)"
                );
            }
            exit(EXIT_OK)
        }
    }
}

// ---------------------------------------------------------------------
// Launcher mode
// ---------------------------------------------------------------------

/// Build the argument vector for one spawned rank. Loader flags
/// (`--input`, `--gen`, `--scale`) go to rank 0 only: followers receive
/// their partition over the bootstrap connection and structurally cannot
/// load the input.
fn child_args(opts: &Opts, rank: usize, ranks: usize, coordinator: &SocketAddr) -> Vec<String> {
    let mut a = vec![
        opts.algorithm.clone(),
        "--rank".into(),
        rank.to_string(),
        "--ranks".into(),
        ranks.to_string(),
        "--coordinator".into(),
        coordinator.to_string(),
    ];
    if !opts.variant.is_empty() {
        a.push("--variant".into());
        a.push(opts.variant.clone());
    }
    // The data-plane driver is a per-rank choice: every rank runs its
    // mesh endpoint synchronous or batched, so the flag rides along.
    a.push("--transport".into());
    a.push(opts.transport.to_string());
    a.push("--iters".into());
    a.push(opts.iters.to_string());
    a.push("--src".into());
    a.push(opts.src.to_string());
    a.push("--k".into());
    a.push(opts.k.to_string());
    // Placement and mirroring are cluster-wide choices, forwarded like
    // --transport. Only rank 0 acts on --partitioner (it computes the
    // owner table), but forwarding everywhere keeps a hand-launched rank
    // command line copy-pasteable; followers take the mirror plan (and
    // its resolved τ) from the shipped plan, not from these flags.
    if let Some(p) = &opts.partitioner {
        a.push("--partitioner".into());
        a.push(p.clone());
    }
    if let Some(m) = &opts.mirror_threshold {
        a.push("--mirror-threshold".into());
        a.push(match m {
            MirrorArg::Auto => "auto".to_string(),
            MirrorArg::Fixed(t) => t.to_string(),
        });
    }
    // Checkpointing is a cluster-wide policy: every rank snapshots at the
    // same cadence into the same directory, and a respawned rank needs
    // the directory to restore from.
    if let (Some(every), Some(dir)) = (&opts.checkpoint_every, &opts.checkpoint_dir) {
        a.push("--checkpoint-every".into());
        a.push(every.to_string());
        a.push("--checkpoint-dir".into());
        a.push(dir.display().to_string());
    }
    // Every rank binds its data listener on the same interface.
    if let Some(ip) = &opts.bind {
        a.push("--bind".into());
        a.push(ip.to_string());
    }
    // Tracing is cluster-wide: every rank must record its span stream for
    // the gather to merge (rank 0 asserts one trace per rank). Only rank 0
    // ever writes the file — followers exit before the export path — so
    // forwarding the path itself is safe and keeps a hand-launched rank
    // command line copy-pasteable.
    if let Some(path) = &opts.trace {
        a.push("--trace".into());
        a.push(path.display().to_string());
    }
    if opts.superstep_table {
        a.push("--superstep-table".into());
    }
    // --spin-budget is NOT forwarded: ranks exchange over the socket
    // mesh, which has no spinning barrier, so the flag would be a
    // silent no-op there.
    //
    // Failover makes result handling mobile: any rank can end up the
    // acting coordinator, so the standby designation and the
    // conclude-side flags (--verify, --stats-json) must reach every
    // rank. Without failover they stay on rank 0 — the merged run only
    // ever exists there.
    let armed = failover_armed(opts);
    if let Some(standby) = &opts.standby {
        a.push("--standby".into());
        a.push(match standby {
            StandbyArg::Auto => "auto".to_string(),
            StandbyArg::Fixed(r) => r.to_string(),
        });
    }
    if rank == 0 {
        if let Some(input) = &opts.input {
            a.push("--input".into());
            a.push(input.display().to_string());
        } else if let Some(gen) = &opts.gen {
            a.push("--gen".into());
            a.push(gen.clone());
        }
        a.push("--scale".into());
        a.push(opts.scale.to_string());
        if opts.directed {
            a.push("--directed".into());
        }
    }
    if rank == 0 || armed {
        if opts.verify {
            a.push("--verify".into());
        }
        // The stats dump describes the merged run, which only the acting
        // coordinator holds; followers' stats frames are inputs to it,
        // not outputs.
        if let Some(path) = &opts.stats_json {
            a.push("--stats-json".into());
            a.push(path.display().to_string());
        }
    }
    a
}

fn run_launcher(opts: &Opts) -> ! {
    let ranks = opts.ranks.expect("launcher mode has --ranks");
    if opts.algorithm == "stats" {
        usage_error("'stats' is single-process; drop --ranks");
    }
    let coordinator = opts
        .coordinator
        .map(Ok)
        .unwrap_or_else(pick_rendezvous_addr);
    let coordinator = coordinator.unwrap_or_else(|e| {
        eprintln!("pcgraph: cannot pick a rendezvous address: {e}");
        exit(EXIT_RUNTIME)
    });
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("pcgraph: cannot locate own binary: {e}");
        exit(EXIT_RUNTIME)
    });
    // Checkpointing arms the launcher's recovery supervision; a fresh
    // job must also never restore another job's epochs, so the directory
    // is wiped up front and cleaned after success.
    let ckpt_store = ckpt_policy(opts).map(|p| {
        let store = pc_ckpt::Store::open(&p.dir).unwrap_or_else(|e| {
            eprintln!("pcgraph: cannot open checkpoint dir: {e}");
            exit(EXIT_RUNTIME)
        });
        store.wipe().unwrap_or_else(|e| {
            eprintln!("pcgraph: cannot clear stale checkpoints: {e}");
            exit(EXIT_RUNTIME)
        });
        store
    });
    let spec = LaunchSpec {
        exe,
        ranks,
        join_timeout: env_ms("PC_DIST_JOIN_TIMEOUT_MS", 600_000),
        max_respawns: if ckpt_store.is_some() {
            respawn_budget()
        } else {
            0
        },
        // Arming failover teaches the launcher that rank 0 is
        // respawnable and that "the job finished" means the *advertised
        // acting* rank exited cleanly, not necessarily rank 0.
        ctrl_dir: failover_armed(opts).then(|| {
            opts.checkpoint_dir
                .clone()
                .expect("failover_armed implies --checkpoint-dir")
        }),
    };
    match launch::launch(&spec, |rank| child_args(opts, rank, ranks, &coordinator)) {
        Ok(()) => {
            if let Some(store) = &ckpt_store {
                let _ = store.wipe(); // the job finished; epochs are garbage
            }
            exit(EXIT_OK)
        }
        Err(e) => {
            eprintln!("pcgraph: {e}");
            // Propagate the failing rank's own code where there is one.
            let code = match e {
                launch::LaunchError::Exit { code: Some(c), .. } if c != 0 => c,
                _ => EXIT_RUNTIME,
            };
            exit(code)
        }
    }
}

// ---------------------------------------------------------------------
// Algorithm dispatch
// ---------------------------------------------------------------------

/// Mirroring threshold for a `--variant mirror` run: the shipped plan's
/// τ (which the Mirror channel would enforce anyway — this just keeps
/// routing decisions in the algorithm consistent with it), or the
/// paper's ghost-mode default when no plan rides on the topology.
fn mirror_tau(topo: &Topology) -> usize {
    topo.mirror_plan()
        .map(|p| (p.threshold as usize).max(1))
        .unwrap_or(16)
}

fn main() {
    let opts = parse_args();
    if opts.ranks.is_some() && opts.rank.is_none() {
        run_launcher(&opts);
    }
    let opts = &opts;
    match opts.algorithm.as_str() {
        "stats" => {
            if opts.rank.is_some() {
                usage_error("'stats' is single-process; drop --rank/--ranks");
            }
            let g = load_unweighted(opts, true);
            let s = stats::graph_stats(&g);
            println!(
                "|V| {}  |E| {}  avg deg {:.2}  max deg {}  sinks {}",
                s.n, s.m, s.avg_degree, s.max_degree, s.sinks
            );
        }
        "pagerank" => {
            let mut p = prepare(opts, need_of("pagerank"));
            let (variant, iters) = (opts.variant.clone(), opts.iters);
            let run = move |d: &Gdata, topo: &Arc<Topology>, cfg: &Config| {
                let g = d.unweighted();
                let o = match variant.as_str() {
                    "basic" => pc_algos::pagerank::channel_basic(g, topo, cfg, iters),
                    "mirror" => {
                        pc_algos::pagerank::channel_mirror(g, topo, cfg, iters, mirror_tau(topo))
                    }
                    _ => pc_algos::pagerank::channel_scatter(g, topo, cfg, iters),
                };
                (o.ranks, o.stats)
            };
            let (values, stats) = execute(&mut p, opts, &run);
            conclude(
                p,
                opts,
                values,
                stats,
                |ranks, stats| {
                    let mut top: Vec<(usize, f64)> = ranks.iter().copied().enumerate().collect();
                    top.sort_by(|a, b| b.1.total_cmp(&a.1));
                    for (v, r) in top.iter().take(10) {
                        println!("{v}\t{r:.8}");
                    }
                    report(stats);
                },
                run,
            );
        }
        "wcc" => {
            let mut p = prepare(opts, need_of("wcc"));
            let variant = opts.variant.clone();
            let run = move |d: &Gdata, topo: &Arc<Topology>, cfg: &Config| {
                let g = d.unweighted();
                let o = match variant.as_str() {
                    "basic" => pc_algos::wcc::channel_basic(g, topo, cfg),
                    "blogel" => pc_algos::wcc::blogel(g, topo, cfg),
                    "mirror" => pc_algos::wcc::channel_mirror(g, topo, cfg, mirror_tau(topo)),
                    _ => pc_algos::wcc::channel_propagation(g, topo, cfg),
                };
                (o.labels, o.stats)
            };
            let (values, stats) = execute(&mut p, opts, &run);
            conclude(
                p,
                opts,
                values,
                stats,
                |labels, stats| {
                    println!(
                        "{} components",
                        pc_graph::reference::component_count(labels)
                    );
                    report(stats);
                },
                run,
            );
        }
        "sv" => {
            let mut p = prepare(opts, need_of("sv"));
            let variant = opts.variant.clone();
            let run = move |d: &Gdata, topo: &Arc<Topology>, cfg: &Config| {
                let g = d.unweighted();
                let o = match variant.as_str() {
                    "basic" => pc_algos::sv::channel_basic(g, topo, cfg),
                    "reqresp" => pc_algos::sv::channel_reqresp(g, topo, cfg),
                    "scatter" => pc_algos::sv::channel_scatter(g, topo, cfg),
                    _ => pc_algos::sv::channel_both(g, topo, cfg),
                };
                (o.labels, o.stats)
            };
            let (values, stats) = execute(&mut p, opts, &run);
            conclude(
                p,
                opts,
                values,
                stats,
                |labels, stats| {
                    println!(
                        "{} components",
                        pc_graph::reference::component_count(labels)
                    );
                    report(stats);
                },
                run,
            );
        }
        "scc" => {
            let mut p = prepare(opts, need_of("scc"));
            let variant = opts.variant.clone();
            let run = move |d: &Gdata, topo: &Arc<Topology>, cfg: &Config| {
                let (g, rev) = (d.unweighted(), d.rev());
                let o = match variant.as_str() {
                    "basic" => pc_algos::scc::channel_basic_with_rev(g, rev, topo, cfg),
                    _ => pc_algos::scc::channel_propagation_with_rev(g, rev, topo, cfg),
                };
                (o.labels, o.stats)
            };
            let (values, stats) = execute(&mut p, opts, &run);
            conclude(
                p,
                opts,
                values,
                stats,
                |labels, stats| {
                    println!("{} SCCs", pc_graph::reference::component_count(labels));
                    report(stats);
                },
                run,
            );
        }
        "sssp" => {
            let mut p = prepare(opts, need_of("sssp"));
            let (variant, src) = (opts.variant.clone(), opts.src);
            let run = move |d: &Gdata, topo: &Arc<Topology>, cfg: &Config| {
                let g = d.weighted();
                let o = match variant.as_str() {
                    "basic" => pc_algos::sssp::channel_basic(g, topo, cfg, src),
                    _ => pc_algos::sssp::channel_propagation(g, topo, cfg, src),
                };
                (o.dist, o.stats)
            };
            let (values, stats) = execute(&mut p, opts, &run);
            let src = opts.src;
            conclude(
                p,
                opts,
                values,
                stats,
                move |dist, stats| {
                    let reached = dist
                        .iter()
                        .filter(|&&d| d != pc_algos::sssp::UNREACHED)
                        .count();
                    println!("{reached} reachable from {src}");
                    report(stats);
                },
                run,
            );
        }
        "bfs" => {
            let mut p = prepare(opts, need_of("bfs"));
            let src = opts.src;
            let run = move |d: &Gdata, topo: &Arc<Topology>, cfg: &Config| {
                let o = pc_algos::kernels::bfs(d.unweighted(), topo, cfg, src);
                (o.level, o.stats)
            };
            let (values, stats) = execute(&mut p, opts, &run);
            conclude(
                p,
                opts,
                values,
                stats,
                |level, stats| {
                    let reached = level
                        .iter()
                        .filter(|&&l| l != pc_algos::kernels::UNREACHED)
                        .count();
                    let depth = level
                        .iter()
                        .filter(|&&l| l != pc_algos::kernels::UNREACHED)
                        .max();
                    println!("{reached} reachable, depth {:?}", depth);
                    report(stats);
                },
                run,
            );
        }
        "kcore" => {
            let mut p = prepare(opts, need_of("kcore"));
            let k = opts.k;
            let n = p.data.n();
            let run = move |d: &Gdata, topo: &Arc<Topology>, cfg: &Config| {
                let o = pc_algos::kernels::kcore(d.unweighted(), topo, cfg, k);
                (o.in_core, o.stats)
            };
            let (values, stats) = execute(&mut p, opts, &run);
            conclude(
                p,
                opts,
                values,
                stats,
                move |in_core, stats| {
                    println!(
                        "{} of {} vertices in the {}-core",
                        in_core.iter().filter(|&&a| a).count(),
                        n,
                        k
                    );
                    report(stats);
                },
                run,
            );
        }
        "msf" => {
            let mut p = prepare(opts, need_of("msf"));
            let run = move |d: &Gdata, topo: &Arc<Topology>, cfg: &Config| {
                let o = pc_algos::msf::channel_basic(d.weighted(), topo, cfg);
                ((o.total_weight, o.edge_count), o.stats)
            };
            let (values, stats) = execute(&mut p, opts, &run);
            conclude(
                p,
                opts,
                values,
                stats,
                |&(weight, edges), stats| {
                    println!("forest weight {weight} over {edges} edges");
                    report(stats);
                },
                run,
            );
        }
        other => usage_error(&format!("unknown algorithm '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(algorithm: &str) -> Opts {
        Opts {
            algorithm: algorithm.to_string(),
            input: Some(PathBuf::from("/tmp/in.txt")),
            gen: None,
            scale: 9,
            workers: 4,
            transport: TransportKind::InProcess,
            variant: "prop".to_string(),
            iters: 12,
            src: 3,
            k: 2,
            directed: true,
            partition: false,
            partitioner: None,
            mirror_threshold: None,
            ranks: Some(4),
            rank: None,
            coordinator: None,
            verify: true,
            spin_budget: Some(64),
            checkpoint_every: None,
            checkpoint_dir: None,
            standby: None,
            bind: None,
            trace: None,
            superstep_table: false,
            stats_json: None,
        }
    }

    /// Followers get no loader flags at all: they cannot even name the
    /// input file, which is the structural half of the "non-zero ranks
    /// read no graph file" guarantee.
    #[test]
    fn followers_receive_no_loader_flags() {
        let o = opts("wcc");
        let addr: SocketAddr = "127.0.0.1:4000".parse().unwrap();
        let rank0 = child_args(&o, 0, 4, &addr);
        assert!(rank0.contains(&"--input".to_string()));
        assert!(rank0.contains(&"--verify".to_string()));
        // The spin budget only affects the in-process barrier; ranks run
        // the socket mesh, so no rank receives it.
        assert!(!rank0.contains(&"--spin-budget".to_string()));
        for rank in 1..4 {
            let args = child_args(&o, rank, 4, &addr);
            for forbidden in ["--input", "--gen", "--scale", "--verify", "/tmp/in.txt"] {
                assert!(
                    !args.contains(&forbidden.to_string()),
                    "rank {rank} got {forbidden}: {args:?}"
                );
            }
            assert!(args.contains(&"--rank".to_string()));
            assert!(args.contains(&"--coordinator".to_string()));
            // Algorithm parameters still ride along.
            assert!(args.contains(&"--variant".to_string()));
            assert!(args.contains(&"--iters".to_string()));
        }
    }

    /// Checkpoint and bind flags are cluster-wide: every rank receives
    /// them (a respawned follower must find the checkpoint directory and
    /// bind the same interface).
    #[test]
    fn checkpoint_and_bind_flags_reach_every_rank() {
        let mut o = opts("pagerank");
        o.checkpoint_every = Some(2);
        o.checkpoint_dir = Some(PathBuf::from("/tmp/ckpts"));
        o.bind = Some("127.0.0.1".parse().unwrap());
        let addr: SocketAddr = "127.0.0.1:4000".parse().unwrap();
        for rank in 0..4 {
            let args = child_args(&o, rank, 4, &addr);
            let at = args.iter().position(|a| a == "--checkpoint-every").unwrap();
            assert_eq!(args[at + 1], "2", "rank {rank}");
            let at = args.iter().position(|a| a == "--checkpoint-dir").unwrap();
            assert_eq!(args[at + 1], "/tmp/ckpts", "rank {rank}");
            let at = args.iter().position(|a| a == "--bind").unwrap();
            assert_eq!(args[at + 1], "127.0.0.1", "rank {rank}");
        }
        // Without the flags, nothing is forwarded.
        let bare = child_args(&opts("pagerank"), 1, 4, &addr);
        assert!(!bare.contains(&"--checkpoint-dir".to_string()));
        assert!(!bare.contains(&"--bind".to_string()));
    }

    /// Placement and mirroring flags ride to every rank, like
    /// --transport — a hand-copied rank command line must behave the
    /// same as a launcher-spawned one.
    #[test]
    fn partitioner_and_mirror_flags_reach_every_rank() {
        let mut o = opts("wcc");
        o.partitioner = Some("ldg-deg".to_string());
        o.mirror_threshold = Some(MirrorArg::Auto);
        let addr: SocketAddr = "127.0.0.1:4000".parse().unwrap();
        for rank in 0..4 {
            let args = child_args(&o, rank, 4, &addr);
            let at = args.iter().position(|a| a == "--partitioner").unwrap();
            assert_eq!(args[at + 1], "ldg-deg", "rank {rank}");
            let at = args.iter().position(|a| a == "--mirror-threshold").unwrap();
            assert_eq!(args[at + 1], "auto", "rank {rank}");
        }
        o.mirror_threshold = Some(MirrorArg::Fixed(48));
        let args = child_args(&o, 1, 4, &addr);
        let at = args.iter().position(|a| a == "--mirror-threshold").unwrap();
        assert_eq!(args[at + 1], "48");
        // Without the flags, nothing is forwarded.
        let bare = child_args(&opts("wcc"), 1, 4, &addr);
        assert!(!bare.contains(&"--partitioner".to_string()));
        assert!(!bare.contains(&"--mirror-threshold".to_string()));
    }

    /// `--trace`/`--superstep-table` arm every rank's recorder (rank 0
    /// cannot merge streams a follower never recorded); `--stats-json`
    /// describes the merged run and stays on rank 0.
    #[test]
    fn trace_flags_reach_every_rank_stats_json_stays_on_rank0() {
        let mut o = opts("wcc");
        o.trace = Some(PathBuf::from("/tmp/trace.json"));
        o.superstep_table = true;
        o.stats_json = Some(PathBuf::from("/tmp/stats.json"));
        let addr: SocketAddr = "127.0.0.1:4000".parse().unwrap();
        for rank in 0..4 {
            let args = child_args(&o, rank, 4, &addr);
            let at = args.iter().position(|a| a == "--trace").unwrap();
            assert_eq!(args[at + 1], "/tmp/trace.json", "rank {rank}");
            assert!(
                args.contains(&"--superstep-table".to_string()),
                "rank {rank}"
            );
            assert_eq!(
                args.contains(&"--stats-json".to_string()),
                rank == 0,
                "rank {rank}"
            );
        }
        // Without the flags, nothing is forwarded.
        for rank in 0..4 {
            let bare = child_args(&opts("wcc"), rank, 4, &addr);
            assert!(!bare.contains(&"--trace".to_string()));
            assert!(!bare.contains(&"--superstep-table".to_string()));
            assert!(!bare.contains(&"--stats-json".to_string()));
        }
    }

    /// With coordinator failover armed (checkpointing + 2 ranks), the
    /// conclude-side flags become mobile: any rank can end up the acting
    /// coordinator, so --verify, --stats-json, and --standby must reach
    /// every rank — while the loader flags still stay on rank 0 (only
    /// the initial coordinator ever reads the input).
    #[test]
    fn armed_failover_forwards_conclude_flags_to_every_rank() {
        let mut o = opts("pagerank");
        o.checkpoint_every = Some(2);
        o.checkpoint_dir = Some(PathBuf::from("/tmp/ckpts"));
        o.stats_json = Some(PathBuf::from("/tmp/stats.json"));
        o.standby = Some(StandbyArg::Fixed(2));
        assert!(failover_armed(&o));
        let addr: SocketAddr = "127.0.0.1:4000".parse().unwrap();
        for rank in 0..4 {
            let args = child_args(&o, rank, 4, &addr);
            assert!(args.contains(&"--verify".to_string()), "rank {rank}");
            let at = args.iter().position(|a| a == "--stats-json").unwrap();
            assert_eq!(args[at + 1], "/tmp/stats.json", "rank {rank}");
            let at = args.iter().position(|a| a == "--standby").unwrap();
            assert_eq!(args[at + 1], "2", "rank {rank}");
            assert_eq!(
                args.contains(&"--input".to_string()),
                rank == 0,
                "rank {rank}"
            );
        }
        o.standby = Some(StandbyArg::Auto);
        let args = child_args(&o, 3, 4, &addr);
        let at = args.iter().position(|a| a == "--standby").unwrap();
        assert_eq!(args[at + 1], "auto");
    }

    #[test]
    fn rank_args_carry_rank_identity() {
        let o = opts("pagerank");
        let addr: SocketAddr = "127.0.0.1:4001".parse().unwrap();
        let args = child_args(&o, 2, 4, &addr);
        let at = args.iter().position(|a| a == "--rank").unwrap();
        assert_eq!(args[at + 1], "2");
        let at = args.iter().position(|a| a == "--ranks").unwrap();
        assert_eq!(args[at + 1], "4");
        let at = args.iter().position(|a| a == "--coordinator").unwrap();
        assert_eq!(args[at + 1], "127.0.0.1:4001");
    }
}
