//! # pregel-channels
//!
//! A Rust reproduction of *"Composing Optimization Techniques for
//! Vertex-Centric Graph Processing via Communication Channels"*
//! (Yongzhe Zhang & Zhenjiang Hu, IPDPS 2019).
//!
//! Pregel's monolithic message-passing interface forces every computation
//! phase of a vertex-centric algorithm through one message type and blocks
//! per-pattern optimization. This crate replaces it with **channels**:
//! typed, per-purpose message containers between the vertices and the raw
//! per-worker buffers. Each channel captures one communication pattern and
//! optimizes it independently, and channels *compose* — a program picks one
//! channel per pattern and gets every optimization at once.
//!
//! The facade re-exports the full workspace:
//!
//! * [`bsp`] — the simulated-cluster substrate (codec, buffers, exchange,
//!   metrics),
//! * [`graph`] — graph structures, generators, partitioners, reference
//!   oracles,
//! * [`channels`] — **the paper's contribution**: the channel engine and
//!   the six channels of Tables I/II,
//! * [`pregel`] — the baselines (Pregel+ basic/reqresp/ghost, Blogel),
//! * [`algos`] — the evaluated algorithms in every paper variant.
//!
//! ## Quickstart
//!
//! ```
//! use pregel_channels::prelude::*;
//! use std::sync::Arc;
//!
//! // A small power-law graph, 4 simulated workers.
//! let g = Arc::new(pc_graph::gen::rmat(
//!     10, 8_192, pc_graph::gen::RmatParams::default(), 7, true));
//! let topo = Arc::new(Topology::hashed(g.n(), 4));
//! let cfg = Config::with_workers(4);
//!
//! // PageRank over a scatter-combine channel (the paper's Fig. 1 program
//! // with the one-line channel swap of §III-B).
//! let out = pc_algos::pagerank::channel_scatter(&g, &topo, &cfg, 10);
//! assert!((out.ranks.iter().sum::<f64>() - 1.0).abs() < 1e-6);
//! println!("supersteps: {}", out.stats.supersteps);
//! ```

pub use pc_algos as algos;
pub use pc_bsp as bsp;
pub use pc_channels as channels;
pub use pc_graph as graph;
pub use pc_pregel as pregel;

/// The items almost every program needs.
pub mod prelude {
    pub use pc_algos;
    pub use pc_bsp::{Config, ExecMode, RunStats, Topology, TransportKind};
    pub use pc_channels;
    pub use pc_graph::{self, Graph, VertexId, WeightedGraph};
    pub use pc_pregel;
}
