//! Rank-failure recovery, end to end with real OS processes and real
//! SIGKILLs.
//!
//! The harness launches `pcgraph --ranks 4` with checkpointing armed,
//! finds a non-zero rank's process via `/proc`, kills it with SIGKILL
//! mid-run, and requires the job to finish with `--verify` passing —
//! i.e. the launcher respawned the rank, the surviving ranks
//! re-rendezvoused, the cluster resumed from the last committed
//! checkpoint (or restarted cold when none was committed yet), and the
//! final values and statistics are byte-identical to the sequential
//! reference. With checkpointing disabled, the same kill must keep
//! producing the pre-existing typed failure exit.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The harness identifies victims by scanning `/proc` for pcgraph rank
/// processes; two concurrent tests launching the same algorithm would
/// kill each other's ranks. One cluster at a time.
static ONE_CLUSTER: Mutex<()> = Mutex::new(());

fn pcgraph() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pcgraph"));
    // Short enough that a recovery epoch stuck waiting on a dead
    // address converges quickly, long enough for a debug-build
    // bootstrap (graph generation included) to fit comfortably.
    cmd.env("PC_DIST_CONNECT_TIMEOUT_MS", "8000");
    cmd.env("PC_DIST_JOIN_TIMEOUT_MS", "180000");
    cmd.stdout(Stdio::piped());
    cmd.stderr(Stdio::piped());
    cmd
}

fn temp_ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pc_dist_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A pseudo-random non-zero victim rank, different across runs but
/// deterministic within one (no RNG dependency needed for a harness).
fn pick_victim(ranks: usize) -> usize {
    1 + (std::process::id() as usize + ranks) % (ranks - 1)
}

/// Find the PID of the rank process `--rank <rank>` of `algo` by walking
/// `/proc/*/cmdline` (NUL-separated argv). Rank processes are the only
/// pcgraph invocations carrying `--coordinator`.
fn find_rank_pid(algo: &str, rank: usize) -> Option<u32> {
    let want_rank = rank.to_string();
    for entry in std::fs::read_dir("/proc").ok()?.flatten() {
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        let Ok(cmdline) = std::fs::read(entry.path().join("cmdline")) else {
            continue;
        };
        let args: Vec<&str> = cmdline
            .split(|&b| b == 0)
            .filter_map(|s| std::str::from_utf8(s).ok())
            .collect();
        let is_rank = args.first().is_some_and(|a| a.ends_with("pcgraph"))
            && args.get(1).is_some_and(|a| *a == algo)
            && args.contains(&"--coordinator")
            && args
                .windows(2)
                .any(|w| w[0] == "--rank" && w[1] == want_rank);
        if is_rank {
            return Some(pid);
        }
    }
    None
}

fn sigkill(pid: u32) {
    let status = Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("spawn kill");
    assert!(status.success(), "kill -9 {pid} failed");
}

/// Wait until `pred` holds, the deadline passes, or the launcher exits.
fn wait_until(child: &mut Child, timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        if child.try_wait().expect("try_wait").is_some() {
            return false; // the run finished before the condition held
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

struct Finished {
    success: bool,
    stderr: String,
}

fn finish(child: Child) -> Finished {
    let out = child.wait_with_output().expect("wait for launcher");
    Finished {
        success: out.status.success(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

/// Launch `algo` over 4 ranks with the given checkpoint cadence, SIGKILL
/// rank `victim` once `ready` holds, and return the launcher's outcome —
/// `None` when the run finished before the victim could be killed (the
/// caller retries).
fn kill_rank_mid_run(
    algo: &str,
    extra: &[&str],
    ckpt: Option<(&str, &PathBuf)>,
    victim: usize,
    ready: impl Fn() -> bool,
) -> Option<Finished> {
    let _cluster = ONE_CLUSTER.lock().unwrap_or_else(|p| p.into_inner());
    let mut cmd = pcgraph();
    cmd.args([
        algo,
        "--gen",
        "wikipedia",
        "--scale",
        "10",
        "--ranks",
        "4",
        "--verify",
    ]);
    cmd.args(extra);
    if let Some((every, dir)) = ckpt {
        cmd.args(["--checkpoint-every", every, "--checkpoint-dir"]);
        cmd.arg(dir);
    }
    let mut child = cmd.spawn().expect("spawn launcher");
    let killed = wait_until(&mut child, Duration::from_secs(60), || {
        if !ready() {
            return false;
        }
        match find_rank_pid(algo, victim) {
            Some(pid) => {
                sigkill(pid);
                true
            }
            None => false,
        }
    });
    let done = finish(child);
    killed.then_some(done)
}

/// [`kill_rank_mid_run`] with a pseudo-random non-zero victim.
fn kill_one_rank_mid_run(
    algo: &str,
    extra: &[&str],
    ckpt: Option<(&str, &PathBuf)>,
    ready: impl Fn() -> bool,
) -> Option<Finished> {
    kill_rank_mid_run(algo, extra, ckpt, pick_victim(4), ready)
}

/// [`kill_one_rank_mid_run`], retried when the kill demonstrably landed
/// too late to matter: the signal can hit a rank that had already
/// finished (a zombie — the exit status was recorded first), in which
/// case the job completes with no recovery exercised. A handful of
/// retries makes the scenario land without making the workload huge.
fn kill_one_rank_with_effect(
    algo: &str,
    extra: &[&str],
    ckpt: Option<(&str, &PathBuf)>,
    ready: impl Fn() -> bool,
) -> Finished {
    for _ in 0..6 {
        let Some(done) = kill_one_rank_mid_run(algo, extra, ckpt, &ready) else {
            continue; // the run finished before the kill; try again
        };
        if done.success && !done.stderr.contains("respawning") {
            continue; // the kill hit a finished rank; try again
        }
        return done;
    }
    panic!("{algo}: six kills in a row landed after the run finished — grow the workload");
}

/// A committed checkpoint exists in `dir`.
fn has_manifest(dir: &PathBuf) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    entries
        .flatten()
        .any(|e| e.path().join("MANIFEST").is_file())
}

/// The acceptance scenario: a 4-rank PageRank with `--checkpoint-every 2`
/// survives a SIGKILL after at least one committed checkpoint; the
/// launcher respawns the rank, the job resumes from the checkpoint, and
/// `--verify` proves the final values identical to the sequential run.
#[test]
fn pagerank_survives_sigkill_after_checkpoint() {
    let dir = temp_ckpt_dir("pagerank");
    let done =
        kill_one_rank_with_effect("pagerank", &["--iters", "120"], Some(("2", &dir)), || {
            has_manifest(&dir)
        });
    assert!(
        done.success,
        "launcher failed\n--- stderr ---\n{}",
        done.stderr
    );
    assert!(
        done.stderr.contains("respawning"),
        "no respawn happened\n{}",
        done.stderr
    );
    assert!(
        done.stderr.contains("recovering"),
        "no recovery rendezvous ran\n{}",
        done.stderr
    );
    assert!(
        done.stderr
            .contains("verify: distributed run matches the sequential reference"),
        "verification line missing\n{}",
        done.stderr
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// WCC (message-passing variant, so the run spans many supersteps and
/// real checkpoints commit) survives the same kill.
#[test]
fn wcc_survives_sigkill_after_checkpoint() {
    let dir = temp_ckpt_dir("wcc");
    let done = kill_one_rank_with_effect("wcc", &["--variant", "basic"], Some(("2", &dir)), || {
        has_manifest(&dir)
    });
    assert!(
        done.success,
        "launcher failed\n--- stderr ---\n{}",
        done.stderr
    );
    assert!(done.stderr.contains("respawning"), "{}", done.stderr);
    assert!(
        done.stderr
            .contains("verify: distributed run matches the sequential reference"),
        "{}",
        done.stderr
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A kill that lands before the first checkpoint commits exercises the
/// cold-restart path: recovery restarts the superstep loop from scratch
/// (same rendezvous machinery, no segment to restore) and still
/// verifies.
#[test]
fn kill_before_first_checkpoint_restarts_cold() {
    let dir = temp_ckpt_dir("cold");
    // A cadence the run never reaches: recovery must work with an empty
    // checkpoint directory.
    let done = kill_one_rank_with_effect(
        "pagerank",
        &["--iters", "120"],
        Some(("100000", &dir)),
        || true, // kill as soon as the victim process exists
    );
    assert!(
        done.success,
        "launcher failed\n--- stderr ---\n{}",
        done.stderr
    );
    assert!(done.stderr.contains("respawning"), "{}", done.stderr);
    assert!(
        done.stderr
            .contains("verify: distributed run matches the sequential reference"),
        "{}",
        done.stderr
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// [`kill_rank_mid_run`] on rank 0, retried when the kill demonstrably
/// landed too late to matter — same policy as
/// [`kill_one_rank_with_effect`].
fn kill_rank0_with_effect(
    algo: &str,
    extra: &[&str],
    ckpt: Option<(&str, &PathBuf)>,
    ready: impl Fn() -> bool,
) -> Finished {
    for _ in 0..6 {
        let Some(done) = kill_rank_mid_run(algo, extra, ckpt, 0, &ready) else {
            continue; // the run finished before the kill; try again
        };
        if done.success && !done.stderr.contains("respawning") {
            continue; // the kill hit a finished rank; try again
        }
        return done;
    }
    panic!("{algo}: six rank-0 kills in a row landed after the run finished — grow the workload");
}

/// The current coordinator advertisement in `dir`, if any.
fn advertised(dir: &PathBuf) -> Option<pc_ckpt::Advertisement> {
    pc_ckpt::Store::open(dir)
        .ok()
        .and_then(|s| s.read_advertisement().ok())
        .flatten()
}

/// Highest committed checkpoint step in `dir` (0 when none).
fn max_step(dir: &PathBuf) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let n = name.strip_prefix("step-")?.parse::<u64>().ok()?;
            e.path().join("MANIFEST").is_file().then_some(n)
        })
        .max()
        .unwrap_or(0)
}

/// The coordinator-failover acceptance scenario: SIGKILL rank 0 after a
/// committed checkpoint. The standby elects itself coordinator, the
/// respawned rank 0 rejoins as a plain follower, the job resumes from
/// the checkpoint, and the takeover coordinator's `--verify` proves the
/// final values identical to the sequential reference — reconstructing
/// the full graph from the replicated plans, since it never saw the
/// input. `--stats-json` (written by the acting rank) must account the
/// recovery epochs.
#[test]
fn rank_zero_sigkill_elects_standby_and_verifies() {
    let dir = temp_ckpt_dir("rank0");
    let stats =
        std::env::temp_dir().join(format!("pc_dist_rank0_stats_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&stats);
    let stats_arg = stats.display().to_string();
    let done = kill_rank0_with_effect(
        "pagerank",
        &["--iters", "120", "--stats-json", &stats_arg],
        Some(("2", &dir)),
        || has_manifest(&dir),
    );
    assert!(
        done.success,
        "launcher failed\n--- stderr ---\n{}",
        done.stderr
    );
    assert!(
        done.stderr.contains("standby taking over"),
        "no election ran\n{}",
        done.stderr
    );
    assert!(
        done.stderr
            .contains("verify: distributed run matches the sequential reference"),
        "verification line missing\n{}",
        done.stderr
    );
    let json = std::fs::read_to_string(&stats).expect("stats json written by the acting rank");
    let recoveries = json
        .lines()
        .find(|l| l.contains("\"recoveries\":"))
        .expect("recoveries field")
        .to_string();
    assert!(
        !recoveries.contains(" 0,"),
        "no recovery epoch recorded: {recoveries}"
    );
    let _ = std::fs::remove_file(&stats);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Rank 0 dying *while a recovery rendezvous is already running* (here:
/// right after a follower was killed) is survivable too — the survivors'
/// rejoin or CTRL exchange fails, which escalates to the same election
/// path instead of a typed exit.
#[test]
fn rank_zero_kill_during_recovery_is_survivable() {
    let dir = temp_ckpt_dir("rank0_mid_recovery");
    for _ in 0..6 {
        let _cluster = ONE_CLUSTER.lock().unwrap_or_else(|p| p.into_inner());
        let _ = std::fs::remove_dir_all(&dir);
        let mut cmd = pcgraph();
        cmd.args([
            "pagerank",
            "--gen",
            "wikipedia",
            "--scale",
            "10",
            "--ranks",
            "4",
            "--verify",
            "--iters",
            "200",
            "--checkpoint-every",
            "2",
            "--checkpoint-dir",
        ]);
        cmd.arg(&dir);
        let mut child = cmd.spawn().expect("spawn launcher");
        // First kill: a follower, to start a recovery epoch.
        let follower_killed = wait_until(&mut child, Duration::from_secs(60), || {
            if !has_manifest(&dir) {
                return false;
            }
            match find_rank_pid("pagerank", 2) {
                Some(pid) => {
                    sigkill(pid);
                    true
                }
                None => false,
            }
        });
        // Second kill: rank 0, immediately — with luck mid-rendezvous,
        // but wherever it lands the job must survive.
        let rank0_killed =
            follower_killed
                && wait_until(&mut child, Duration::from_secs(30), || match find_rank_pid(
                    "pagerank", 0,
                ) {
                    Some(pid) => {
                        sigkill(pid);
                        true
                    }
                    None => false,
                });
        let done = finish(child);
        if !(follower_killed && rank0_killed) {
            continue; // the run finished before both kills landed
        }
        if done.success && !done.stderr.contains("respawning") {
            continue; // both kills hit finished ranks
        }
        assert!(
            done.success,
            "launcher failed\n--- stderr ---\n{}",
            done.stderr
        );
        assert!(
            done.stderr
                .contains("verify: distributed run matches the sequential reference"),
            "{}",
            done.stderr
        );
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }
    panic!("six double-kills in a row landed after the run finished — grow the workload");
}

/// After a first takeover, the new acting coordinator is itself covered:
/// the refreshed CTRL state designates a new standby (the respawned rank
/// 0, now the lowest-ranked follower), so killing the takeover
/// coordinator triggers a second election and the job still verifies.
#[test]
fn acting_coordinator_death_after_election_is_survivable() {
    let dir = temp_ckpt_dir("rank0_reelect");
    for _ in 0..6 {
        let _cluster = ONE_CLUSTER.lock().unwrap_or_else(|p| p.into_inner());
        let _ = std::fs::remove_dir_all(&dir);
        let mut cmd = pcgraph();
        cmd.args([
            "pagerank",
            "--gen",
            "wikipedia",
            "--scale",
            "10",
            "--ranks",
            "4",
            "--verify",
            "--iters",
            "300",
            "--checkpoint-every",
            "2",
            "--checkpoint-dir",
        ]);
        cmd.arg(&dir);
        let mut child = cmd.spawn().expect("spawn launcher");
        let killed0 = wait_until(&mut child, Duration::from_secs(60), || {
            if !has_manifest(&dir) {
                return false;
            }
            match find_rank_pid("pagerank", 0) {
                Some(pid) => {
                    sigkill(pid);
                    true
                }
                None => false,
            }
        });
        // Wait for the takeover advertisement, then for a fresh checkpoint
        // to commit under the new coordinator. A new manifest proves the
        // election fully completed — every rank rejoined, received the
        // refreshed control replica (which names a new standby), and resumed
        // the superstep loop. Killing the acting rank before that point is
        // the documented-unsurvivable double failure, not the scenario under
        // test.
        let mut step_at_takeover = None;
        let killed_acting = killed0
            && wait_until(&mut child, Duration::from_secs(90), || {
                let Some(ad) = advertised(&dir) else {
                    return false;
                };
                if ad.acting == 0 {
                    return false;
                }
                let base = *step_at_takeover.get_or_insert_with(|| max_step(&dir));
                if max_step(&dir) <= base {
                    return false;
                }
                match find_rank_pid("pagerank", ad.acting as usize) {
                    Some(pid) => {
                        sigkill(pid);
                        true
                    }
                    None => false,
                }
            });
        let done = finish(child);
        if !(killed0 && killed_acting) {
            continue; // the run finished before both kills landed
        }
        assert!(
            done.success,
            "launcher failed\n--- stderr ---\n{}",
            done.stderr
        );
        if done.stderr.matches("taking over").count() < 2 {
            continue; // the second kill hit an exiting coordinator
        }
        assert!(
            done.stderr
                .contains("verify: distributed run matches the sequential reference"),
            "{}",
            done.stderr
        );
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }
    panic!("six double-kills in a row landed after the run finished — grow the workload");
}

/// Without checkpointing there is no control replica to elect from, so
/// rank 0's death keeps its pre-existing typed fatal outcome, with no
/// respawn attempted.
#[test]
fn rank_zero_sigkill_without_checkpointing_stays_fatal() {
    let mut done = None;
    for _ in 0..6 {
        done = kill_rank_mid_run("pagerank", &["--iters", "120"], None, 0, || true);
        if done.as_ref().is_some_and(|d| !d.success) {
            break;
        }
    }
    let done = done.expect("every kill landed after the run finished");
    assert!(
        !done.success,
        "rank 0 death without checkpointing must fail the job\n{}",
        done.stderr
    );
    assert!(
        !done.stderr.contains("respawning"),
        "rank 0 was respawned without failover armed\n{}",
        done.stderr
    );
    assert!(
        done.stderr.contains("rank 0"),
        "the failure should name rank 0\n{}",
        done.stderr
    );
}

/// Without checkpointing the same kill keeps its pre-existing typed
/// failure: the launcher must NOT respawn, and the job fails.
#[test]
fn sigkill_without_checkpointing_stays_fatal() {
    // Retried like the recovery arms: a kill that hits an
    // already-finished rank (or lands after the run) proves nothing
    // either way.
    let mut done = None;
    for _ in 0..6 {
        done = kill_one_rank_mid_run("pagerank", &["--iters", "120"], None, || true);
        if done.as_ref().is_some_and(|d| !d.success) {
            break;
        }
    }
    let done = done.expect("every kill landed after the run finished");
    assert!(
        !done.success,
        "a kill without checkpointing must fail the job\n{}",
        done.stderr
    );
    assert!(
        !done.stderr.contains("respawning"),
        "respawn ran without checkpointing\n{}",
        done.stderr
    );
}
