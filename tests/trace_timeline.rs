//! Tracing across a simulated multi-process cluster: a traced 4-rank run
//! over the batched loopback mesh must (a) be observationally identical
//! to the untraced run — tracing is a pure observer — and (b) gather one
//! span stream per rank to rank 0 whose merged per-superstep timeline
//! reconciles, row by row, with the run-total counters.

mod common;

use pc_bsp::{trace, Config, RunStats, Topology};
use pc_graph::gen::{self, RmatParams};
use std::sync::Arc;

/// [`common::run_multirank_batched`] with every rank's recorder armed —
/// the shape a `pcgraph --ranks 4 --transport tcp-batched --trace` run
/// takes, minus the process boundaries.
fn run_multirank_traced_batched<V: Send, F>(workers: usize, run: &F) -> (V, RunStats)
where
    F: Fn(&Config) -> (V, RunStats) + Sync,
{
    common::run_multirank_batched(workers, &|cfg: &Config| {
        run(&Config {
            trace: true,
            ..cfg.clone()
        })
    })
}

#[test]
fn traced_multirank_run_reconciles_and_stays_transparent() {
    let workers = 4;
    let g = Arc::new(gen::rmat(9, 4 << 9, RmatParams::default(), 43, false));
    let topo = Arc::new(Topology::hashed(g.n(), workers));
    let run = |cfg: &Config| {
        let o = pc_algos::wcc::channel_propagation(&g, &topo, cfg);
        (o.labels, o.stats)
    };

    let (plain_labels, plain) = common::run_multirank_batched(workers, &run);
    let (labels, stats) = run_multirank_traced_batched(workers, &run);

    // Transparency: the traced run is the same run.
    assert_eq!(labels, plain_labels, "tracing changed the computed values");
    common::assert_stats_agree("traced vs untraced multirank", &stats, &plain);
    assert!(plain.timeline.is_empty(), "untraced run grew a timeline");
    assert!(plain.traces.is_empty(), "untraced run grew trace streams");

    // Rank 0 gathered one stream per rank, in rank order, on a common
    // epoch (the earliest rank's clock is the origin).
    assert_eq!(stats.traces.len(), workers);
    for (r, tr) in stats.traces.iter().enumerate() {
        assert_eq!(tr.rank as usize, r, "streams out of rank order");
        assert_eq!(tr.dropped, 0, "rank {r} overflowed its event buffer");
        assert_eq!(
            tr.timeline.len() as u64,
            stats.supersteps,
            "rank {r} timeline is incomplete"
        );
        assert!(!tr.events.is_empty(), "rank {r} recorded no spans");
    }
    assert_eq!(
        stats.traces.iter().map(|t| t.epoch_us).min(),
        Some(0),
        "epochs were not aligned to the earliest rank"
    );

    // The merged timeline reconciles with the run totals: messages and
    // remote bytes exactly; stall at most the run total (the final flush
    // and the result gather stall outside the last superstep row).
    assert_eq!(stats.timeline.len() as u64, stats.supersteps);
    assert_eq!(
        stats.timeline.iter().map(|r| r.messages).sum::<u64>(),
        stats.messages(),
        "timeline rows do not sum to the message total"
    );
    assert_eq!(
        stats.timeline.iter().map(|r| r.remote_bytes).sum::<u64>(),
        stats.remote_bytes(),
        "timeline rows do not sum to the remote-byte total"
    );
    assert!(
        stats.timeline.iter().map(|r| r.stall_us).sum::<u64>() <= stats.transport.stall_us(),
        "timeline stall exceeds the transport's own accounting"
    );
    assert_eq!(
        stats.timeline.iter().map(|r| r.rounds).sum::<u64>(),
        stats.rounds,
        "timeline rows do not sum to the round total"
    );
    // Superstep 1 starts with every vertex active under propagation WCC.
    assert_eq!(stats.timeline[0].active, g.n() as u64);

    // The export is loadable: one named track per rank, every complete
    // event on one of them.
    let json = trace::chrome_trace_json(&stats.traces);
    assert_eq!(
        json.matches("\"thread_name\"").count(),
        workers,
        "expected one thread-name metadata event per rank"
    );
    for r in 0..workers {
        assert!(
            json.contains(&format!("\"tid\":{r},")),
            "rank {r} has no track in the export"
        );
    }
}
