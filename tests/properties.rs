//! Property-based tests (proptest): invariants of the channel system and
//! the algorithms over randomly generated graphs, partitions and values.

use pc_bsp::codec::{Codec, Reader};
use pc_bsp::{Config, Topology};
use pc_graph::{reference, Graph};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a random undirected graph with up to `n` vertices.
fn undirected_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m)
            .prop_map(move |edges| Graph::from_edges(n, &edges, false))
    })
}

/// Strategy: a random directed graph.
fn directed_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m)
            .prop_map(move |edges| Graph::from_edges(n, &edges, true))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every S-V composition equals union-find on arbitrary graphs.
    #[test]
    fn sv_matches_union_find(g in undirected_graph(120, 300), workers in 1usize..5) {
        let g = Arc::new(g);
        let oracle = reference::connected_components(&g);
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        let cfg = Config::sequential(workers);
        prop_assert_eq!(&pc_algos::sv::channel_basic(&g, &topo, &cfg).labels, &oracle);
        prop_assert_eq!(&pc_algos::sv::channel_both(&g, &topo, &cfg).labels, &oracle);
    }

    /// WCC propagation equals WCC message-passing equals union-find.
    #[test]
    fn wcc_variants_agree(g in undirected_graph(150, 350), workers in 1usize..5) {
        let g = Arc::new(g);
        let oracle = reference::connected_components(&g);
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        let cfg = Config::sequential(workers);
        prop_assert_eq!(&pc_algos::wcc::channel_basic(&g, &topo, &cfg).labels, &oracle);
        prop_assert_eq!(&pc_algos::wcc::channel_propagation(&g, &topo, &cfg).labels, &oracle);
    }

    /// SCC Min-Label equals Tarjan on arbitrary digraphs.
    #[test]
    fn scc_matches_tarjan(g in directed_graph(60, 150), workers in 1usize..4) {
        let g = Arc::new(g);
        let oracle = reference::strongly_connected_components(&g);
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        let cfg = Config::sequential(workers);
        prop_assert_eq!(&pc_algos::scc::channel_basic(&g, &topo, &cfg).labels, &oracle);
        prop_assert_eq!(&pc_algos::scc::channel_propagation(&g, &topo, &cfg).labels, &oracle);
    }

    /// PageRank conserves probability mass on arbitrary digraphs.
    #[test]
    fn pagerank_mass_conservation(g in directed_graph(100, 250), workers in 1usize..5) {
        let g = Arc::new(g);
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        let cfg = Config::sequential(workers);
        let out = pc_algos::pagerank::channel_scatter(&g, &topo, &cfg, 8);
        let total: f64 = out.ranks.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "mass = {}", total);
    }

    /// Pointer jumping resolves arbitrary forests.
    #[test]
    fn pointer_jumping_resolves(
        parents in (2usize..200).prop_flat_map(|n| {
            proptest::collection::vec(0u32..n as u32, n).prop_map(move |mut p| {
                // Make it a valid forest: parent index < own index, or self.
                for (i, slot) in p.iter_mut().enumerate() {
                    if *slot as usize >= i {
                        *slot = i as u32;
                    }
                }
                p
            })
        }),
        workers in 1usize..5,
    ) {
        let parents = Arc::new(parents);
        let oracle = reference::forest_roots(&parents);
        let topo = Arc::new(Topology::hashed(parents.len(), workers));
        let cfg = Config::sequential(workers);
        prop_assert_eq!(&pc_algos::pointer_jumping::channel_basic(&parents, &topo, &cfg).roots, &oracle);
        prop_assert_eq!(&pc_algos::pointer_jumping::channel_reqresp(&parents, &topo, &cfg).roots, &oracle);
    }

    /// The codec round-trips arbitrary values and value sequences.
    #[test]
    fn codec_roundtrip(values in proptest::collection::vec((any::<u32>(), any::<u64>(), any::<bool>()), 0..50)) {
        let mut buf = Vec::new();
        values.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let back: Vec<(u32, u64, bool)> = r.get();
        prop_assert!(r.is_empty());
        prop_assert_eq!(back, values);
    }

    /// Floats survive the wire.
    #[test]
    fn codec_floats(values in proptest::collection::vec(any::<f64>(), 0..40)) {
        let mut buf = Vec::new();
        values.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let back: Vec<f64> = r.get();
        for (a, b) in back.iter().zip(&values) {
            prop_assert!(a == b || (a.is_nan() && b.is_nan()));
        }
    }

    /// Topologies index consistently for arbitrary owner vectors.
    #[test]
    fn topology_indexing(owners in proptest::collection::vec(0u16..6, 1..300)) {
        let topo = Topology::from_owners(6, owners.clone());
        for (v, &w) in owners.iter().enumerate() {
            prop_assert_eq!(topo.worker_of(v as u32), w as usize);
            let local = topo.local_of(v as u32);
            prop_assert_eq!(topo.locals(w as usize)[local as usize], v as u32);
        }
        let total: usize = (0..6).map(|w| topo.local_count(w)).sum();
        prop_assert_eq!(total, owners.len());
    }

    /// Sequential and threaded execution agree bit-for-bit on results and
    /// byte counts.
    #[test]
    fn exec_modes_agree(g in undirected_graph(100, 220), workers in 2usize..5) {
        let g = Arc::new(g);
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        let a = pc_algos::sv::channel_both(&g, &topo, &Config::sequential(workers));
        let b = pc_algos::sv::channel_both(&g, &topo, &Config::with_workers(workers));
        prop_assert_eq!(a.labels, b.labels);
        prop_assert_eq!(a.stats.remote_bytes(), b.stats.remote_bytes());
        prop_assert_eq!(a.stats.supersteps, b.stats.supersteps);
        prop_assert_eq!(a.stats.rounds, b.stats.rounds);
    }
}
