//! Property-based tests (proptest): invariants of the channel system and
//! the algorithms over randomly generated graphs, partitions and values.
//!
//! The cross-*transport* arm of these invariants (sequential vs
//! in-process vs tcp) lives in `tests/transport_conformance.rs`; both
//! share the everything-observable contract of
//! [`common::assert_stats_agree`].

mod common;

use common::assert_stats_agree;
use pc_bsp::codec::{Codec, Reader};
use pc_bsp::{Config, Topology};
use pc_graph::{reference, Graph};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a random undirected graph with up to `n` vertices.
fn undirected_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m)
            .prop_map(move |edges| Graph::from_edges(n, &edges, false))
    })
}

/// Strategy: a random directed graph.
fn directed_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m)
            .prop_map(move |edges| Graph::from_edges(n, &edges, true))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every S-V composition equals union-find on arbitrary graphs.
    #[test]
    fn sv_matches_union_find(g in undirected_graph(120, 300), workers in 1usize..5) {
        let g = Arc::new(g);
        let oracle = reference::connected_components(&g);
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        let cfg = Config::sequential(workers);
        prop_assert_eq!(&pc_algos::sv::channel_basic(&g, &topo, &cfg).labels, &oracle);
        prop_assert_eq!(&pc_algos::sv::channel_both(&g, &topo, &cfg).labels, &oracle);
    }

    /// WCC propagation equals WCC message-passing equals union-find.
    #[test]
    fn wcc_variants_agree(g in undirected_graph(150, 350), workers in 1usize..5) {
        let g = Arc::new(g);
        let oracle = reference::connected_components(&g);
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        let cfg = Config::sequential(workers);
        prop_assert_eq!(&pc_algos::wcc::channel_basic(&g, &topo, &cfg).labels, &oracle);
        prop_assert_eq!(&pc_algos::wcc::channel_propagation(&g, &topo, &cfg).labels, &oracle);
    }

    /// Degree-sorted LDG respects the same hard capacity bound as plain
    /// LDG on arbitrary graphs — streaming hubs first must never cost
    /// balance — and the mirrored WCC composition over its placement
    /// still equals union-find.
    #[test]
    fn ldg_deg_stays_within_capacity_slack(
        g in undirected_graph(150, 400),
        parts in 2usize..5,
        tau in 1usize..32,
    ) {
        let owners = pc_graph::partition::ldg_deg(&g, parts, 2);
        let sizes = pc_graph::partition::part_sizes(&owners, parts);
        // The LDG capacity rule: no vertex lands on a part already at
        // capacity while an under-capacity part exists, so every part
        // stays ≤ ⌈n/parts · 1.1⌉ + slack.
        let capacity = g.n() as f64 / parts as f64 * 1.1 + 2.0;
        for (p, &s) in sizes.iter().enumerate() {
            prop_assert!(
                (s as f64) <= capacity,
                "part {} holds {} of {} vertices (capacity {:.1})",
                p, s, g.n(), capacity
            );
        }
        let g = Arc::new(g);
        let oracle = reference::connected_components(&g);
        let base = Topology::from_owners(parts, owners);
        let plan = pc_graph::partition::build_mirror_plan(&g, &base, tau);
        let topo = Arc::new(base.with_mirror(Arc::new(plan)));
        let cfg = Config::sequential(parts);
        prop_assert_eq!(
            &pc_algos::wcc::channel_mirror(&g, &topo, &cfg, tau).labels,
            &oracle
        );
    }

    /// SCC Min-Label equals Tarjan on arbitrary digraphs.
    #[test]
    fn scc_matches_tarjan(g in directed_graph(60, 150), workers in 1usize..4) {
        let g = Arc::new(g);
        let oracle = reference::strongly_connected_components(&g);
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        let cfg = Config::sequential(workers);
        prop_assert_eq!(&pc_algos::scc::channel_basic(&g, &topo, &cfg).labels, &oracle);
        prop_assert_eq!(&pc_algos::scc::channel_propagation(&g, &topo, &cfg).labels, &oracle);
    }

    /// PageRank conserves probability mass on arbitrary digraphs.
    #[test]
    fn pagerank_mass_conservation(g in directed_graph(100, 250), workers in 1usize..5) {
        let g = Arc::new(g);
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        let cfg = Config::sequential(workers);
        let out = pc_algos::pagerank::channel_scatter(&g, &topo, &cfg, 8);
        let total: f64 = out.ranks.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "mass = {}", total);
    }

    /// Pointer jumping resolves arbitrary forests.
    #[test]
    fn pointer_jumping_resolves(
        parents in (2usize..200).prop_flat_map(|n| {
            proptest::collection::vec(0u32..n as u32, n).prop_map(move |mut p| {
                // Make it a valid forest: parent index < own index, or self.
                for (i, slot) in p.iter_mut().enumerate() {
                    if *slot as usize >= i {
                        *slot = i as u32;
                    }
                }
                p
            })
        }),
        workers in 1usize..5,
    ) {
        let parents = Arc::new(parents);
        let oracle = reference::forest_roots(&parents);
        let topo = Arc::new(Topology::hashed(parents.len(), workers));
        let cfg = Config::sequential(workers);
        prop_assert_eq!(&pc_algos::pointer_jumping::channel_basic(&parents, &topo, &cfg).roots, &oracle);
        prop_assert_eq!(&pc_algos::pointer_jumping::channel_reqresp(&parents, &topo, &cfg).roots, &oracle);
    }

    /// The codec round-trips arbitrary values and value sequences.
    #[test]
    fn codec_roundtrip(values in proptest::collection::vec((any::<u32>(), any::<u64>(), any::<bool>()), 0..50)) {
        let mut buf = Vec::new();
        values.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let back: Vec<(u32, u64, bool)> = r.get();
        prop_assert!(r.is_empty());
        prop_assert_eq!(back, values);
    }

    /// Floats survive the wire.
    #[test]
    fn codec_floats(values in proptest::collection::vec(any::<f64>(), 0..40)) {
        let mut buf = Vec::new();
        values.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let back: Vec<f64> = r.get();
        for (a, b) in back.iter().zip(&values) {
            prop_assert!(a == b || (a.is_nan() && b.is_nan()));
        }
    }

    /// Topologies index consistently for arbitrary owner vectors.
    #[test]
    fn topology_indexing(owners in proptest::collection::vec(0u16..6, 1..300)) {
        let topo = Topology::from_owners(6, owners.clone());
        for (v, &w) in owners.iter().enumerate() {
            prop_assert_eq!(topo.worker_of(v as u32), w as usize);
            let local = topo.local_of(v as u32);
            prop_assert_eq!(topo.locals(w as usize)[local as usize], v as u32);
        }
        let total: usize = (0..6).map(|w| topo.local_count(w)).sum();
        prop_assert_eq!(total, owners.len());
    }

    /// Sequential and threaded execution agree bit-for-bit on results and
    /// byte counts.
    #[test]
    fn exec_modes_agree(g in undirected_graph(100, 220), workers in 2usize..5) {
        let g = Arc::new(g);
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        let a = pc_algos::sv::channel_both(&g, &topo, &Config::sequential(workers));
        let b = pc_algos::sv::channel_both(&g, &topo, &Config::with_workers(workers));
        prop_assert_eq!(a.labels, b.labels);
        prop_assert_eq!(a.stats.remote_bytes(), b.stats.remote_bytes());
        prop_assert_eq!(a.stats.supersteps, b.stats.supersteps);
        prop_assert_eq!(a.stats.rounds, b.stats.rounds);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every shipped algorithm produces identical results, bytes, rounds
    /// and pool traffic in Sequential and Threads mode on random graphs —
    /// the correctness anchor for the pooled/fused/worklist engine.
    #[test]
    fn all_algorithms_agree_across_exec_modes(
        g in undirected_graph(90, 240),
        dg in directed_graph(70, 180),
        workers in 2usize..5,
    ) {
        let g = Arc::new(g);
        let dg = Arc::new(dg);
        let seq = Config::sequential(workers);
        let thr = Config::with_workers(workers);

        let topo = Arc::new(Topology::hashed(g.n(), workers));
        let dtopo = Arc::new(Topology::hashed(dg.n(), workers));

        let (a, b) = (pc_algos::wcc::channel_basic(&g, &topo, &seq),
                      pc_algos::wcc::channel_basic(&g, &topo, &thr));
        prop_assert_eq!(&a.labels, &b.labels);
        assert_stats_agree("wcc_basic", &a.stats, &b.stats);

        let (a, b) = (pc_algos::wcc::channel_propagation(&g, &topo, &seq),
                      pc_algos::wcc::channel_propagation(&g, &topo, &thr));
        prop_assert_eq!(&a.labels, &b.labels);
        assert_stats_agree("wcc_propagation", &a.stats, &b.stats);

        let (a, b) = (pc_algos::sv::channel_both(&g, &topo, &seq),
                      pc_algos::sv::channel_both(&g, &topo, &thr));
        prop_assert_eq!(&a.labels, &b.labels);
        assert_stats_agree("sv_both", &a.stats, &b.stats);

        let (a, b) = (pc_algos::sv::channel_reqresp(&g, &topo, &seq),
                      pc_algos::sv::channel_reqresp(&g, &topo, &thr));
        prop_assert_eq!(&a.labels, &b.labels);
        assert_stats_agree("sv_reqresp", &a.stats, &b.stats);

        let (a, b) = (pc_algos::pagerank::channel_scatter(&dg, &dtopo, &seq, 6),
                      pc_algos::pagerank::channel_scatter(&dg, &dtopo, &thr, 6));
        prop_assert_eq!(&a.ranks, &b.ranks);
        assert_stats_agree("pagerank_scatter", &a.stats, &b.stats);

        let (a, b) = (pc_algos::scc::channel_propagation(&dg, &dtopo, &seq),
                      pc_algos::scc::channel_propagation(&dg, &dtopo, &thr));
        prop_assert_eq!(&a.labels, &b.labels);
        assert_stats_agree("scc_propagation", &a.stats, &b.stats);

        let (a, b) = (pc_algos::kernels::bfs(&g, &topo, &seq, 0),
                      pc_algos::kernels::bfs(&g, &topo, &thr, 0));
        prop_assert_eq!(&a.level, &b.level);
        assert_stats_agree("bfs", &a.stats, &b.stats);

        let (a, b) = (pc_algos::kernels::kcore(&g, &topo, &seq, 2),
                      pc_algos::kernels::kcore(&g, &topo, &thr, 2));
        prop_assert_eq!(&a.in_core, &b.in_core);
        assert_stats_agree("kcore", &a.stats, &b.stats);
    }

    /// Pointer jumping and the weighted algorithms agree across modes too.
    #[test]
    fn weighted_and_forest_algorithms_agree_across_exec_modes(
        n in 4usize..120,
        seed in 0u64..1000,
        workers in 2usize..5,
    ) {
        let seq = Config::sequential(workers);
        let thr = Config::with_workers(workers);

        let parents = Arc::new(pc_graph::gen::random_forest_parents(n, 1 + n / 20, seed));
        let ptopo = Arc::new(Topology::hashed(parents.len(), workers));
        let (a, b) = (pc_algos::pointer_jumping::channel_reqresp(&parents, &ptopo, &seq),
                      pc_algos::pointer_jumping::channel_reqresp(&parents, &ptopo, &thr));
        prop_assert_eq!(&a.roots, &b.roots);
        assert_stats_agree("pj_reqresp", &a.stats, &b.stats);

        let side = 2 + n / 20;
        let wg = Arc::new(pc_graph::gen::grid2d_weighted(side, side, 9, seed));
        let wtopo = Arc::new(Topology::hashed(wg.n(), workers));
        let (a, b) = (pc_algos::sssp::channel_propagation(&wg, &wtopo, &seq, 0),
                      pc_algos::sssp::channel_propagation(&wg, &wtopo, &thr, 0));
        prop_assert_eq!(&a.dist, &b.dist);
        assert_stats_agree("sssp_propagation", &a.stats, &b.stats);

        let (a, b) = (pc_algos::msf::channel_basic(&wg, &wtopo, &seq),
                      pc_algos::msf::channel_basic(&wg, &wtopo, &thr));
        prop_assert_eq!(&a.total_weight, &b.total_weight);
        assert_stats_agree("msf", &a.stats, &b.stats);
    }
}

/// The headline acceptance check: after warm-up the exchange path stops
/// allocating. A long PageRank run must reach a ≥ 99% pool hit rate, and
/// the pool traffic must be identical in both execution modes.
#[test]
fn steady_state_pool_hit_rate_exceeds_99_percent() {
    let g = Arc::new(pc_graph::gen::rmat(
        10,
        9 << 10,
        pc_graph::gen::RmatParams::default(),
        5,
        true,
    ));
    let topo = Arc::new(Topology::hashed(g.n(), 4));
    let seq = pc_algos::pagerank::channel_scatter(&g, &topo, &Config::sequential(4), 400);
    let thr = pc_algos::pagerank::channel_scatter(&g, &topo, &Config::with_workers(4), 400);
    for (mode, out) in [("sequential", &seq), ("threads", &thr)] {
        assert!(
            out.stats.pool_hit_rate() >= 0.99,
            "{mode}: steady-state pool hit rate {:.4} below 99% (hits {}, misses {})",
            out.stats.pool_hit_rate(),
            out.stats.pool.hits,
            out.stats.pool.misses,
        );
    }
    assert_eq!(
        seq.stats.pool, thr.stats.pool,
        "pool traffic is mode-independent"
    );
}

/// Threaded rounds cross the barrier exactly twice in steady state.
#[test]
fn threaded_round_crosses_barrier_at_most_twice() {
    let g = Arc::new(pc_graph::gen::rmat(
        9,
        9 << 9,
        pc_graph::gen::RmatParams::default(),
        6,
        true,
    ));
    let topo = Arc::new(Topology::hashed(g.n(), 4));
    let out = pc_algos::pagerank::channel_scatter(&g, &topo, &Config::with_workers(4), 30);
    let per_round = out.stats.crossings_per_round();
    assert!(
        per_round <= 2.1,
        "expected ≤ 2 barrier crossings per round, measured {per_round:.3} \
         ({} crossings / {} rounds)",
        out.stats.barrier_crossings,
        out.stats.rounds,
    );
}
