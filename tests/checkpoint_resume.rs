//! Checkpoint transparency and resume determinism, per shipped algorithm.
//!
//! Two contracts per algorithm:
//!
//! * **Transparency** — a threaded run that checkpoints (but never
//!   fails) reports values, bytes, messages, supersteps, rounds and pool
//!   traffic identical to one that does not: the checkpoint barrier is a
//!   pure transport reduction and never touches the exchange path.
//! * **Resume** — pointing a second run at the directory the first one
//!   left behind restores the last committed epoch (vertex values,
//!   frontier, channel state, counters) and replays only the tail — and
//!   still converges to the identical output and statistics. This
//!   exercises every channel's `encode_state`/`decode_state` codec under
//!   its real algorithm, which is exactly the state a respawned rank
//!   restores after a mid-run SIGKILL (`tests/dist_recovery.rs`).
//!
//! A third arm covers the torn-write discipline end to end: truncating a
//! segment of the newest committed epoch makes the resume fall back to
//! the previous complete epoch, with identical results.

mod common;

use common::assert_stats_agree;
use pc_bsp::{CkptPolicy, Config, RunStats, Topology};
use pc_ckpt::Store;
use pc_graph::gen;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const WORKERS: usize = 4;

fn temp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pc_ckpt_resume_{name}_{}", std::process::id()))
}

fn ckpt_cfg(every: u64, dir: &Path) -> Config {
    Config {
        ckpt: Some(CkptPolicy {
            every,
            dir: dir.to_path_buf(),
        }),
        ..Config::with_workers(WORKERS)
    }
}

/// The transparency + resume + torn-write contract for one algorithm.
fn resumable<V: PartialEq + std::fmt::Debug>(
    name: &str,
    every: u64,
    run: impl Fn(&Config) -> (V, RunStats),
) {
    let dir = temp_dir(name);
    let _ = std::fs::remove_dir_all(&dir);
    let (plain_values, plain_stats) = run(&Config::with_workers(WORKERS));
    let cfg = ckpt_cfg(every, &dir);

    // Transparency: checkpointing changes nothing observable.
    let (ck_values, ck_stats) = run(&cfg);
    assert_eq!(
        ck_values, plain_values,
        "{name}: checkpointing changed values"
    );
    assert_stats_agree(
        &format!("{name} (plain vs checkpointing)"),
        &plain_stats,
        &ck_stats,
    );

    // The run must actually have committed something, or the resume arm
    // would silently test a cold start.
    let store = Store::open(&dir).unwrap();
    let steps = store.committed_steps().unwrap();
    assert!(
        !steps.is_empty(),
        "{name}: no checkpoint was committed (cadence {every}, {} supersteps)",
        plain_stats.supersteps
    );

    // Resume: restore the newest epoch, replay the tail, same output.
    let (res_values, res_stats) = run(&cfg);
    assert_eq!(res_values, plain_values, "{name}: resumed values diverge");
    assert_stats_agree(
        &format!("{name} (plain vs resumed)"),
        &plain_stats,
        &res_stats,
    );

    // Torn write: truncate a segment of the newest epoch; the resume
    // falls back to the previous complete epoch (or a cold start when
    // only one epoch was ever committed) and still agrees.
    let steps = store.committed_steps().unwrap();
    let newest = *steps.last().unwrap();
    let victim = store.segment_path(newest, (WORKERS - 1) as u32);
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
    let (torn_values, torn_stats) = run(&cfg);
    assert_eq!(
        torn_values, plain_values,
        "{name}: torn-write fallback diverges"
    );
    assert_stats_agree(
        &format!("{name} (plain vs torn fallback)"),
        &plain_stats,
        &torn_stats,
    );

    let _ = std::fs::remove_dir_all(&dir);
}

fn undirected() -> Arc<pc_graph::Graph> {
    Arc::new(gen::rmat(8, 1400, gen::RmatParams::default(), 11, false).symmetrized())
}

fn directed() -> Arc<pc_graph::Graph> {
    Arc::new(gen::rmat(8, 1800, gen::RmatParams::default(), 12, true))
}

#[test]
fn pagerank_scatter_resumes() {
    let g = directed();
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    resumable("pagerank_scatter", 3, |cfg| {
        let o = pc_algos::pagerank::channel_scatter(&g, &topo, cfg, 12);
        (o.ranks, o.stats)
    });
}

#[test]
fn pagerank_basic_resumes() {
    let g = directed();
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    resumable("pagerank_basic", 4, |cfg| {
        let o = pc_algos::pagerank::channel_basic(&g, &topo, cfg, 10);
        (o.ranks, o.stats)
    });
}

#[test]
fn pagerank_mirror_resumes() {
    let g = directed();
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    resumable("pagerank_mirror", 3, |cfg| {
        let o = pc_algos::pagerank::channel_mirror(&g, &topo, cfg, 10, 8);
        (o.ranks, o.stats)
    });
}

/// The skew-resistant composition checkpoints and resumes with a
/// shipped mirror plan attached: a restored Mirror channel pre-wires
/// from the plan, then `decode_state` overwrites its tables with the
/// checkpointed (equally pre-wired) state — the run must be
/// indistinguishable either way, mirror counters included.
#[test]
fn wcc_mirror_resumes_with_a_shipped_plan() {
    let g = undirected();
    let owners = pc_graph::partition::ldg_deg(&*g, WORKERS, 2);
    let base = Topology::from_owners(WORKERS, owners);
    let tau = pc_graph::partition::default_mirror_threshold(&*g);
    let plan = pc_graph::partition::build_mirror_plan(&*g, &base, tau);
    let topo = Arc::new(base.with_mirror(Arc::new(plan)));
    resumable("wcc_mirror", 2, |cfg| {
        let o = pc_algos::wcc::channel_mirror(&g, &topo, cfg, tau);
        (o.labels, o.stats)
    });
}

#[test]
fn wcc_propagation_resumes() {
    let g = undirected();
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    // Propagation converges in 2 supersteps; cadence 1 checkpoints the
    // boundary after superstep 1 — mid-fixpoint channel state included.
    resumable("wcc_propagation", 1, |cfg| {
        let o = pc_algos::wcc::channel_propagation(&g, &topo, cfg);
        (o.labels, o.stats)
    });
}

#[test]
fn wcc_basic_resumes() {
    let g = undirected();
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    resumable("wcc_basic", 2, |cfg| {
        let o = pc_algos::wcc::channel_basic(&g, &topo, cfg);
        (o.labels, o.stats)
    });
}

#[test]
fn sv_both_resumes() {
    let g = undirected();
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    resumable("sv_both", 2, |cfg| {
        let o = pc_algos::sv::channel_both(&g, &topo, cfg);
        (o.labels, o.stats)
    });
}

#[test]
fn scc_propagation_resumes() {
    let g = directed();
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    resumable("scc_propagation", 2, |cfg| {
        let o = pc_algos::scc::channel_propagation(&g, &topo, cfg);
        (o.labels, o.stats)
    });
}

#[test]
fn sssp_propagation_resumes() {
    let g = Arc::new(gen::grid2d_weighted(14, 14, 9, 21));
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    resumable("sssp_propagation", 1, |cfg| {
        let o = pc_algos::sssp::channel_propagation(&g, &topo, cfg, 0);
        (o.dist, o.stats)
    });
}

#[test]
fn bfs_resumes() {
    let g = undirected();
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    resumable("bfs", 1, |cfg| {
        let o = pc_algos::kernels::bfs(&g, &topo, cfg, 0);
        (o.level, o.stats)
    });
}

#[test]
fn kcore_resumes() {
    let g = undirected();
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    resumable("kcore", 1, |cfg| {
        let o = pc_algos::kernels::kcore(&g, &topo, cfg, 2);
        (o.in_core, o.stats)
    });
}

#[test]
fn msf_resumes() {
    let g = Arc::new(gen::rmat_weighted(
        8,
        1200,
        gen::RmatParams::default(),
        13,
        false,
        1000,
    ));
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    resumable("msf", 2, |cfg| {
        let o = pc_algos::msf::channel_basic(&g, &topo, cfg);
        ((o.total_weight, o.edge_count), o.stats)
    });
}

/// The simulated multi-process shape (one engine driver per rank over a
/// shared loopback mesh) checkpoints and resumes identically too — the
/// same path real `pcgraph --rank N` processes take.
#[test]
fn multirank_checkpointing_is_transparent() {
    let g = directed();
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    let run = |cfg: &Config| {
        let o = pc_algos::pagerank::channel_scatter(&g, &topo, cfg, 12);
        (o.ranks, o.stats)
    };
    let dir = temp_dir("multirank");
    let _ = std::fs::remove_dir_all(&dir);
    let (plain_values, plain_stats) = common::run_multirank(WORKERS, &run);
    let policy = CkptPolicy {
        every: 3,
        dir: dir.clone(),
    };
    let run_ck = |cfg: &Config| {
        run(&Config {
            ckpt: Some(policy.clone()),
            ..cfg.clone()
        })
    };
    let (ck_values, ck_stats) = common::run_multirank(WORKERS, &run_ck);
    assert_eq!(ck_values, plain_values);
    assert_stats_agree(
        "multirank (plain vs checkpointing)",
        &plain_stats,
        &ck_stats,
    );
    let store = Store::open(&dir).unwrap();
    assert!(!store.committed_steps().unwrap().is_empty());
    // Resume through the rank driver.
    let (res_values, res_stats) = common::run_multirank(WORKERS, &run_ck);
    assert_eq!(res_values, plain_values);
    assert_stats_agree("multirank (plain vs resumed)", &plain_stats, &res_stats);
    let _ = std::fs::remove_dir_all(&dir);
}
