//! Fault injection for the TCP exchange transport.
//!
//! The wire will misbehave: reads and writes split at arbitrary byte
//! boundaries, peers show up late, peers vanish mid-frame. The contract
//! (ISSUE 2): every round either completes *identically* to the
//! in-process backend or fails with a typed [`TransportError`] — it
//! never hangs. Every test here runs under a watchdog that kills the
//! test run if a transport call blocks past its deadline.

use pc_bsp::tcp::{self, configure_stream, read_frame_into, write_frame, Tcp, TcpOptions};
use pc_bsp::transport::{ExchangeTransport, TransportError};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Run `f` on a helper thread and panic if it does not finish within
/// `limit` — the "never hang" guarantee, enforced mechanically.
fn with_watchdog<T: Send + 'static>(limit: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(v) => {
            handle.join().expect("watchdogged test panicked");
            v
        }
        // The closure panicked (dropping the sender): propagate the real
        // assertion failure rather than misreporting it as a hang.
        Err(mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Err(panic) => std::panic::resume_unwind(panic),
            Ok(_) => unreachable!("sender dropped without sending or panicking"),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("watchdog: transport operation still blocked after {limit:?}")
        }
    }
}

/// A loopback socket pair with transport timeouts installed.
fn socket_pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let a = TcpStream::connect(addr).unwrap();
    let (b, _) = listener.accept().unwrap();
    configure_stream(&a).unwrap();
    configure_stream(&b).unwrap();
    (a, b)
}

/// A frame written one byte at a time, with pauses, must reassemble
/// exactly — short reads and split frames are normal TCP behavior, not
/// faults.
#[test]
fn split_writes_reassemble_into_one_frame() {
    with_watchdog(Duration::from_secs(20), || {
        let (a, b) = socket_pair();
        let payload: Vec<u8> = (0..97u8).collect();
        let writer = std::thread::spawn(move || {
            let mut wire = vec![tcp::TAG_DATA];
            wire.extend_from_slice(&(97u32).to_le_bytes());
            wire.extend_from_slice(&(0..97u8).collect::<Vec<u8>>());
            for chunk in wire.chunks(1) {
                (&a).write_all(chunk).unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
            a // keep the socket open until the reader is done
        });
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        let tag = read_frame_into(&b, &mut got, deadline, 9).expect("split frame must decode");
        assert_eq!(tag, tcp::TAG_DATA);
        assert_eq!(got, payload);
        drop(writer.join().unwrap());
    });
}

/// A peer that dies mid-frame yields `Truncated` — with an accurate
/// account of what was owed — not a hang and not garbage.
#[test]
fn peer_closing_mid_frame_is_truncation() {
    with_watchdog(Duration::from_secs(20), || {
        let (a, b) = socket_pair();
        // Header promises 100 payload bytes; only 10 arrive.
        let mut wire = vec![tcp::TAG_DATA];
        wire.extend_from_slice(&(100u32).to_le_bytes());
        wire.extend_from_slice(&[7u8; 10]);
        (&a).write_all(&wire).unwrap();
        drop(a); // EOF mid-payload
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        match read_frame_into(&b, &mut got, deadline, 3) {
            Err(TransportError::Truncated {
                peer,
                expected,
                got,
            }) => {
                assert_eq!(peer, 3);
                assert_eq!(expected, 100);
                assert_eq!(got, 10);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    });
}

/// A peer that closes on a frame boundary is a `Disconnected`, which is
/// a different failure than a truncation (the protocol position is
/// clean).
#[test]
fn peer_closing_between_frames_is_disconnect() {
    with_watchdog(Duration::from_secs(20), || {
        let (a, b) = socket_pair();
        let deadline = Instant::now() + Duration::from_secs(10);
        write_frame(&a, tcp::TAG_SKIP, &[], deadline, 0).unwrap();
        drop(a);
        let mut got = Vec::new();
        let tag = read_frame_into(&b, &mut got, deadline, 5).unwrap();
        assert_eq!(tag, tcp::TAG_SKIP);
        match read_frame_into(&b, &mut got, deadline, 5) {
            Err(TransportError::Disconnected { peer, .. }) => assert_eq!(peer, 5),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    });
}

/// A reader whose peer sends nothing times out with a typed error at its
/// deadline instead of blocking forever.
#[test]
fn silent_peer_times_out() {
    with_watchdog(Duration::from_secs(20), || {
        let (_a, b) = socket_pair();
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_millis(300);
        let started = Instant::now();
        match read_frame_into(&b, &mut got, deadline, 1) {
            Err(TransportError::Timeout { peer, .. }) => assert_eq!(peer, 1),
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "timeout honored promptly"
        );
    });
}

/// A worker that starts late (within the connect deadline) joins the
/// mesh and the round completes with the same result as an on-time run.
#[test]
fn late_peer_completes_round_identically() {
    let exchange = |delay: Duration| {
        with_watchdog(Duration::from_secs(30), move || {
            let t = std::sync::Arc::new(
                Tcp::loopback_with(
                    2,
                    TcpOptions {
                        connect_timeout: Duration::from_secs(10),
                        io_timeout: Duration::from_secs(10),
                        ..TcpOptions::default()
                    },
                )
                .unwrap(),
            );
            let mut handles = Vec::new();
            for w in 0..2usize {
                let t = std::sync::Arc::clone(&t);
                handles.push(std::thread::spawn(move || {
                    if w == 1 {
                        std::thread::sleep(delay); // the late worker
                    }
                    let mut received = Vec::new();
                    let mut seen = Vec::new();
                    for round in 0..3u8 {
                        t.post(w, 1 - w, vec![round, w as u8]);
                        t.sync(w);
                        t.take_all_into(w, &mut received);
                        for (s, buf) in received.drain(..) {
                            seen.push((s, buf.clone()));
                            t.recycle(w, s, buf);
                        }
                        let (mask, active) = t.reduce_round(w, u64::from(round), 1);
                        seen.push((usize::MAX, vec![mask as u8, active as u8]));
                    }
                    seen
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        })
    };
    let on_time = exchange(Duration::ZERO);
    let late = exchange(Duration::from_millis(400));
    assert_eq!(on_time, late, "a late (but present) peer changes nothing");
}

/// A worker that never shows up is a typed connect/accept failure on
/// everyone waiting for it — not a deadlock.
#[test]
fn absent_peer_is_a_typed_error() {
    with_watchdog(Duration::from_secs(20), || {
        let t = Tcp::loopback_with(
            2,
            TcpOptions {
                connect_timeout: Duration::from_millis(300),
                io_timeout: Duration::from_millis(300),
                ..TcpOptions::default()
            },
        )
        .unwrap();
        // Worker 0 must accept worker 1's connection; worker 1 never
        // runs. The first operation fails at the connect deadline.
        match t.try_post(0, 1, vec![1, 2, 3]) {
            Err(TransportError::Timeout { peer, during }) => {
                assert_eq!(peer, 1);
                assert!(during.contains("accept"), "failed during {during}");
            }
            other => panic!("expected a connect timeout, got {other:?}"),
        }
    });
}

/// Frames far larger than the kernel's socket buffering: in an
/// all-to-all exchange every worker writes before it reads, so without
/// the transport's drain-on-stall path these writes would mutually block
/// until the io deadline. The round must complete, with every byte
/// intact.
#[test]
fn giant_frames_do_not_deadlock() {
    with_watchdog(Duration::from_secs(90), || {
        const WORKERS: usize = 3;
        const LEN: usize = 8 << 20; // 8 MiB per peer, ~16 MiB in flight per pipe pair
        let t = std::sync::Arc::new(Tcp::loopback(WORKERS).unwrap());
        let mut handles = Vec::new();
        for w in 0..WORKERS {
            let t = std::sync::Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut received = Vec::new();
                for round in 0..2u8 {
                    for peer in 0..WORKERS {
                        let mut buf = vec![w as u8 ^ round; LEN];
                        buf[0] = w as u8; // sender fingerprint
                        t.post(w, peer, buf);
                    }
                    t.sync(w);
                    t.take_all_into(w, &mut received);
                    assert_eq!(received.len(), WORKERS);
                    for (s, buf) in received.drain(..) {
                        assert_eq!(buf.len(), LEN);
                        assert_eq!(buf[0], s as u8);
                        assert!(buf[1..].iter().all(|&b| b == s as u8 ^ round));
                        t.recycle(w, s, buf);
                    }
                    let (mask, active) = t.reduce_round(w, 1 << w, 1);
                    assert_eq!(mask, 0b111);
                    assert_eq!(active, WORKERS as u64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });
}

// ---------------------------------------------------------------------
// Batched-driver faults: the coalesced super-frame path must fail with
// the same typed-error discipline as plain frames — partial writes
// mid-super-frame, peers stalling between sub-frames, and corrupt
// coalesced directories are errors, never hangs and never bad reads.
// ---------------------------------------------------------------------

/// A 2-rank batched mesh where rank 1 is a raw socket under test
/// control: it completes the `HELLO` handshake like a real peer and then
/// writes whatever bytes the test wants rank 0 to choke on.
fn batched_mesh_with_fake_peer(io_timeout: Duration) -> (Tcp, TcpStream) {
    let l0 = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let l1 = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addrs = vec![l0.local_addr().unwrap(), l1.local_addr().unwrap()];
    let t = Tcp::mesh(
        0,
        addrs.clone(),
        l0,
        TcpOptions {
            connect_timeout: Duration::from_secs(5),
            io_timeout,
            ..TcpOptions::batched()
        },
    )
    .unwrap();
    let fake = TcpStream::connect(addrs[0]).unwrap();
    configure_stream(&fake).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    write_frame(&fake, tcp::TAG_HELLO, &1u32.to_le_bytes(), deadline, 0).unwrap();
    (t, fake)
}

/// A super-frame header and part of its payload, then EOF: a partial
/// write mid-super-frame is a `Truncated`, with the batch never reaching
/// the splitter.
#[test]
fn batched_partial_super_frame_then_close_is_truncation() {
    with_watchdog(Duration::from_secs(20), || {
        let (t, fake) = batched_mesh_with_fake_peer(Duration::from_secs(10));
        let mut wire = vec![tcp::TAG_BATCH];
        wire.extend_from_slice(&100u32.to_le_bytes());
        wire.extend_from_slice(&[7u8; 20]); // 20 of the promised 100 bytes
        (&fake).write_all(&wire).unwrap();
        drop(fake);
        let mut out = Vec::new();
        match t.try_take_all_into(0, &mut out) {
            Err(TransportError::Truncated {
                peer,
                expected,
                got,
            }) => {
                assert_eq!(peer, 1);
                // The diagnostic owes the whole frame: header + the 100
                // promised payload bytes; 25 wire bytes arrived.
                assert_eq!(expected, 105);
                assert_eq!(got, 25);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    });
}

/// A peer that sends the super-frame directory and the first sub-frame,
/// then stalls without closing: the receiver times out at its deadline
/// instead of waiting forever for the remaining sub-frames.
#[test]
fn batched_peer_stalling_between_sub_frames_times_out() {
    with_watchdog(Duration::from_secs(20), || {
        let (t, fake) = batched_mesh_with_fake_peer(Duration::from_millis(400));
        // A well-formed batch of two 8-byte sub-frames, cut after the
        // first sub-frame's payload.
        let payload =
            tcp::encode_batch(&[(tcp::TAG_DATA, vec![1u8; 8]), (tcp::TAG_SKIP, vec![2u8; 8])]);
        let mut wire = vec![tcp::TAG_BATCH];
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&payload[..payload.len() - 8]);
        (&fake).write_all(&wire).unwrap();
        let started = Instant::now();
        let mut out = Vec::new();
        match t.try_take_all_into(0, &mut out) {
            Err(TransportError::Timeout { peer, .. }) => assert_eq!(peer, 1),
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "timeout honored promptly"
        );
        drop(fake); // keep the socket alive until after the verdict
    });
}

/// A coalesced header whose directory overruns the super-frame payload
/// is a protocol violation at the splitter — typed, attributed to the
/// offending peer, no allocation of the claimed lengths.
#[test]
fn batched_truncated_coalesced_header_is_protocol_violation() {
    with_watchdog(Duration::from_secs(20), || {
        let (t, fake) = batched_mesh_with_fake_peer(Duration::from_secs(10));
        // Payload: directory claims 2 sub-frames of 50 bytes each, but
        // only 10 payload bytes follow.
        let mut payload = Vec::new();
        payload.extend_from_slice(&2u32.to_le_bytes());
        for _ in 0..2 {
            payload.push(tcp::TAG_DATA);
            payload.extend_from_slice(&50u32.to_le_bytes());
        }
        payload.extend_from_slice(&[9u8; 10]);
        let mut wire = vec![tcp::TAG_BATCH];
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&payload);
        (&fake).write_all(&wire).unwrap();
        let mut out = Vec::new();
        match t.try_take_all_into(0, &mut out) {
            Err(TransportError::Protocol { peer, detail }) => {
                assert_eq!(peer, 1);
                assert!(detail.contains("overruns"), "{detail}");
            }
            other => panic!("expected Protocol, got {other:?}"),
        }
        drop(fake);
    });
}

/// A super-frame claiming an absurd sub-frame count is rejected before
/// anything is allocated for it.
#[test]
fn batched_absurd_sub_frame_count_is_rejected() {
    with_watchdog(Duration::from_secs(20), || {
        let (t, fake) = batched_mesh_with_fake_peer(Duration::from_secs(10));
        let mut payload = Vec::new();
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut wire = vec![tcp::TAG_BATCH];
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&payload);
        (&fake).write_all(&wire).unwrap();
        let mut out = Vec::new();
        match t.try_take_all_into(0, &mut out) {
            Err(TransportError::Protocol { peer, detail }) => {
                assert_eq!(peer, 1);
                assert!(detail.contains("sub-frames"), "{detail}");
            }
            other => panic!("expected Protocol, got {other:?}"),
        }
        drop(fake);
    });
}

/// The `POLLHUP` arm of the multiplexed wait: a peer that completes the
/// handshake and then dies on a clean frame boundary. The readiness
/// poll reports the hangup, the progress pass reads the orderly EOF,
/// and the consumer — still owed that peer's frame for the round —
/// gets `Disconnected`, not a hang until the io deadline.
#[test]
fn batched_peer_hangup_after_handshake_is_disconnect() {
    with_watchdog(Duration::from_secs(20), || {
        let (t, fake) = batched_mesh_with_fake_peer(Duration::from_secs(10));
        drop(fake); // orderly close: FIN on a frame boundary
        let mut out = Vec::new();
        match t.try_take_all_into(0, &mut out) {
            Err(TransportError::Disconnected { peer, .. }) => assert_eq!(peer, 1),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    });
}

/// A wake-up storm: the peer dribbles a well-formed super-frame one byte
/// at a time with real pauses, so the receiver's multiplexed wait fires
/// over and over, each wake delivering almost nothing. The frame must
/// still reassemble exactly, and the readiness counters must show the
/// driver actually slept in `poll(2)` between dribbles instead of
/// spinning through them.
#[test]
fn batched_byte_dribble_storm_reassembles_and_counts_polls() {
    with_watchdog(Duration::from_secs(60), || {
        let (t, fake) = batched_mesh_with_fake_peer(Duration::from_secs(30));
        let payload = tcp::encode_batch(&[(tcp::TAG_DATA, (0..61u8).collect::<Vec<u8>>())]);
        let mut wire = vec![tcp::TAG_BATCH];
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&payload);
        let writer = std::thread::spawn(move || {
            for chunk in wire.chunks(1) {
                (&fake).write_all(chunk).unwrap();
                std::thread::sleep(Duration::from_millis(2));
            }
            fake // hold the socket open until the reader is done
        });
        let mut out = Vec::new();
        t.try_take_all_into(0, &mut out)
            .expect("dribbled super-frame must decode");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 1);
        assert_eq!(out[0].1, (0..61u8).collect::<Vec<u8>>());
        let stats = t.stats();
        assert!(
            stats.poll_waits > 0,
            "multi-millisecond dribbles must put the driver to sleep in poll(2), \
             not leave it spinning (poll_waits = {})",
            stats.poll_waits
        );
        drop(writer.join().unwrap());
    });
}

/// The giant-frame all-to-all, under the batched driver: 3 ranks × 8 MiB
/// per peer through the multiplexed progress loop. Every worker writes
/// before it reads, so the kernel refuses most of the staged bytes and
/// the drain must interleave `POLLOUT`- and `POLLIN`-driven work on the
/// same pollfd set. Two rounds, every byte verified.
#[test]
fn batched_giant_all_to_all_completes_over_multiplexed_waits() {
    with_watchdog(Duration::from_secs(90), || {
        const WORKERS: usize = 3;
        const LEN: usize = 8 << 20;
        let t = std::sync::Arc::new(Tcp::loopback_with(WORKERS, TcpOptions::batched()).unwrap());
        let mut handles = Vec::new();
        for w in 0..WORKERS {
            let t = std::sync::Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut received = Vec::new();
                for round in 0..2u8 {
                    for peer in 0..WORKERS {
                        let mut buf = vec![w as u8 ^ round; LEN];
                        buf[0] = w as u8;
                        t.post(w, peer, buf);
                    }
                    t.sync(w);
                    t.take_all_into(w, &mut received);
                    assert_eq!(received.len(), WORKERS);
                    for (s, buf) in received.drain(..) {
                        assert_eq!(buf.len(), LEN);
                        assert_eq!(buf[0], s as u8);
                        assert!(buf[1..].iter().all(|&b| b == s as u8 ^ round));
                        t.recycle(w, s, buf);
                    }
                    let (mask, active) = t.reduce_round(w, 1 << w, 1);
                    assert_eq!(mask, 0b111);
                    assert_eq!(active, WORKERS as u64);
                    // Oversubscribed, the root holds each RESULT to
                    // coalesce with the next round's frames; no more
                    // rounds follow the last one here, so release it the
                    // way the engine's end-of-program epilogue does.
                    t.flush(w);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });
}

/// The batched driver's absent-peer behavior matches the synchronous
/// one: a rank that never appears is a typed connect/accept failure.
#[test]
fn batched_absent_peer_is_a_typed_error() {
    with_watchdog(Duration::from_secs(20), || {
        let t = Tcp::loopback_with(
            2,
            TcpOptions {
                connect_timeout: Duration::from_millis(300),
                io_timeout: Duration::from_millis(300),
                ..TcpOptions::batched()
            },
        )
        .unwrap();
        match t.try_post(0, 1, vec![1, 2, 3]) {
            Err(TransportError::Timeout { peer, during }) => {
                assert_eq!(peer, 1);
                assert!(during.contains("accept"), "failed during {during}");
            }
            other => panic!("expected a connect timeout, got {other:?}"),
        }
    });
}

/// Garbage where a frame tag should be is a protocol violation, not an
/// attempted gigabyte allocation or a hang.
#[test]
fn oversized_frame_length_is_rejected() {
    with_watchdog(Duration::from_secs(20), || {
        let (a, b) = socket_pair();
        let mut wire = vec![tcp::TAG_DATA];
        wire.extend_from_slice(&u32::MAX.to_le_bytes()); // 4 GiB claim
        (&a).write_all(&wire).unwrap();
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        match read_frame_into(&b, &mut got, deadline, 2) {
            Err(TransportError::Protocol { peer, detail }) => {
                assert_eq!(peer, 2);
                assert!(detail.contains("exceeds"), "{detail}");
            }
            other => panic!("expected Protocol, got {other:?}"),
        }
    });
}
