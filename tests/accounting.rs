//! Invariants of the byte/message accounting — the foundation under every
//! "message (GB)" column in the reproduced tables.

use pc_bsp::{Config, Topology};
use pc_graph::gen;
use std::sync::Arc;

#[test]
fn single_worker_has_zero_remote_bytes() {
    // With one worker everything is loop-back; remote must be exactly 0.
    let g = Arc::new(gen::rmat(8, 1500, gen::RmatParams::default(), 1, false));
    let topo = Arc::new(Topology::hashed(g.n(), 1));
    let cfg = Config::sequential(1);
    for stats in [
        pc_algos::wcc::channel_basic(&g, &topo, &cfg).stats,
        pc_algos::sv::channel_both(&g, &topo, &cfg).stats,
        pc_algos::pagerank::channel_scatter(&g, &topo, &cfg, 5).stats,
    ] {
        assert_eq!(stats.remote_bytes(), 0);
        assert!(stats.total_bytes() > 0, "loop-back traffic still counted");
    }
}

#[test]
fn remote_bytes_grow_with_worker_count() {
    // More workers ⇒ a larger share of traffic crosses the "network".
    let g = Arc::new(gen::rmat(9, 4000, gen::RmatParams::default(), 5, false));
    let mut previous = 0u64;
    for workers in [2, 4, 8] {
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        let out = pc_algos::wcc::channel_basic(&g, &topo, &Config::sequential(workers));
        assert!(
            out.stats.remote_bytes() > previous,
            "workers={workers}: {} !> {previous}",
            out.stats.remote_bytes()
        );
        previous = out.stats.remote_bytes();
    }
}

#[test]
fn per_channel_breakdown_is_complete() {
    let g = Arc::new(gen::rmat(8, 2000, gen::RmatParams::default(), 9, false));
    let topo = Arc::new(Topology::hashed(g.n(), 4));
    let out = pc_algos::sv::channel_both(&g, &topo, &Config::sequential(4));
    // S-V (both) = reqresp + scatter + combined + aggregator.
    let names: Vec<&str> = out.stats.channels.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, vec!["reqresp", "scatter", "combined", "aggregator"]);
    // Every channel actually carried traffic in a nontrivial run.
    for c in &out.stats.channels {
        assert!(c.bytes.total() > 0, "channel {} carried nothing", c.name);
    }
    // The total equals the sum of the parts (definitionally, but the
    // accessors must agree).
    let sum: u64 = out.stats.channels.iter().map(|c| c.bytes.remote).sum();
    assert_eq!(out.stats.remote_bytes(), sum);
}

#[test]
fn message_counts_are_deterministic() {
    let g = Arc::new(gen::rmat(8, 1800, gen::RmatParams::default(), 2, false));
    let topo = Arc::new(Topology::hashed(g.n(), 4));
    let a = pc_algos::sv::channel_both(&g, &topo, &Config::sequential(4));
    let b = pc_algos::sv::channel_both(&g, &topo, &Config::sequential(4));
    assert_eq!(a.stats.messages(), b.stats.messages());
    assert_eq!(a.stats.remote_bytes(), b.stats.remote_bytes());
    assert_eq!(a.stats.rounds, b.stats.rounds);
}

#[test]
fn optimized_channels_never_increase_supersteps() {
    let g = Arc::new(gen::rmat(9, 3500, gen::RmatParams::default(), 7, false));
    let topo = Arc::new(Topology::hashed(g.n(), 4));
    let cfg = Config::sequential(4);
    let basic = pc_algos::sv::channel_basic(&g, &topo, &cfg);
    let both = pc_algos::sv::channel_both(&g, &topo, &cfg);
    assert_eq!(basic.stats.supersteps, both.stats.supersteps);
    assert!(both.stats.remote_bytes() < basic.stats.remote_bytes());
}

#[test]
fn scatter_amortizes_ids_across_supersteps() {
    // PageRank over more iterations amortizes the one-time id shipment:
    // the per-iteration byte cost must drop toward the bare-value rate.
    let g = Arc::new(gen::rmat(9, 4000, gen::RmatParams::default(), 3, true));
    let topo = Arc::new(Topology::hashed(g.n(), 4));
    let cfg = Config::sequential(4);
    let short = pc_algos::pagerank::channel_scatter(&g, &topo, &cfg, 1)
        .stats
        .remote_bytes();
    let long = pc_algos::pagerank::channel_scatter(&g, &topo, &cfg, 21)
        .stats
        .remote_bytes();
    // First superstep ships (dst, value) pairs; steady state ships bare
    // values: for f64 messages that is 8/12 of the first-superstep rate.
    let per_iter = (long - short) as f64 / 20.0;
    let first_iter = short as f64;
    assert!(
        per_iter < 0.75 * first_iter,
        "steady-state per-iteration bytes {per_iter} vs first superstep {first_iter}"
    );
}
