//! Property-based coverage of the checkpoint codec (`pc_ckpt`): segment
//! and manifest round trips must be byte-exact for arbitrary payloads —
//! including payloads built from every value type the shipped algorithms
//! checkpoint — and a torn (truncated) segment must make the restore
//! scan fall back to the previous complete epoch, never crash or
//! restore garbage.

use pc_bsp::{Codec, Reader};
use pc_ckpt::{fnv64, Manifest, RunId, Segment, Store};
use proptest::prelude::*;
use std::path::PathBuf;

fn temp_store(tag: &str) -> Store {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "pc_ckpt_prop_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    Store::open(dir).unwrap()
}

fn cleanup(store: &Store) {
    let _ = std::fs::remove_dir_all(store.dir());
}

/// Write a full epoch (every rank's segment + the manifest) with the
/// given per-rank payloads; returns the committed manifest.
fn write_epoch(store: &Store, id: &RunId, superstep: u64, payloads: &[Vec<u8>]) -> Manifest {
    let mut digests = Vec::new();
    for (rank, payload) in payloads.iter().enumerate() {
        store
            .write_segment(&Segment {
                superstep,
                rounds: superstep * 3,
                rank: rank as u32,
                workers: payloads.len() as u32,
                payload: payload.clone(),
            })
            .unwrap();
        digests.push(store.segment_digest(superstep, rank as u32).unwrap());
    }
    let m = Manifest {
        id: id.clone(),
        superstep,
        rounds: superstep * 3,
        digests,
    };
    store.commit(&m).unwrap();
    m
}

/// Encode a typed value vector exactly the way a worker snapshot does
/// (count + per-value codec bytes).
fn typed_payload<T: Codec>(values: &[T]) -> Vec<u8> {
    let mut buf = Vec::new();
    (values.len() as u64).encode(&mut buf);
    for v in values {
        v.encode(&mut buf);
    }
    buf
}

/// Decode it back, byte-exactly.
fn decode_typed<T: Codec>(payload: &[u8]) -> Vec<T> {
    let mut r = Reader::new(payload);
    let n: u64 = r.get();
    let out = (0..n).map(|_| r.get()).collect();
    assert!(r.is_empty(), "trailing bytes after typed payload");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary payload bytes survive the segment file round trip
    /// byte-exactly, and the stored digest is the content digest.
    #[test]
    fn segment_roundtrip_arbitrary_payloads(
        payload in proptest::collection::vec(any::<u8>(), 0..2000),
        superstep in 1u64..1_000_000,
        rank in 0u32..64,
    ) {
        let store = temp_store("seg");
        let seg = Segment { superstep, rounds: superstep + 7, rank, workers: 64, payload };
        let digest = store.write_segment(&seg).unwrap();
        prop_assert_eq!(store.segment_digest(superstep, rank).unwrap(), digest);
        let back = store.read_segment(superstep, rank).unwrap();
        prop_assert_eq!(back, seg);
        cleanup(&store);
    }

    /// Manifests round-trip exactly: identity, counters and every
    /// per-rank digest.
    #[test]
    fn manifest_roundtrip(
        workers in 1u32..16,
        superstep in 1u64..1_000_000,
        n in 0u64..1_000_000,
        algo_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let store = temp_store("man");
        let algo = format!("prop::Algo<{algo_seed:#x}>");
        let digests: Vec<u64> =
            (0..workers as u64).map(|r| fnv64(&(seed ^ r).to_le_bytes())).collect();
        let m = Manifest {
            id: RunId { workers, n, algo },
            superstep,
            rounds: superstep * 2 + 1,
            digests,
        };
        store.commit(&m).unwrap();
        prop_assert_eq!(store.read_manifest(superstep).unwrap(), m);
        cleanup(&store);
    }

    /// Payloads built from every shipped algorithm's value type —
    /// PageRank `f64`, the label algorithms' `u32`, SSSP `u64`, k-core
    /// `bool`, MSF's `(u64, u64)` summary — round-trip through a full
    /// epoch byte-exactly and decode back to the same values.
    #[test]
    fn all_shipped_value_types_roundtrip(
        ranks_f64 in proptest::collection::vec(any::<f64>(), 1..80),
        labels_u32 in proptest::collection::vec(any::<u32>(), 1..80),
        dists_u64 in proptest::collection::vec(any::<u64>(), 1..80),
        cores_bool in proptest::collection::vec(any::<bool>(), 1..80),
        msf_weights in proptest::collection::vec(any::<u64>(), 1..80),
        msf_counts in proptest::collection::vec(any::<u64>(), 1..80),
    ) {
        let msf_pairs: Vec<(u64, u64)> = msf_weights
            .iter()
            .zip(&msf_counts)
            .map(|(&w, &c)| (w, c))
            .collect();
        let store = temp_store("typed");
        let payloads = vec![
            typed_payload(&ranks_f64),
            typed_payload(&labels_u32),
            typed_payload(&dists_u64),
            typed_payload(&cores_bool),
            typed_payload(&msf_pairs),
        ];
        let id = RunId { workers: 5, n: 80, algo: "prop::AllTypes".into() };
        let committed = write_epoch(&store, &id, 4, &payloads);
        let restored = store.latest_restorable(&id).unwrap().unwrap();
        prop_assert_eq!(&restored, &committed);
        // Byte-exact payloads back out of the validated segments…
        for (rank, payload) in payloads.iter().enumerate() {
            let seg = store.read_segment(4, rank as u32).unwrap();
            prop_assert_eq!(&seg.payload, payload);
        }
        // …and value-exact decodes (bitwise for f64: checkpoints must
        // not perturb floating-point state in any way).
        let f64_bits: Vec<u64> = ranks_f64.iter().map(|v| v.to_bits()).collect();
        let back_bits: Vec<u64> = decode_typed::<f64>(&store.read_segment(4, 0).unwrap().payload)
            .iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(back_bits, f64_bits);
        prop_assert_eq!(decode_typed::<u32>(&store.read_segment(4, 1).unwrap().payload), labels_u32);
        prop_assert_eq!(decode_typed::<u64>(&store.read_segment(4, 2).unwrap().payload), dists_u64);
        prop_assert_eq!(decode_typed::<bool>(&store.read_segment(4, 3).unwrap().payload), cores_bool);
        prop_assert_eq!(decode_typed::<(u64, u64)>(&store.read_segment(4, 4).unwrap().payload), msf_pairs);
        cleanup(&store);
    }

    /// Truncating any segment of the newest epoch at any point (even to
    /// zero bytes) makes the restore fall back to the previous complete
    /// epoch — a typed decision, never a panic and never a partial
    /// restore of the torn epoch.
    #[test]
    fn torn_segment_falls_back(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 8..256), 2..5),
        victim_seed in any::<usize>(),
        cut_seed in any::<usize>(),
    ) {
        let store = temp_store("torn");
        let id = RunId { workers: payloads.len() as u32, n: 9, algo: "prop::Torn".into() };
        let older = write_epoch(&store, &id, 2, &payloads);
        write_epoch(&store, &id, 4, &payloads);
        let victim_rank = (victim_seed % payloads.len()) as u32;
        let victim = store.segment_path(4, victim_rank);
        let bytes = std::fs::read(&victim).unwrap();
        let cut = cut_seed % bytes.len(); // strictly shorter than the file
        std::fs::write(&victim, &bytes[..cut]).unwrap();
        prop_assert_eq!(store.latest_restorable(&id).unwrap(), Some(older));
        cleanup(&store);
    }
}
