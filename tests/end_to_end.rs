//! Cross-crate integration tests: every algorithm, every variant, checked
//! against the sequential oracles across worker counts and both execution
//! modes.

use pc_bsp::{Config, Topology};
use pc_graph::{gen, partition, reference, Graph};
use std::sync::Arc;

fn configs(workers: usize) -> [Config; 2] {
    [Config::sequential(workers), Config::with_workers(workers)]
}

#[test]
fn pagerank_all_variants_all_worker_counts() {
    let g = Arc::new(gen::rmat(9, 3000, gen::RmatParams::default(), 1, true));
    let oracle = reference::pagerank(&g, 12);
    for workers in [1, 3, 8] {
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        for cfg in configs(workers) {
            for out in [
                pc_algos::pagerank::channel_basic(&g, &topo, &cfg, 12),
                pc_algos::pagerank::channel_scatter(&g, &topo, &cfg, 12),
                pc_algos::pagerank::pregel_basic(&g, &topo, &cfg, 12),
                pc_algos::pagerank::pregel_ghost(&g, &topo, &cfg, 12, 8),
            ] {
                for (i, (a, b)) in out.ranks.iter().zip(&oracle).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-9,
                        "workers={workers} mode={:?} vertex {i}: {a} vs {b}",
                        cfg.mode
                    );
                }
            }
        }
    }
}

#[test]
fn wcc_all_variants_on_mixed_graph() {
    // Union of a power-law core and a long path — both regimes at once.
    let mut edges: Vec<(u32, u32)> = gen::rmat_edges(9, 1200, gen::RmatParams::default(), 2);
    for i in 300..500u32 {
        edges.push((i, i + 1));
    }
    let g = Arc::new(Graph::from_edges(512, &edges, false));
    let oracle = reference::connected_components(&g);
    for workers in [1, 4] {
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        for cfg in configs(workers) {
            assert_eq!(pc_algos::wcc::channel_basic(&g, &topo, &cfg).labels, oracle);
            assert_eq!(
                pc_algos::wcc::channel_propagation(&g, &topo, &cfg).labels,
                oracle
            );
            assert_eq!(pc_algos::wcc::pregel_basic(&g, &topo, &cfg).labels, oracle);
            assert_eq!(pc_algos::wcc::blogel(&g, &topo, &cfg).labels, oracle);
        }
    }
}

#[test]
fn sv_composition_grid_on_partitioned_topology() {
    // S-V must be placement-independent: run on a partitioner-produced
    // topology as well as hash placement.
    let g = Arc::new(gen::grid2d(20, 25, 0.1, 4));
    let oracle = reference::connected_components(&g);
    let owners = partition::bfs_blocks(&*g, 4);
    for topo in [
        Arc::new(Topology::hashed(g.n(), 4)),
        Arc::new(Topology::from_owners(4, owners)),
    ] {
        let cfg = Config::sequential(4);
        assert_eq!(pc_algos::sv::channel_basic(&g, &topo, &cfg).labels, oracle);
        assert_eq!(
            pc_algos::sv::channel_reqresp(&g, &topo, &cfg).labels,
            oracle
        );
        assert_eq!(
            pc_algos::sv::channel_scatter(&g, &topo, &cfg).labels,
            oracle
        );
        assert_eq!(pc_algos::sv::channel_both(&g, &topo, &cfg).labels, oracle);
        assert_eq!(pc_algos::sv::pregel_basic(&g, &topo, &cfg).labels, oracle);
        assert_eq!(pc_algos::sv::pregel_reqresp(&g, &topo, &cfg).labels, oracle);
    }
}

#[test]
fn scc_on_web_like_graph() {
    let g = Arc::new(gen::planted_sccs(20, 8, 120, 6));
    let oracle = reference::strongly_connected_components(&g);
    for workers in [1, 4] {
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        for cfg in configs(workers) {
            assert_eq!(pc_algos::scc::channel_basic(&g, &topo, &cfg).labels, oracle);
            assert_eq!(
                pc_algos::scc::channel_propagation(&g, &topo, &cfg).labels,
                oracle
            );
            assert_eq!(pc_algos::scc::pregel_basic(&g, &topo, &cfg).labels, oracle);
        }
    }
}

#[test]
fn msf_against_kruskal() {
    let g = Arc::new(gen::rmat_weighted(
        8,
        1200,
        gen::RmatParams::default(),
        3,
        false,
        64,
    ));
    let expect_w = reference::msf_weight(&g);
    let expect_n = reference::msf_edge_count(&g);
    for workers in [1, 4] {
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        for cfg in configs(workers) {
            let a = pc_algos::msf::channel_basic(&g, &topo, &cfg);
            let b = pc_algos::msf::pregel_basic(&g, &topo, &cfg);
            assert_eq!(a.total_weight, expect_w);
            assert_eq!(a.edge_count, expect_n);
            assert_eq!(b.total_weight, expect_w);
            assert_eq!(b.edge_count, expect_n);
        }
    }
}

#[test]
fn pointer_jumping_and_sssp() {
    let parents = Arc::new(gen::random_forest_parents(3000, 11, 8));
    let roots = reference::forest_roots(&parents);
    let wg = Arc::new(gen::grid2d_weighted(20, 20, 50, 9));
    let dist: Vec<u64> = reference::sssp(&wg, 3)
        .into_iter()
        .map(|d| d.unwrap_or(u64::MAX))
        .collect();
    for workers in [1, 4] {
        let ptopo = Arc::new(Topology::hashed(parents.len(), workers));
        let wtopo = Arc::new(Topology::hashed(wg.n(), workers));
        for cfg in configs(workers) {
            assert_eq!(
                pc_algos::pointer_jumping::channel_basic(&parents, &ptopo, &cfg).roots,
                roots
            );
            assert_eq!(
                pc_algos::pointer_jumping::channel_reqresp(&parents, &ptopo, &cfg).roots,
                roots
            );
            assert_eq!(
                pc_algos::pointer_jumping::pregel_basic(&parents, &ptopo, &cfg).roots,
                roots
            );
            assert_eq!(
                pc_algos::pointer_jumping::pregel_reqresp(&parents, &ptopo, &cfg).roots,
                roots
            );
            assert_eq!(
                pc_algos::sssp::channel_basic(&wg, &wtopo, &cfg, 3).dist,
                dist
            );
            assert_eq!(
                pc_algos::sssp::pregel_basic(&wg, &wtopo, &cfg, 3).dist,
                dist
            );
        }
    }
}

#[test]
fn empty_and_degenerate_graphs() {
    // Single vertex, no edges.
    let g = Arc::new(Graph::from_edges(1, &[], false));
    let topo = Arc::new(Topology::hashed(1, 2));
    let cfg = Config::sequential(2);
    assert_eq!(
        pc_algos::wcc::channel_propagation(&g, &topo, &cfg).labels,
        vec![0]
    );
    assert_eq!(pc_algos::sv::channel_both(&g, &topo, &cfg).labels, vec![0]);

    // All isolated vertices.
    let g = Arc::new(Graph::from_edges(64, &[], false));
    let topo = Arc::new(Topology::hashed(64, 2));
    let out = pc_algos::sv::channel_both(&g, &topo, &cfg);
    assert_eq!(out.labels, (0..64u32).collect::<Vec<_>>());
    // No vertex-to-vertex traffic; only the aggregator's fixpoint
    // broadcast crosses workers.
    for name in ["reqresp", "scatter", "combined"] {
        assert_eq!(out.stats.channel(name).unwrap().bytes.remote, 0, "{name}");
    }
}

#[test]
fn more_workers_than_vertices() {
    let g = Arc::new(gen::cycle(5));
    let topo = Arc::new(Topology::hashed(5, 8));
    for cfg in configs(8) {
        let out = pc_algos::wcc::channel_basic(&g, &topo, &cfg);
        assert!(out.labels.iter().all(|&l| l == 0));
    }
}
