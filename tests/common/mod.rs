//! Shared assertions for the cross-backend determinism contract, used by
//! both the property tests and the transport-conformance suite.
#![allow(dead_code)] // each test binary uses the subset it needs

use pc_bsp::{Config, RunStats, Tcp, TcpOptions};
use std::sync::Arc;

/// Two runs of the same program must agree on *everything observable* —
/// values are checked by the caller; this covers byte counts, message
/// counts, supersteps, rounds, and even pool traffic. This is the
/// contract every execution mode and every exchange transport must
/// satisfy (transport wire counters are excluded by design: each backend
/// counts its own wire).
pub fn assert_stats_agree(name: &str, a: &RunStats, b: &RunStats) {
    assert_eq!(a.remote_bytes(), b.remote_bytes(), "{name}: remote bytes");
    assert_eq!(a.total_bytes(), b.total_bytes(), "{name}: total bytes");
    assert_eq!(a.messages(), b.messages(), "{name}: messages");
    assert_eq!(a.supersteps, b.supersteps, "{name}: supersteps");
    assert_eq!(a.rounds, b.rounds, "{name}: rounds");
    assert_eq!(a.pool, b.pool, "{name}: pool hits/misses");
    assert_eq!(a.mirrored_msgs(), b.mirrored_msgs(), "{name}: mirrored");
    assert_eq!(a.mirror_saved(), b.mirror_saved(), "{name}: mirror saved");
    assert_eq!(
        a.max_rank_msgs, b.max_rank_msgs,
        "{name}: max per-rank messages"
    );
}

/// The four backend configurations every algorithm must agree across:
/// the deterministic sequential driver (the reference), the threaded
/// driver over the shared-memory hub, the threaded driver over real
/// loopback TCP sockets, and the same socket mesh under the non-blocking
/// batched driver.
pub fn conformance_configs(workers: usize) -> [(&'static str, Config); 4] {
    [
        ("sequential", Config::sequential(workers)),
        ("in-process", Config::with_workers(workers)),
        ("tcp", Config::tcp(workers)),
        ("tcp-batched", Config::tcp_batched(workers)),
    ]
}

/// Run `run` once per rank of a simulated multi-process cluster: every
/// rank is driven through the engine's single-worker-per-process driver
/// (`Config::dist`) over a shared socket mesh, exactly as real `pcgraph
/// --rank N` processes would — same wire traffic, same gather of results
/// to rank 0. Returns rank 0's (complete, merged) output.
pub fn run_multirank<V: Send, F>(workers: usize, run: &F) -> (V, RunStats)
where
    F: Fn(&Config) -> (V, RunStats) + Sync,
{
    run_multirank_with(workers, TcpOptions::default(), run)
}

/// [`run_multirank`] over the non-blocking batched mesh driver.
pub fn run_multirank_batched<V: Send, F>(workers: usize, run: &F) -> (V, RunStats)
where
    F: Fn(&Config) -> (V, RunStats) + Sync,
{
    run_multirank_with(workers, TcpOptions::batched(), run)
}

fn run_multirank_with<V: Send, F>(workers: usize, opts: TcpOptions, run: &F) -> (V, RunStats)
where
    F: Fn(&Config) -> (V, RunStats) + Sync,
{
    let tcp = Arc::new(Tcp::loopback_with(workers, opts).expect("bind loopback mesh"));
    let mut rank0: Option<(V, RunStats)> = None;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let tcp = Arc::clone(&tcp);
            handles.push(s.spawn(move || run(&Config::rank(workers, w, tcp))));
        }
        for (w, h) in handles.into_iter().enumerate() {
            let out = h.join().expect("rank thread panicked");
            if w == 0 {
                rank0 = Some(out);
            }
        }
    });
    rank0.expect("rank 0 produced no output")
}
