//! Multi-process integration: real OS processes through the `pcgraph`
//! binary — launcher supervision, bootstrap rendezvous, partition
//! shipping, and the `--verify` arm that pins the distributed run to the
//! sequential reference (values, bytes, messages, supersteps, rounds,
//! pool — the same contract as `tests/transport_conformance.rs`, now
//! across process boundaries).
//!
//! Every launcher invocation here uses `--verify`: rank 0 re-runs the
//! sequential engine on the full graph after the distributed run and
//! exits non-zero on any divergence, so a passing exit code *is* the
//! conformance assertion.

use std::process::{Command, Output};
use std::time::Duration;

fn pcgraph() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pcgraph"));
    // Bound every child so a wedged cluster fails the test instead of
    // hanging it.
    cmd.env("PC_DIST_CONNECT_TIMEOUT_MS", "15000");
    cmd.env("PC_DIST_JOIN_TIMEOUT_MS", "120000");
    cmd
}

fn run_ok(args: &[&str]) -> Output {
    let out = pcgraph().args(args).output().expect("spawn pcgraph");
    assert!(
        out.status.success(),
        "pcgraph {args:?} failed (exit {:?})\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    out
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The acceptance bar: every shipped algorithm runs as 4 OS processes
/// with values, message counts and supersteps identical to the
/// sequential engine (asserted in-process by `--verify`).
#[test]
fn all_algorithms_verify_across_four_processes() {
    for algorithm in [
        "pagerank", "wcc", "sv", "scc", "sssp", "bfs", "kcore", "msf",
    ] {
        let out = run_ok(&[
            algorithm,
            "--gen",
            "wikipedia",
            "--scale",
            "7",
            "--ranks",
            "4",
            "--verify",
        ]);
        let err = stderr_of(&out);
        assert!(
            err.contains("verify: distributed run matches the sequential reference"),
            "{algorithm}: verification line missing\n{err}"
        );
        assert!(
            err.contains("transport tcp"),
            "{algorithm}: the run did not go over the socket mesh\n{err}"
        );
    }
}

/// The batched data-plane driver across real OS processes: every rank's
/// mesh endpoint runs the non-blocking coalescing driver, and the run
/// still verifies against the sequential reference — values, bytes,
/// messages, supersteps, rounds and pool traffic all identical.
#[test]
fn batched_transport_verifies_across_four_processes() {
    for algorithm in ["pagerank", "wcc"] {
        let out = run_ok(&[
            algorithm,
            "--gen",
            "wikipedia",
            "--scale",
            "7",
            "--ranks",
            "4",
            "--transport",
            "tcp-batched",
            "--verify",
        ]);
        let err = stderr_of(&out);
        assert!(
            err.contains("verify: distributed run matches the sequential reference"),
            "{algorithm}: verification line missing\n{err}"
        );
        assert!(
            err.contains("transport tcp-batched"),
            "{algorithm}: the run did not go over the batched mesh\n{err}"
        );
    }
}

/// Partition shipping from a real input file: only rank 0 can read it.
/// The launcher hands loader flags to rank 0 alone (follower commands do
/// not even contain the path — see the `child_args` unit tests), and the
/// run still verifies against the sequential reference, so the followers
/// demonstrably computed on shipped slices.
#[test]
fn launcher_ships_partitions_from_an_input_file() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("pc_dist_test_{}.txt", std::process::id()));
    // A little two-component graph plus isolated vertex padding.
    let mut edges = String::from("# test graph\n");
    for v in 0..40u32 {
        edges.push_str(&format!("{} {}\n", v, (v + 1) % 41));
        if v % 3 == 0 {
            edges.push_str(&format!("{} {}\n", v, 60 + v / 3));
        }
    }
    std::fs::write(&path, edges).unwrap();
    let out = run_ok(&[
        "wcc",
        "--input",
        path.to_str().unwrap(),
        "--ranks",
        "3",
        "--verify",
    ]);
    std::fs::remove_file(&path).ok();
    let err = stderr_of(&out);
    assert!(
        err.contains("verify: distributed run matches"),
        "verification line missing\n{err}"
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("components"),
        "rank 0 printed no result"
    );
}

/// LDG partitioning works distributed: rank 0 partitions, ships the owner
/// table, and the placement-sensitive propagation channel still conforms.
#[test]
fn partitioned_distributed_run_verifies() {
    let out = run_ok(&[
        "wcc",
        "--gen",
        "road",
        "--scale",
        "8",
        "--ranks",
        "3",
        "--partition",
        "--verify",
    ]);
    let err = stderr_of(&out);
    assert!(
        err.contains("ldg partition"),
        "partitioner did not run\n{err}"
    );
    assert!(err.contains("verify: distributed run matches"), "{err}");
}

/// The full skew-resistance stack works across real OS processes: rank 0
/// partitions degree-first, builds the mirror plan, ships it inside every
/// follower's PLAN frame, all four ranks pre-wire their Mirror channels,
/// and the run still matches the sequential reference byte for byte —
/// mirror counters and per-rank message volume included.
#[test]
fn mirrored_distributed_run_verifies() {
    let out = run_ok(&[
        "wcc",
        "--gen",
        "facebook",
        "--scale",
        "10",
        "--ranks",
        "4",
        "--transport",
        "tcp-batched",
        "--variant",
        "mirror",
        "--partitioner",
        "ldg-deg",
        "--mirror-threshold",
        "auto",
        "--verify",
    ]);
    let err = stderr_of(&out);
    assert!(
        err.contains("ldg-deg partition"),
        "partitioner did not run\n{err}"
    );
    assert!(err.contains("hubs mirrored"), "no mirror plan built\n{err}");
    assert!(err.contains("ghost broadcasts"), "mirroring inert\n{err}");
    assert!(err.contains("verify: distributed run matches"), "{err}");
}

/// A single-rank "cluster" is legal (debugging shape).
#[test]
fn single_rank_cluster_runs() {
    run_ok(&[
        "wcc",
        "--gen",
        "wikipedia",
        "--scale",
        "7",
        "--ranks",
        "1",
        "--verify",
    ]);
}

#[test]
fn unknown_flags_are_rejected_with_usage_exit() {
    let out = pcgraph().args(["wcc", "--frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("unknown flag '--frobnicate'"));
    let out = pcgraph()
        .args(["wcc", "stray-positional"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = pcgraph().args(["not-an-algorithm"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = pcgraph()
        .args(["wcc", "--rank", "1", "--ranks", "2"]) // no --coordinator
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn help_prints_to_stdout_and_exits_zero() {
    let out = pcgraph().arg("--help").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("--ranks"));
    assert!(text.contains("--coordinator"));
}

#[test]
fn engine_errors_exit_nonzero() {
    // Unreadable input: runtime error, exit 1.
    let out = pcgraph()
        .args(["wcc", "--input", "/nonexistent/graph.txt"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("cannot read"));
    // Same through the launcher: the failing rank's code propagates.
    let out = pcgraph()
        .args(["wcc", "--input", "/nonexistent/graph.txt", "--ranks", "2"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("rank 0 failed"));
}

/// A rank pointed at a dead coordinator fails fast with the bootstrap
/// exit code — a typed error, never a hang.
#[test]
fn dead_coordinator_is_a_typed_bootstrap_failure() {
    let out = pcgraph()
        .env("PC_DIST_CONNECT_TIMEOUT_MS", "400")
        .args([
            "wcc",
            "--rank",
            "1",
            "--ranks",
            "2",
            "--coordinator",
            "127.0.0.1:1",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("bootstrap failed"));
}

/// A cluster whose followers never appear dies at the rendezvous
/// deadline with a typed failure (and the launcher reaps everything).
#[test]
fn missing_ranks_time_out() {
    // Rank 0 alone, expecting a second rank that never joins.
    let addr = {
        let l = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        l.local_addr().unwrap()
    };
    let start = std::time::Instant::now();
    let out = pcgraph()
        .env("PC_DIST_CONNECT_TIMEOUT_MS", "500")
        .args([
            "wcc",
            "--gen",
            "wikipedia",
            "--scale",
            "7",
            "--rank",
            "0",
            "--ranks",
            "2",
            "--coordinator",
            &addr.to_string(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("timed out"));
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "rendezvous timeout did not bound the wait"
    );
}
