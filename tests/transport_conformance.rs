//! Backend-conformance harness: every exchange transport must be
//! observationally identical.
//!
//! The channel abstraction separates what a channel computes from how
//! messages move between workers; this suite pins the second half down.
//! For every shipped algorithm, four backend configurations — sequential
//! (the deterministic reference), threaded over the shared-memory hub,
//! threaded over real loopback TCP sockets, and one-worker-per-"process"
//! ranks over a shared socket mesh (the multi-process driver, gather
//! included) — must produce identical values, message counts, byte
//! counts, supersteps, rounds, pool traffic, and per-round wire order. A
//! transport that reorders, drops, duplicates or re-times anything fails
//! here first. (Real separate-OS-process conformance, partition shipping
//! included, is pinned by `tests/dist_multiprocess.rs` via `pcgraph
//! --ranks N --verify`.)

mod common;

use common::{assert_stats_agree, conformance_configs, run_multirank, run_multirank_batched};
use pc_bsp::{Config, RunStats, Topology};
use pc_graph::gen;
use proptest::prelude::*;
use std::sync::Arc;

const WORKERS: usize = 4;

/// Run one algorithm under all five backend configurations and assert
/// the values and every observable statistic agree with the sequential
/// reference.
fn conform<V: PartialEq + std::fmt::Debug + Send>(
    name: &str,
    run: impl Fn(&Config) -> (V, RunStats) + Sync,
) {
    let configs = conformance_configs(WORKERS);
    let (base_label, base_cfg) = &configs[0];
    let (base_values, base_stats) = run(base_cfg);
    for (label, cfg) in &configs[1..] {
        let (values, stats) = run(cfg);
        assert!(
            values == base_values,
            "{name}: values diverge between {base_label} and {label}"
        );
        assert_stats_agree(
            &format!("{name} ({base_label} vs {label})"),
            &base_stats,
            &stats,
        );
    }
    // The multi-process arms: every rank in its own engine driver over a
    // shared mesh (synchronous and batched), results gathered to rank 0
    // over the wire.
    for (label, (values, stats)) in [
        ("multi-process ranks", run_multirank(WORKERS, &run)),
        (
            "multi-process ranks (batched)",
            run_multirank_batched(WORKERS, &run),
        ),
    ] {
        assert!(
            values == base_values,
            "{name}: values diverge between {base_label} and {label}"
        );
        assert_stats_agree(
            &format!("{name} ({base_label} vs {label})"),
            &base_stats,
            &stats,
        );
    }
}

fn undirected() -> Arc<pc_graph::Graph> {
    Arc::new(gen::rmat(8, 1400, gen::RmatParams::default(), 11, false).symmetrized())
}

fn directed() -> Arc<pc_graph::Graph> {
    Arc::new(gen::rmat(8, 1800, gen::RmatParams::default(), 12, true))
}

#[test]
fn pagerank_conforms() {
    let g = directed();
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    conform("pagerank_scatter", |cfg| {
        let o = pc_algos::pagerank::channel_scatter(&g, &topo, cfg, 12);
        (o.ranks, o.stats)
    });
}

#[test]
fn wcc_conforms() {
    let g = undirected();
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    conform("wcc_propagation", |cfg| {
        let o = pc_algos::wcc::channel_propagation(&g, &topo, cfg);
        (o.labels, o.stats)
    });
    conform("wcc_basic", |cfg| {
        let o = pc_algos::wcc::channel_basic(&g, &topo, cfg);
        (o.labels, o.stats)
    });
}

/// The skew-resistant composition (degree-sorted LDG owners + a shipped
/// mirror plan pre-wiring the Mirror channel) is observationally
/// identical across every transport, multi-process ranks included.
#[test]
fn wcc_mirror_conforms() {
    let g = undirected();
    let owners = pc_graph::partition::ldg_deg(&*g, WORKERS, 2);
    let base = Topology::from_owners(WORKERS, owners);
    let tau = pc_graph::partition::default_mirror_threshold(&*g);
    let plan = pc_graph::partition::build_mirror_plan(&*g, &base, tau);
    let topo = Arc::new(base.with_mirror(Arc::new(plan)));
    conform("wcc_mirror", |cfg| {
        let o = pc_algos::wcc::channel_mirror(&g, &topo, cfg, tau);
        (o.labels, o.stats)
    });
    conform("pagerank_mirror", |cfg| {
        let o = pc_algos::pagerank::channel_mirror(&g, &topo, cfg, 10, tau);
        (o.ranks, o.stats)
    });
}

#[test]
fn sv_conforms() {
    let g = undirected();
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    conform("sv_both", |cfg| {
        let o = pc_algos::sv::channel_both(&g, &topo, cfg);
        (o.labels, o.stats)
    });
}

#[test]
fn scc_conforms() {
    let g = directed();
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    conform("scc_propagation", |cfg| {
        let o = pc_algos::scc::channel_propagation(&g, &topo, cfg);
        (o.labels, o.stats)
    });
}

#[test]
fn sssp_conforms() {
    let g = Arc::new(gen::grid2d_weighted(14, 14, 9, 21));
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    conform("sssp_propagation", |cfg| {
        let o = pc_algos::sssp::channel_propagation(&g, &topo, cfg, 0);
        (o.dist, o.stats)
    });
}

#[test]
fn bfs_conforms() {
    let g = undirected();
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    conform("bfs", |cfg| {
        let o = pc_algos::kernels::bfs(&g, &topo, cfg, 0);
        (o.level, o.stats)
    });
}

#[test]
fn kcore_conforms() {
    let g = undirected();
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    conform("kcore", |cfg| {
        let o = pc_algos::kernels::kcore(&g, &topo, cfg, 2);
        (o.in_core, o.stats)
    });
}

#[test]
fn msf_conforms() {
    let g = Arc::new(gen::rmat_weighted(
        8,
        1200,
        gen::RmatParams::default(),
        13,
        false,
        1000,
    ));
    let topo = Arc::new(Topology::hashed(g.n(), WORKERS));
    conform("msf", |cfg| {
        let o = pc_algos::msf::channel_basic(&g, &topo, cfg);
        ((o.total_weight, o.edge_count), o.stats)
    });
}

#[test]
fn pointer_jumping_conforms() {
    let parents = Arc::new(gen::random_forest_parents(180, 9, 17));
    let topo = Arc::new(Topology::hashed(parents.len(), WORKERS));
    conform("pj_reqresp", |cfg| {
        let o = pc_algos::pointer_jumping::channel_reqresp(&parents, &topo, cfg);
        (o.roots, o.stats)
    });
}

// ---------------------------------------------------------------------
// Wire-order probe: the order frames arrive in must be identical across
// backends, not just the values they converge to.
// ---------------------------------------------------------------------

mod wire_order {
    use super::*;
    use pc_bsp::Codec;
    use pc_channels::channel::{Channel, DeserializeCx, SerializeCx, VertexCtx, WorkerEnv};
    use pc_channels::engine::{run, Algorithm};
    use std::sync::Mutex;

    /// One observed frame: `(receiving worker, superstep, sender,
    /// sender-claimed rank, payload length)`.
    type Seen = (usize, u64, usize, u32, usize);

    /// A channel that broadcasts a tagged payload to every peer each
    /// superstep and records exactly what it sees on deserialize, in
    /// arrival order.
    struct WireProbe {
        env: WorkerEnv,
        step: u64,
        log: Arc<Mutex<Vec<Vec<Seen>>>>,
        messages: u64,
    }

    impl Channel<u64> for WireProbe {
        fn name(&self) -> &'static str {
            "wire-probe"
        }
        fn before_superstep(&mut self, step: u64) {
            self.step = step;
        }
        fn serialize(&mut self, cx: &mut SerializeCx<'_>) {
            // Variable-length payloads so framing/short-read bugs shift
            // byte counts, not just ordering.
            for peer in 0..cx.workers() {
                cx.frame(peer, |buf| {
                    (self.env.worker as u32).encode(buf);
                    self.step.encode(buf);
                    for i in 0..(self.env.worker + peer) {
                        (i as u8).encode(buf);
                    }
                });
                self.messages += 1;
            }
        }
        fn deserialize(&mut self, cx: &mut DeserializeCx<'_, u64>) {
            let worker = self.env.worker;
            let mut log = self.log.lock().unwrap();
            for (from, mut r) in cx.frames() {
                let claimed: u32 = r.get();
                let step: u64 = r.get();
                log[worker].push((worker, step, from, claimed, r.remaining()));
            }
        }
        fn message_count(&self) -> u64 {
            self.messages
        }
    }

    struct WireProbeAlgo {
        steps: u64,
        log: Arc<Mutex<Vec<Vec<Seen>>>>,
    }

    impl Algorithm for WireProbeAlgo {
        type Value = u64;
        type Channels = (WireProbe,);
        pc_channels::dist_value_via_codec!();
        fn channels(&self, env: &WorkerEnv) -> Self::Channels {
            (WireProbe {
                env: env.clone(),
                step: 0,
                log: Arc::clone(&self.log),
                messages: 0,
            },)
        }
        fn compute(&self, v: &mut VertexCtx<'_>, _value: &mut u64, _ch: &mut Self::Channels) {
            if v.step() >= self.steps {
                v.vote_to_halt();
            }
        }
    }

    /// Every backend delivers the same frames, from the same senders, in
    /// the same per-worker order, with the same payload bytes.
    #[test]
    fn wire_order_is_identical_across_backends() {
        let topo = Arc::new(Topology::hashed(64, WORKERS));
        let mut reference: Option<Vec<Vec<Seen>>> = None;
        for (label, cfg) in conformance_configs(WORKERS) {
            let log = Arc::new(Mutex::new(vec![Vec::new(); WORKERS]));
            let algo = WireProbeAlgo {
                steps: 6,
                log: Arc::clone(&log),
            };
            let out = run(&algo, &topo, &cfg);
            assert_eq!(out.stats.supersteps, 6);
            drop(algo); // release the algorithm's clone of the log
            let seen = Arc::try_unwrap(log).unwrap().into_inner().unwrap();
            for (w, entries) in seen.iter().enumerate() {
                // Sanity inside one run: frames arrive in ascending
                // sender order each superstep and claim their sender.
                assert!(!entries.is_empty(), "{label}: worker {w} saw nothing");
                for e in entries {
                    assert_eq!(e.2 as u32, e.3, "{label}: sender id vs claimed");
                }
            }
            match &reference {
                None => reference = Some(seen),
                Some(expect) => {
                    assert_eq!(
                        expect, &seen,
                        "{label}: wire order diverges from the sequential reference"
                    );
                }
            }
        }
        // Multi-process arms (synchronous and batched mesh): each rank
        // drives its own algorithm instance (as separate processes
        // would) over a shared mesh; the shared log shows the same
        // frames in the same per-worker order. The batched arm is the
        // sharpest probe of coalescing: super-frames must split back
        // into the exact frames, in the exact order, every round.
        for (label, opts) in [
            ("multi-process ranks", pc_bsp::TcpOptions::default()),
            (
                "multi-process ranks (batched)",
                pc_bsp::TcpOptions::batched(),
            ),
        ] {
            let log = Arc::new(Mutex::new(vec![Vec::new(); WORKERS]));
            let tcp = Arc::new(pc_bsp::Tcp::loopback_with(WORKERS, opts).unwrap());
            std::thread::scope(|s| {
                for w in 0..WORKERS {
                    let log = Arc::clone(&log);
                    let tcp = Arc::clone(&tcp);
                    let topo = Arc::clone(&topo);
                    s.spawn(move || {
                        let algo = WireProbeAlgo { steps: 6, log };
                        let out = run(&algo, &topo, &Config::rank(WORKERS, w, tcp));
                        assert_eq!(out.stats.supersteps, 6);
                    });
                }
            });
            let seen = Arc::try_unwrap(log).unwrap().into_inner().unwrap();
            assert_eq!(
                reference.as_ref().unwrap(),
                &seen,
                "{label}: wire order diverges from the sequential reference"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Property extension of the PR 1 cross-mode tests: random graphs, all
// three backends, the same everything-observable contract.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// WCC and S-V agree across sequential / in-process / tcp on random
    /// graphs — the property-test arm of the conformance contract.
    #[test]
    fn random_graphs_conform_across_transports(
        n in 8usize..90,
        m in 0usize..220,
        seed in 0u64..500,
        workers in 2usize..4,
    ) {
        let g = Arc::new(gen::rmat(7, m.max(n / 2), gen::RmatParams::default(), seed, false)
            .symmetrized());
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        let configs = conformance_configs(workers);
        let base_wcc = pc_algos::wcc::channel_propagation(&g, &topo, &configs[0].1);
        let base_sv = pc_algos::sv::channel_both(&g, &topo, &configs[0].1);
        for (label, cfg) in &configs[1..] {
            let wcc = pc_algos::wcc::channel_propagation(&g, &topo, cfg);
            prop_assert_eq!(&wcc.labels, &base_wcc.labels, "wcc values on {}", label);
            assert_stats_agree(&format!("wcc ({label})"), &base_wcc.stats, &wcc.stats);
            let sv = pc_algos::sv::channel_both(&g, &topo, cfg);
            prop_assert_eq!(&sv.labels, &base_sv.labels, "sv values on {}", label);
            assert_stats_agree(&format!("sv ({label})"), &base_sv.stats, &sv.stats);
        }
        // Multi-process ranks over a shared mesh, random graphs included
        // — synchronous and batched.
        let (labels, stats) = run_multirank(workers, &|cfg: &Config| {
            let o = pc_algos::wcc::channel_propagation(&g, &topo, cfg);
            (o.labels, o.stats)
        });
        prop_assert_eq!(&labels, &base_wcc.labels, "wcc values on multi-process ranks");
        assert_stats_agree("wcc (multi-process ranks)", &base_wcc.stats, &stats);
        let (labels, stats) = run_multirank_batched(workers, &|cfg: &Config| {
            let o = pc_algos::wcc::channel_propagation(&g, &topo, cfg);
            (o.labels, o.stats)
        });
        prop_assert_eq!(
            &labels,
            &base_wcc.labels,
            "wcc values on batched multi-process ranks"
        );
        assert_stats_agree(
            "wcc (batched multi-process ranks)",
            &base_wcc.stats,
            &stats,
        );
    }

    /// Coalescing N sub-frames into a super-frame and splitting them back
    /// is a byte-exact round trip — tags, payload bytes and order all
    /// survive, for any mix of sub-frame sizes (empty `SKIP`s included).
    #[test]
    fn batch_coalescing_roundtrips_byte_exactly(
        frames in proptest::collection::vec(
            (0usize..4, proptest::collection::vec(any::<u8>(), 0..200)),
            1..24,
        ),
    ) {
        use pc_bsp::tcp::{decode_batch, encode_batch, TAG_DATA, TAG_REDUCE, TAG_RESULT, TAG_SKIP};
        let tags = [TAG_DATA, TAG_SKIP, TAG_REDUCE, TAG_RESULT];
        let frames: Vec<(u8, Vec<u8>)> = frames
            .into_iter()
            .map(|(t, payload)| (tags[t], payload))
            .collect();
        let wire = encode_batch(&frames);
        let split = decode_batch(&wire, 3).expect("well-formed batch must decode");
        prop_assert_eq!(&split, &frames, "batch round trip diverged");
        // And re-encoding the split reproduces the wire bytes exactly.
        prop_assert_eq!(encode_batch(&split), wire);
    }
}
