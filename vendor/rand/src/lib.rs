//! Minimal, deterministic stand-in for the `rand` crate (offline build).
//!
//! Implements exactly the surface this workspace uses: a seedable
//! [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64) and the
//! [`RngExt`] extension trait with `random::<T>()` and
//! `random_range(range)`. Same seed → same sequence, forever — which is
//! all the graph generators need.

/// A source of 64-bit randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

/// Map a uniform `u64` onto `0..span` (Lemire's multiply-shift; a hair of
/// bias at astronomical spans, irrelevant for test-scale graph generation).
#[inline]
fn reduce(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

/// The convenience surface of modern `rand`: `random` / `random_range`.
pub trait RngExt: RngCore {
    /// Sample a value uniformly over `T`'s domain (floats: `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> RngExt for T {}

pub mod rngs {
    //! Concrete RNGs.
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — fast, solid statistical quality, deterministic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.random()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.random()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(1u32..=5);
            assert!((1..=5).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn small_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
