//! Minimal stand-in for the `parking_lot` crate (offline build).
//!
//! Provides the poison-free `Mutex` API this workspace uses, implemented
//! over `std::sync::Mutex` (poisoning is swallowed — a panicked critical
//! section still leaves the data accessible, as parking_lot does).

use std::fmt;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
