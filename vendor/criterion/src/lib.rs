//! Minimal stand-in for the `criterion` crate (offline build).
//!
//! Same API shape (`Criterion`, `benchmark_group`, `bench_function`,
//! `iter`/`iter_batched`, `criterion_group!`/`criterion_main!`) but a much
//! simpler engine: warm up, then time batches of iterations until the
//! measurement budget is spent, and report min/median/mean per benchmark.
//! No statistics beyond that, no plots, no baseline files — enough to
//! compare code paths on one machine in one run.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (accepted for API compatibility;
/// the shim always re-runs setup per measured batch element).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` forwards CLI args; the first non-flag argument is
        // treated as a substring filter, like real criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            filter,
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        self.run_one(&id, f);
    }

    fn run_one(&self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            measurement: self.measurement_time,
            samples: self.sample_size,
            per_iter_ns: Vec::new(),
        };
        f(&mut b);
        report(id, &mut b.per_iter_ns);
    }
}

/// A group of benchmarks sharing a name prefix and the parent's config.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&id, f);
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    /// Benchmark a routine.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: also estimates the per-iteration cost to size batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measurement.as_secs_f64();
        let iters_per_sample =
            ((budget / self.samples as f64) / per_iter.max(1e-9)).max(1.0) as u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.per_iter_ns.push(ns);
        }
    }

    /// Benchmark a routine with a per-iteration setup whose cost is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
        }
        let _ = warm_iters;
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.per_iter_ns.push(t.elapsed().as_nanos() as f64);
        }
    }
}

fn report(id: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{id:<48} min {:>10}  median {:>10}  mean {:>10}  ({} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        samples.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
