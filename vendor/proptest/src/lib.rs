//! Minimal stand-in for the `proptest` crate (offline build).
//!
//! Supports the subset this workspace uses: range and tuple strategies,
//! `any::<T>()`, `prop_map`/`prop_flat_map`, `collection::vec`, the
//! `proptest!` macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` macros. Cases are generated from a seed derived from the
//! test name, so failures reproduce deterministically; there is no
//! shrinking — the failing inputs are printed instead.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded from the test name and case index, so every run of a given
    /// binary explores the same inputs.
    pub fn deterministic(name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy built from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A:0);
tuple_strategy!(A:0, B:1);
tuple_strategy!(A:0, B:1, C:2);
tuple_strategy!(A:0, B:1, C:2, D:3);
tuple_strategy!(A:0, B:1, C:2, D:3, E:4);

/// Types with a whole-domain default strategy (see [`any`]).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Any bit pattern — including NaN and infinities, like proptest.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// Strategy over a type's whole domain.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification accepted by [`vec`]: an exact `usize` or a
    /// `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = &self.len.0;
            let n = if len.is_empty() {
                0
            } else {
                len.clone().generate(rng)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual imports.
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Assert inside a property, printing the case inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); ) => {};
    ( ($cfg:expr);
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name), case);
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                // The test harness captures this; it surfaces only when the
                // case below fails, which substitutes for shrinking output.
                println!("[{} case {case}]", stringify!($name));
                $( println!("  {} = {:?}", stringify!($arg), $arg); )+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::deterministic("x", 3);
        let mut b = crate::TestRng::deterministic("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(n in 2usize..50, v in 0u32..10) {
            prop_assert!((2..50).contains(&n));
            prop_assert!(v < 10);
        }

        #[test]
        fn vec_lengths(items in crate::collection::vec((0u32..5, 0u32..5), 0..20)) {
            prop_assert!(items.len() < 20);
            for (a, b) in items {
                prop_assert!(a < 5 && b < 5);
            }
        }

        #[test]
        fn flat_map_composes(pair in (2usize..10).prop_flat_map(|n| (0..n).prop_map(move |i| (n, i)))) {
            prop_assert!(pair.1 < pair.0);
        }
    }
}
