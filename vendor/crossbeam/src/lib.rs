//! Minimal stand-in for the `crossbeam` crate (offline build): only
//! `utils::CachePadded`, which the exchange layer uses to keep per-worker
//! hot atomics on separate cache lines.

pub mod utils {
    //! Synchronization utilities.
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns `T` to (at least) one cache line to prevent false
    /// sharing between adjacent per-worker slots.
    #[derive(Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wrap a value.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwrap the value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.value.fmt(f)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::CachePadded;

        #[test]
        fn alignment_and_deref() {
            let p = CachePadded::new(7u64);
            assert_eq!(*p, 7);
            assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
            assert_eq!(p.into_inner(), 7);
        }
    }
}
