//! Compressed sparse row graphs.
//!
//! Vertex ids are dense `u32` in `0..n`. A [`Graph<W>`] stores an
//! out-adjacency CSR; undirected graphs are symmetrized at construction so
//! that `neighbors(v)` always yields every incident edge (the paper's
//! "neighborhood communication" iterates exactly this set).

/// Dense vertex identifier.
pub type VertexId = u32;

/// Convenience alias for an edge-weighted graph (weights as `u32`).
pub type WeightedGraph = Graph<u32>;

/// A CSR graph, optionally edge-weighted.
///
/// `W = ()` (the default) means unweighted; the weight vector is then a
/// zero-sized no-op.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph<W = ()> {
    n: usize,
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    weights: Vec<W>,
    directed: bool,
}

impl<W: Copy + Default> Graph<W> {
    /// Build from weighted edges. For undirected graphs every edge is
    /// inserted in both directions (self-loops once). Parallel edges are
    /// preserved — generators dedup when they need to.
    pub fn from_weighted_edges(
        n: usize,
        edges: &[(VertexId, VertexId, W)],
        directed: bool,
    ) -> Self {
        for &(u, v, _) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range 0..{n}"
            );
        }
        let mut deg = vec![0usize; n];
        for &(u, v, _) in edges {
            deg[u as usize] += 1;
            if !directed && u != v {
                deg[v as usize] += 1;
            }
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        let m = offsets[n];
        let mut targets = vec![0 as VertexId; m];
        let mut weights = vec![W::default(); m];
        let mut cursor = offsets.clone();
        for &(u, v, w) in edges {
            let c = &mut cursor[u as usize];
            targets[*c] = v;
            weights[*c] = w;
            *c += 1;
            if !directed && u != v {
                let c = &mut cursor[v as usize];
                targets[*c] = u;
                weights[*c] = w;
                *c += 1;
            }
        }
        // Sort each adjacency list (by target, then weight) for determinism.
        let mut g = Graph {
            n,
            offsets,
            targets,
            weights,
            directed,
        };
        g.sort_adjacency();
        g
    }

    fn sort_adjacency(&mut self)
    where
        W: Copy,
    {
        for v in 0..self.n {
            let range = self.offsets[v]..self.offsets[v + 1];
            let mut pairs: Vec<(VertexId, W)> = range
                .clone()
                .map(|i| (self.targets[i], self.weights[i]))
                .collect();
            pairs.sort_by_key(|&(t, _)| t);
            for (i, (t, w)) in range.zip(pairs) {
                self.targets[i] = t;
                self.weights[i] = w;
            }
        }
    }

    /// The undirected view of this graph: every arc becomes a symmetric
    /// edge (duplicates merged). Used by WCC/S-V on directed inputs.
    pub fn symmetrized(&self) -> Self {
        if !self.directed {
            return self.clone();
        }
        let mut edges: Vec<(VertexId, VertexId, W)> = self
            .arcs()
            .map(|(u, v, w)| if u <= v { (u, v, w) } else { (v, u, w) })
            .collect();
        edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        edges.dedup_by_key(|&mut (u, v, _)| (u, v));
        Graph::from_weighted_edges(self.n, &edges, false)
    }

    /// The transposed graph (in-edges become out-edges). For undirected
    /// graphs this is a (sorted) copy.
    pub fn reverse(&self) -> Self {
        let mut edges = Vec::with_capacity(self.targets.len());
        for u in 0..self.n as VertexId {
            for (v, w) in self.neighbors_weighted(u) {
                edges.push((v, u, w));
            }
        }
        // The symmetrized edge set of an undirected graph already contains
        // both directions, so rebuild as directed to avoid doubling.
        Graph::from_weighted_edges(self.n, &edges, true)
    }
}

impl Graph<()> {
    /// Build an unweighted graph from `(src, dst)` pairs.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)], directed: bool) -> Self {
        let weighted: Vec<(VertexId, VertexId, ())> =
            edges.iter().map(|&(u, v)| (u, v, ())).collect();
        Graph::from_weighted_edges(n, &weighted, directed)
    }
}

impl<W: Copy + Default> Graph<W> {
    /// Rebuild a graph from raw CSR arrays (the inverse of
    /// [`Graph::csr_parts`]), validating the invariants a decoder cannot
    /// assume: monotone offsets covering `targets`, weights parallel to
    /// targets, every target in range.
    ///
    /// Row contents are adopted **verbatim** — no re-sorting — so a
    /// decoded graph is bit-identical to the encoded one (adjacency order
    /// is part of the engine's determinism contract).
    pub fn from_csr_parts(
        n: usize,
        offsets: Vec<usize>,
        targets: Vec<VertexId>,
        weights: Vec<W>,
        directed: bool,
    ) -> Result<Self, String> {
        if offsets.len() != n + 1 {
            return Err(format!("{} offsets for {n} vertices", offsets.len()));
        }
        if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets are not monotone from 0".to_string());
        }
        if offsets[n] != targets.len() {
            return Err(format!(
                "offsets cover {} arcs but {} targets given",
                offsets[n],
                targets.len()
            ));
        }
        if weights.len() != targets.len() {
            return Err(format!(
                "{} weights for {} targets",
                weights.len(),
                targets.len()
            ));
        }
        if let Some(&t) = targets.iter().find(|&&t| t as usize >= n) {
            return Err(format!("target {t} out of range 0..{n}"));
        }
        Ok(Graph {
            n,
            offsets,
            targets,
            weights,
            directed,
        })
    }

    /// The vertical slice of this graph owned by one worker: adjacency is
    /// kept verbatim (same order, same weights) for vertices where
    /// `keep(v)` and empty elsewhere, with the global id space unchanged.
    ///
    /// This is what partition shipping sends each rank: a rank computes
    /// only on the vertices it owns, so it needs only their rows — the
    /// slice behaves identically to the full graph for every local-vertex
    /// query while storing only the local arcs.
    pub fn restrict_rows(&self, keep: impl Fn(VertexId) -> bool) -> Self {
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0usize);
        let mut targets = Vec::new();
        let mut weights = Vec::new();
        for v in 0..self.n as VertexId {
            if keep(v) {
                let range = self.offsets[v as usize]..self.offsets[v as usize + 1];
                targets.extend_from_slice(&self.targets[range.clone()]);
                weights.extend_from_slice(&self.weights[range]);
            }
            offsets.push(targets.len());
        }
        Graph {
            n: self.n,
            offsets,
            targets,
            weights,
            directed: self.directed,
        }
    }
}

impl<W: Copy> Graph<W> {
    /// The raw CSR arrays: `(n, offsets, targets, weights, directed)`.
    /// Together with [`Graph::from_csr_parts`] this is the graph's
    /// serialization surface (see `io::encode_graph`).
    pub fn csr_parts(&self) -> (usize, &[usize], &[VertexId], &[W], bool) {
        (
            self.n,
            &self.offsets,
            &self.targets,
            &self.weights,
            self.directed,
        )
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored (directed) arcs. For an undirected graph each edge
    /// counts twice (self-loops once).
    pub fn arc_count(&self) -> usize {
        self.targets.len()
    }

    /// Number of logical edges: arcs for directed graphs, arcs adjusted for
    /// symmetrization otherwise.
    pub fn edge_count(&self) -> usize {
        if self.directed {
            self.arc_count()
        } else {
            let self_loops = (0..self.n as VertexId)
                .map(|v| self.neighbors(v).iter().filter(|&&t| t == v).count())
                .sum::<usize>();
            (self.arc_count() - self_loops) / 2 + self_loops
        }
    }

    /// Whether the graph was built as directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Out-neighbors of `v` (sorted).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Edge weights of `v`'s out-edges, parallel to [`Graph::neighbors`].
    #[inline]
    pub fn weights(&self, v: VertexId) -> &[W] {
        &self.weights[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Iterate `(target, weight)` pairs of `v`'s out-edges.
    pub fn neighbors_weighted(&self, v: VertexId) -> impl Iterator<Item = (VertexId, W)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.weights(v).iter().copied())
    }

    /// Iterate all arcs as `(src, dst, weight)`.
    pub fn arcs(&self) -> impl Iterator<Item = (VertexId, VertexId, W)> + '_ {
        (0..self.n as VertexId)
            .flat_map(move |u| self.neighbors_weighted(u).map(move |(v, w)| (u, v, w)))
    }

    /// Iterate vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.n as VertexId
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_graph_basics() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (2, 3), (3, 0)], true);
        assert_eq!(g.n(), 4);
        assert_eq!(g.arc_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
        assert_eq!(g.degree(3), 1);
        assert!(g.is_directed());
    }

    #[test]
    fn undirected_graph_symmetrizes() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], false);
        assert_eq!(g.arc_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
    }

    #[test]
    fn self_loop_inserted_once_when_undirected() {
        let g = Graph::from_edges(2, &[(0, 0), (0, 1)], false);
        assert_eq!(g.neighbors(0), &[0, 1]);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn weighted_edges_kept_parallel_to_targets() {
        let g = Graph::from_weighted_edges(3, &[(0, 2, 9u32), (0, 1, 5)], true);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.weights(0), &[5, 9]);
        let pairs: Vec<_> = g.neighbors_weighted(0).collect();
        assert_eq!(pairs, vec![(1, 5), (2, 9)]);
    }

    #[test]
    fn reverse_transposes() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)], true);
        let r = g.reverse();
        assert_eq!(r.neighbors(2), &[0, 1]);
        assert_eq!(r.neighbors(0), &[] as &[u32]);
        assert_eq!(r.arc_count(), 3);
    }

    #[test]
    fn reverse_of_undirected_preserves_adjacency() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], false);
        let r = g.reverse();
        for v in 0..4u32 {
            assert_eq!(r.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn arcs_iterator_covers_everything() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 7u32), (2, 0, 3)], true);
        let arcs: Vec<_> = g.arcs().collect();
        assert_eq!(arcs, vec![(0, 1, 7), (2, 0, 3)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Graph::from_edges(2, &[(0, 5)], true);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[], true);
        assert_eq!(g.n(), 0);
        assert_eq!(g.arc_count(), 0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn parallel_edges_preserved() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1)], true);
        assert_eq!(g.neighbors(0), &[1, 1]);
        assert_eq!(g.arc_count(), 2);
    }

    #[test]
    fn csr_parts_roundtrip_is_identity() {
        let g = Graph::from_weighted_edges(4, &[(0, 1, 7u32), (0, 2, 3), (2, 3, 1)], true);
        let (n, offsets, targets, weights, directed) = g.csr_parts();
        let g2 = Graph::from_csr_parts(
            n,
            offsets.to_vec(),
            targets.to_vec(),
            weights.to_vec(),
            directed,
        )
        .unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn from_csr_parts_rejects_malformed_input() {
        // Offsets not covering targets.
        assert!(
            Graph::<()>::from_csr_parts(2, vec![0, 1, 1], vec![1, 0], vec![(); 2], true).is_err()
        );
        // Non-monotone offsets.
        assert!(Graph::<()>::from_csr_parts(2, vec![0, 2, 1], vec![1], vec![(); 1], true).is_err());
        // Target out of range.
        assert!(Graph::<()>::from_csr_parts(2, vec![0, 1, 1], vec![5], vec![(); 1], true).is_err());
        // Weights not parallel to targets.
        assert!(Graph::<u32>::from_csr_parts(2, vec![0, 1, 1], vec![1], vec![], true).is_err());
        // Wrong offset count.
        assert!(Graph::<()>::from_csr_parts(2, vec![0, 0], vec![], vec![], true).is_err());
    }

    #[test]
    fn restrict_rows_keeps_kept_rows_verbatim() {
        let g = Graph::from_weighted_edges(
            5,
            &[(0, 2, 9u32), (0, 1, 5), (1, 3, 2), (3, 4, 1), (4, 0, 8)],
            true,
        );
        let s = g.restrict_rows(|v| v % 2 == 0);
        assert_eq!(s.n(), g.n());
        for v in 0..5u32 {
            if v % 2 == 0 {
                assert_eq!(s.neighbors(v), g.neighbors(v), "kept row {v}");
                assert_eq!(s.weights(v), g.weights(v), "kept weights {v}");
            } else {
                assert_eq!(s.degree(v), 0, "dropped row {v}");
            }
        }
        assert!(s.arc_count() < g.arc_count());
        assert_eq!(s.is_directed(), g.is_directed());
    }
}
