//! Plain edge-list persistence.
//!
//! The paper loads graphs from HDFS; we read/write the ubiquitous
//! whitespace-separated edge-list format (`src dst [weight]` per line,
//! `#`-prefixed comments ignored), which is what SNAP/KONECT datasets ship
//! as, so real data can be dropped in if available.

use crate::csr::{Graph, VertexId, WeightedGraph};
use pc_bsp::{Codec, Reader};
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Read an unweighted edge list. `directed` controls symmetrization.
/// The vertex count is `max id + 1` unless `min_n` is larger.
pub fn read_edge_list(path: &Path, directed: bool, min_n: usize) -> io::Result<Graph> {
    let file = std::fs::File::open(path)?;
    let mut reader = io::BufReader::new(file);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut line = String::new();
    let mut max_id = 0u32;
    while reader.read_line(&mut line)? != 0 {
        if let Some((u, v, _)) = parse_line(&line) {
            max_id = max_id.max(u).max(v);
            edges.push((u, v));
        }
        line.clear();
    }
    let n = min_n.max(if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    });
    Ok(Graph::from_edges(n, &edges, directed))
}

/// Read a weighted edge list (third column = weight; defaults to 1).
pub fn read_weighted_edge_list(
    path: &Path,
    directed: bool,
    min_n: usize,
) -> io::Result<WeightedGraph> {
    let file = std::fs::File::open(path)?;
    let mut reader = io::BufReader::new(file);
    let mut edges: Vec<(VertexId, VertexId, u32)> = Vec::new();
    let mut line = String::new();
    let mut max_id = 0u32;
    while reader.read_line(&mut line)? != 0 {
        if let Some((u, v, w)) = parse_line(&line) {
            max_id = max_id.max(u).max(v);
            edges.push((u, v, w.unwrap_or(1)));
        }
        line.clear();
    }
    let n = min_n.max(if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    });
    Ok(Graph::from_weighted_edges(n, &edges, directed))
}

fn parse_line(line: &str) -> Option<(VertexId, VertexId, Option<u32>)> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
        return None;
    }
    let mut it = line.split_whitespace();
    let u: VertexId = it.next()?.parse().ok()?;
    let v: VertexId = it.next()?.parse().ok()?;
    let w = it.next().and_then(|s| s.parse().ok());
    Some((u, v, w))
}

/// Version tag leading every [`encode_graph`] payload, so a future layout
/// change fails loudly instead of mis-decoding.
const CSR_WIRE_VERSION: u8 = 1;

/// Serialize a CSR graph with the exchange [`Codec`] — the wire format
/// partition shipping uses to stream each rank its slice, so non-zero
/// ranks never touch the input file.
///
/// Layout (all little-endian, matching the codec):
///
/// ```text
/// version:u8  n:u64  directed:bool  m:u64
/// offsets[1..=n]:u64  targets[m]:u32  weights[m]:W
/// ```
///
/// `offsets[0]` is always 0 and elided. Row order is preserved exactly:
/// [`decode_graph`] rebuilds a bit-identical graph (adjacency order is
/// part of the engine's determinism contract).
pub fn encode_graph<W: Codec + Copy>(g: &Graph<W>, buf: &mut Vec<u8>) {
    let (n, offsets, targets, weights, directed) = g.csr_parts();
    buf.push(CSR_WIRE_VERSION);
    (n as u64).encode(buf);
    directed.encode(buf);
    (targets.len() as u64).encode(buf);
    for &o in &offsets[1..] {
        (o as u64).encode(buf);
    }
    for &t in targets {
        t.encode(buf);
    }
    for w in weights {
        w.encode(buf);
    }
}

/// Decode a graph serialized by [`encode_graph`], validating the CSR
/// invariants (see [`Graph::from_csr_parts`]). Returns a descriptive
/// error on a malformed or truncated payload instead of panicking —
/// shipped bytes cross a process boundary and must be treated as input.
pub fn decode_graph<W: Codec + Copy + Default>(r: &mut Reader<'_>) -> Result<Graph<W>, String> {
    let header = 1 + 8 + 1 + 8;
    if r.remaining() < header {
        return Err(format!("graph header truncated at {} bytes", r.remaining()));
    }
    let version: u8 = r.get();
    if version != CSR_WIRE_VERSION {
        return Err(format!(
            "graph wire version {version}, expected {CSR_WIRE_VERSION}"
        ));
    }
    let n: u64 = r.get();
    let directed: bool = r.get();
    let m: u64 = r.get();
    let n = usize::try_from(n).map_err(|_| "vertex count overflows usize".to_string())?;
    let m = usize::try_from(m).map_err(|_| "arc count overflows usize".to_string())?;
    // Each offset is 8 bytes, each target 4; weights follow. Check before
    // allocating so a hostile length cannot trigger a huge allocation.
    let need = n
        .checked_mul(8)
        .and_then(|o| m.checked_mul(4).map(|t| o + t))
        .ok_or_else(|| "graph size overflows".to_string())?;
    if r.remaining() < need {
        return Err(format!(
            "graph payload truncated: {} bytes left, {need}+ needed",
            r.remaining()
        ));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    for _ in 0..n {
        let o: u64 = r.get();
        offsets.push(usize::try_from(o).map_err(|_| "offset overflows usize".to_string())?);
    }
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        targets.push(r.get::<u32>());
    }
    if let Some(ws) = W::FIXED_SIZE {
        let wneed = m
            .checked_mul(ws)
            .ok_or_else(|| "weight size overflows".to_string())?;
        if r.remaining() < wneed {
            return Err(format!(
                "weights truncated: {} bytes left, {wneed} needed",
                r.remaining()
            ));
        }
    }
    let mut weights = Vec::with_capacity(m);
    for _ in 0..m {
        weights.push(r.get::<W>());
    }
    Graph::from_csr_parts(n, offsets, targets, weights, directed)
}

/// Weight column formatting: weighted graphs print a third column,
/// unweighted graphs print none.
pub trait WeightColumn: Copy {
    /// Write the weight column (including its leading separator), if any.
    fn write_column(&self, out: &mut dyn Write) -> io::Result<()>;
}

impl WeightColumn for () {
    fn write_column(&self, _out: &mut dyn Write) -> io::Result<()> {
        Ok(())
    }
}

impl WeightColumn for u32 {
    fn write_column(&self, out: &mut dyn Write) -> io::Result<()> {
        write!(out, " {self}")
    }
}

/// Write a graph as an edge list. Undirected graphs emit each edge once
/// (`u <= v` arcs only).
pub fn write_edge_list<W: WeightColumn>(g: &Graph<W>, path: &Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = BufWriter::new(file);
    writeln!(out, "# {} vertices, {} edges", g.n(), g.edge_count())?;
    for (u, v, w) in g.arcs() {
        if !g.is_directed() && u > v {
            continue;
        }
        write!(out, "{u} {v}")?;
        w.write_column(&mut out)?;
        writeln!(out)?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pc_graph_io_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn unweighted_roundtrip() {
        let g = gen::rmat(6, 200, gen::RmatParams::default(), 4, true);
        let path = tmp("unweighted.txt");
        write_edge_list(&g, &path).unwrap();
        let g2 = read_edge_list(&path, true, g.n()).unwrap();
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn weighted_roundtrip_undirected() {
        let g = gen::grid2d_weighted(6, 6, 9, 1);
        let path = tmp("weighted.txt");
        write_edge_list(&g, &path).unwrap();
        let g2 = read_weighted_edge_list(&path, false, g.n()).unwrap();
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
            assert_eq!(g.weights(v), g2.weights(v));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let path = tmp("comments.txt");
        std::fs::write(&path, "# header\n\n% konect style\n0 1\n1 2 7\n").unwrap();
        let g = read_weighted_edge_list(&path, true, 0).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.weights(0), &[1]); // missing weight defaults to 1
        assert_eq!(g.weights(1), &[7]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn min_n_pads_isolated_vertices() {
        let path = tmp("padded.txt");
        std::fs::write(&path, "0 1\n").unwrap();
        let g = read_edge_list(&path, false, 10).unwrap();
        assert_eq!(g.n(), 10);
        assert_eq!(g.degree(9), 0);
        std::fs::remove_file(path).ok();
    }

    fn wire_roundtrip<W: Codec + Copy + Default + PartialEq + std::fmt::Debug>(g: &Graph<W>) {
        let mut buf = Vec::new();
        encode_graph(g, &mut buf);
        let mut r = Reader::new(&buf);
        let g2: Graph<W> = decode_graph(&mut r).unwrap();
        assert!(r.is_empty(), "trailing bytes after graph decode");
        assert_eq!(g, &g2);
    }

    #[test]
    fn codec_roundtrips_unweighted_and_weighted() {
        wire_roundtrip(&gen::rmat(7, 600, gen::RmatParams::default(), 5, true));
        wire_roundtrip(&gen::grid2d_weighted(7, 7, 9, 2));
        wire_roundtrip(&Graph::from_edges(0, &[], true)); // empty graph
        wire_roundtrip(&Graph::from_edges(3, &[], false)); // isolated vertices
    }

    #[test]
    fn codec_roundtrips_partition_slices() {
        let g = gen::rmat(7, 500, gen::RmatParams::default(), 8, false).symmetrized();
        for parts in [1usize, 3] {
            for p in 0..parts {
                let slice = g.restrict_rows(|v| v as usize % parts == p);
                wire_roundtrip(&slice);
            }
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        // Wrong version byte.
        let mut buf = Vec::new();
        encode_graph(&gen::cycle(4), &mut buf);
        buf[0] = 99;
        assert!(decode_graph::<()>(&mut Reader::new(&buf)).is_err());
        // Truncated payload (cut mid-targets).
        let mut buf = Vec::new();
        encode_graph(&gen::cycle(4), &mut buf);
        buf.truncate(buf.len() - 3);
        assert!(decode_graph::<()>(&mut Reader::new(&buf)).is_err());
        // Hostile arc count must fail the length check, not allocate.
        let mut buf = Vec::new();
        0u8.encode(&mut buf); // placeholder, fixed below
        buf[0] = 1; // version
        4u64.encode(&mut buf); // n
        true.encode(&mut buf);
        u64::MAX.encode(&mut buf); // m
        assert!(decode_graph::<()>(&mut Reader::new(&buf)).is_err());
        // Empty input.
        assert!(decode_graph::<u32>(&mut Reader::new(&[])).is_err());
    }

    proptest::proptest! {
        /// Partition shipping's round trip: build a weighted graph from an
        /// arbitrary (unsorted, duplicate-carrying) edge list, encode,
        /// decode — the result is an identical graph, weights included.
        #[test]
        fn prop_weighted_graph_wire_roundtrip(
            n in 1usize..40,
            edges in proptest::collection::vec((0u32..40, 0u32..40, 1u32..1000), 0..120),
            directed in proptest::any::<bool>(),
        ) {
            let edges: Vec<(u32, u32, u32)> = edges
                .into_iter()
                .map(|(u, v, w)| (u % n as u32, v % n as u32, w))
                .collect();
            let g = Graph::from_weighted_edges(n, &edges, directed);
            let mut buf = Vec::new();
            encode_graph(&g, &mut buf);
            let mut r = Reader::new(&buf);
            let g2: WeightedGraph = decode_graph(&mut r).unwrap();
            proptest::prop_assert!(r.is_empty());
            proptest::prop_assert_eq!(&g, &g2);
            // And each worker's shipped slice round-trips too.
            for rank in 0..3u32 {
                let slice = g.restrict_rows(|v| v % 3 == rank);
                let mut buf = Vec::new();
                encode_graph(&slice, &mut buf);
                let s2: WeightedGraph = decode_graph(&mut Reader::new(&buf)).unwrap();
                proptest::prop_assert_eq!(&slice, &s2);
            }
        }
    }
}
