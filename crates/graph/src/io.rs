//! Plain edge-list persistence.
//!
//! The paper loads graphs from HDFS; we read/write the ubiquitous
//! whitespace-separated edge-list format (`src dst [weight]` per line,
//! `#`-prefixed comments ignored), which is what SNAP/KONECT datasets ship
//! as, so real data can be dropped in if available.

use crate::csr::{Graph, VertexId, WeightedGraph};
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Read an unweighted edge list. `directed` controls symmetrization.
/// The vertex count is `max id + 1` unless `min_n` is larger.
pub fn read_edge_list(path: &Path, directed: bool, min_n: usize) -> io::Result<Graph> {
    let file = std::fs::File::open(path)?;
    let mut reader = io::BufReader::new(file);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut line = String::new();
    let mut max_id = 0u32;
    while reader.read_line(&mut line)? != 0 {
        if let Some((u, v, _)) = parse_line(&line) {
            max_id = max_id.max(u).max(v);
            edges.push((u, v));
        }
        line.clear();
    }
    let n = min_n.max(if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    });
    Ok(Graph::from_edges(n, &edges, directed))
}

/// Read a weighted edge list (third column = weight; defaults to 1).
pub fn read_weighted_edge_list(
    path: &Path,
    directed: bool,
    min_n: usize,
) -> io::Result<WeightedGraph> {
    let file = std::fs::File::open(path)?;
    let mut reader = io::BufReader::new(file);
    let mut edges: Vec<(VertexId, VertexId, u32)> = Vec::new();
    let mut line = String::new();
    let mut max_id = 0u32;
    while reader.read_line(&mut line)? != 0 {
        if let Some((u, v, w)) = parse_line(&line) {
            max_id = max_id.max(u).max(v);
            edges.push((u, v, w.unwrap_or(1)));
        }
        line.clear();
    }
    let n = min_n.max(if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    });
    Ok(Graph::from_weighted_edges(n, &edges, directed))
}

fn parse_line(line: &str) -> Option<(VertexId, VertexId, Option<u32>)> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
        return None;
    }
    let mut it = line.split_whitespace();
    let u: VertexId = it.next()?.parse().ok()?;
    let v: VertexId = it.next()?.parse().ok()?;
    let w = it.next().and_then(|s| s.parse().ok());
    Some((u, v, w))
}

/// Weight column formatting: weighted graphs print a third column,
/// unweighted graphs print none.
pub trait WeightColumn: Copy {
    /// Write the weight column (including its leading separator), if any.
    fn write_column(&self, out: &mut dyn Write) -> io::Result<()>;
}

impl WeightColumn for () {
    fn write_column(&self, _out: &mut dyn Write) -> io::Result<()> {
        Ok(())
    }
}

impl WeightColumn for u32 {
    fn write_column(&self, out: &mut dyn Write) -> io::Result<()> {
        write!(out, " {self}")
    }
}

/// Write a graph as an edge list. Undirected graphs emit each edge once
/// (`u <= v` arcs only).
pub fn write_edge_list<W: WeightColumn>(g: &Graph<W>, path: &Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = BufWriter::new(file);
    writeln!(out, "# {} vertices, {} edges", g.n(), g.edge_count())?;
    for (u, v, w) in g.arcs() {
        if !g.is_directed() && u > v {
            continue;
        }
        write!(out, "{u} {v}")?;
        w.write_column(&mut out)?;
        writeln!(out)?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pc_graph_io_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn unweighted_roundtrip() {
        let g = gen::rmat(6, 200, gen::RmatParams::default(), 4, true);
        let path = tmp("unweighted.txt");
        write_edge_list(&g, &path).unwrap();
        let g2 = read_edge_list(&path, true, g.n()).unwrap();
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn weighted_roundtrip_undirected() {
        let g = gen::grid2d_weighted(6, 6, 9, 1);
        let path = tmp("weighted.txt");
        write_edge_list(&g, &path).unwrap();
        let g2 = read_weighted_edge_list(&path, false, g.n()).unwrap();
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
            assert_eq!(g.weights(v), g2.weights(v));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let path = tmp("comments.txt");
        std::fs::write(&path, "# header\n\n% konect style\n0 1\n1 2 7\n").unwrap();
        let g = read_weighted_edge_list(&path, true, 0).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.weights(0), &[1]); // missing weight defaults to 1
        assert_eq!(g.weights(1), &[7]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn min_n_pads_isolated_vertices() {
        let path = tmp("padded.txt");
        std::fs::write(&path, "0 1\n").unwrap();
        let g = read_edge_list(&path, false, 10).unwrap();
        assert_eq!(g.n(), 10);
        assert_eq!(g.degree(9), 0);
        std::fs::remove_file(path).ok();
    }
}
