//! Deterministic synthetic graph generators.
//!
//! These are the stand-ins for the paper's datasets (Table III). The paper's
//! performance phenomena are structural, so each generator is chosen to
//! reproduce the relevant structure:
//!
//! * [`rmat`] — skewed (power-law-ish) degree distribution → load imbalance,
//!   mirroring/request-respond territory (Wikipedia, WebUK, Twitter,
//!   Facebook, RMAT24);
//! * [`chain`] / [`chain_parents`] — maximal-diameter worst case for
//!   pointer jumping and propagation (Chain);
//! * [`random_forest_parents`] — random recursive trees for
//!   pointer-jumping (Tree);
//! * [`grid2d`] — large-diameter, low-degree road-network analogue
//!   (USA Road).
//!
//! All generators take explicit seeds and are fully deterministic.

use crate::csr::{Graph, VertexId, WeightedGraph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Undirected path `0 — 1 — … — n-1`.
pub fn chain(n: usize) -> Graph {
    let edges: Vec<(VertexId, VertexId)> = (0..n.saturating_sub(1))
        .map(|i| (i as VertexId, (i + 1) as VertexId))
        .collect();
    Graph::from_edges(n, &edges, false)
}

/// Parent-pointer array of a chain rooted at 0: `D[0] = 0`, `D[i] = i-1`.
/// This is the pointer-jumping worst case from Table V.
pub fn chain_parents(n: usize) -> Vec<VertexId> {
    (0..n)
        .map(|i| if i == 0 { 0 } else { (i - 1) as VertexId })
        .collect()
}

/// Parent-pointer arrays of `roots` random recursive trees over `n`
/// vertices. Vertices `0..roots` are roots (pointing to themselves); every
/// other vertex picks a uniformly random parent with a smaller id.
pub fn random_forest_parents(n: usize, roots: usize, seed: u64) -> Vec<VertexId> {
    assert!(roots >= 1 && roots <= n.max(1));
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if i < roots {
                i as VertexId
            } else {
                rng.random_range(0..i) as VertexId
            }
        })
        .collect()
}

/// Undirected random recursive tree with `n` vertices.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let parents = random_forest_parents(n, 1, seed);
    let edges: Vec<(VertexId, VertexId)> = (1..n).map(|i| (i as VertexId, parents[i])).collect();
    Graph::from_edges(n, &edges, false)
}

/// Parameters of the recursive-matrix generator of Chakrabarti et al.,
/// used by the paper for its synthetic power-law graph (RMAT24).
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// Probability mass of the four quadrants; must sum to ~1.
    pub a: f64,
    /// Top-right quadrant.
    pub b: f64,
    /// Bottom-left quadrant.
    pub c: f64,
    /// Noise applied to the quadrant probabilities per level.
    pub noise: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        // The classic Graph500-style skew.
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
        }
    }
}

fn rmat_edge(scale: u32, p: RmatParams, rng: &mut StdRng) -> (VertexId, VertexId) {
    let (mut u, mut v) = (0u64, 0u64);
    for _ in 0..scale {
        let (mut a, mut b, mut c) = (p.a, p.b, p.c);
        // Multiplicative noise keeps the expected skew but breaks the
        // perfectly self-similar structure.
        let jitter =
            |x: f64, rng: &mut StdRng| x * (1.0 - p.noise / 2.0 + p.noise * rng.random::<f64>());
        a = jitter(a, rng);
        b = jitter(b, rng);
        c = jitter(c, rng);
        let total = a + b + c + (1.0 - p.a - p.b - p.c).max(0.0);
        let r = rng.random::<f64>() * total;
        u <<= 1;
        v <<= 1;
        if r < a {
            // top-left
        } else if r < a + b {
            v |= 1;
        } else if r < a + b + c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u as VertexId, v as VertexId)
}

/// R-MAT edge list over `2^scale` vertices with `m` edge samples.
/// Self-loops and duplicates are removed; the result is sorted.
pub fn rmat_edges(scale: u32, m: usize, p: RmatParams, seed: u64) -> Vec<(VertexId, VertexId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (u, v) = rmat_edge(scale, p, &mut rng);
        if u != v {
            edges.push((u, v));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// R-MAT graph over `2^scale` vertices with about `m` distinct edges.
pub fn rmat(scale: u32, m: usize, p: RmatParams, seed: u64, directed: bool) -> Graph {
    let edges = rmat_edges(scale, m, p, seed);
    Graph::from_edges(1 << scale, &edges, directed)
}

/// R-MAT graph with uniformly random edge weights in `1..=max_weight`.
pub fn rmat_weighted(
    scale: u32,
    m: usize,
    p: RmatParams,
    seed: u64,
    directed: bool,
    max_weight: u32,
) -> WeightedGraph {
    let edges = rmat_edges(scale, m, p, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ WEIGHT_SEED_SALT);
    let weighted: Vec<(VertexId, VertexId, u32)> = edges
        .into_iter()
        .map(|(u, v)| (u, v, rng.random_range(1..=max_weight)))
        .collect();
    Graph::from_weighted_edges(1 << scale, &weighted, directed)
}

/// Salt so weight streams are independent of structure streams.
const WEIGHT_SEED_SALT: u64 = 0x57ae_11ed;

/// Erdős–Rényi G(n, m): `m` distinct uniformly random edges.
pub fn erdos_renyi(n: usize, m: usize, seed: u64, directed: bool) -> Graph {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = rng.random_range(0..n) as VertexId;
        let v = rng.random_range(0..n) as VertexId;
        if u != v {
            edges.push((u, v));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Graph::from_edges(n, &edges, directed)
}

/// `rows × cols` undirected grid with optional random diagonal shortcuts
/// (probability `diag_prob` per cell) — a road-network analogue: low
/// degree, huge diameter.
pub fn grid2d(rows: usize, cols: usize, diag_prob: f64, seed: u64) -> Graph {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
            if r + 1 < rows && c + 1 < cols && rng.random::<f64>() < diag_prob {
                edges.push((id(r, c), id(r + 1, c + 1)));
            }
        }
    }
    Graph::from_edges(n, &edges, false)
}

/// Weighted grid (road-network analogue with travel costs).
pub fn grid2d_weighted(rows: usize, cols: usize, max_weight: u32, seed: u64) -> WeightedGraph {
    let g = grid2d(rows, cols, 0.05, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ WEIGHT_SEED_SALT);
    let mut edges = Vec::new();
    for (u, v, ()) in g.arcs() {
        if u < v {
            edges.push((u, v, rng.random_range(1..=max_weight)));
        }
    }
    Graph::from_weighted_edges(rows * cols, &edges, false)
}

/// Star: vertex 0 connected to all others (undirected). The extreme
/// high-degree case for load-imbalance tests.
pub fn star(n: usize) -> Graph {
    let edges: Vec<(VertexId, VertexId)> = (1..n).map(|i| (0, i as VertexId)).collect();
    Graph::from_edges(n, &edges, false)
}

/// The skew benchmark graph: a long undirected cycle on `0..ring` next
/// to a disjoint star whose hub (`id = ring`) fans out to `spokes`
/// leaves. The two pathologies of a skewed workload in one graph — deep
/// label propagation along the ring (round-count stress, where locality
/// partitioning pays) and one hub dominating message volume (skew
/// stress, where mirroring pays).
pub fn ring_with_hub(ring: usize, spokes: usize) -> Graph {
    assert!(ring >= 3);
    let hub = ring as VertexId;
    let mut edges: Vec<(VertexId, VertexId)> = (0..ring - 1)
        .map(|i| (i as VertexId, (i + 1) as VertexId))
        .collect();
    edges.push(((ring - 1) as VertexId, 0));
    edges.extend((0..spokes).map(|i| (hub, hub + 1 + i as VertexId)));
    Graph::from_edges(ring + 1 + spokes, &edges, false)
}

/// Complete undirected graph on `n` vertices (tests only; O(n²) edges).
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges, false)
}

/// Perfect-ish binary tree as an undirected graph.
pub fn binary_tree(n: usize) -> Graph {
    let edges: Vec<(VertexId, VertexId)> = (1..n)
        .map(|i| (i as VertexId, ((i - 1) / 2) as VertexId))
        .collect();
    Graph::from_edges(n, &edges, false)
}

/// Undirected cycle.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3);
    let mut edges: Vec<(VertexId, VertexId)> = (0..n - 1)
        .map(|i| (i as VertexId, (i + 1) as VertexId))
        .collect();
    edges.push(((n - 1) as VertexId, 0));
    Graph::from_edges(n, &edges, false)
}

/// A directed graph with planted strongly connected components: `k` cycles
/// of length `len` connected by random forward (acyclic) edges — oracle
/// territory for the Min-Label SCC algorithm.
pub fn planted_sccs(k: usize, len: usize, extra: usize, seed: u64) -> Graph {
    assert!(len >= 1);
    let n = k * len;
    let mut edges = Vec::new();
    for c in 0..k {
        let base = c * len;
        for i in 0..len {
            let u = (base + i) as VertexId;
            let v = (base + (i + 1) % len) as VertexId;
            if len > 1 || u != v {
                edges.push((u, v));
            }
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..extra {
        // Only edges from a lower-indexed component to a higher one, so the
        // planted cycles remain the exact SCCs.
        let c1 = rng.random_range(0..k);
        let c2 = rng.random_range(0..k);
        if c1 == c2 {
            continue;
        }
        let (lo, hi) = (c1.min(c2), c1.max(c2));
        let u = (lo * len + rng.random_range(0..len)) as VertexId;
        let v = (hi * len + rng.random_range(0..len)) as VertexId;
        edges.push((u, v));
    }
    edges.sort_unstable();
    edges.dedup();
    Graph::from_edges(n, &edges, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let g = chain(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn chain_parents_shape() {
        let p = chain_parents(4);
        assert_eq!(p, vec![0, 0, 1, 2]);
    }

    #[test]
    fn forest_parents_are_valid() {
        let p = random_forest_parents(1000, 5, 42);
        for (i, &d) in p.iter().enumerate() {
            if i < 5 {
                assert_eq!(d as usize, i);
            } else {
                assert!((d as usize) < i, "parent must have smaller id");
            }
        }
        // Deterministic per seed.
        assert_eq!(p, random_forest_parents(1000, 5, 42));
        assert_ne!(p, random_forest_parents(1000, 5, 43));
    }

    #[test]
    fn random_tree_is_connected_with_n_minus_1_edges() {
        let g = random_tree(200, 7);
        assert_eq!(g.edge_count(), 199);
        let labels = crate::reference::connected_components(&g);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn rmat_is_skewed_and_deterministic() {
        let g = rmat(10, 8 * 1024, RmatParams::default(), 1, true);
        assert_eq!(g.n(), 1024);
        assert!(g.arc_count() > 4000, "dedup should leave most samples");
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        let avg = g.arc_count() as f64 / g.n() as f64;
        assert!(
            (max_deg as f64) > 6.0 * avg,
            "R-MAT should be skewed: max={max_deg} avg={avg:.2}"
        );
        let g2 = rmat(10, 8 * 1024, RmatParams::default(), 1, true);
        assert_eq!(g.arc_count(), g2.arc_count());
    }

    #[test]
    fn rmat_weighted_weights_in_range() {
        let g = rmat_weighted(8, 2000, RmatParams::default(), 3, false, 100);
        for (_, _, w) in g.arcs() {
            assert!((1..=100).contains(&w));
        }
    }

    #[test]
    fn erdos_renyi_no_self_loops_or_dupes() {
        let g = erdos_renyi(100, 500, 9, true);
        let mut seen = std::collections::HashSet::new();
        for (u, v, ()) in g.arcs() {
            assert_ne!(u, v);
            assert!(seen.insert((u, v)));
        }
    }

    #[test]
    fn grid_has_expected_structure() {
        let g = grid2d(3, 4, 0.0, 0);
        assert_eq!(g.n(), 12);
        // 3*3 horizontal + 2*4 vertical = 17 edges
        assert_eq!(g.edge_count(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior
    }

    #[test]
    fn star_and_complete_and_cycle() {
        assert_eq!(star(10).degree(0), 9);
        assert_eq!(star(10).degree(3), 1);
        assert_eq!(complete(5).edge_count(), 10);
        let c = cycle(6);
        assert!(c.vertices().all(|v| c.degree(v) == 2));
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(6), 1);
    }

    #[test]
    fn planted_sccs_match_tarjan() {
        let g = planted_sccs(8, 5, 30, 11);
        let labels = crate::reference::strongly_connected_components(&g);
        // Each planted cycle collapses to one SCC labelled by its min id.
        for c in 0..8u32 {
            for i in 0..5u32 {
                assert_eq!(labels[(c * 5 + i) as usize], c * 5);
            }
        }
    }

    #[test]
    fn grid_weighted_is_undirected_and_bounded() {
        let g = grid2d_weighted(5, 5, 10, 2);
        for (_, _, w) in g.arcs() {
            assert!((1..=10).contains(&w));
        }
        assert!(!g.is_directed());
    }
}
