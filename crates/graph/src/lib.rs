//! # pc-graph — graph data structures, generators, partitioners, oracles
//!
//! Everything graph-shaped that the reproduction needs and that is not part
//! of the paper's contribution:
//!
//! * [`csr`] — compressed sparse row graphs, optionally edge-weighted;
//! * [`gen`] — deterministic synthetic generators standing in for the
//!   paper's datasets (Table III): R-MAT power-law graphs, chains, random
//!   trees, 2-D grids (road networks), plus small shapes for tests;
//! * [`partition`] — partitioners (hash, streaming greedy, BFS block
//!   growing) and the edge-cut metric; the greedy/BFS partitioners are the
//!   METIS stand-ins for the paper's "Wikipedia (P)" experiments;
//! * [`reference`] — sequential reference algorithms (union-find CC,
//!   PageRank, Dijkstra, Tarjan SCC, Kruskal MSF, pointer-jumping roots)
//!   used as test oracles for the distributed implementations;
//! * [`stats`] — degree statistics for dataset tables;
//! * [`io`] — plain edge-list persistence.

pub mod csr;
pub mod gen;
pub mod io;
pub mod partition;
pub mod reference;
pub mod stats;

pub use csr::{Graph, VertexId, WeightedGraph};
