//! Sequential reference algorithms.
//!
//! Each distributed algorithm in `pc-algos` is validated against one of
//! these single-threaded oracles. Labels follow the conventions the
//! vertex-centric algorithms converge to (component labels are the minimum
//! vertex id in the component), so results can be compared verbatim.

use crate::csr::{Graph, VertexId, WeightedGraph};

/// Union-find with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns false if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }
}

/// Connected components of an (effectively) undirected graph; arcs are
/// followed in both directions. Returns for every vertex the **minimum
/// vertex id of its component** — the label S-V and HCC converge to.
pub fn connected_components<W: Copy>(g: &Graph<W>) -> Vec<VertexId> {
    let mut uf = UnionFind::new(g.n());
    for (u, v, _) in g.arcs() {
        uf.union(u, v);
    }
    min_label_from_uf(&mut uf, g.n())
}

fn min_label_from_uf(uf: &mut UnionFind, n: usize) -> Vec<VertexId> {
    let mut min_of_root = vec![u32::MAX; n];
    for v in 0..n as u32 {
        let r = uf.find(v) as usize;
        min_of_root[r] = min_of_root[r].min(v);
    }
    (0..n as u32)
        .map(|v| min_of_root[uf.find(v) as usize])
        .collect()
}

/// Number of distinct components given a label vector.
pub fn component_count(labels: &[VertexId]) -> usize {
    let mut set: Vec<VertexId> = labels.to_vec();
    set.sort_unstable();
    set.dedup();
    set.len()
}

/// PageRank with the paper's dead-end handling: rank lost at sinks is
/// collected and redistributed uniformly (the "sink node" aggregator of
/// Fig. 1). `iters` full power iterations with damping 0.85.
pub fn pagerank<W: Copy>(g: &Graph<W>, iters: usize) -> Vec<f64> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iters {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut sink = 0.0f64;
        for v in g.vertices() {
            let deg = g.degree(v);
            if deg == 0 {
                sink += rank[v as usize];
            } else {
                let share = rank[v as usize] / deg as f64;
                for &t in g.neighbors(v) {
                    next[t as usize] += share;
                }
            }
        }
        let redistribute = sink / n as f64;
        for x in next.iter_mut() {
            *x = 0.15 / n as f64 + 0.85 * (*x + redistribute);
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Dijkstra from `src`; `None` for unreachable vertices.
pub fn sssp(g: &WeightedGraph, src: VertexId) -> Vec<Option<u64>> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut dist: Vec<Option<u64>> = vec![None; g.n()];
    let mut heap = BinaryHeap::new();
    dist[src as usize] = Some(0);
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if dist[v as usize] != Some(d) {
            continue;
        }
        for (t, w) in g.neighbors_weighted(v) {
            let nd = d + w as u64;
            if dist[t as usize].is_none_or(|old| nd < old) {
                dist[t as usize] = Some(nd);
                heap.push(Reverse((nd, t)));
            }
        }
    }
    dist
}

/// Strongly connected components (iterative Tarjan). Returns for every
/// vertex the minimum vertex id in its SCC — the label the Min-Label
/// algorithm converges to.
pub fn strongly_connected_components<W: Copy>(g: &Graph<W>) -> Vec<VertexId> {
    let n = g.n();
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut label = vec![0 as VertexId; n];
    let mut next_index = 0u32;

    // Explicit DFS state machine to survive deep graphs (chains).
    enum FrameState {
        Enter,
        Resume(usize),
    }
    for start in 0..n as u32 {
        if index[start as usize] != u32::MAX {
            continue;
        }
        let mut call: Vec<(u32, FrameState)> = vec![(start, FrameState::Enter)];
        while let Some((v, state)) = call.pop() {
            let mut child_at = match state {
                FrameState::Enter => {
                    index[v as usize] = next_index;
                    low[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                    0
                }
                FrameState::Resume(i) => {
                    let child = g.neighbors(v)[i];
                    low[v as usize] = low[v as usize].min(low[child as usize]);
                    i + 1
                }
            };
            let nbrs = g.neighbors(v);
            let mut descended = false;
            while child_at < nbrs.len() {
                let w = nbrs[child_at];
                if index[w as usize] == u32::MAX {
                    call.push((v, FrameState::Resume(child_at)));
                    call.push((w, FrameState::Enter));
                    descended = true;
                    break;
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
                child_at += 1;
            }
            if descended {
                continue;
            }
            if low[v as usize] == index[v as usize] {
                // v is an SCC root; pop the component and label it.
                let mut members = Vec::new();
                loop {
                    let w = stack.pop().unwrap();
                    on_stack[w as usize] = false;
                    members.push(w);
                    if w == v {
                        break;
                    }
                }
                let min_id = *members.iter().min().unwrap();
                for w in members {
                    label[w as usize] = min_id;
                }
            }
        }
    }
    label
}

/// Total weight of a minimum spanning forest (Kruskal).
pub fn msf_weight(g: &WeightedGraph) -> u64 {
    let mut edges: Vec<(u32, VertexId, VertexId)> = g
        .arcs()
        .filter(|&(u, v, _)| u < v) // undirected graphs store both arcs
        .map(|(u, v, w)| (w, u, v))
        .collect();
    edges.sort_unstable();
    let mut uf = UnionFind::new(g.n());
    let mut total = 0u64;
    for (w, u, v) in edges {
        if uf.union(u, v) {
            total += w as u64;
        }
    }
    total
}

/// Number of edges in a minimum spanning forest = n - #components.
pub fn msf_edge_count(g: &WeightedGraph) -> usize {
    let labels = connected_components(g);
    g.n() - component_count(&labels)
}

/// Resolve every vertex's root in a parent-pointer forest.
pub fn forest_roots(parents: &[VertexId]) -> Vec<VertexId> {
    let n = parents.len();
    let mut root = vec![u32::MAX; n];
    for v in 0..n as u32 {
        if root[v as usize] != u32::MAX {
            continue;
        }
        // Walk up, remembering the path, then write the root back.
        let mut path = vec![v];
        let mut cur = v;
        loop {
            let p = parents[cur as usize];
            if p == cur {
                break;
            }
            if root[p as usize] != u32::MAX {
                cur = root[p as usize];
                break;
            }
            path.push(p);
            cur = p;
        }
        let r = cur;
        for x in path {
            root[x as usize] = r;
        }
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(3));
    }

    #[test]
    fn cc_on_two_components() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (4, 5)], false);
        let labels = connected_components(&g);
        assert_eq!(labels, vec![0, 0, 0, 3, 4, 4]);
        assert_eq!(component_count(&labels), 3);
    }

    #[test]
    fn cc_follows_direction_both_ways() {
        let g = Graph::from_edges(3, &[(2, 0)], true);
        let labels = connected_components(&g);
        assert_eq!(labels, vec![0, 1, 0]);
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hubs() {
        let g = gen::star(10);
        let pr = pagerank(&g, 30);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass conservation, got {total}");
        assert!(pr[0] > pr[1] * 2.0, "hub should dominate");
    }

    #[test]
    fn pagerank_handles_sinks() {
        // 0 -> 1, 1 is a sink.
        let g = Graph::from_edges(2, &[(0, 1)], true);
        let pr = pagerank(&g, 50);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(pr[1] > pr[0]);
    }

    #[test]
    fn sssp_on_small_weighted_graph() {
        let g =
            Graph::from_weighted_edges(4, &[(0, 1, 1u32), (1, 2, 1), (0, 2, 5), (0, 3, 10)], true);
        let d = sssp(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(10)]);
    }

    #[test]
    fn sssp_unreachable_is_none() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 1u32)], true);
        assert_eq!(sssp(&g, 0)[2], None);
    }

    #[test]
    fn scc_on_cycle_and_dag() {
        // 0->1->2->0 is one SCC; 3 hangs off it.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)], true);
        let labels = strongly_connected_components(&g);
        assert_eq!(labels, vec![0, 0, 0, 3]);
    }

    #[test]
    fn scc_survives_long_chain() {
        // A 100k-long directed chain must not blow the stack.
        let edges: Vec<(u32, u32)> = (0..100_000 - 1).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(100_000, &edges, true);
        let labels = strongly_connected_components(&g);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[99_999], 99_999);
    }

    #[test]
    fn msf_weight_on_known_graph() {
        let g = Graph::from_weighted_edges(
            4,
            &[(0, 1, 1u32), (1, 2, 2), (2, 3, 3), (0, 3, 10), (0, 2, 4)],
            false,
        );
        assert_eq!(msf_weight(&g), 6);
        assert_eq!(msf_edge_count(&g), 3);
    }

    #[test]
    fn msf_of_forest_counts_per_component() {
        let g = Graph::from_weighted_edges(5, &[(0, 1, 2u32), (2, 3, 7)], false);
        assert_eq!(msf_weight(&g), 9);
        assert_eq!(msf_edge_count(&g), 2);
    }

    #[test]
    fn forest_roots_resolves_chains_and_forests() {
        let parents = gen::chain_parents(1000);
        let roots = forest_roots(&parents);
        assert!(roots.iter().all(|&r| r == 0));

        let parents = gen::random_forest_parents(5000, 7, 3);
        let roots = forest_roots(&parents);
        for (v, &r) in roots.iter().enumerate() {
            assert!(r < 7, "root of {v} must be one of the planted roots");
            // Walking up from v must land on r.
            let mut cur = v as u32;
            while parents[cur as usize] != cur {
                cur = parents[cur as usize];
            }
            assert_eq!(cur, r);
        }
    }

    #[test]
    fn scc_matches_components_on_symmetric_graph() {
        // For a symmetrized graph, SCCs == CCs.
        let g = gen::rmat(8, 1500, gen::RmatParams::default(), 5, false);
        let scc = strongly_connected_components(&g);
        let cc = connected_components(&g);
        assert_eq!(scc, cc);
    }
}
