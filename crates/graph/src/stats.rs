//! Degree statistics for dataset inventories (Table III).

use crate::csr::Graph;

/// Summary statistics of a graph, as printed in Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub n: usize,
    /// Logical edge count.
    pub m: usize,
    /// Average out-degree (arcs / vertices).
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Number of zero-out-degree vertices (PageRank sinks).
    pub sinks: usize,
}

/// Compute [`GraphStats`] for a graph.
pub fn graph_stats<W: Copy>(g: &Graph<W>) -> GraphStats {
    let mut max_degree = 0usize;
    let mut sinks = 0usize;
    for v in g.vertices() {
        let d = g.degree(v);
        max_degree = max_degree.max(d);
        if d == 0 {
            sinks += 1;
        }
    }
    GraphStats {
        n: g.n(),
        m: g.edge_count(),
        avg_degree: if g.n() == 0 {
            0.0
        } else {
            g.arc_count() as f64 / g.n() as f64
        },
        max_degree,
        sinks,
    }
}

/// Degree histogram in power-of-two buckets: `hist[k]` counts vertices with
/// degree in `[2^k, 2^(k+1))`; `hist[0]` also counts degree 0..2.
pub fn degree_histogram<W: Copy>(g: &Graph<W>) -> Vec<usize> {
    let mut hist = vec![0usize; 33];
    for v in g.vertices() {
        let d = g.degree(v);
        let bucket = usize::BITS as usize - d.leading_zeros() as usize;
        hist[bucket.min(32)] += 1;
    }
    while hist.len() > 1 && *hist.last().unwrap() == 0 {
        hist.pop();
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_on_star() {
        let g = gen::star(11);
        let s = graph_stats(&g);
        assert_eq!(s.n, 11);
        assert_eq!(s.m, 10);
        assert_eq!(s.max_degree, 10);
        assert_eq!(s.sinks, 0);
        assert!((s.avg_degree - 20.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn sink_counting() {
        let g = crate::Graph::from_edges(3, &[(0, 1)], true);
        let s = graph_stats(&g);
        assert_eq!(s.sinks, 2);
    }

    #[test]
    fn histogram_buckets() {
        // degrees: 10×1 on the leaves + 10 on the hub
        let g = gen::star(11);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 10); // degree 1 → bucket 1
        assert_eq!(h[4], 1); // degree 10 → bucket 4 ([8,16))
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::Graph::from_edges(0, &[], true);
        let s = graph_stats(&g);
        assert_eq!(s.n, 0);
        assert_eq!(s.avg_degree, 0.0);
    }
}
