//! Graph partitioners and the edge-cut metric.
//!
//! The paper evaluates the Propagation channel and Blogel on a
//! METIS-partitioned Wikipedia ("Wikipedia (P)"). METIS is proprietary-ish
//! and unavailable offline, so we provide two locality-aware partitioners
//! that serve the same role — producing a partition with a much lower
//! edge-cut than random assignment:
//!
//! * [`ldg`] — Linear Deterministic Greedy streaming partitioning
//!   (Stanton & Kliot), optionally with multiple refinement passes;
//! * [`ldg_deg`] — the same greedy, streaming vertices highest-degree
//!   first so hubs are placed while capacity is still balanced — the
//!   degree-aware ordering the skew literature recommends for power-law
//!   graphs;
//! * [`bfs_blocks`] — BFS block growing (the partitioner Blogel itself
//!   ships for graphs without coordinates).
//!
//! Quality is quantified by [`edge_cut`] and the fuller
//! [`PartitionReport`] (sizes + per-part mirror replication factors);
//! tests assert the locality-aware partitioners beat random placement on
//! structured graphs. [`build_mirror_plan`] derives the mirror/ghost
//! tables for vertices with out-degree ≥ τ that the distributed runtime
//! ships with the partition plan.

use crate::csr::{Graph, VertexId};
use pc_bsp::{MirrorHub, MirrorPlan, Topology};

/// Fraction of arcs whose endpoints live in different parts, given
/// `owner[v]` assignments. Returns `(cut_arcs, total_arcs)`.
pub fn edge_cut<W: Copy>(g: &Graph<W>, owner: &[u16]) -> (usize, usize) {
    assert_eq!(owner.len(), g.n());
    let mut cut = 0usize;
    let mut total = 0usize;
    for (u, v, _) in g.arcs() {
        total += 1;
        if owner[u as usize] != owner[v as usize] {
            cut += 1;
        }
    }
    (cut, total)
}

/// Pseudo-random (hash) assignment — the baseline the paper calls
/// "vertices are randomly assigned to workers". Uses the same mix as
/// `pc_bsp::Topology::hashed`, so the two agree vertex for vertex.
pub fn random_owners(n: usize, parts: usize) -> Vec<u16> {
    (0..n as u64)
        .map(|v| (pc_bsp::topology::mix64(v) % parts as u64) as u16)
        .collect()
}

/// Linear Deterministic Greedy streaming partitioner.
///
/// Vertices are streamed in id order; each is placed on the part that
/// maximizes `|neighbors already there| * (1 - size/capacity)`. `passes > 1`
/// re-streams with the previous assignment as the neighborhood oracle,
/// which substantially improves locality on meshes.
pub fn ldg<W: Copy>(g: &Graph<W>, parts: usize, passes: usize) -> Vec<u16> {
    assert!(parts >= 1 && parts <= u16::MAX as usize);
    let n = g.n();
    let capacity = (n as f64 / parts as f64) * 1.1 + 1.0;
    let mut owner: Vec<u16> = vec![u16::MAX; n];
    for pass in 0..passes.max(1) {
        let mut sizes = vec![0usize; parts];
        if pass > 0 {
            // Re-streaming: clear sizes but keep previous owners as hints.
            sizes.iter_mut().for_each(|s| *s = 0);
        }
        let prev = owner.clone();
        let mut scores = vec![0u32; parts];
        for v in 0..n as VertexId {
            scores.iter_mut().for_each(|s| *s = 0);
            for &t in g.neighbors(v) {
                let o = if (t as usize) < v as usize || pass > 0 {
                    // Within a pass we know already-placed vertices; on
                    // refinement passes we also use last pass's placement.
                    if owner[t as usize] != u16::MAX {
                        owner[t as usize]
                    } else {
                        prev[t as usize]
                    }
                } else {
                    u16::MAX
                };
                if o != u16::MAX {
                    scores[o as usize] += 1;
                }
            }
            let mut best = 0usize;
            let mut best_score = f64::MIN;
            for p in 0..parts {
                let penalty = 1.0 - sizes[p] as f64 / capacity;
                let s = scores[p] as f64 * penalty.max(0.0) + penalty * 1e-6; // tie-break toward emptier parts
                if s > best_score {
                    best_score = s;
                    best = p;
                }
            }
            owner[v as usize] = best as u16;
            sizes[best] += 1;
        }
    }
    owner
}

/// Degree-sorted Linear Deterministic Greedy: the same greedy placement
/// as [`ldg`], but streaming vertices in descending degree order (ties
/// broken by ascending id, so the order — and thus the partition — is
/// deterministic). Hubs are placed first, while every part still has
/// capacity, and their neighborhoods then accrete around them; the
/// id-order stream instead meets a hub only after scattered low-degree
/// neighbors have pinned it nowhere in particular.
pub fn ldg_deg<W: Copy>(g: &Graph<W>, parts: usize, passes: usize) -> Vec<u16> {
    assert!(parts >= 1 && parts <= u16::MAX as usize);
    let n = g.n();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    let capacity = (n as f64 / parts as f64) * 1.1 + 1.0;
    let mut owner: Vec<u16> = vec![u16::MAX; n];
    for _pass in 0..passes.max(1) {
        let mut sizes = vec![0usize; parts];
        let mut scores = vec![0u32; parts];
        for &v in &order {
            scores.iter_mut().for_each(|s| *s = 0);
            for &t in g.neighbors(v) {
                // The stream is not in id order, so "already placed" is
                // read straight off the owner table; refinement passes
                // see last pass's placement for not-yet-restreamed
                // vertices the same way.
                let o = owner[t as usize];
                if o != u16::MAX {
                    scores[o as usize] += 1;
                }
            }
            let mut best = 0usize;
            let mut best_score = f64::MIN;
            for p in 0..parts {
                let penalty = 1.0 - sizes[p] as f64 / capacity;
                let s = scores[p] as f64 * penalty.max(0.0) + penalty * 1e-6;
                if s > best_score {
                    best_score = s;
                    best = p;
                }
            }
            owner[v as usize] = best as u16;
            sizes[best] += 1;
        }
    }
    owner
}

/// Default mirror threshold τ: four times the mean degree, floored at
/// the paper's ghost-mode default of 16. On skew-free graphs (meshes,
/// rings) nothing qualifies; on power-law graphs only the true hubs do,
/// keeping the replication factor near 1 while the hub broadcasts
/// collapse to one message per worker.
pub fn default_mirror_threshold<W: Copy>(g: &Graph<W>) -> usize {
    let avg = g.arc_count() / g.n().max(1);
    (4 * avg).max(16)
}

/// Build the mirror/ghost tables for every vertex with out-degree ≥
/// `threshold` under `topo`'s placement — the per-worker broadcast
/// fan-out the Mirror channel pre-wires at construction instead of
/// shipping tables in-band on the first superstep.
///
/// Per hub, targets are grouped by owning worker preserving adjacency
/// order (duplicate edges included): mirror-side expansion applies the
/// combiner once per edge occurrence, exactly like the unmirrored
/// per-edge path, so results stay byte-identical.
pub fn build_mirror_plan<W: Copy>(g: &Graph<W>, topo: &Topology, threshold: usize) -> MirrorPlan {
    assert_eq!(topo.n(), g.n(), "topology does not match the graph");
    let threshold = threshold.max(1);
    let workers = topo.workers();
    let mut slot = vec![usize::MAX; workers];
    let mut hubs = Vec::new();
    for v in 0..g.n() as VertexId {
        if g.degree(v) < threshold {
            continue;
        }
        slot.iter_mut().for_each(|s| *s = usize::MAX);
        let mut targets: Vec<(u16, Vec<u32>)> = Vec::new();
        for &t in g.neighbors(v) {
            let w = topo.worker_of(t);
            if slot[w] == usize::MAX {
                slot[w] = targets.len();
                targets.push((w as u16, Vec::new()));
            }
            targets[slot[w]].1.push(topo.local_of(t));
        }
        targets.sort_by_key(|&(w, _)| w);
        let peers: Vec<u16> = targets.iter().map(|&(w, _)| w).collect();
        hubs.push(MirrorHub {
            id: v,
            peers,
            targets,
        });
    }
    MirrorPlan {
        threshold: threshold as u64,
        hubs,
    }
}

/// Skew diagnostics of one placement: edge cut, part sizes, and — when a
/// mirror plan is in play — mirrors hosted per part plus the resulting
/// replication factors. Printed by the launcher at ship time so skew is
/// visible before the run.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionReport {
    /// Number of parts.
    pub parts: usize,
    /// Arcs whose endpoints live in different parts.
    pub cut: usize,
    /// Total arcs.
    pub total: usize,
    /// Vertices owned per part.
    pub sizes: Vec<usize>,
    /// Mirrors hosted per part (hub replicas whose master lives elsewhere).
    pub mirrors: Vec<usize>,
    /// The mirror threshold τ and hub count, when a plan was built.
    pub mirrored: Option<(usize, usize)>,
}

impl PartitionReport {
    /// Percentage of arcs cut.
    pub fn cut_percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.cut as f64 / self.total as f64
        }
    }

    /// Per-part replication factor: (owned + hosted mirrors) / owned.
    pub fn replication(&self) -> Vec<f64> {
        self.sizes
            .iter()
            .zip(&self.mirrors)
            .map(|(&s, &m)| {
                if s == 0 {
                    1.0
                } else {
                    (s + m) as f64 / s as f64
                }
            })
            .collect()
    }

    /// Largest per-part replication factor.
    pub fn max_replication(&self) -> f64 {
        self.replication().into_iter().fold(1.0, f64::max)
    }
}

impl std::fmt::Display for PartitionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "partition: {} parts, edge-cut {:.1}% ({}/{}), sizes {:?}",
            self.parts,
            self.cut_percent(),
            self.cut,
            self.total,
            self.sizes,
        )?;
        if let Some((tau, hubs)) = self.mirrored {
            write!(
                f,
                ", {} hubs mirrored (τ={}), mirrors/part {:?}, replication max {:.3}",
                hubs,
                tau,
                self.mirrors,
                self.max_replication(),
            )?;
        }
        Ok(())
    }
}

/// Compute a [`PartitionReport`] for a placement (and optional mirror
/// plan over it).
pub fn partition_report<W: Copy>(
    g: &Graph<W>,
    owner: &[u16],
    parts: usize,
    mirror: Option<&MirrorPlan>,
) -> PartitionReport {
    let (cut, total) = edge_cut(g, owner);
    let sizes = part_sizes(owner, parts);
    let mut mirrors = vec![0usize; parts];
    if let Some(plan) = mirror {
        for h in &plan.hubs {
            for &p in &h.peers {
                if p != owner[h.id as usize] {
                    mirrors[p as usize] += 1;
                }
            }
        }
    }
    PartitionReport {
        parts,
        cut,
        total,
        sizes,
        mirrors,
        mirrored: mirror.map(|p| (p.threshold as usize, p.hubs.len())),
    }
}

/// BFS block-growing partitioner: repeatedly grow a block from the
/// lowest-id unassigned vertex until it reaches `n/parts` vertices.
/// Produces contiguous blocks on meshes/roads; matches Blogel's
/// graph-Voronoi spirit without coordinates.
pub fn bfs_blocks<W: Copy>(g: &Graph<W>, parts: usize) -> Vec<u16> {
    assert!(parts >= 1 && parts <= u16::MAX as usize);
    let n = g.n();
    let target = n.div_ceil(parts);
    let mut owner = vec![u16::MAX; n];
    let mut current: u16 = 0;
    let mut filled = 0usize;
    let mut queue = std::collections::VecDeque::new();
    let mut next_seed = 0u32;
    let mut assigned = 0usize;
    while assigned < n {
        // Find next seed.
        while (next_seed as usize) < n && owner[next_seed as usize] != u16::MAX {
            next_seed += 1;
        }
        if (next_seed as usize) >= n {
            break;
        }
        queue.push_back(next_seed);
        owner[next_seed as usize] = current;
        assigned += 1;
        filled += 1;
        while let Some(v) = queue.pop_front() {
            for &t in g.neighbors(v) {
                if owner[t as usize] == u16::MAX {
                    if filled >= target && (current as usize) < parts - 1 {
                        current += 1;
                        filled = 0;
                    }
                    owner[t as usize] = current;
                    assigned += 1;
                    filled += 1;
                    queue.push_back(t);
                }
            }
        }
        if filled >= target && (current as usize) < parts - 1 {
            current += 1;
            filled = 0;
        }
    }
    owner
}

/// Relabel vertices so that each part's vertices get contiguous ids
/// (part 0 first). Returns `(new_owner_by_new_id, old_to_new, new_to_old)`.
///
/// This is the "preprocess the graph by tagging a partition ID to the
/// vertex IDs" step the paper recommends before using the Propagation
/// channel.
pub fn relabel_contiguous(owner: &[u16], parts: usize) -> (Vec<u16>, Vec<u32>, Vec<u32>) {
    let n = owner.len();
    let mut old_to_new = vec![0u32; n];
    let mut new_to_old = vec![0u32; n];
    let mut next = 0u32;
    let mut new_owner = vec![0u16; n];
    for p in 0..parts as u16 {
        for v in 0..n {
            if owner[v] == p {
                old_to_new[v] = next;
                new_to_old[next as usize] = v as u32;
                new_owner[next as usize] = p;
                next += 1;
            }
        }
    }
    assert_eq!(next as usize, n, "owner vector references missing parts");
    (new_owner, old_to_new, new_to_old)
}

/// Apply a vertex relabelling to a graph.
pub fn relabel_graph<W: Copy + Default>(g: &Graph<W>, old_to_new: &[u32]) -> Graph<W> {
    let edges: Vec<(VertexId, VertexId, W)> = g
        .arcs()
        .map(|(u, v, w)| (old_to_new[u as usize], old_to_new[v as usize], w))
        .collect();
    // Arcs of undirected graphs are already symmetric; rebuild as directed
    // to avoid doubling, preserving effective adjacency.
    Graph::from_weighted_edges(g.n(), &edges, true)
}

/// Largest/smallest part size for balance checks.
pub fn part_sizes(owner: &[u16], parts: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; parts];
    for &o in owner {
        sizes[o as usize] += 1;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn edge_cut_counts_cross_part_arcs() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], false);
        let owner = vec![0, 0, 1, 1];
        let (cut, total) = edge_cut(&g, &owner);
        assert_eq!(total, 6); // symmetrized arcs
        assert_eq!(cut, 2); // 1-2 in both directions
    }

    #[test]
    fn random_owners_cover_all_parts() {
        let owner = random_owners(10_000, 8);
        let sizes = part_sizes(&owner, 8);
        assert!(sizes.iter().all(|&s| s > 1000));
    }

    #[test]
    fn ldg_beats_random_on_grid() {
        let g = gen::grid2d(40, 40, 0.0, 1);
        let rand_owner = random_owners(g.n(), 8);
        let ldg_owner = ldg(&g, 8, 3);
        let (cut_rand, total) = edge_cut(&g, &rand_owner);
        let (cut_ldg, _) = edge_cut(&g, &ldg_owner);
        assert!(
            (cut_ldg as f64) < 0.5 * cut_rand as f64,
            "LDG cut {cut_ldg}/{total} should be far below random {cut_rand}/{total}"
        );
    }

    #[test]
    fn ldg_is_reasonably_balanced() {
        let g = gen::rmat(10, 8000, gen::RmatParams::default(), 2, false);
        let owner = ldg(&g, 4, 2);
        let sizes = part_sizes(&owner, 4);
        let max = *sizes.iter().max().unwrap();
        assert!(max as f64 <= g.n() as f64 / 4.0 * 1.35, "sizes={sizes:?}");
    }

    #[test]
    fn bfs_blocks_beats_random_on_grid() {
        let g = gen::grid2d(40, 40, 0.0, 1);
        let owner = bfs_blocks(&g, 8);
        let rand_owner = random_owners(g.n(), 8);
        let (cut_bfs, _) = edge_cut(&g, &owner);
        let (cut_rand, _) = edge_cut(&g, &rand_owner);
        assert!(cut_bfs < cut_rand / 2, "bfs={cut_bfs} rand={cut_rand}");
        let sizes = part_sizes(&owner, 8);
        assert!(sizes.iter().all(|&s| s > 0), "no empty parts: {sizes:?}");
    }

    #[test]
    fn bfs_blocks_handles_disconnected_graphs() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3)], false);
        let owner = bfs_blocks(&g, 2);
        assert!(owner.iter().all(|&o| o < 2));
        assert_eq!(owner.len(), 6);
    }

    #[test]
    fn relabel_contiguous_roundtrip() {
        let owner = vec![1u16, 0, 1, 0, 2];
        let (new_owner, old_to_new, new_to_old) = relabel_contiguous(&owner, 3);
        assert_eq!(new_owner, vec![0, 0, 1, 1, 2]);
        for old in 0..5usize {
            assert_eq!(new_to_old[old_to_new[old] as usize] as usize, old);
            assert_eq!(new_owner[old_to_new[old] as usize], owner[old]);
        }
    }

    #[test]
    fn relabel_graph_preserves_structure() {
        let g = gen::cycle(8);
        let owner = bfs_blocks(&g, 2);
        let (_, old_to_new, new_to_old) = relabel_contiguous(&owner, 2);
        let rg = relabel_graph(&g, &old_to_new);
        for v in 0..8u32 {
            let mut expect: Vec<u32> = g
                .neighbors(new_to_old[v as usize])
                .iter()
                .map(|&t| old_to_new[t as usize])
                .collect();
            expect.sort_unstable();
            assert_eq!(rg.neighbors(v), &expect[..]);
        }
    }

    #[test]
    fn ldg_deg_streams_hubs_first_and_stays_balanced() {
        let g = gen::rmat(10, 8000, gen::RmatParams::default(), 2, false);
        let owner = ldg_deg(&g, 4, 2);
        let sizes = part_sizes(&owner, 4);
        let max = *sizes.iter().max().unwrap();
        // The greedy never places onto an over-capacity part while an
        // under-capacity one exists, so the slack bound is hard.
        assert!(
            max as f64 <= g.n() as f64 / 4.0 * 1.1 + 2.0,
            "sizes={sizes:?}"
        );
        assert!(owner.iter().all(|&o| o < 4));
    }

    #[test]
    fn ldg_deg_beats_plain_ldg_on_rmat() {
        // Power-law graphs are where the degree-sorted stream pays off;
        // fixed seeds keep this deterministic.
        for seed in [2u64, 7, 42] {
            let g = gen::rmat(11, 16_000, gen::RmatParams::default(), seed, false);
            let (cut_plain, total) = edge_cut(&g, &ldg(&g, 4, 2));
            let (cut_deg, _) = edge_cut(&g, &ldg_deg(&g, 4, 2));
            assert!(
                cut_deg <= cut_plain,
                "seed {seed}: degree-sorted cut {cut_deg}/{total} worse than plain {cut_plain}/{total}"
            );
        }
    }

    #[test]
    fn default_threshold_floors_at_sixteen() {
        let ring = gen::cycle(64);
        assert_eq!(default_mirror_threshold(&ring), 16);
        let hub = gen::star(2000);
        // avg degree ~2 on a star, but the hub still clears the floor.
        assert!(hub.degree(0) >= default_mirror_threshold(&hub));
    }

    #[test]
    fn mirror_plan_groups_targets_per_worker_in_adjacency_order() {
        // Hub 0 points at 1..=6; spread them over 3 workers.
        let g = Graph::from_edges(7, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6)], true);
        let owner = vec![0u16, 1, 2, 1, 0, 2, 1];
        let topo = Topology::from_owners(3, owner);
        let plan = build_mirror_plan(&g, &topo, 4);
        assert_eq!(plan.threshold, 4);
        assert_eq!(plan.hubs.len(), 1);
        let hub = &plan.hubs[0];
        assert_eq!(hub.id, 0);
        assert_eq!(hub.peers, vec![0, 1, 2]);
        // Per worker, targets keep the hub's adjacency order as locals.
        assert_eq!(hub.targets_for(0), Some(&[topo.local_of(4)][..]));
        assert_eq!(
            hub.targets_for(1),
            Some(&[topo.local_of(1), topo.local_of(3), topo.local_of(6)][..])
        );
        assert_eq!(
            hub.targets_for(2),
            Some(&[topo.local_of(2), topo.local_of(5)][..])
        );
    }

    #[test]
    fn partition_report_counts_mirrors_and_replication() {
        let g = gen::star(33); // hub 0 → 32 spokes, symmetrized arcs
        let owner: Vec<u16> = (0..33).map(|v| (v % 4) as u16).collect();
        let topo = Topology::from_owners(4, owner.clone());
        let plan = build_mirror_plan(&g, &topo, 16);
        let report = partition_report(&g, &owner, 4, Some(&plan));
        assert_eq!(report.total, 64);
        assert_eq!(report.mirrored, Some((16, 1)));
        // The hub lives on part 0; parts 1..3 each host one mirror.
        assert_eq!(report.mirrors, vec![0, 1, 1, 1]);
        assert!(report.max_replication() > 1.0);
        let line = report.to_string();
        assert!(line.contains("edge-cut"), "{line}");
        assert!(line.contains("replication max"), "{line}");
        // Without a plan the mirror columns stay silent.
        let plain = partition_report(&g, &owner, 4, None);
        assert_eq!(plain.max_replication(), 1.0);
        assert!(!plain.to_string().contains("replication"));
    }

    #[test]
    fn single_part_is_trivially_uncut() {
        let g = gen::rmat(8, 1000, gen::RmatParams::default(), 3, true);
        let owner = ldg(&g, 1, 1);
        let (cut, _) = edge_cut(&g, &owner);
        assert_eq!(cut, 0);
    }
}
