//! Graph partitioners and the edge-cut metric.
//!
//! The paper evaluates the Propagation channel and Blogel on a
//! METIS-partitioned Wikipedia ("Wikipedia (P)"). METIS is proprietary-ish
//! and unavailable offline, so we provide two locality-aware partitioners
//! that serve the same role — producing a partition with a much lower
//! edge-cut than random assignment:
//!
//! * [`ldg`] — Linear Deterministic Greedy streaming partitioning
//!   (Stanton & Kliot), optionally with multiple refinement passes;
//! * [`bfs_blocks`] — BFS block growing (the partitioner Blogel itself
//!   ships for graphs without coordinates).
//!
//! Quality is quantified by [`edge_cut`]; tests assert the locality-aware
//! partitioners beat random placement on structured graphs.

use crate::csr::{Graph, VertexId};

/// Fraction of arcs whose endpoints live in different parts, given
/// `owner[v]` assignments. Returns `(cut_arcs, total_arcs)`.
pub fn edge_cut<W: Copy>(g: &Graph<W>, owner: &[u16]) -> (usize, usize) {
    assert_eq!(owner.len(), g.n());
    let mut cut = 0usize;
    let mut total = 0usize;
    for (u, v, _) in g.arcs() {
        total += 1;
        if owner[u as usize] != owner[v as usize] {
            cut += 1;
        }
    }
    (cut, total)
}

/// Pseudo-random (hash) assignment — the baseline the paper calls
/// "vertices are randomly assigned to workers". Uses the same mix as
/// `pc_bsp::Topology::hashed`, so the two agree vertex for vertex.
pub fn random_owners(n: usize, parts: usize) -> Vec<u16> {
    (0..n as u64)
        .map(|v| (pc_bsp::topology::mix64(v) % parts as u64) as u16)
        .collect()
}

/// Linear Deterministic Greedy streaming partitioner.
///
/// Vertices are streamed in id order; each is placed on the part that
/// maximizes `|neighbors already there| * (1 - size/capacity)`. `passes > 1`
/// re-streams with the previous assignment as the neighborhood oracle,
/// which substantially improves locality on meshes.
pub fn ldg<W: Copy>(g: &Graph<W>, parts: usize, passes: usize) -> Vec<u16> {
    assert!(parts >= 1 && parts <= u16::MAX as usize);
    let n = g.n();
    let capacity = (n as f64 / parts as f64) * 1.1 + 1.0;
    let mut owner: Vec<u16> = vec![u16::MAX; n];
    for pass in 0..passes.max(1) {
        let mut sizes = vec![0usize; parts];
        if pass > 0 {
            // Re-streaming: clear sizes but keep previous owners as hints.
            sizes.iter_mut().for_each(|s| *s = 0);
        }
        let prev = owner.clone();
        let mut scores = vec![0u32; parts];
        for v in 0..n as VertexId {
            scores.iter_mut().for_each(|s| *s = 0);
            for &t in g.neighbors(v) {
                let o = if (t as usize) < v as usize || pass > 0 {
                    // Within a pass we know already-placed vertices; on
                    // refinement passes we also use last pass's placement.
                    if owner[t as usize] != u16::MAX {
                        owner[t as usize]
                    } else {
                        prev[t as usize]
                    }
                } else {
                    u16::MAX
                };
                if o != u16::MAX {
                    scores[o as usize] += 1;
                }
            }
            let mut best = 0usize;
            let mut best_score = f64::MIN;
            for p in 0..parts {
                let penalty = 1.0 - sizes[p] as f64 / capacity;
                let s = scores[p] as f64 * penalty.max(0.0) + penalty * 1e-6; // tie-break toward emptier parts
                if s > best_score {
                    best_score = s;
                    best = p;
                }
            }
            owner[v as usize] = best as u16;
            sizes[best] += 1;
        }
    }
    owner
}

/// BFS block-growing partitioner: repeatedly grow a block from the
/// lowest-id unassigned vertex until it reaches `n/parts` vertices.
/// Produces contiguous blocks on meshes/roads; matches Blogel's
/// graph-Voronoi spirit without coordinates.
pub fn bfs_blocks<W: Copy>(g: &Graph<W>, parts: usize) -> Vec<u16> {
    assert!(parts >= 1 && parts <= u16::MAX as usize);
    let n = g.n();
    let target = n.div_ceil(parts);
    let mut owner = vec![u16::MAX; n];
    let mut current: u16 = 0;
    let mut filled = 0usize;
    let mut queue = std::collections::VecDeque::new();
    let mut next_seed = 0u32;
    let mut assigned = 0usize;
    while assigned < n {
        // Find next seed.
        while (next_seed as usize) < n && owner[next_seed as usize] != u16::MAX {
            next_seed += 1;
        }
        if (next_seed as usize) >= n {
            break;
        }
        queue.push_back(next_seed);
        owner[next_seed as usize] = current;
        assigned += 1;
        filled += 1;
        while let Some(v) = queue.pop_front() {
            for &t in g.neighbors(v) {
                if owner[t as usize] == u16::MAX {
                    if filled >= target && (current as usize) < parts - 1 {
                        current += 1;
                        filled = 0;
                    }
                    owner[t as usize] = current;
                    assigned += 1;
                    filled += 1;
                    queue.push_back(t);
                }
            }
        }
        if filled >= target && (current as usize) < parts - 1 {
            current += 1;
            filled = 0;
        }
    }
    owner
}

/// Relabel vertices so that each part's vertices get contiguous ids
/// (part 0 first). Returns `(new_owner_by_new_id, old_to_new, new_to_old)`.
///
/// This is the "preprocess the graph by tagging a partition ID to the
/// vertex IDs" step the paper recommends before using the Propagation
/// channel.
pub fn relabel_contiguous(owner: &[u16], parts: usize) -> (Vec<u16>, Vec<u32>, Vec<u32>) {
    let n = owner.len();
    let mut old_to_new = vec![0u32; n];
    let mut new_to_old = vec![0u32; n];
    let mut next = 0u32;
    let mut new_owner = vec![0u16; n];
    for p in 0..parts as u16 {
        for v in 0..n {
            if owner[v] == p {
                old_to_new[v] = next;
                new_to_old[next as usize] = v as u32;
                new_owner[next as usize] = p;
                next += 1;
            }
        }
    }
    assert_eq!(next as usize, n, "owner vector references missing parts");
    (new_owner, old_to_new, new_to_old)
}

/// Apply a vertex relabelling to a graph.
pub fn relabel_graph<W: Copy + Default>(g: &Graph<W>, old_to_new: &[u32]) -> Graph<W> {
    let edges: Vec<(VertexId, VertexId, W)> = g
        .arcs()
        .map(|(u, v, w)| (old_to_new[u as usize], old_to_new[v as usize], w))
        .collect();
    // Arcs of undirected graphs are already symmetric; rebuild as directed
    // to avoid doubling, preserving effective adjacency.
    Graph::from_weighted_edges(g.n(), &edges, true)
}

/// Largest/smallest part size for balance checks.
pub fn part_sizes(owner: &[u16], parts: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; parts];
    for &o in owner {
        sizes[o as usize] += 1;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn edge_cut_counts_cross_part_arcs() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], false);
        let owner = vec![0, 0, 1, 1];
        let (cut, total) = edge_cut(&g, &owner);
        assert_eq!(total, 6); // symmetrized arcs
        assert_eq!(cut, 2); // 1-2 in both directions
    }

    #[test]
    fn random_owners_cover_all_parts() {
        let owner = random_owners(10_000, 8);
        let sizes = part_sizes(&owner, 8);
        assert!(sizes.iter().all(|&s| s > 1000));
    }

    #[test]
    fn ldg_beats_random_on_grid() {
        let g = gen::grid2d(40, 40, 0.0, 1);
        let rand_owner = random_owners(g.n(), 8);
        let ldg_owner = ldg(&g, 8, 3);
        let (cut_rand, total) = edge_cut(&g, &rand_owner);
        let (cut_ldg, _) = edge_cut(&g, &ldg_owner);
        assert!(
            (cut_ldg as f64) < 0.5 * cut_rand as f64,
            "LDG cut {cut_ldg}/{total} should be far below random {cut_rand}/{total}"
        );
    }

    #[test]
    fn ldg_is_reasonably_balanced() {
        let g = gen::rmat(10, 8000, gen::RmatParams::default(), 2, false);
        let owner = ldg(&g, 4, 2);
        let sizes = part_sizes(&owner, 4);
        let max = *sizes.iter().max().unwrap();
        assert!(max as f64 <= g.n() as f64 / 4.0 * 1.35, "sizes={sizes:?}");
    }

    #[test]
    fn bfs_blocks_beats_random_on_grid() {
        let g = gen::grid2d(40, 40, 0.0, 1);
        let owner = bfs_blocks(&g, 8);
        let rand_owner = random_owners(g.n(), 8);
        let (cut_bfs, _) = edge_cut(&g, &owner);
        let (cut_rand, _) = edge_cut(&g, &rand_owner);
        assert!(cut_bfs < cut_rand / 2, "bfs={cut_bfs} rand={cut_rand}");
        let sizes = part_sizes(&owner, 8);
        assert!(sizes.iter().all(|&s| s > 0), "no empty parts: {sizes:?}");
    }

    #[test]
    fn bfs_blocks_handles_disconnected_graphs() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3)], false);
        let owner = bfs_blocks(&g, 2);
        assert!(owner.iter().all(|&o| o < 2));
        assert_eq!(owner.len(), 6);
    }

    #[test]
    fn relabel_contiguous_roundtrip() {
        let owner = vec![1u16, 0, 1, 0, 2];
        let (new_owner, old_to_new, new_to_old) = relabel_contiguous(&owner, 3);
        assert_eq!(new_owner, vec![0, 0, 1, 1, 2]);
        for old in 0..5usize {
            assert_eq!(new_to_old[old_to_new[old] as usize] as usize, old);
            assert_eq!(new_owner[old_to_new[old] as usize], owner[old]);
        }
    }

    #[test]
    fn relabel_graph_preserves_structure() {
        let g = gen::cycle(8);
        let owner = bfs_blocks(&g, 2);
        let (_, old_to_new, new_to_old) = relabel_contiguous(&owner, 2);
        let rg = relabel_graph(&g, &old_to_new);
        for v in 0..8u32 {
            let mut expect: Vec<u32> = g
                .neighbors(new_to_old[v as usize])
                .iter()
                .map(|&t| old_to_new[t as usize])
                .collect();
            expect.sort_unstable();
            assert_eq!(rg.neighbors(v), &expect[..]);
        }
    }

    #[test]
    fn single_part_is_trivially_uncut() {
        let g = gen::rmat(8, 1000, gen::RmatParams::default(), 3, true);
        let owner = ldg(&g, 1, 1);
        let (cut, _) = edge_cut(&g, &owner);
        assert_eq!(cut, 0);
    }
}
