//! Minimum Spanning Forest via distributed Borůvka (after Chung & Condon),
//! the Table IV workload with **heterogeneous messages**.
//!
//! Each Borůvka round:
//!
//! 1. every vertex broadcasts its component id to its neighbors;
//! 2. every vertex proposes its lightest *external* edge (canonical tuple
//!    `(w, min(u,v), max(u,v))` so both sides of an edge order it
//!    identically) to its component root;
//! 3. roots pick the minimum proposal, point at the target component and
//!    record the edge; a conjoined-tree handshake (ask the new parent for
//!    *its* parent) resolves the mutual-selection 2-cycles — the winner
//!    (smaller id) stays root and un-records its copy of the shared edge;
//! 4. pointer jumping flattens the merged trees (aggregator-terminated
//!    doubling, as in [`crate::pointer_jumping`]);
//! 5. a second aggregator detects the round with no merges — termination.
//!
//! The paper uses MSF to show the cost of Pregel's monolithic messages: the
//! program needs component broadcasts `(id, comp)`, edge proposals
//! `(w, a, b, comp)`, pointer asks and replies — so the single Pregel
//! message type is a tagged 4-tuple of integers padded to its largest
//! variant, while the channel version gives each purpose its own small
//! type (and a combiner for the proposals). Table IV measures the
//! difference directly.

use pc_bsp::codec::{Codec, FixedWidth, Reader};
use pc_bsp::{Config, RunStats, Topology};
use pc_channels::channel::{VertexCtx, WorkerEnv};
use pc_channels::engine::{run, Algorithm};
use pc_channels::{Aggregator, Combine, CombinedMessage, DirectMessage};
use pc_graph::{VertexId, WeightedGraph};
use pc_pregel::{run_pregel, PregelOptions, PregelProgram, PregelVertex};
use std::collections::HashMap;
use std::sync::Arc;

/// Result of an MSF run.
#[derive(Debug, Clone)]
pub struct MsfOutput {
    /// Total weight of the spanning forest.
    pub total_weight: u64,
    /// Number of forest edges.
    pub edge_count: usize,
    /// Final component label per vertex.
    pub components: Vec<VertexId>,
    /// Run statistics.
    pub stats: RunStats,
}

/// An edge proposal: `(weight, min endpoint, max endpoint, target comp)`,
/// minimized lexicographically. The canonical endpoint order guarantees
/// that two components whose best edges point at each other selected the
/// *same* edge.
type Proposal = (u32, u32, u32, u32);

const NO_PROPOSAL: Proposal = (u32::MAX, u32::MAX, u32::MAX, u32::MAX);

fn proposal_combine() -> Combine<Proposal> {
    Combine::min_with_identity(NO_PROPOSAL)
}

/// Round phases (per-vertex, lock-stepped by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Mode {
    #[default]
    Bcast,
    Gather,
    Pick,
    Reply,
    Resolve,
    JumpAsk,
    JumpReply,
}

/// Per-vertex Borůvka state.
#[derive(Debug, Clone, Default)]
struct MsfValue {
    comp: VertexId,
    mode: Mode,
    /// Target component of this root's tentative merge.
    pending_parent: VertexId,
    /// Weight of the tentatively recorded edge (for the conjoined unrecord).
    pending_w: u32,
    /// Whether this root merged this round.
    pending: bool,
    /// First pointer-jumping round of this Borůvka round.
    jump_first: bool,
    /// Forest weight recorded at this vertex.
    recorded_w: u64,
    /// Forest edges recorded at this vertex.
    recorded_n: u32,
}

impl Codec for Mode {
    fn encode(&self, buf: &mut Vec<u8>) {
        let tag: u8 = match self {
            Mode::Bcast => 0,
            Mode::Gather => 1,
            Mode::Pick => 2,
            Mode::Reply => 3,
            Mode::Resolve => 4,
            Mode::JumpAsk => 5,
            Mode::JumpReply => 6,
        };
        tag.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Self {
        match r.get::<u8>() {
            0 => Mode::Bcast,
            1 => Mode::Gather,
            2 => Mode::Pick,
            3 => Mode::Reply,
            4 => Mode::Resolve,
            5 => Mode::JumpAsk,
            6 => Mode::JumpReply,
            other => panic!("invalid Mode tag {other}"),
        }
    }
    const FIXED_SIZE: Option<usize> = Some(1);
}

impl Codec for MsfValue {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.comp.encode(buf);
        self.mode.encode(buf);
        self.pending_parent.encode(buf);
        self.pending_w.encode(buf);
        self.pending.encode(buf);
        self.jump_first.encode(buf);
        self.recorded_w.encode(buf);
        self.recorded_n.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Self {
        MsfValue {
            comp: r.get(),
            mode: r.get(),
            pending_parent: r.get(),
            pending_w: r.get(),
            pending: r.get(),
            jump_first: r.get(),
            recorded_w: r.get(),
            recorded_n: r.get(),
        }
    }
}

/// Channel-based Borůvka: four purpose-specific channels.
struct MsfChannel {
    g: Arc<WeightedGraph>,
}

type MsfChannels = (
    DirectMessage<(u32, u32)>, // component broadcasts (sender, comp)
    CombinedMessage<Proposal>, // edge proposals, min-combined per root
    DirectMessage<u32>,        // pointer asks & replies (phase-disciplined)
    Aggregator<bool>,          // pointer-jumping stability
    Aggregator<bool>,          // any-merge-this-round
);

impl Algorithm for MsfChannel {
    type Value = MsfValue;
    type Channels = MsfChannels;
    pc_channels::dist_value_via_codec!();

    fn channels(&self, env: &WorkerEnv) -> Self::Channels {
        (
            DirectMessage::new(env),
            CombinedMessage::new(env, proposal_combine()),
            DirectMessage::new(env),
            Aggregator::new(env, Combine::or()),
            Aggregator::new(env, Combine::or()),
        )
    }

    fn compute(&self, v: &mut VertexCtx<'_>, value: &mut MsfValue, ch: &mut Self::Channels) {
        let (nbrc, cand, ptr, agg_jump, agg_merge) = ch;
        if v.step() == 1 {
            value.comp = v.id;
            value.mode = Mode::Bcast;
        }
        match value.mode {
            Mode::Bcast => {
                for &t in self.g.neighbors(v.id) {
                    nbrc.send_message(t, (v.id, value.comp));
                }
                value.mode = Mode::Gather;
            }
            Mode::Gather => {
                let comps: HashMap<u32, u32> = nbrc.messages(v.local).iter().copied().collect();
                let mut best = NO_PROPOSAL;
                for (t, w) in self.g.neighbors_weighted(v.id) {
                    if let Some(&tc) = comps.get(&t) {
                        if tc != value.comp {
                            let prop = (w, v.id.min(t), v.id.max(t), tc);
                            best = best.min(prop);
                        }
                    }
                }
                if best != NO_PROPOSAL {
                    cand.send_message(value.comp, best);
                }
                value.mode = Mode::Pick;
            }
            Mode::Pick => {
                value.pending = false;
                if value.comp == v.id {
                    if let Some(&(w, _a, _b, target)) = cand.get_message(v.local) {
                        value.pending = true;
                        value.pending_parent = target;
                        value.pending_w = w;
                        value.recorded_w += w as u64;
                        value.recorded_n += 1;
                        value.comp = target;
                        ptr.send_message(target, v.id);
                        agg_merge.add(true);
                    }
                }
                value.mode = Mode::Reply;
            }
            Mode::Reply => {
                if !*agg_merge.result() {
                    // No component merged anywhere: the forest is complete.
                    v.vote_to_halt();
                    return;
                }
                for i in 0..ptr.messages(v.local).len() {
                    let asker = ptr.messages(v.local)[i];
                    ptr.send_message(asker, value.comp);
                }
                value.mode = Mode::Resolve;
            }
            Mode::Resolve => {
                if value.pending {
                    let parent_comp = ptr
                        .messages(v.local)
                        .first()
                        .copied()
                        .unwrap_or(value.pending_parent);
                    if parent_comp == v.id && v.id < value.pending_parent {
                        // Mutual selection of the same edge: the smaller id
                        // stays root and un-records its copy.
                        value.comp = v.id;
                        value.recorded_w -= value.pending_w as u64;
                        value.recorded_n -= 1;
                    }
                }
                value.mode = Mode::JumpAsk;
                value.jump_first = true;
            }
            Mode::JumpAsk => {
                if value.jump_first {
                    agg_jump.add(true);
                } else {
                    let gp = ptr.messages(v.local).first().copied().unwrap_or(value.comp);
                    agg_jump.add(gp != value.comp);
                    value.comp = gp;
                }
                ptr.send_message(value.comp, v.id);
                value.mode = Mode::JumpReply;
            }
            Mode::JumpReply => {
                value.jump_first = false;
                if !*agg_jump.result() {
                    // Pointers are flat: start the next Borůvka round now.
                    for &t in self.g.neighbors(v.id) {
                        nbrc.send_message(t, (v.id, value.comp));
                    }
                    value.mode = Mode::Gather;
                    return;
                }
                for i in 0..ptr.messages(v.local).len() {
                    let asker = ptr.messages(v.local)[i];
                    ptr.send_message(asker, value.comp);
                }
                value.mode = Mode::JumpAsk;
            }
        }
    }
}

/// The monolithic message of the Pregel baseline: a tagged union padded to
/// its largest variant (§II-B's "4-tuple of integer values ... the
/// smallest one is just an int").
#[derive(Debug, Clone, PartialEq, Default)]
enum MsfMsg {
    #[default]
    Nothing,
    /// Component broadcast `(sender, comp)`.
    NbrComp(u32, u32),
    /// Edge proposal.
    Cand(u32, u32, u32, u32),
    /// Pointer ask (asker id).
    Ask(u32),
    /// Pointer reply (comp).
    Reply(u32),
}

impl Codec for MsfMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            MsfMsg::Nothing => 0u8.encode(buf),
            MsfMsg::NbrComp(a, b) => {
                1u8.encode(buf);
                (*a, *b).encode(buf);
            }
            MsfMsg::Cand(a, b, c, d) => {
                2u8.encode(buf);
                (*a, *b, *c, *d).encode(buf);
            }
            MsfMsg::Ask(a) => {
                3u8.encode(buf);
                a.encode(buf);
            }
            MsfMsg::Reply(a) => {
                4u8.encode(buf);
                a.encode(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Self {
        match r.get::<u8>() {
            0 => MsfMsg::Nothing,
            1 => {
                let (a, b) = r.get();
                MsfMsg::NbrComp(a, b)
            }
            2 => {
                let (a, b, c, d) = r.get();
                MsfMsg::Cand(a, b, c, d)
            }
            3 => MsfMsg::Ask(r.get()),
            _ => MsfMsg::Reply(r.get()),
        }
    }
}

impl FixedWidth for MsfMsg {
    const WIDTH: usize = 1 + 16; // tag + the 4-tuple variant
}

/// Pregel+ Borůvka: same phase machine, one message type, no combiner.
struct MsfPregel {
    g: Arc<WeightedGraph>,
}

impl PregelProgram for MsfPregel {
    type Value = MsfValue;
    type Msg = MsfMsg;
    type Agg = (bool, bool); // (jump stability, any merge)
    type Resp = u8;

    fn aggregator(&self) -> Option<Combine<(bool, bool)>> {
        Some(Combine::new((false, false), |acc, m| {
            acc.0 |= m.0;
            acc.1 |= m.1;
        }))
    }

    fn compute(&self, v: &mut PregelVertex<'_, '_, Self>) {
        if v.step() == 1 {
            v.value_mut().comp = v.id();
            v.value_mut().mode = Mode::Bcast;
        }
        match v.value().mode {
            Mode::Bcast => {
                let (id, comp) = (v.id(), v.value().comp);
                for i in 0..self.g.degree(id) {
                    let t = self.g.neighbors(id)[i];
                    v.send_message(t, MsfMsg::NbrComp(id, comp));
                }
                v.value_mut().mode = Mode::Gather;
            }
            Mode::Gather => {
                let comps: HashMap<u32, u32> = v
                    .messages()
                    .iter()
                    .filter_map(|m| match m {
                        MsfMsg::NbrComp(a, b) => Some((*a, *b)),
                        _ => None,
                    })
                    .collect();
                let id = v.id();
                let my_comp = v.value().comp;
                let mut best = NO_PROPOSAL;
                for (t, w) in self.g.neighbors_weighted(id) {
                    if let Some(&tc) = comps.get(&t) {
                        if tc != my_comp {
                            best = best.min((w, id.min(t), id.max(t), tc));
                        }
                    }
                }
                if best != NO_PROPOSAL {
                    v.send_message(my_comp, MsfMsg::Cand(best.0, best.1, best.2, best.3));
                }
                v.value_mut().mode = Mode::Pick;
            }
            Mode::Pick => {
                v.value_mut().pending = false;
                if v.value().comp == v.id() {
                    let best = v
                        .messages()
                        .iter()
                        .filter_map(|m| match m {
                            MsfMsg::Cand(w, a, b, c) => Some((*w, *a, *b, *c)),
                            _ => None,
                        })
                        .min();
                    if let Some((w, _a, _b, target)) = best {
                        let val = v.value_mut();
                        val.pending = true;
                        val.pending_parent = target;
                        val.pending_w = w;
                        val.recorded_w += w as u64;
                        val.recorded_n += 1;
                        val.comp = target;
                        let id = v.id();
                        v.send_message(target, MsfMsg::Ask(id));
                        v.aggregate((false, true));
                    }
                }
                v.value_mut().mode = Mode::Reply;
            }
            Mode::Reply => {
                if !v.agg_result().1 {
                    v.vote_to_halt();
                    return;
                }
                let comp = v.value().comp;
                let askers: Vec<u32> = v
                    .messages()
                    .iter()
                    .filter_map(|m| match m {
                        MsfMsg::Ask(a) => Some(*a),
                        _ => None,
                    })
                    .collect();
                for asker in askers {
                    v.send_message(asker, MsfMsg::Reply(comp));
                }
                v.value_mut().mode = Mode::Resolve;
            }
            Mode::Resolve => {
                if v.value().pending {
                    let parent_comp = v
                        .messages()
                        .iter()
                        .find_map(|m| match m {
                            MsfMsg::Reply(c) => Some(*c),
                            _ => None,
                        })
                        .unwrap_or(v.value().pending_parent);
                    if parent_comp == v.id() && v.id() < v.value().pending_parent {
                        let id = v.id();
                        let val = v.value_mut();
                        val.comp = id;
                        val.recorded_w -= val.pending_w as u64;
                        val.recorded_n -= 1;
                    }
                }
                v.value_mut().mode = Mode::JumpAsk;
                v.value_mut().jump_first = true;
            }
            Mode::JumpAsk => {
                if v.value().jump_first {
                    v.aggregate((true, false));
                } else {
                    let gp = v
                        .messages()
                        .iter()
                        .find_map(|m| match m {
                            MsfMsg::Reply(c) => Some(*c),
                            _ => None,
                        })
                        .unwrap_or(v.value().comp);
                    v.aggregate((gp != v.value().comp, false));
                    v.value_mut().comp = gp;
                }
                let comp = v.value().comp;
                let id = v.id();
                v.send_message(comp, MsfMsg::Ask(id));
                v.value_mut().mode = Mode::JumpReply;
            }
            Mode::JumpReply => {
                v.value_mut().jump_first = false;
                if !v.agg_result().0 {
                    let (id, comp) = (v.id(), v.value().comp);
                    for i in 0..self.g.degree(id) {
                        let t = self.g.neighbors(id)[i];
                        v.send_message(t, MsfMsg::NbrComp(id, comp));
                    }
                    v.value_mut().mode = Mode::Gather;
                    return;
                }
                let comp = v.value().comp;
                let askers: Vec<u32> = v
                    .messages()
                    .iter()
                    .filter_map(|m| match m {
                        MsfMsg::Ask(a) => Some(*a),
                        _ => None,
                    })
                    .collect();
                for asker in askers {
                    v.send_message(asker, MsfMsg::Reply(comp));
                }
                v.value_mut().mode = Mode::JumpAsk;
            }
        }
    }
}

fn gather_output(values: Vec<MsfValue>, stats: RunStats) -> MsfOutput {
    MsfOutput {
        total_weight: values.iter().map(|x| x.recorded_w).sum(),
        edge_count: values.iter().map(|x| x.recorded_n as usize).sum(),
        components: values.into_iter().map(|x| x.comp).collect(),
        stats,
    }
}

/// Channel-based Borůvka MSF.
pub fn channel_basic(g: &Arc<WeightedGraph>, topo: &Arc<Topology>, cfg: &Config) -> MsfOutput {
    let out = run(&MsfChannel { g: Arc::clone(g) }, topo, cfg);
    gather_output(out.values, out.stats)
}

/// Pregel+ Borůvka MSF (monolithic tagged messages).
pub fn pregel_basic(g: &Arc<WeightedGraph>, topo: &Arc<Topology>, cfg: &Config) -> MsfOutput {
    let prog = Arc::new(MsfPregel { g: Arc::clone(g) });
    let out = run_pregel(prog, topo, cfg, PregelOptions::default());
    gather_output(out.values, out.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_graph::{gen, reference};

    fn check_all(g: Arc<WeightedGraph>, workers: usize) {
        let expect_w = reference::msf_weight(&g);
        let expect_n = reference::msf_edge_count(&g);
        let cc = reference::connected_components(&g);
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        let cfg = Config::sequential(workers);
        for (name, out) in [
            ("channel", channel_basic(&g, &topo, &cfg)),
            ("pregel", pregel_basic(&g, &topo, &cfg)),
        ] {
            assert_eq!(out.total_weight, expect_w, "{name} weight");
            assert_eq!(out.edge_count, expect_n, "{name} edge count");
            // Components must match connectivity (labels may differ, so
            // compare the partition via canonical relabeling).
            assert_eq!(
                canonical(&out.components),
                canonical(&cc),
                "{name} components"
            );
        }
    }

    /// Relabel a partition vector by first occurrence for comparison.
    fn canonical(labels: &[u32]) -> Vec<u32> {
        let mut map = HashMap::new();
        labels
            .iter()
            .map(|&l| {
                let next = map.len() as u32;
                *map.entry(l).or_insert(next)
            })
            .collect()
    }

    #[test]
    fn small_known_graph() {
        let g = Arc::new(WeightedGraph::from_weighted_edges(
            4,
            &[(0, 1, 1u32), (1, 2, 2), (2, 3, 3), (0, 3, 10), (0, 2, 4)],
            false,
        ));
        check_all(g, 2);
    }

    #[test]
    fn distinct_weights_grid() {
        // Grid with unique weights (no ties).
        let base = gen::grid2d(8, 8, 0.0, 1);
        let mut edges = Vec::new();
        let mut w = 1u32;
        for (u, v, ()) in base.arcs() {
            if u < v {
                edges.push((u, v, w * 7919 % 1000 + 1));
                w += 1;
            }
        }
        let g = Arc::new(WeightedGraph::from_weighted_edges(64, &edges, false));
        check_all(g, 4);
    }

    #[test]
    fn duplicate_weights_are_handled_by_tiebreak() {
        // All weights equal: correctness rests on the canonical tuple.
        let base = gen::rmat(7, 800, gen::RmatParams::default(), 3, false);
        let edges: Vec<(u32, u32, u32)> = base
            .arcs()
            .filter(|&(u, v, _)| u < v)
            .map(|(u, v, _)| (u, v, 5))
            .collect();
        let g = Arc::new(WeightedGraph::from_weighted_edges(base.n(), &edges, false));
        check_all(g, 4);
    }

    #[test]
    fn weighted_rmat_forest() {
        let g = Arc::new(gen::rmat_weighted(
            8,
            1500,
            gen::RmatParams::default(),
            6,
            false,
            1000,
        ));
        check_all(g, 4);
    }

    #[test]
    fn disconnected_forest() {
        let g = Arc::new(WeightedGraph::from_weighted_edges(
            7,
            &[(0, 1, 5u32), (1, 2, 3), (4, 5, 2)],
            false,
        ));
        check_all(g, 3);
    }

    #[test]
    fn edgeless_graph_terminates_immediately() {
        let g = Arc::new(WeightedGraph::from_weighted_edges(5, &[], false));
        let topo = Arc::new(Topology::hashed(5, 2));
        let out = channel_basic(&g, &topo, &Config::sequential(2));
        assert_eq!(out.total_weight, 0);
        assert_eq!(out.edge_count, 0);
    }

    #[test]
    fn monolithic_messages_cost_more_bytes() {
        let g = Arc::new(gen::rmat_weighted(
            8,
            2500,
            gen::RmatParams::default(),
            2,
            false,
            500,
        ));
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let cfg = Config::sequential(4);
        let channel = channel_basic(&g, &topo, &cfg);
        let pregel = pregel_basic(&g, &topo, &cfg);
        assert_eq!(channel.total_weight, pregel.total_weight);
        assert!(
            (channel.stats.remote_bytes() as f64) < 0.8 * pregel.stats.remote_bytes() as f64,
            "channel {} vs pregel {}",
            channel.stats.remote_bytes(),
            pregel.stats.remote_bytes()
        );
    }

    #[test]
    fn threaded_matches_sequential() {
        let g = Arc::new(gen::rmat_weighted(
            7,
            900,
            gen::RmatParams::default(),
            4,
            false,
            100,
        ));
        let topo = Arc::new(Topology::hashed(g.n(), 3));
        let a = channel_basic(&g, &topo, &Config::sequential(3));
        let b = channel_basic(&g, &topo, &Config::with_workers(3));
        assert_eq!(a.total_weight, b.total_weight);
        assert_eq!(a.components, b.components);
    }
}
