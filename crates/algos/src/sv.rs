//! The Shiloach-Vishkin connected-components algorithm (§III-C) — the
//! paper's headline example for **composing** optimizations.
//!
//! S-V maintains a distributed disjoint-set: every vertex points at `D[u]`
//! (itself if it is a root). Each round (four supersteps here):
//!
//! * **P0** — every vertex asks its parent for the grandparent `D[D[u]]`
//!   (the *request-respond* pattern; high-degree parents make the naive
//!   version imbalanced);
//! * **P1** — parents answer; every vertex broadcasts `D[u]` to all its
//!   neighbors regardless of state (the *static messaging* pattern; heavy
//!   neighborhood traffic);
//! * **P2** — vertices whose parent is a root propose `t = min` of the
//!   neighbours' pointers to the root (a congestion-prone min-update);
//!   others pointer-jump `D[u] ← D[D[u]]`;
//! * **P3** — roots fold the proposals (`D[r] ← min(t)`); a boolean OR
//!   aggregator detects the fixpoint.
//!
//! The three communication patterns map to three channels, and the paper's
//! point is that each can be *independently* optimized: the grandparent
//! query by [`RequestRespond`], the broadcast by [`ScatterCombine`], and
//! the min-update stays a [`CombinedMessage`]. The four `channel_*`
//! constructors below cover the 2×2 composition grid of Table VI; the two
//! `pregel_*` functions are the monolithic baselines.

use pc_bsp::{Config, RunStats, Topology};
use pc_channels::channel::{Channel, VertexCtx, WorkerEnv};
use pc_channels::engine::{run, Algorithm};
use pc_channels::{
    Aggregator, Combine, CombinedMessage, DirectMessage, RequestRespond, ScatterCombine,
};
use pc_graph::{Graph, VertexId};
use pc_pregel::{run_pregel, PregelOptions, PregelProgram, PregelVertex};
use std::sync::Arc;

/// Result of an S-V run.
#[derive(Debug, Clone)]
pub struct SvOutput {
    /// Component label per vertex (= min vertex id in the component).
    pub labels: Vec<VertexId>,
    /// Run statistics.
    pub stats: RunStats,
}

/// Per-vertex S-V state.
#[derive(Debug, Clone, Default)]
pub struct SvValue {
    /// The disjoint-set pointer `D[u]`.
    pub d: VertexId,
    /// Grandparent received this round (reqresp variants stash it at P1).
    gp: VertexId,
    /// Whether `D[u]` changed this round.
    changed: bool,
}

impl pc_bsp::Codec for SvValue {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.d.encode(buf);
        self.gp.encode(buf);
        self.changed.encode(buf);
    }
    fn decode(r: &mut pc_bsp::Reader<'_>) -> Self {
        SvValue {
            d: r.get(),
            gp: r.get(),
            changed: r.get(),
        }
    }
}

/// Round phase from the 1-based superstep number.
fn phase(step: u64) -> u64 {
    (step - 1) % 4
}

/// How the grandparent query is communicated (P0 ask → P2 read).
trait GpQuery: Send + Sync + 'static {
    /// The channel carrying the conversation.
    type Ch: Channel<SvValue>;
    fn make(env: &WorkerEnv) -> Self::Ch;
    /// P0: ask `d` for its pointer.
    fn ask(ch: &mut Self::Ch, v: &VertexCtx<'_>, d: VertexId);
    /// P1: serve queries (basic) or stash the response (reqresp).
    fn p1(ch: &mut Self::Ch, v: &VertexCtx<'_>, value: &mut SvValue);
    /// P2: the grandparent.
    fn gp(ch: &Self::Ch, v: &VertexCtx<'_>, value: &SvValue) -> VertexId;
}

/// Basic grandparent query: explicit ask/reply messages over one
/// `DirectMessage` channel (asks travel P0→P1, replies P1→P2; the phases
/// never overlap on the wire).
struct BasicQuery;

impl GpQuery for BasicQuery {
    type Ch = DirectMessage<u32>;

    fn make(env: &WorkerEnv) -> Self::Ch {
        DirectMessage::new(env)
    }

    fn ask(ch: &mut Self::Ch, v: &VertexCtx<'_>, d: VertexId) {
        ch.send_message(d, v.id);
    }

    fn p1(ch: &mut Self::Ch, v: &VertexCtx<'_>, value: &mut SvValue) {
        // Reply individually to every asker: the load imbalance the
        // request-respond channel eliminates.
        let d = value.d;
        for i in 0..ch.messages(v.local).len() {
            let asker = ch.messages(v.local)[i];
            ch.send_message(asker, d);
        }
    }

    fn gp(ch: &Self::Ch, v: &VertexCtx<'_>, value: &SvValue) -> VertexId {
        ch.messages(v.local).first().copied().unwrap_or(value.d)
    }
}

/// Optimized grandparent query over the request-respond channel.
struct OptQuery;

impl GpQuery for OptQuery {
    type Ch = RequestRespond<SvValue, u32>;

    fn make(env: &WorkerEnv) -> Self::Ch {
        RequestRespond::new(env, |value: &SvValue| value.d)
    }

    fn ask(ch: &mut Self::Ch, _v: &VertexCtx<'_>, d: VertexId) {
        ch.add_request(d);
    }

    fn p1(ch: &mut Self::Ch, _v: &VertexCtx<'_>, value: &mut SvValue) {
        value.gp = ch.get_respond(value.d).copied().unwrap_or(value.d);
    }

    fn gp(_ch: &Self::Ch, _v: &VertexCtx<'_>, value: &SvValue) -> VertexId {
        value.gp
    }
}

/// How the neighborhood pointer broadcast is communicated (P1 → P2).
trait NbrBcast: Send + Sync + 'static {
    /// The channel carrying the broadcast.
    type Ch: Channel<SvValue>;
    fn make(env: &WorkerEnv) -> Self::Ch;
    /// Step 1: register static routes if the channel supports it.
    fn init(ch: &mut Self::Ch, v: &VertexCtx<'_>, nbrs: &[VertexId]);
    /// P1: broadcast `d` to all neighbors.
    fn send(ch: &mut Self::Ch, v: &VertexCtx<'_>, d: VertexId, nbrs: &[VertexId]);
    /// P2: minimum of the neighbours' pointers.
    fn min(ch: &Self::Ch, v: &VertexCtx<'_>) -> VertexId;
}

/// Basic broadcast: one combined message per edge.
struct BasicBcast;

impl NbrBcast for BasicBcast {
    type Ch = CombinedMessage<u32>;

    fn make(env: &WorkerEnv) -> Self::Ch {
        CombinedMessage::new(env, Combine::min_u32())
    }

    fn init(_ch: &mut Self::Ch, _v: &VertexCtx<'_>, _nbrs: &[VertexId]) {}

    fn send(ch: &mut Self::Ch, _v: &VertexCtx<'_>, d: VertexId, nbrs: &[VertexId]) {
        for &t in nbrs {
            ch.send_message(t, d);
        }
    }

    fn min(ch: &Self::Ch, v: &VertexCtx<'_>) -> VertexId {
        ch.get_or_identity(v.local)
    }
}

/// Optimized broadcast: the scatter-combine channel (routes pre-sorted at
/// step 1, ids transmitted once, linear-scan combining).
struct OptBcast;

impl NbrBcast for OptBcast {
    type Ch = ScatterCombine<u32>;

    fn make(env: &WorkerEnv) -> Self::Ch {
        ScatterCombine::new(env, Combine::min_u32())
    }

    fn init(ch: &mut Self::Ch, v: &VertexCtx<'_>, nbrs: &[VertexId]) {
        for &t in nbrs {
            ch.add_edge(v.local, t);
        }
    }

    fn send(ch: &mut Self::Ch, v: &VertexCtx<'_>, d: VertexId, _nbrs: &[VertexId]) {
        ch.set_message(v.local, d);
    }

    fn min(ch: &Self::Ch, v: &VertexCtx<'_>) -> VertexId {
        ch.get_or_identity(v.local)
    }
}

/// The S-V program, generic over the two optimization choice points.
struct Sv<Q, B> {
    g: Arc<Graph>,
    _q: std::marker::PhantomData<Q>,
    _b: std::marker::PhantomData<B>,
}

impl<Q, B> Sv<Q, B> {
    fn new(g: &Arc<Graph>) -> Self {
        Sv {
            g: Arc::clone(g),
            _q: std::marker::PhantomData,
            _b: std::marker::PhantomData,
        }
    }
}

impl<Q: GpQuery, B: NbrBcast> Algorithm for Sv<Q, B> {
    type Value = SvValue;
    type Channels = (Q::Ch, B::Ch, CombinedMessage<u32>, Aggregator<bool>);
    pc_channels::dist_value_via_codec!();

    fn channels(&self, env: &WorkerEnv) -> Self::Channels {
        (
            Q::make(env),
            B::make(env),
            CombinedMessage::new(env, Combine::min_u32()),
            Aggregator::new(env, Combine::or()),
        )
    }

    fn compute(&self, v: &mut VertexCtx<'_>, value: &mut SvValue, ch: &mut Self::Channels) {
        let (q, b, min_update, agg) = ch;
        match phase(v.step()) {
            0 => {
                if v.step() == 1 {
                    value.d = v.id;
                    B::init(b, v, self.g.neighbors(v.id));
                } else if !*agg.result() {
                    // No pointer changed in the previous round: fix[D].
                    v.vote_to_halt();
                    return;
                }
                value.changed = false;
                Q::ask(q, v, value.d);
            }
            1 => {
                Q::p1(q, v, value);
                B::send(b, v, value.d, self.g.neighbors(v.id));
            }
            2 => {
                let gp = Q::gp(q, v, value);
                let t = B::min(b, v);
                if gp == value.d {
                    // Parent is a root: propose the smallest neighbour
                    // pointer to it (tree merging).
                    if t < value.d {
                        min_update.send_message(value.d, t);
                    }
                } else {
                    // Pointer jumping (path compression).
                    value.d = gp;
                    value.changed = true;
                }
            }
            _ => {
                if let Some(&t) = min_update.get_message(v.local) {
                    if t < value.d {
                        value.d = t;
                        value.changed = true;
                    }
                }
                agg.add(value.changed);
            }
        }
    }
}

fn run_sv<Q: GpQuery, B: NbrBcast>(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config) -> SvOutput {
    let out = run(&Sv::<Q, B>::new(g), topo, cfg);
    SvOutput {
        labels: out.values.into_iter().map(|x| x.d).collect(),
        stats: out.stats,
    }
}

/// Program 2 of Table VI: standard channels only.
pub fn channel_basic(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config) -> SvOutput {
    run_sv::<BasicQuery, BasicBcast>(g, topo, cfg)
}

/// Program 3: request-respond channel for the grandparent query.
pub fn channel_reqresp(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config) -> SvOutput {
    run_sv::<OptQuery, BasicBcast>(g, topo, cfg)
}

/// Program 4: scatter-combine channel for the neighborhood broadcast.
pub fn channel_scatter(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config) -> SvOutput {
    run_sv::<BasicQuery, OptBcast>(g, topo, cfg)
}

/// Program 5: both optimizations composed — the paper's headline result.
pub fn channel_both(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config) -> SvOutput {
    run_sv::<OptQuery, OptBcast>(g, topo, cfg)
}

/// Message tags for the monolithic baseline (asks, replies, broadcasts and
/// min-updates share one type — §II-B's "type large enough to carry all
/// those message values").
const TAG_ASK: u8 = 0;
const TAG_REPLY: u8 = 1;
const TAG_BCAST: u8 = 2;
const TAG_MIN: u8 = 3;

/// Pregel+ S-V. In basic mode everything rides one tagged message type and
/// **no combiner applies** (asks/replies are not combinable), so the
/// neighborhood broadcast goes uncombined — the message blowup of Table IV.
/// In reqresp mode the queries leave the message type; what remains (bcast
/// + min-updates) is min-combinable, so the global combiner comes back.
struct SvPregel {
    g: Arc<Graph>,
    reqresp: bool,
}

#[derive(Debug, Clone, Default)]
struct SvPregelValue {
    d: VertexId,
    gp: VertexId,
    t: VertexId,
    changed: bool,
}

impl PregelProgram for SvPregel {
    type Value = SvPregelValue;
    type Msg = (u8, u32);
    type Agg = bool;
    type Resp = u32;

    fn combiner(&self) -> Option<Combine<(u8, u32)>> {
        if self.reqresp {
            // Only TAG_BCAST / TAG_MIN remain; min over the value combines
            // both (tags merge to the max tag — bcast and min never mix in
            // one superstep's inbox, so the tag survives correctly).
            Some(Combine::new((0u8, u32::MAX), |acc, m| {
                acc.0 = acc.0.max(m.0);
                acc.1 = acc.1.min(m.1);
            }))
        } else {
            None
        }
    }

    fn aggregator(&self) -> Option<Combine<bool>> {
        Some(Combine::or())
    }

    fn respond(&self, value: &SvPregelValue) -> Result<u32, pc_pregel::ProgramError> {
        Ok(value.d)
    }

    fn compute(&self, v: &mut PregelVertex<'_, '_, Self>) {
        match phase(v.step()) {
            0 => {
                if v.step() == 1 {
                    v.value_mut().d = v.id();
                } else if !*v.agg_result() {
                    v.vote_to_halt();
                    return;
                }
                v.value_mut().changed = false;
                let d = v.value().d;
                if self.reqresp {
                    v.request(d);
                } else {
                    let id = v.id();
                    v.send_message(d, (TAG_ASK, id));
                }
            }
            1 => {
                if self.reqresp {
                    let d = v.value().d;
                    v.value_mut().gp = v.get_resp(d).copied().unwrap_or(d);
                } else {
                    let d = v.value().d;
                    let askers: Vec<u32> = v
                        .messages()
                        .iter()
                        .filter(|(tag, _)| *tag == TAG_ASK)
                        .map(|&(_, id)| id)
                        .collect();
                    for asker in askers {
                        v.send_message(asker, (TAG_REPLY, d));
                    }
                }
                let d = v.value().d;
                let id = v.id();
                for i in 0..self.g.degree(id) {
                    let t = self.g.neighbors(id)[i];
                    v.send_message(t, (TAG_BCAST, d));
                }
            }
            2 => {
                let mut gp = v.value().gp;
                let mut t = u32::MAX;
                for &(tag, val) in v.messages() {
                    match tag {
                        TAG_REPLY => gp = val,
                        TAG_BCAST => t = t.min(val),
                        _ => {}
                    }
                }
                if !self.reqresp {
                    // Replies may be absent for roots asking themselves in
                    // degenerate cases; default to d.
                    if !v.messages().iter().any(|(tag, _)| *tag == TAG_REPLY) {
                        gp = v.value().d;
                    }
                }
                v.value_mut().t = t;
                let d = v.value().d;
                if gp == d {
                    if t < d {
                        v.send_message(d, (TAG_MIN, t));
                    }
                } else {
                    v.value_mut().d = gp;
                    v.value_mut().changed = true;
                }
            }
            _ => {
                let best = v
                    .messages()
                    .iter()
                    .filter(|(tag, _)| *tag == TAG_MIN)
                    .map(|&(_, t)| t)
                    .min();
                if let Some(t) = best {
                    if t < v.value().d {
                        v.value_mut().d = t;
                        v.value_mut().changed = true;
                    }
                }
                let changed = v.value().changed;
                v.aggregate(changed);
            }
        }
    }
}

/// Program 1 of Table VI (variant): Pregel+ basic mode.
pub fn pregel_basic(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config) -> SvOutput {
    let prog = Arc::new(SvPregel {
        g: Arc::clone(g),
        reqresp: false,
    });
    let out = run_pregel(prog, topo, cfg, PregelOptions::default());
    SvOutput {
        labels: out.values.into_iter().map(|x| x.d).collect(),
        stats: out.stats,
    }
}

/// Program 1 of Table VI: Pregel+ reqresp mode.
pub fn pregel_reqresp(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config) -> SvOutput {
    let prog = Arc::new(SvPregel {
        g: Arc::clone(g),
        reqresp: true,
    });
    let out = run_pregel(prog, topo, cfg, PregelOptions::default());
    SvOutput {
        labels: out.values.into_iter().map(|x| x.d).collect(),
        stats: out.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_graph::{gen, reference};

    fn check_all(g: Arc<Graph>, workers: usize) {
        let expect = reference::connected_components(&g);
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        let cfg = Config::sequential(workers);
        assert_eq!(channel_basic(&g, &topo, &cfg).labels, expect, "basic");
        assert_eq!(channel_reqresp(&g, &topo, &cfg).labels, expect, "reqresp");
        assert_eq!(channel_scatter(&g, &topo, &cfg).labels, expect, "scatter");
        assert_eq!(channel_both(&g, &topo, &cfg).labels, expect, "both");
        assert_eq!(pregel_basic(&g, &topo, &cfg).labels, expect, "pregel basic");
        assert_eq!(
            pregel_reqresp(&g, &topo, &cfg).labels,
            expect,
            "pregel reqresp"
        );
    }

    #[test]
    fn sparse_components() {
        check_all(
            Arc::new(gen::rmat(9, 1200, gen::RmatParams::default(), 2, false)),
            4,
        );
    }

    #[test]
    fn dense_single_component() {
        check_all(
            Arc::new(gen::rmat(7, 4000, gen::RmatParams::default(), 5, false)),
            4,
        );
    }

    #[test]
    fn chain_and_star_and_cycle() {
        check_all(Arc::new(gen::chain(300)), 3);
        check_all(Arc::new(gen::star(200)), 3);
        check_all(Arc::new(gen::cycle(128)), 3);
    }

    #[test]
    fn isolated_vertices_keep_their_ids() {
        let g = Arc::new(Graph::from_edges(10, &[(2, 3)], false));
        let topo = Arc::new(Topology::hashed(10, 2));
        let out = channel_both(&g, &topo, &Config::sequential(2));
        let expect = vec![0, 1, 2, 2, 4, 5, 6, 7, 8, 9];
        assert_eq!(out.labels, expect);
    }

    #[test]
    fn logarithmic_rounds_on_chain() {
        let g = Arc::new(gen::chain(4096));
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let out = channel_both(&g, &topo, &Config::sequential(4));
        // 4 supersteps per round, O(log n) rounds.
        let rounds = out.stats.supersteps / 4;
        assert!(rounds <= 30, "rounds = {rounds}");
    }

    #[test]
    fn composition_saves_the_most_bytes() {
        let g = Arc::new(gen::rmat(9, 8000, gen::RmatParams::default(), 6, false));
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let cfg = Config::sequential(4);
        let basic = channel_basic(&g, &topo, &cfg);
        let both = channel_both(&g, &topo, &cfg);
        assert!(
            both.stats.remote_bytes() < basic.stats.remote_bytes(),
            "both {} vs basic {}",
            both.stats.remote_bytes(),
            basic.stats.remote_bytes()
        );
    }

    #[test]
    fn pregel_basic_pays_for_missing_combiner_on_dense_graphs() {
        let g = Arc::new(gen::rmat(8, 8000, gen::RmatParams::default(), 4, false));
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let cfg = Config::sequential(4);
        let pregel = pregel_basic(&g, &topo, &cfg);
        let channel = channel_basic(&g, &topo, &cfg);
        assert!(
            channel.stats.remote_bytes() < pregel.stats.remote_bytes(),
            "channel {} vs pregel {}",
            channel.stats.remote_bytes(),
            pregel.stats.remote_bytes()
        );
    }

    #[test]
    fn threaded_matches_sequential() {
        let g = Arc::new(gen::rmat(8, 2000, gen::RmatParams::default(), 12, false));
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let a = channel_both(&g, &topo, &Config::sequential(4));
        let b = channel_both(&g, &topo, &Config::with_workers(4));
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.stats.supersteps, b.stats.supersteps);
    }
}
