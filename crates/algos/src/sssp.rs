//! Single-Source Shortest Paths — one of the paper's motivating kernels
//! (§I). Classic Bellman-Ford-style relaxation: active vertices push
//! improved distances along weighted out-edges; a min combiner merges
//! offers per destination.
//!
//! SSSP's messaging is *not* static (only improved vertices send), so the
//! scatter-combine channel is deliberately not applicable — the paper makes
//! the same observation in §IV-C1's footnote. The basic variants use plain
//! combined messages; [`channel_propagation`] exercises the *full*
//! propagation model (Fig. 7 with edge values, `aᵢ = f(eᵢ, vᵢ)`):
//! distances relax asynchronously within each worker and the whole
//! computation converges inside one superstep.

use pc_bsp::{Config, RunStats, Topology};
use pc_channels::channel::{VertexCtx, WorkerEnv};
use pc_channels::engine::{run, Algorithm};
use pc_channels::{Combine, CombinedMessage, Propagation};
use pc_graph::{VertexId, WeightedGraph};
use pc_pregel::{run_pregel, PregelOptions, PregelProgram, PregelVertex};
use std::sync::Arc;

/// Result of an SSSP run.
#[derive(Debug, Clone)]
pub struct SsspOutput {
    /// Distance from the source per vertex (`u64::MAX` if unreachable).
    pub dist: Vec<u64>,
    /// Run statistics.
    pub stats: RunStats,
}

/// Unreached marker.
pub const UNREACHED: u64 = u64::MAX;

struct SsspBasic {
    g: Arc<WeightedGraph>,
    src: VertexId,
}

/// Per-vertex state: current distance (`UNREACHED` initially).
#[derive(Debug, Clone)]
struct Dist(u64);

impl Default for Dist {
    fn default() -> Self {
        Dist(UNREACHED)
    }
}

impl pc_bsp::Codec for Dist {
    fn encode(&self, buf: &mut Vec<u8>) {
        pc_bsp::Codec::encode(&self.0, buf)
    }
    fn decode(r: &mut pc_bsp::Reader<'_>) -> Self {
        Dist(r.get())
    }
}

impl Algorithm for SsspBasic {
    type Value = Dist;
    type Channels = (CombinedMessage<u64>,);
    pc_channels::dist_value_via_codec!();

    fn channels(&self, env: &WorkerEnv) -> Self::Channels {
        (CombinedMessage::new(env, Combine::min_u64()),)
    }

    fn compute(&self, v: &mut VertexCtx<'_>, value: &mut Dist, ch: &mut Self::Channels) {
        let improved = if v.step() == 1 {
            if v.id == self.src {
                value.0 = 0;
                true
            } else {
                false
            }
        } else {
            match ch.0.get_message(v.local) {
                Some(&m) if m < value.0 => {
                    value.0 = m;
                    true
                }
                _ => false,
            }
        };
        if improved {
            for (t, w) in self.g.neighbors_weighted(v.id) {
                ch.0.send_message(t, value.0 + w as u64);
            }
        }
        v.vote_to_halt();
    }
}

struct SsspPregel {
    g: Arc<WeightedGraph>,
    src: VertexId,
}

impl PregelProgram for SsspPregel {
    type Value = u64;
    type Msg = u64;
    type Agg = u8;
    type Resp = u8;

    fn combiner(&self) -> Option<Combine<u64>> {
        Some(Combine::min_u64())
    }

    fn compute(&self, v: &mut PregelVertex<'_, '_, Self>) {
        if v.step() == 1 {
            *v.value_mut() = UNREACHED;
        }
        let improved = if v.step() == 1 {
            if v.id() == self.src {
                *v.value_mut() = 0;
                true
            } else {
                false
            }
        } else {
            let cur = *v.value();
            match v.messages().first() {
                Some(&m) if m < cur => {
                    *v.value_mut() = m;
                    true
                }
                _ => false,
            }
        };
        if improved {
            let d = *v.value();
            let id = v.id();
            for i in 0..self.g.degree(id) {
                let (t, w) = (self.g.neighbors(id)[i], self.g.weights(id)[i]);
                v.send_message(t, d + w as u64);
            }
        }
        v.vote_to_halt();
    }
}

/// Asynchronous SSSP over the full (edge-valued) propagation model:
/// `f(w, d) = d + w` with a `min` combiner. Converges in two supersteps
/// regardless of the distance-graph depth.
struct SsspProp {
    g: Arc<WeightedGraph>,
    src: VertexId,
}

impl Algorithm for SsspProp {
    type Value = Dist;
    type Channels = (Propagation<u64, u32>,);
    pc_channels::dist_value_via_codec!();

    fn channels(&self, env: &WorkerEnv) -> Self::Channels {
        (Propagation::weighted(
            env,
            Combine::min_u64(),
            |w: &u32, d: &u64| d.saturating_add(*w as u64),
        ),)
    }

    fn compute(&self, v: &mut VertexCtx<'_>, value: &mut Dist, ch: &mut Self::Channels) {
        if v.step() == 1 {
            for (t, w) in self.g.neighbors_weighted(v.id) {
                ch.0.add_weighted_edge(v.local, t, w);
            }
            if v.id == self.src {
                ch.0.set_value(v.local, 0);
            }
        } else {
            value.0 = *ch.0.get_value(v.local);
            v.vote_to_halt();
        }
    }
}

/// Channel SSSP (combined-message relaxation).
pub fn channel_basic(
    g: &Arc<WeightedGraph>,
    topo: &Arc<Topology>,
    cfg: &Config,
    src: VertexId,
) -> SsspOutput {
    let out = run(
        &SsspBasic {
            g: Arc::clone(g),
            src,
        },
        topo,
        cfg,
    );
    SsspOutput {
        dist: out.values.into_iter().map(|d| d.0).collect(),
        stats: out.stats,
    }
}

/// Channel SSSP over the full propagation model (asynchronous
/// intra-worker relaxation; an extension the paper's simplified Table II
/// API leaves implicit).
pub fn channel_propagation(
    g: &Arc<WeightedGraph>,
    topo: &Arc<Topology>,
    cfg: &Config,
    src: VertexId,
) -> SsspOutput {
    let out = run(
        &SsspProp {
            g: Arc::clone(g),
            src,
        },
        topo,
        cfg,
    );
    SsspOutput {
        dist: out.values.into_iter().map(|d| d.0).collect(),
        stats: out.stats,
    }
}

/// Pregel+ SSSP.
pub fn pregel_basic(
    g: &Arc<WeightedGraph>,
    topo: &Arc<Topology>,
    cfg: &Config,
    src: VertexId,
) -> SsspOutput {
    let prog = Arc::new(SsspPregel {
        g: Arc::clone(g),
        src,
    });
    let out = run_pregel(prog, topo, cfg, PregelOptions::default());
    SsspOutput {
        dist: out.values,
        stats: out.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_graph::{gen, reference};

    fn oracle(g: &WeightedGraph, src: VertexId) -> Vec<u64> {
        reference::sssp(g, src)
            .into_iter()
            .map(|d| d.unwrap_or(UNREACHED))
            .collect()
    }

    fn check_all(g: Arc<WeightedGraph>, src: VertexId, workers: usize) {
        let expect = oracle(&g, src);
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        let cfg = Config::sequential(workers);
        assert_eq!(channel_basic(&g, &topo, &cfg, src).dist, expect, "channel");
        assert_eq!(
            channel_propagation(&g, &topo, &cfg, src).dist,
            expect,
            "prop"
        );
        assert_eq!(pregel_basic(&g, &topo, &cfg, src).dist, expect, "pregel");
    }

    #[test]
    fn propagation_collapses_supersteps_on_long_paths() {
        // A weighted chain: message passing needs one superstep per hop.
        let edges: Vec<(u32, u32, u32)> = (0..999).map(|i| (i, i + 1, 2)).collect();
        let g = Arc::new(WeightedGraph::from_weighted_edges(1000, &edges, false));
        let topo = Arc::new(Topology::blocked(g.n(), 4));
        let cfg = Config::sequential(4);
        let basic = channel_basic(&g, &topo, &cfg, 0);
        let prop = channel_propagation(&g, &topo, &cfg, 0);
        assert_eq!(basic.dist, prop.dist);
        assert_eq!(prop.stats.supersteps, 2);
        assert!(
            basic.stats.supersteps > 500,
            "basic = {}",
            basic.stats.supersteps
        );
    }

    #[test]
    fn weighted_rmat_distances() {
        let g = Arc::new(gen::rmat_weighted(
            9,
            3000,
            gen::RmatParams::default(),
            5,
            true,
            100,
        ));
        check_all(g, 0, 4);
    }

    #[test]
    fn road_like_grid_distances() {
        let g = Arc::new(gen::grid2d_weighted(15, 15, 9, 2));
        check_all(g, 7, 4);
    }

    #[test]
    fn unreachable_vertices_stay_max() {
        let g = Arc::new(WeightedGraph::from_weighted_edges(
            5,
            &[(0, 1, 3u32), (1, 2, 4)],
            true,
        ));
        let topo = Arc::new(Topology::hashed(5, 2));
        let out = channel_basic(&g, &topo, &Config::sequential(2), 0);
        assert_eq!(out.dist, vec![0, 3, 7, UNREACHED, UNREACHED]);
    }

    #[test]
    fn threaded_matches_sequential() {
        let g = Arc::new(gen::rmat_weighted(
            8,
            1500,
            gen::RmatParams::default(),
            9,
            true,
            50,
        ));
        let topo = Arc::new(Topology::hashed(g.n(), 3));
        let a = channel_basic(&g, &topo, &Config::sequential(3), 1);
        let b = channel_basic(&g, &topo, &Config::with_workers(3), 1);
        assert_eq!(a.dist, b.dist);
    }

    #[test]
    fn source_with_self_loop() {
        let g = Arc::new(WeightedGraph::from_weighted_edges(
            3,
            &[(0, 0, 5u32), (0, 1, 2)],
            true,
        ));
        let topo = Arc::new(Topology::hashed(3, 2));
        let out = channel_basic(&g, &topo, &Config::sequential(2), 0);
        assert_eq!(out.dist[0], 0);
        assert_eq!(out.dist[1], 2);
    }
}
