//! Pointer Jumping — the Table V (middle) workload for the
//! request-respond channel.
//!
//! Given a parent-pointer forest `D`, every vertex finds the root of its
//! tree by repeated pointer doubling: `D[u] ← D[D[u]]` until fixpoint
//! (`O(log depth)` rounds). Reading `D[D[u]]` is exactly the "request an
//! attribute of another vertex" conversation:
//!
//! * the **basic** versions implement it with two supersteps of plain
//!   messages per round (ask: `u → D[u]` carrying `u`; reply:
//!   `D[u] → u` carrying `D[D[u]]`) — a few high-degree roots answer one
//!   message *per child*, the load-imbalance issue of §III-C;
//! * the **reqresp** versions collapse the conversation into the
//!   request-respond machinery (one superstep per round, per-worker
//!   deduplicated requests).
//!
//! Termination is detected with a boolean OR aggregator over per-round
//! pointer changes.

use pc_bsp::{Config, RunStats, Topology};
use pc_channels::channel::{VertexCtx, WorkerEnv};
use pc_channels::engine::{run, Algorithm};
use pc_channels::{Aggregator, Combine, DirectMessage, RequestRespond};
use pc_graph::VertexId;
use pc_pregel::{run_pregel, PregelOptions, PregelProgram, PregelVertex};
use std::sync::Arc;

/// Result of a pointer-jumping run.
#[derive(Debug, Clone)]
pub struct PjOutput {
    /// Root of every vertex's tree.
    pub roots: Vec<VertexId>,
    /// Run statistics.
    pub stats: RunStats,
}

/// Channel-basic: two `DirectMessage` channels (ask, reply) + aggregator.
struct PjBasic {
    parents: Arc<Vec<VertexId>>,
}

impl Algorithm for PjBasic {
    type Value = VertexId; // current pointer D
    type Channels = (DirectMessage<u32>, DirectMessage<u32>, Aggregator<bool>);
    pc_channels::dist_value_via_codec!();

    fn channels(&self, env: &WorkerEnv) -> Self::Channels {
        (
            DirectMessage::new(env),
            DirectMessage::new(env),
            Aggregator::new(env, Combine::or()),
        )
    }

    fn compute(&self, v: &mut VertexCtx<'_>, d: &mut VertexId, ch: &mut Self::Channels) {
        let (ask, reply, agg) = ch;
        if v.step() % 2 == 1 {
            // Phase A: absorb last round's reply, report change, re-ask.
            let changed = if v.step() == 1 {
                *d = self.parents[v.id as usize];
                true
            } else {
                match reply.messages(v.local).first() {
                    Some(&gp) if gp != *d => {
                        *d = gp;
                        true
                    }
                    _ => false,
                }
            };
            agg.add(changed);
            ask.send_message(*d, v.id);
        } else {
            // Phase B: if the last phase A changed nothing anywhere, the
            // whole computation halts (dangling asks are dropped).
            if v.step() > 2 && !*agg.result() {
                v.vote_to_halt();
                return;
            }
            for &asker in ask.messages(v.local) {
                reply.send_message(asker, *d);
            }
        }
    }
}

/// Channel-reqresp: the conversation collapses into one superstep/round.
struct PjReqResp {
    parents: Arc<Vec<VertexId>>,
}

impl Algorithm for PjReqResp {
    type Value = VertexId;
    type Channels = (RequestRespond<VertexId, u32>, Aggregator<bool>);
    pc_channels::dist_value_via_codec!();

    fn channels(&self, env: &WorkerEnv) -> Self::Channels {
        (
            RequestRespond::new(env, |d: &VertexId| *d),
            Aggregator::new(env, Combine::or()),
        )
    }

    fn compute(&self, v: &mut VertexCtx<'_>, d: &mut VertexId, ch: &mut Self::Channels) {
        let (rr, agg) = ch;
        let changed = if v.step() == 1 {
            *d = self.parents[v.id as usize];
            true
        } else {
            match rr.get_respond(*d) {
                Some(&gp) if gp != *d => {
                    *d = gp;
                    true
                }
                _ => false,
            }
        };
        agg.add(changed);
        if v.step() > 1 && !*agg.result() {
            v.vote_to_halt();
            return;
        }
        rr.add_request(*d);
    }
}

/// Pregel+ pointer jumping: monolithic `u32` messages (asker ids and
/// pointer values share the type, distinguished by phase parity), no
/// combiner (replies are per-asker).
struct PjPregel {
    parents: Arc<Vec<VertexId>>,
    reqresp: bool,
}

impl PregelProgram for PjPregel {
    type Value = VertexId;
    type Msg = u32;
    type Agg = bool;
    type Resp = u32;

    fn aggregator(&self) -> Option<Combine<bool>> {
        Some(Combine::or())
    }

    fn respond(&self, d: &VertexId) -> Result<u32, pc_pregel::ProgramError> {
        Ok(*d)
    }

    fn compute(&self, v: &mut PregelVertex<'_, '_, Self>) {
        if self.reqresp {
            let changed = if v.step() == 1 {
                *v.value_mut() = self.parents[v.id() as usize];
                true
            } else {
                let d = *v.value();
                match v.get_resp(d) {
                    Some(&gp) if gp != d => {
                        *v.value_mut() = gp;
                        true
                    }
                    _ => false,
                }
            };
            v.aggregate(changed);
            if v.step() > 1 && !*v.agg_result() {
                v.vote_to_halt();
                return;
            }
            let d = *v.value();
            v.request(d);
        } else if v.step() % 2 == 1 {
            let changed = if v.step() == 1 {
                *v.value_mut() = self.parents[v.id() as usize];
                true
            } else {
                let d = *v.value();
                match v.messages().first() {
                    Some(&gp) if gp != d => {
                        *v.value_mut() = gp;
                        true
                    }
                    _ => false,
                }
            };
            v.aggregate(changed);
            let d = *v.value();
            let id = v.id();
            v.send_message(d, id);
        } else {
            if v.step() > 2 && !*v.agg_result() {
                v.vote_to_halt();
                return;
            }
            let d = *v.value();
            for &asker in v.messages().to_vec().iter() {
                v.send_message(asker, d);
            }
        }
    }
}

/// Channel-basic pointer jumping (two supersteps per round).
pub fn channel_basic(parents: &Arc<Vec<VertexId>>, topo: &Arc<Topology>, cfg: &Config) -> PjOutput {
    let out = run(
        &PjBasic {
            parents: Arc::clone(parents),
        },
        topo,
        cfg,
    );
    PjOutput {
        roots: out.values,
        stats: out.stats,
    }
}

/// Channel pointer jumping over the request-respond channel.
pub fn channel_reqresp(
    parents: &Arc<Vec<VertexId>>,
    topo: &Arc<Topology>,
    cfg: &Config,
) -> PjOutput {
    let out = run(
        &PjReqResp {
            parents: Arc::clone(parents),
        },
        topo,
        cfg,
    );
    PjOutput {
        roots: out.values,
        stats: out.stats,
    }
}

/// Pregel+ basic-mode pointer jumping.
pub fn pregel_basic(parents: &Arc<Vec<VertexId>>, topo: &Arc<Topology>, cfg: &Config) -> PjOutput {
    let prog = Arc::new(PjPregel {
        parents: Arc::clone(parents),
        reqresp: false,
    });
    let out = run_pregel(prog, topo, cfg, PregelOptions::default());
    PjOutput {
        roots: out.values,
        stats: out.stats,
    }
}

/// Pregel+ reqresp-mode pointer jumping.
pub fn pregel_reqresp(
    parents: &Arc<Vec<VertexId>>,
    topo: &Arc<Topology>,
    cfg: &Config,
) -> PjOutput {
    let prog = Arc::new(PjPregel {
        parents: Arc::clone(parents),
        reqresp: true,
    });
    let out = run_pregel(prog, topo, cfg, PregelOptions::default());
    PjOutput {
        roots: out.values,
        stats: out.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_graph::{gen, reference};

    fn check_all(parents: Vec<VertexId>, workers: usize) {
        let parents = Arc::new(parents);
        let expect = reference::forest_roots(&parents);
        let topo = Arc::new(Topology::hashed(parents.len(), workers));
        let cfg = Config::sequential(workers);
        assert_eq!(
            channel_basic(&parents, &topo, &cfg).roots,
            expect,
            "channel basic"
        );
        assert_eq!(
            channel_reqresp(&parents, &topo, &cfg).roots,
            expect,
            "channel reqresp"
        );
        assert_eq!(
            pregel_basic(&parents, &topo, &cfg).roots,
            expect,
            "pregel basic"
        );
        assert_eq!(
            pregel_reqresp(&parents, &topo, &cfg).roots,
            expect,
            "pregel reqresp"
        );
    }

    #[test]
    fn chain_resolves_to_root_zero() {
        check_all(gen::chain_parents(500), 4);
    }

    #[test]
    fn random_forest_resolves() {
        check_all(gen::random_forest_parents(2000, 7, 42), 4);
    }

    #[test]
    fn single_vertex_and_self_roots() {
        check_all(vec![0], 2);
        check_all(vec![0, 1, 2, 3], 2); // all roots already
    }

    #[test]
    fn reqresp_uses_fewer_supersteps_than_basic() {
        let parents = Arc::new(gen::chain_parents(1024));
        let topo = Arc::new(Topology::hashed(1024, 4));
        let cfg = Config::sequential(4);
        let basic = channel_basic(&parents, &topo, &cfg);
        let rr = channel_reqresp(&parents, &topo, &cfg);
        assert!(
            rr.stats.supersteps < basic.stats.supersteps,
            "reqresp {} vs basic {} supersteps",
            rr.stats.supersteps,
            basic.stats.supersteps
        );
    }

    #[test]
    fn reqresp_dedup_beats_pregel_reqresp_bytes_on_trees() {
        // A shallow wide forest: many children share parents, so dedup and
        // positional responses save bytes vs Pregel+'s (id, value) replies.
        let parents = Arc::new(gen::random_forest_parents(4000, 3, 7));
        let topo = Arc::new(Topology::hashed(4000, 4));
        let cfg = Config::sequential(4);
        let ours = channel_reqresp(&parents, &topo, &cfg);
        let theirs = pregel_reqresp(&parents, &topo, &cfg);
        assert!(
            ours.stats.remote_bytes() < theirs.stats.remote_bytes(),
            "channel reqresp {} vs pregel reqresp {}",
            ours.stats.remote_bytes(),
            theirs.stats.remote_bytes()
        );
    }

    #[test]
    fn threaded_matches_sequential() {
        let parents = Arc::new(gen::random_forest_parents(1500, 5, 3));
        let topo = Arc::new(Topology::hashed(1500, 4));
        let seq = channel_reqresp(&parents, &topo, &Config::sequential(4));
        let thr = channel_reqresp(&parents, &topo, &Config::with_workers(4));
        assert_eq!(seq.roots, thr.roots);
        assert_eq!(seq.stats.supersteps, thr.stats.supersteps);
    }
}
