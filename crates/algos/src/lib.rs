//! # pc-algos — the evaluated algorithms
//!
//! Every algorithm from the paper's evaluation (§V), each in every variant
//! a table row needs:
//!
//! | Algorithm | Variants | Used in |
//! |-----------|----------|---------|
//! | [`pagerank`] | pregel-basic, pregel-ghost, channel-basic, channel-scatter | Table IV, V(top) |
//! | [`pointer_jumping`] | pregel-basic, pregel-reqresp, channel-basic, channel-reqresp | Table IV, V(mid) |
//! | [`wcc`] | pregel-basic, blogel, channel-basic, channel-propagation | Table IV, V(bottom) |
//! | [`sv`] | pregel-basic, pregel-reqresp, channel-{basic,reqresp,scatter,both} | Table IV, VI |
//! | [`scc`] | pregel-basic, channel-basic, channel-propagation | Table IV, VII |
//! | [`msf`] | pregel-basic, channel-basic | Table IV |
//! | [`sssp`] | pregel-basic, channel-basic, channel-propagation | extra coverage |
//! | [`kernels`] | BFS levels (async propagation), k-core | extra coverage |
//!
//! All variants return their domain results plus [`pc_bsp::RunStats`], and
//! every implementation is validated against the sequential oracles in
//! [`pc_graph::reference`].

pub mod kernels;
pub mod msf;
pub mod pagerank;
pub mod pointer_jumping;
pub mod scc;
pub mod sssp;
pub mod sv;
pub mod wcc;
