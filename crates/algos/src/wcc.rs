//! Weakly Connected Components (the HCC hash-min algorithm) — the Table V
//! (bottom) workload for the Propagation channel.
//!
//! Every vertex starts with its own id as label; labels flow to neighbors
//! and each vertex keeps the minimum it has seen. The label of a component
//! converges to the minimum vertex id in it.
//!
//! * **basic** variants need one superstep per propagation hop —
//!   `O(diameter)` supersteps;
//! * the **propagation** variant converges inside one superstep via
//!   intra-worker asynchronous propagation (§IV-C3);
//! * **Blogel** (in `pc_pregel::blogel`) is the block-centric comparator.
//!
//! Directed inputs must be symmetrized first
//! ([`pc_graph::Graph::symmetrized`]); tests cover both shapes.

use pc_bsp::{Config, RunStats, Topology};
use pc_channels::channel::{VertexCtx, WorkerEnv};
use pc_channels::engine::{run, Algorithm};
use pc_channels::{Combine, CombinedMessage, Mirror, Propagation};
use pc_graph::{Graph, VertexId};
use pc_pregel::{run_pregel, PregelOptions, PregelProgram, PregelVertex};
use std::sync::Arc;

/// Result of a WCC run.
#[derive(Debug, Clone)]
pub struct WccOutput {
    /// Component label per vertex (= min vertex id in the component).
    pub labels: Vec<VertexId>,
    /// Run statistics.
    pub stats: RunStats,
}

/// Channel-basic hash-min over a `CombinedMessage<u32>` min channel.
struct WccBasic {
    g: Arc<Graph>,
}

impl Algorithm for WccBasic {
    type Value = VertexId;
    type Channels = (CombinedMessage<u32>,);
    pc_channels::dist_value_via_codec!();

    fn channels(&self, env: &WorkerEnv) -> Self::Channels {
        (CombinedMessage::new(env, Combine::min_u32()),)
    }

    fn compute(&self, v: &mut VertexCtx<'_>, label: &mut VertexId, ch: &mut Self::Channels) {
        let improved = if v.step() == 1 {
            *label = v.id;
            true
        } else {
            match ch.0.get_message(v.local) {
                Some(&m) if m < *label => {
                    *label = m;
                    true
                }
                _ => false,
            }
        };
        if improved {
            for &t in self.g.neighbors(v.id) {
                ch.0.send_message(t, *label);
            }
        }
        v.vote_to_halt();
    }
}

/// Channel-propagation hash-min: seeds once, converges in one superstep.
struct WccProp {
    g: Arc<Graph>,
}

impl Algorithm for WccProp {
    type Value = VertexId;
    type Channels = (Propagation<u32>,);
    pc_channels::dist_value_via_codec!();

    fn channels(&self, env: &WorkerEnv) -> Self::Channels {
        (Propagation::new(env, Combine::min_u32()),)
    }

    fn compute(&self, v: &mut VertexCtx<'_>, label: &mut VertexId, ch: &mut Self::Channels) {
        if v.step() == 1 {
            for &t in self.g.neighbors(v.id) {
                ch.0.add_edge(v.local, t);
            }
            ch.0.set_value(v.local, v.id);
        } else {
            *label = *ch.0.get_value(v.local);
            v.vote_to_halt();
        }
    }
}

/// Skew-resistant hash-min composing **Propagation + Mirror** (§IV-C3 +
/// §V-B1): vertices with degree ≥ τ broadcast their label through the
/// Mirror channel — one ghost message per destination worker instead of
/// one per edge — while the low-degree mass converges asynchronously
/// through the Propagation channel. On skewed graphs this caps the
/// per-worker message volume a hub can generate.
struct WccMirror {
    g: Arc<Graph>,
    threshold: usize,
}

impl Algorithm for WccMirror {
    type Value = VertexId;
    type Channels = (Propagation<u32>, Mirror<u32>);
    pc_channels::dist_value_via_codec!();

    fn channels(&self, env: &WorkerEnv) -> Self::Channels {
        (
            Propagation::new(env, Combine::min_u32()),
            Mirror::new(env, Combine::min_u32(), self.threshold),
        )
    }

    fn compute(&self, v: &mut VertexCtx<'_>, label: &mut VertexId, ch: &mut Self::Channels) {
        // The Mirror channel knows the effective τ (a shipped plan's τ
        // overrides the constructor's), so routing asks it, not `self`.
        let hub = self.g.degree(v.id) >= ch.1.threshold();
        if v.step() == 1 {
            *label = v.id;
            for &t in self.g.neighbors(v.id) {
                if hub {
                    ch.1.add_edge(v.local, t);
                } else {
                    ch.0.add_edge(v.local, t);
                }
            }
            // Everyone sits in the propagation network as a *receiver*;
            // hubs just have no propagation out-edges.
            ch.0.set_value(v.local, v.id);
            if hub {
                ch.1.send_to_neighbors(v.local, v.id, v.id);
            }
            return;
        }
        let mut next = (*label).min(*ch.0.get_value(v.local));
        if let Some(&m) = ch.1.get_message(v.local) {
            next = next.min(m);
        }
        // Guard: `set_value` re-enqueues unconditionally, so only push a
        // strict improvement back into the propagation network.
        if next < *ch.0.get_value(v.local) {
            ch.0.set_value(v.local, next);
        }
        if next < *label {
            *label = next;
            if hub {
                ch.1.send_to_neighbors(v.local, v.id, next);
            }
        }
        v.vote_to_halt();
    }
}

/// Pregel+ hash-min: monolithic `u32` message; the min combiner *is*
/// globally applicable here, so the baseline gets it too.
struct WccPregel {
    g: Arc<Graph>,
}

impl PregelProgram for WccPregel {
    type Value = VertexId;
    type Msg = u32;
    type Agg = u8;
    type Resp = u8;

    fn combiner(&self) -> Option<Combine<u32>> {
        Some(Combine::min_u32())
    }

    fn compute(&self, v: &mut PregelVertex<'_, '_, Self>) {
        let improved = if v.step() == 1 {
            *v.value_mut() = v.id();
            true
        } else {
            let cur = *v.value();
            match v.messages().first() {
                Some(&m) if m < cur => {
                    *v.value_mut() = m;
                    true
                }
                _ => false,
            }
        };
        if improved {
            let label = *v.value();
            let id = v.id();
            for i in 0..self.g.degree(id) {
                let t = self.g.neighbors(id)[i];
                v.send_message(t, label);
            }
        }
        v.vote_to_halt();
    }
}

/// Channel-basic WCC (message passing, one superstep per hop).
pub fn channel_basic(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config) -> WccOutput {
    let out = run(&WccBasic { g: Arc::clone(g) }, topo, cfg);
    WccOutput {
        labels: out.values,
        stats: out.stats,
    }
}

/// Channel-propagation WCC (asynchronous intra-worker convergence).
pub fn channel_propagation(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config) -> WccOutput {
    let out = run(&WccProp { g: Arc::clone(g) }, topo, cfg);
    WccOutput {
        labels: out.values,
        stats: out.stats,
    }
}

/// Skew-resistant WCC: Propagation for the low-degree mass, Mirror for
/// hubs with degree ≥ `threshold`. When `topo` carries a
/// [`pc_bsp::MirrorPlan`] the plan's τ wins and the Mirror channel comes
/// up pre-wired (no in-band table shipment).
pub fn channel_mirror(
    g: &Arc<Graph>,
    topo: &Arc<Topology>,
    cfg: &Config,
    threshold: usize,
) -> WccOutput {
    let algo = WccMirror {
        g: Arc::clone(g),
        threshold,
    };
    let out = run(&algo, topo, cfg);
    WccOutput {
        labels: out.values,
        stats: out.stats,
    }
}

/// Pregel+ basic-mode WCC.
pub fn pregel_basic(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config) -> WccOutput {
    let out = run_pregel(
        Arc::new(WccPregel { g: Arc::clone(g) }),
        topo,
        cfg,
        PregelOptions::default(),
    );
    WccOutput {
        labels: out.values,
        stats: out.stats,
    }
}

/// Blogel block-centric WCC (re-exported for table harnesses).
pub fn blogel(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config) -> WccOutput {
    let out = pc_pregel::blogel::wcc(g, topo, cfg);
    WccOutput {
        labels: out.values,
        stats: out.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_graph::{gen, partition, reference};

    fn check_all(g: Arc<Graph>, workers: usize) {
        let expect = reference::connected_components(&g);
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        let cfg = Config::sequential(workers);
        assert_eq!(
            channel_basic(&g, &topo, &cfg).labels,
            expect,
            "channel basic"
        );
        assert_eq!(
            channel_propagation(&g, &topo, &cfg).labels,
            expect,
            "channel prop"
        );
        assert_eq!(pregel_basic(&g, &topo, &cfg).labels, expect, "pregel basic");
        assert_eq!(blogel(&g, &topo, &cfg).labels, expect, "blogel");
        for threshold in [1, 16, usize::MAX] {
            assert_eq!(
                channel_mirror(&g, &topo, &cfg, threshold).labels,
                expect,
                "channel mirror τ={threshold}"
            );
        }
    }

    #[test]
    fn undirected_rmat_components() {
        check_all(
            Arc::new(gen::rmat(9, 2500, gen::RmatParams::default(), 3, false)),
            4,
        );
    }

    #[test]
    fn directed_graph_after_symmetrization() {
        let d = gen::rmat(8, 1500, gen::RmatParams::default(), 8, true);
        check_all(Arc::new(d.symmetrized()), 4);
    }

    #[test]
    fn forest_of_small_components() {
        let mut edges = Vec::new();
        for c in 0..50u32 {
            let base = c * 4;
            edges.extend([(base, base + 1), (base + 1, base + 2), (base + 2, base + 3)]);
        }
        check_all(Arc::new(Graph::from_edges(200, &edges, false)), 3);
    }

    #[test]
    fn propagation_collapses_supersteps() {
        let g = Arc::new(gen::grid2d(25, 25, 0.0, 1));
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let cfg = Config::sequential(4);
        let basic = channel_basic(&g, &topo, &cfg);
        let prop = channel_propagation(&g, &topo, &cfg);
        assert_eq!(basic.labels, prop.labels);
        assert_eq!(prop.stats.supersteps, 2);
        assert!(
            basic.stats.supersteps > 10 * prop.stats.supersteps,
            "basic {} vs prop {}",
            basic.stats.supersteps,
            prop.stats.supersteps
        );
    }

    #[test]
    fn partitioning_reduces_propagation_traffic() {
        let g = Arc::new(gen::grid2d(30, 30, 0.0, 5));
        let cfg = Config::sequential(4);
        let random = Arc::new(Topology::hashed(g.n(), 4));
        let owners = partition::bfs_blocks(&*g, 4);
        let parted = Arc::new(Topology::from_owners(4, owners));
        let a = channel_propagation(&g, &random, &cfg);
        let b = channel_propagation(&g, &parted, &cfg);
        assert_eq!(a.labels, b.labels);
        assert!(
            b.stats.remote_bytes() * 2 < a.stats.remote_bytes(),
            "partitioned {} vs random {}",
            b.stats.remote_bytes(),
            a.stats.remote_bytes()
        );
    }

    #[test]
    fn mirror_caps_hub_volume_on_skewed_ring() {
        let g = Arc::new(gen::ring_with_hub(256, 1024));
        let expect = reference::connected_components(&g);
        let workers = 4;
        let cfg = Config::sequential(workers);
        let plain_topo = Arc::new(Topology::hashed(g.n(), workers));
        let plain = channel_propagation(&g, &plain_topo, &cfg);
        assert_eq!(plain.labels, expect);
        // Degree-sorted LDG places the hub first, then a shipped mirror
        // plan pre-wires the hub's per-worker broadcast fan-out.
        let owners = partition::ldg_deg(&*g, workers, 1);
        let base = Topology::from_owners(workers, owners);
        let plan = partition::build_mirror_plan(&*g, &base, 64);
        assert!(!plan.hubs.is_empty(), "the hub must qualify");
        let topo = Arc::new(base.with_mirror(Arc::new(plan)));
        let mirrored = channel_mirror(&g, &topo, &cfg, 64);
        assert_eq!(mirrored.labels, expect);
        assert!(mirrored.stats.mirrored_msgs() > 0);
        assert!(mirrored.stats.mirror_saved() > 0);
        // The hub's broadcast collapses from ~1024 per-edge messages to
        // ≤ workers ghosts, so the worst rank's message volume drops.
        assert!(
            mirrored.stats.max_rank_msgs * 2 < plain.stats.max_rank_msgs,
            "mirrored max/rank {} vs plain {}",
            mirrored.stats.max_rank_msgs,
            plain.stats.max_rank_msgs
        );
    }

    #[test]
    fn mirror_matches_under_every_transport_shape() {
        let g = Arc::new(gen::rmat(9, 4000, gen::RmatParams::default(), 21, false));
        let expect = reference::connected_components(&g);
        let owners = partition::ldg_deg(&*g, 4, 1);
        let base = Topology::from_owners(4, owners);
        let threshold = partition::default_mirror_threshold(&*g);
        let plan = partition::build_mirror_plan(&*g, &base, threshold);
        let topo = Arc::new(base.with_mirror(Arc::new(plan)));
        for cfg in [Config::sequential(4), Config::with_workers(4)] {
            assert_eq!(channel_mirror(&g, &topo, &cfg, threshold).labels, expect);
        }
    }

    #[test]
    fn threaded_matches_sequential() {
        let g = Arc::new(gen::rmat(9, 2500, gen::RmatParams::default(), 3, false));
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let a = channel_propagation(&g, &topo, &Config::sequential(4));
        let b = channel_propagation(&g, &topo, &Config::with_workers(4));
        assert_eq!(a.labels, b.labels);
    }
}
