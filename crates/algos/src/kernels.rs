//! Additional vertex-centric kernels built on the channel library —
//! exercising the public API beyond the paper's six evaluated algorithms
//! (the paper's §I motivates the system with exactly this breadth of
//! "interesting graph algorithms").

use pc_bsp::{Config, RunStats, Topology};
use pc_channels::channel::{VertexCtx, WorkerEnv};
use pc_channels::engine::{run, Algorithm};
use pc_channels::{Combine, CombinedMessage, Propagation};
use pc_graph::{Graph, VertexId};
use std::sync::Arc;

/// Result of a BFS run.
#[derive(Debug, Clone)]
pub struct BfsOutput {
    /// Hop distance from the source (`u32::MAX` if unreachable).
    pub level: Vec<u32>,
    /// Run statistics.
    pub stats: RunStats,
}

/// Unreachable marker for [`bfs`].
pub const UNREACHED: u32 = u32::MAX;

/// Per-vertex BFS state.
#[derive(Debug, Clone)]
struct Level(u32);

impl Default for Level {
    fn default() -> Self {
        Level(UNREACHED)
    }
}

impl pc_bsp::Codec for Level {
    fn encode(&self, buf: &mut Vec<u8>) {
        pc_bsp::Codec::encode(&self.0, buf)
    }
    fn decode(r: &mut pc_bsp::Reader<'_>) -> Self {
        Level(r.get())
    }
}

/// Breadth-first levels from `src`, over the asynchronous propagation
/// channel with `f(_, d) = d + 1` — the full Fig. 7 model with a unit
/// edge function. Converges in two supersteps.
struct Bfs {
    g: Arc<Graph>,
    src: VertexId,
}

impl Algorithm for Bfs {
    type Value = Level;
    type Channels = (Propagation<u32, ()>,);
    pc_channels::dist_value_via_codec!();

    fn channels(&self, env: &WorkerEnv) -> Self::Channels {
        (Propagation::weighted(
            env,
            Combine::min_u32(),
            |_: &(), d: &u32| d.saturating_add(1),
        ),)
    }

    fn compute(&self, v: &mut VertexCtx<'_>, value: &mut Level, ch: &mut Self::Channels) {
        if v.step() == 1 {
            for &t in self.g.neighbors(v.id) {
                ch.0.add_edge(v.local, t);
            }
            if v.id == self.src {
                ch.0.set_value(v.local, 0);
            }
        } else {
            value.0 = *ch.0.get_value(v.local);
            v.vote_to_halt();
        }
    }
}

/// BFS levels from `src` (propagation channel; 2 supersteps).
pub fn bfs(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config, src: VertexId) -> BfsOutput {
    let out = run(
        &Bfs {
            g: Arc::clone(g),
            src,
        },
        topo,
        cfg,
    );
    BfsOutput {
        level: out.values.into_iter().map(|l| l.0).collect(),
        stats: out.stats,
    }
}

/// Result of a k-core run.
#[derive(Debug, Clone)]
pub struct KCoreOutput {
    /// Whether each vertex survives in the k-core.
    pub in_core: Vec<bool>,
    /// Run statistics.
    pub stats: RunStats,
}

/// Per-vertex k-core state.
#[derive(Debug, Clone, Default)]
struct CoreState {
    alive: bool,
    degree: u32,
}

impl pc_bsp::Codec for CoreState {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.alive.encode(buf);
        self.degree.encode(buf);
    }
    fn decode(r: &mut pc_bsp::Reader<'_>) -> Self {
        CoreState {
            alive: r.get(),
            degree: r.get(),
        }
    }
}

/// k-core decomposition: iteratively peel vertices with alive-degree < k.
/// Peeling notifications ride a sum-combined channel (each removed vertex
/// sends `1` to every neighbor, combined per receiver).
struct KCore {
    g: Arc<Graph>,
    k: u32,
}

impl Algorithm for KCore {
    type Value = CoreState;
    type Channels = (CombinedMessage<u32>,);
    pc_channels::dist_value_via_codec!();

    fn channels(&self, env: &WorkerEnv) -> Self::Channels {
        (CombinedMessage::new(
            env,
            Combine::new(0u32, |a, b| *a += b),
        ),)
    }

    fn compute(&self, v: &mut VertexCtx<'_>, value: &mut CoreState, ch: &mut Self::Channels) {
        if v.step() == 1 {
            value.alive = true;
            value.degree = self.g.degree(v.id) as u32;
        } else if value.alive {
            value.degree = value.degree.saturating_sub(ch.0.get_or_identity(v.local));
        }
        if value.alive && value.degree < self.k {
            // Peel: tell every neighbor it lost one alive neighbor.
            value.alive = false;
            for &t in self.g.neighbors(v.id) {
                ch.0.send_message(t, 1);
            }
        }
        v.vote_to_halt();
    }
}

/// The k-core of `g`: the maximal subgraph where every vertex has degree
/// ≥ `k` within the subgraph.
pub fn kcore(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config, k: u32) -> KCoreOutput {
    let out = run(
        &KCore {
            g: Arc::clone(g),
            k,
        },
        topo,
        cfg,
    );
    KCoreOutput {
        in_core: out.values.into_iter().map(|s| s.alive).collect(),
        stats: out.stats,
    }
}

/// Sequential k-core oracle.
pub fn kcore_reference(g: &Graph, k: u32) -> Vec<bool> {
    let mut alive = vec![true; g.n()];
    let mut degree: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
    let mut queue: Vec<u32> = g.vertices().filter(|&v| degree[v as usize] < k).collect();
    for &v in &queue {
        alive[v as usize] = false;
    }
    while let Some(v) = queue.pop() {
        for &t in g.neighbors(v) {
            if alive[t as usize] {
                degree[t as usize] -= 1;
                if degree[t as usize] < k {
                    alive[t as usize] = false;
                    queue.push(t);
                }
            }
        }
    }
    alive
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_graph::gen;

    #[test]
    fn bfs_levels_match_reference() {
        let g = Arc::new(gen::grid2d(12, 12, 0.0, 1));
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        for cfg in [Config::sequential(4), Config::with_workers(4)] {
            let out = bfs(&g, &topo, &cfg, 0);
            // Grid BFS level = manhattan distance from corner 0.
            for r in 0..12u32 {
                for c in 0..12u32 {
                    assert_eq!(out.level[(r * 12 + c) as usize], r + c);
                }
            }
            assert_eq!(out.stats.supersteps, 2);
        }
    }

    #[test]
    fn bfs_unreachable_stays_max() {
        let g = Arc::new(Graph::from_edges(4, &[(0, 1)], true));
        let topo = Arc::new(Topology::hashed(4, 2));
        let out = bfs(&g, &topo, &Config::sequential(2), 0);
        assert_eq!(out.level, vec![0, 1, UNREACHED, UNREACHED]);
    }

    #[test]
    fn kcore_matches_sequential_peeling() {
        let g = Arc::new(gen::rmat(9, 4000, gen::RmatParams::default(), 77, false));
        for k in [1, 2, 3, 5] {
            let expect = kcore_reference(&g, k);
            let topo = Arc::new(Topology::hashed(g.n(), 4));
            for cfg in [Config::sequential(4), Config::with_workers(4)] {
                let out = kcore(&g, &topo, &cfg, k);
                assert_eq!(out.in_core, expect, "k = {k}");
            }
        }
    }

    #[test]
    fn kcore_of_complete_graph_is_everything_or_nothing() {
        let g = Arc::new(gen::complete(8));
        let topo = Arc::new(Topology::hashed(8, 3));
        let cfg = Config::sequential(3);
        assert!(kcore(&g, &topo, &cfg, 7).in_core.iter().all(|&a| a));
        assert!(kcore(&g, &topo, &cfg, 8).in_core.iter().all(|&a| !a));
    }

    #[test]
    fn kcore_peels_chains_entirely_for_k2() {
        let g = Arc::new(gen::chain(50));
        let topo = Arc::new(Topology::hashed(50, 4));
        let out = kcore(&g, &topo, &Config::sequential(4), 2);
        assert!(out.in_core.iter().all(|&a| !a), "a path has no 2-core");
    }
}
