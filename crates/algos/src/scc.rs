//! Strongly Connected Components via the Min-Label algorithm (Yan et al.),
//! the Table VII workload.
//!
//! Each outer iteration floods two min-labels over the *alive* subgraph:
//! `f(u)` along forward edges (the smallest alive id that reaches `u`) and
//! `b(u)` along backward edges (the smallest alive id reachable *from*
//! `u`). Vertices with `f(u) == b(u) == L` are exactly the SCC of `L`
//! (mutual reachability with `L`); they take label `L`, retire, and the
//! next iteration re-floods the survivors. Every iteration retires at
//! least the SCC of the smallest alive id, so the algorithm terminates.
//!
//! The paper's point (Table VII): the forward/backward *label
//! propagations* dominate, and swapping their message channels for
//! [`Propagation`] channels collapses each flood from `O(diameter)`
//! supersteps to one — "a quick fix ... not possible in any of the
//! existing systems".
//!
//! Retired vertices stay retired: in the basic/pregel variants they ignore
//! and re-halt on stray messages; in the propagation variant their channel
//! value carries a `removed` flag that makes the combiner inert, so floods
//! can never pass through them.

use pc_bsp::codec::{Codec, Reader};
use pc_bsp::{Config, RunStats, Topology};
use pc_channels::channel::{VertexCtx, WorkerEnv};
use pc_channels::engine::{run, Algorithm};
use pc_channels::{Aggregator, Combine, CombinedMessage, Propagation};
use pc_graph::{Graph, VertexId};
use pc_pregel::{run_pregel, PregelOptions, PregelProgram, PregelVertex};
use std::sync::Arc;

/// Result of an SCC run.
#[derive(Debug, Clone)]
pub struct SccOutput {
    /// SCC label per vertex (= min vertex id in the SCC).
    pub labels: Vec<VertexId>,
    /// Run statistics.
    pub stats: RunStats,
}

/// Per-vertex state shared by the basic and pregel variants.
#[derive(Debug, Clone, Default)]
struct SccValue {
    label: VertexId,
    removed: bool,
    f: VertexId,
    b: VertexId,
}

impl Codec for SccValue {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.label.encode(buf);
        self.removed.encode(buf);
        self.f.encode(buf);
        self.b.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Self {
        SccValue {
            label: r.get(),
            removed: r.get(),
            f: r.get(),
            b: r.get(),
        }
    }
}

/// Channel-basic Min-Label: two combined-message min floods + OR
/// aggregator for flood stability.
struct SccBasic {
    g: Arc<Graph>,
    rev: Arc<Graph>,
}

impl Algorithm for SccBasic {
    type Value = SccValue;
    type Channels = (CombinedMessage<u32>, CombinedMessage<u32>, Aggregator<bool>);
    pc_channels::dist_value_via_codec!();

    fn channels(&self, env: &WorkerEnv) -> Self::Channels {
        (
            CombinedMessage::new(env, Combine::min_u32()),
            CombinedMessage::new(env, Combine::min_u32()),
            Aggregator::new(env, Combine::or()),
        )
    }

    fn compute(&self, v: &mut VertexCtx<'_>, value: &mut SccValue, ch: &mut Self::Channels) {
        if value.removed {
            v.vote_to_halt();
            return;
        }
        let (fwd, bwd, agg) = ch;
        let stable = v.step() > 1 && !*agg.result();
        if v.step() == 1 || stable {
            if stable {
                // Floods converged: detect and retire this iteration's SCCs.
                if value.f == value.b {
                    value.label = value.f;
                    value.removed = true;
                    v.vote_to_halt();
                    return;
                }
            }
            // (Re-)seed both floods with our own id.
            value.f = v.id;
            value.b = v.id;
            for &t in self.g.neighbors(v.id) {
                fwd.send_message(t, value.f);
            }
            for &t in self.rev.neighbors(v.id) {
                bwd.send_message(t, value.b);
            }
            agg.add(true);
            return;
        }
        let mut changed = false;
        if let Some(&m) = fwd.get_message(v.local) {
            if m < value.f {
                value.f = m;
                changed = true;
                for &t in self.g.neighbors(v.id) {
                    fwd.send_message(t, value.f);
                }
            }
        }
        if let Some(&m) = bwd.get_message(v.local) {
            if m < value.b {
                value.b = m;
                changed = true;
                for &t in self.rev.neighbors(v.id) {
                    bwd.send_message(t, value.b);
                }
            }
        }
        agg.add(changed);
    }
}

/// Label value for the propagation variant: the `removed` flag makes the
/// combiner inert on both sides, so floods never traverse retired
/// vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskedLabel {
    /// Retired vertices absorb and emit nothing.
    pub removed: bool,
    /// The min-label.
    pub label: u32,
}

impl Codec for MaskedLabel {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.removed.encode(buf);
        self.label.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Self {
        MaskedLabel {
            removed: r.get(),
            label: r.get(),
        }
    }
    const FIXED_SIZE: Option<usize> = Some(5);
}

impl MaskedLabel {
    /// The combiner: min over labels, inert once either side is removed.
    pub fn combine() -> Combine<MaskedLabel> {
        Combine::new(
            MaskedLabel {
                removed: false,
                label: u32::MAX,
            },
            |acc: &mut MaskedLabel, m: MaskedLabel| {
                if !acc.removed && !m.removed && m.label < acc.label {
                    acc.label = m.label;
                }
            },
        )
    }
}

/// Channel-propagation Min-Label: each flood is one `Propagation` channel;
/// a full iteration (seed → fixpoint → detect) takes one superstep.
struct SccProp {
    g: Arc<Graph>,
    rev: Arc<Graph>,
}

impl Algorithm for SccProp {
    type Value = SccValue;
    type Channels = (Propagation<MaskedLabel>, Propagation<MaskedLabel>);
    pc_channels::dist_value_via_codec!();

    fn channels(&self, env: &WorkerEnv) -> Self::Channels {
        (
            Propagation::new(env, MaskedLabel::combine()),
            Propagation::new(env, MaskedLabel::combine()),
        )
    }

    fn compute(&self, v: &mut VertexCtx<'_>, value: &mut SccValue, ch: &mut Self::Channels) {
        if value.removed {
            v.vote_to_halt();
            return;
        }
        let (fwd, bwd) = ch;
        if v.step() == 1 {
            for &t in self.g.neighbors(v.id) {
                fwd.add_edge(v.local, t);
            }
            for &t in self.rev.neighbors(v.id) {
                bwd.add_edge(v.local, t);
            }
        } else {
            // Detect on the converged floods of the previous superstep.
            let f = fwd.get_value(v.local).label;
            let b = bwd.get_value(v.local).label;
            if f == b {
                value.label = f;
                value.removed = true;
                let tomb = MaskedLabel {
                    removed: true,
                    label: f,
                };
                fwd.set_value_silent(v.local, tomb);
                bwd.set_value_silent(v.local, tomb);
                v.vote_to_halt();
                return;
            }
        }
        // (Re-)seed; the floods run to fixpoint within this superstep.
        let seed = MaskedLabel {
            removed: false,
            label: v.id,
        };
        fwd.set_value(v.local, seed);
        bwd.set_value(v.local, seed);
    }
}

/// Message tags for the monolithic baseline.
const TAG_F: u8 = 0;
const TAG_B: u8 = 1;

/// Pregel+ Min-Label: one tagged message type; forward and backward labels
/// share it, so **no combiner applies** — the 2× message inflation of
/// Table IV.
struct SccPregel {
    g: Arc<Graph>,
    rev: Arc<Graph>,
}

impl PregelProgram for SccPregel {
    type Value = SccValue;
    type Msg = (u8, u32);
    type Agg = bool;
    type Resp = u8;

    fn aggregator(&self) -> Option<Combine<bool>> {
        Some(Combine::or())
    }

    fn compute(&self, v: &mut PregelVertex<'_, '_, Self>) {
        if v.value().removed {
            v.vote_to_halt();
            return;
        }
        let stable = v.step() > 1 && !*v.agg_result();
        if v.step() == 1 || stable {
            if stable && v.value().f == v.value().b {
                let f = v.value().f;
                v.value_mut().label = f;
                v.value_mut().removed = true;
                v.vote_to_halt();
                return;
            }
            let id = v.id();
            v.value_mut().f = id;
            v.value_mut().b = id;
            for i in 0..self.g.degree(id) {
                let t = self.g.neighbors(id)[i];
                v.send_message(t, (TAG_F, id));
            }
            for i in 0..self.rev.degree(id) {
                let t = self.rev.neighbors(id)[i];
                v.send_message(t, (TAG_B, id));
            }
            v.aggregate(true);
            return;
        }
        let (mut min_f, mut min_b) = (u32::MAX, u32::MAX);
        for &(tag, m) in v.messages() {
            match tag {
                TAG_F => min_f = min_f.min(m),
                _ => min_b = min_b.min(m),
            }
        }
        let mut changed = false;
        if min_f < v.value().f {
            v.value_mut().f = min_f;
            changed = true;
            let id = v.id();
            for i in 0..self.g.degree(id) {
                let t = self.g.neighbors(id)[i];
                v.send_message(t, (TAG_F, min_f));
            }
        }
        if min_b < v.value().b {
            v.value_mut().b = min_b;
            changed = true;
            let id = v.id();
            for i in 0..self.rev.degree(id) {
                let t = self.rev.neighbors(id)[i];
                v.send_message(t, (TAG_B, min_b));
            }
        }
        v.aggregate(changed);
    }
}

fn labels_of(values: Vec<SccValue>) -> Vec<VertexId> {
    values.into_iter().map(|x| x.label).collect()
}

/// Channel-basic Min-Label SCC.
pub fn channel_basic(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config) -> SccOutput {
    channel_basic_with_rev(g, &Arc::new(g.reverse()), topo, cfg)
}

/// [`channel_basic`] with a caller-supplied reverse graph — multi-process
/// runs ship each rank a row slice of the transpose, which a slice cannot
/// derive locally (the in-edges of a local vertex live on other ranks).
pub fn channel_basic_with_rev(
    g: &Arc<Graph>,
    rev: &Arc<Graph>,
    topo: &Arc<Topology>,
    cfg: &Config,
) -> SccOutput {
    let out = run(
        &SccBasic {
            g: Arc::clone(g),
            rev: Arc::clone(rev),
        },
        topo,
        cfg,
    );
    SccOutput {
        labels: labels_of(out.values),
        stats: out.stats,
    }
}

/// Channel-propagation Min-Label SCC (Table VII program 3).
pub fn channel_propagation(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config) -> SccOutput {
    channel_propagation_with_rev(g, &Arc::new(g.reverse()), topo, cfg)
}

/// [`channel_propagation`] with a caller-supplied reverse graph (see
/// [`channel_basic_with_rev`]).
pub fn channel_propagation_with_rev(
    g: &Arc<Graph>,
    rev: &Arc<Graph>,
    topo: &Arc<Topology>,
    cfg: &Config,
) -> SccOutput {
    let out = run(
        &SccProp {
            g: Arc::clone(g),
            rev: Arc::clone(rev),
        },
        topo,
        cfg,
    );
    SccOutput {
        labels: labels_of(out.values),
        stats: out.stats,
    }
}

/// Pregel+ basic-mode Min-Label SCC.
pub fn pregel_basic(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config) -> SccOutput {
    let rev = Arc::new(g.reverse());
    let prog = Arc::new(SccPregel {
        g: Arc::clone(g),
        rev,
    });
    let out = run_pregel(prog, topo, cfg, PregelOptions::default());
    SccOutput {
        labels: labels_of(out.values),
        stats: out.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_graph::{gen, reference};

    fn check_all(g: Arc<Graph>, workers: usize) {
        let expect = reference::strongly_connected_components(&g);
        let topo = Arc::new(Topology::hashed(g.n(), workers));
        let cfg = Config::sequential(workers);
        assert_eq!(channel_basic(&g, &topo, &cfg).labels, expect, "basic");
        assert_eq!(channel_propagation(&g, &topo, &cfg).labels, expect, "prop");
        assert_eq!(pregel_basic(&g, &topo, &cfg).labels, expect, "pregel");
    }

    #[test]
    fn planted_cycles_are_recovered() {
        check_all(Arc::new(gen::planted_sccs(10, 6, 60, 5)), 4);
    }

    #[test]
    fn dag_has_singleton_sccs() {
        // A DAG: every vertex is its own SCC.
        let edges: Vec<(u32, u32)> = (0..60u32)
            .flat_map(|i| [(i, i + 1), (i, (i + 7).min(60))])
            .collect();
        check_all(Arc::new(Graph::from_edges(61, &edges, true)), 3);
    }

    #[test]
    fn one_big_cycle() {
        let edges: Vec<(u32, u32)> = (0..100u32).map(|i| (i, (i + 1) % 100)).collect();
        check_all(Arc::new(Graph::from_edges(100, &edges, true)), 4);
    }

    #[test]
    fn rmat_digraph_sccs() {
        check_all(
            Arc::new(gen::rmat(8, 3000, gen::RmatParams::default(), 23, true)),
            4,
        );
    }

    #[test]
    fn propagation_needs_far_fewer_supersteps() {
        let g = Arc::new(gen::planted_sccs(6, 40, 40, 9)); // long cycles
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let cfg = Config::sequential(4);
        let basic = channel_basic(&g, &topo, &cfg);
        let prop = channel_propagation(&g, &topo, &cfg);
        assert_eq!(basic.labels, prop.labels);
        assert!(
            prop.stats.supersteps * 5 < basic.stats.supersteps,
            "prop {} vs basic {} supersteps",
            prop.stats.supersteps,
            basic.stats.supersteps
        );
    }

    #[test]
    fn channel_combining_beats_pregel_bytes() {
        let g = Arc::new(gen::planted_sccs(8, 12, 80, 3));
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let cfg = Config::sequential(4);
        let pregel = pregel_basic(&g, &topo, &cfg);
        let channel = channel_basic(&g, &topo, &cfg);
        assert_eq!(pregel.labels, channel.labels);
        assert!(
            channel.stats.remote_bytes() < pregel.stats.remote_bytes(),
            "channel {} vs pregel {}",
            channel.stats.remote_bytes(),
            pregel.stats.remote_bytes()
        );
    }

    #[test]
    fn threaded_matches_sequential() {
        let g = Arc::new(gen::planted_sccs(7, 9, 50, 13));
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let a = channel_propagation(&g, &topo, &Config::sequential(4));
        let b = channel_propagation(&g, &topo, &Config::with_workers(4));
        assert_eq!(a.labels, b.labels);
    }
}
