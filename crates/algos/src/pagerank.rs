//! PageRank — the paper's running example (Fig. 1) and the Table V (top)
//! workload for the scatter-combine channel.
//!
//! All four variants run `iters` full power iterations with damping 0.85
//! and the sink-mass redistribution of Fig. 1 (dead ends feed an aggregator
//! whose result is re-spread uniformly next superstep).

use pc_bsp::{Config, RunStats, Topology};
use pc_channels::channel::{VertexCtx, WorkerEnv};
use pc_channels::engine::{run, Algorithm};
use pc_channels::{Aggregator, Combine, CombinedMessage, Mirror, ScatterCombine};
use pc_graph::Graph;
use pc_pregel::{run_pregel, PregelOptions, PregelProgram, PregelVertex};
use std::sync::Arc;

/// Result of a PageRank run.
#[derive(Debug, Clone)]
pub struct PrOutput {
    /// Final rank per vertex (sums to 1).
    pub ranks: Vec<f64>,
    /// Run statistics.
    pub stats: RunStats,
}

const DAMPING: f64 = 0.85;

/// Fig. 1 verbatim: `CombinedMessage<f64>` + `Aggregator<f64>`.
struct PrBasic {
    g: Arc<Graph>,
    iters: u64,
}

impl Algorithm for PrBasic {
    type Value = f64;
    type Channels = (CombinedMessage<f64>, Aggregator<f64>);
    pc_channels::dist_value_via_codec!();

    fn channels(&self, env: &WorkerEnv) -> Self::Channels {
        (
            CombinedMessage::new(env, Combine::sum_f64()),
            Aggregator::new(env, Combine::sum_f64()),
        )
    }

    fn compute(&self, v: &mut VertexCtx<'_>, value: &mut f64, ch: &mut Self::Channels) {
        let n = v.num_vertices() as f64;
        if v.step() == 1 {
            *value = 1.0 / n;
        } else {
            let s = ch.1.result() / n;
            *value = 0.15 / n + DAMPING * (ch.0.get_or_identity(v.local) + s);
        }
        if v.step() <= self.iters {
            let nbrs = self.g.neighbors(v.id);
            if nbrs.is_empty() {
                ch.1.add(*value);
            } else {
                let share = *value / nbrs.len() as f64;
                for &t in nbrs {
                    ch.0.send_message(t, share);
                }
            }
        } else {
            v.vote_to_halt();
        }
    }
}

/// The §III-B one-line swap: the rank broadcast moves to a
/// `ScatterCombine` channel (edges registered once, then bare values).
struct PrScatter {
    g: Arc<Graph>,
    iters: u64,
}

impl Algorithm for PrScatter {
    type Value = f64;
    type Channels = (ScatterCombine<f64>, Aggregator<f64>);
    pc_channels::dist_value_via_codec!();

    fn channels(&self, env: &WorkerEnv) -> Self::Channels {
        (
            ScatterCombine::new(env, Combine::sum_f64()),
            Aggregator::new(env, Combine::sum_f64()),
        )
    }

    fn compute(&self, v: &mut VertexCtx<'_>, value: &mut f64, ch: &mut Self::Channels) {
        let n = v.num_vertices() as f64;
        if v.step() == 1 {
            *value = 1.0 / n;
            for &t in self.g.neighbors(v.id) {
                ch.0.add_edge(v.local, t);
            }
        } else {
            let s = ch.1.result() / n;
            *value = 0.15 / n + DAMPING * (ch.0.get_or_identity(v.local) + s);
        }
        if v.step() <= self.iters {
            let deg = self.g.degree(v.id);
            if deg == 0 {
                ch.1.add(*value);
            } else {
                ch.0.set_message(v.local, *value / deg as f64);
            }
        } else {
            v.vote_to_halt();
        }
    }
}

/// PageRank over the [`Mirror`] channel — the ghost/mirroring optimization
/// as a composable channel (unavailable as such in Pregel+, where
/// mirroring is a whole-program mode).
struct PrMirror {
    g: Arc<Graph>,
    iters: u64,
    threshold: usize,
}

impl Algorithm for PrMirror {
    type Value = f64;
    type Channels = (Mirror<f64>, Aggregator<f64>);
    pc_channels::dist_value_via_codec!();

    fn channels(&self, env: &WorkerEnv) -> Self::Channels {
        (
            Mirror::new(env, Combine::sum_f64(), self.threshold),
            Aggregator::new(env, Combine::sum_f64()),
        )
    }

    fn compute(&self, v: &mut VertexCtx<'_>, value: &mut f64, ch: &mut Self::Channels) {
        let n = v.num_vertices() as f64;
        if v.step() == 1 {
            *value = 1.0 / n;
            for &t in self.g.neighbors(v.id) {
                ch.0.add_edge(v.local, t);
            }
        } else {
            let s = ch.1.result() / n;
            *value = 0.15 / n + DAMPING * (ch.0.get_or_identity(v.local) + s);
        }
        if v.step() <= self.iters {
            let deg = self.g.degree(v.id);
            if deg == 0 {
                ch.1.add(*value);
            } else {
                ch.0.send_to_neighbors(v.local, v.id, *value / deg as f64);
            }
        } else {
            v.vote_to_halt();
        }
    }
}

/// Pregel+ PageRank: monolithic `f64` message, global sum combiner.
struct PrPregel {
    g: Arc<Graph>,
    iters: u64,
    ghost: bool,
}

impl PregelProgram for PrPregel {
    type Value = f64;
    type Msg = f64;
    type Agg = f64;
    type Resp = u8;

    fn combiner(&self) -> Option<Combine<f64>> {
        Some(Combine::sum_f64())
    }

    fn aggregator(&self) -> Option<Combine<f64>> {
        Some(Combine::sum_f64())
    }

    fn compute(&self, v: &mut PregelVertex<'_, '_, Self>) {
        let n = v.num_vertices() as f64;
        if v.step() == 1 {
            *v.value_mut() = 1.0 / n;
        } else {
            let s = v.agg_result() / n;
            let gathered = if self.ghost {
                v.ghost_message().copied().unwrap_or(0.0)
            } else {
                v.messages().first().copied().unwrap_or(0.0)
            };
            *v.value_mut() = 0.15 / n + DAMPING * (gathered + s);
        }
        if v.step() <= self.iters {
            let deg = self.g.degree(v.id());
            if deg == 0 {
                let rank = *v.value();
                v.aggregate(rank);
            } else {
                let share = *v.value() / deg as f64;
                if self.ghost {
                    v.ghost_send(share);
                } else {
                    let id = v.id();
                    for &t in self.g.neighbors(id) {
                        v.send_message(t, share);
                    }
                }
            }
        } else {
            v.vote_to_halt();
        }
    }
}

/// Channel-basic PageRank (the Fig. 1 program).
pub fn channel_basic(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config, iters: u64) -> PrOutput {
    let out = run(
        &PrBasic {
            g: Arc::clone(g),
            iters,
        },
        topo,
        cfg,
    );
    PrOutput {
        ranks: out.values,
        stats: out.stats,
    }
}

/// Channel PageRank over the scatter-combine channel (§III-B).
pub fn channel_scatter(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config, iters: u64) -> PrOutput {
    let out = run(
        &PrScatter {
            g: Arc::clone(g),
            iters,
        },
        topo,
        cfg,
    );
    PrOutput {
        ranks: out.values,
        stats: out.stats,
    }
}

/// Channel PageRank over the mirror (ghost-as-a-channel) optimization.
pub fn channel_mirror(
    g: &Arc<Graph>,
    topo: &Arc<Topology>,
    cfg: &Config,
    iters: u64,
    threshold: usize,
) -> PrOutput {
    let out = run(
        &PrMirror {
            g: Arc::clone(g),
            iters,
            threshold,
        },
        topo,
        cfg,
    );
    PrOutput {
        ranks: out.values,
        stats: out.stats,
    }
}

/// Pregel+ basic-mode PageRank.
pub fn pregel_basic(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config, iters: u64) -> PrOutput {
    let prog = Arc::new(PrPregel {
        g: Arc::clone(g),
        iters,
        ghost: false,
    });
    let out = run_pregel(prog, topo, cfg, PregelOptions::default());
    PrOutput {
        ranks: out.values,
        stats: out.stats,
    }
}

/// Pregel+ ghost-mode PageRank (mirroring threshold τ, paper uses 16).
pub fn pregel_ghost(
    g: &Arc<Graph>,
    topo: &Arc<Topology>,
    cfg: &Config,
    iters: u64,
    threshold: usize,
) -> PrOutput {
    let prog = Arc::new(PrPregel {
        g: Arc::clone(g),
        iters,
        ghost: true,
    });
    let opts = PregelOptions {
        ghost: Some((Arc::clone(g), threshold)),
    };
    let out = run_pregel(prog, topo, cfg, opts);
    PrOutput {
        ranks: out.values,
        stats: out.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_graph::{gen, reference};

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "rank {i}: {x} vs {y}");
        }
    }

    fn test_graph() -> Arc<Graph> {
        Arc::new(gen::rmat(9, 4000, gen::RmatParams::default(), 11, true))
    }

    #[test]
    fn all_variants_match_the_oracle() {
        let g = test_graph();
        let oracle = reference::pagerank(&g, 15);
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let cfg = Config::sequential(4);
        assert_close(&channel_basic(&g, &topo, &cfg, 15).ranks, &oracle);
        assert_close(&channel_scatter(&g, &topo, &cfg, 15).ranks, &oracle);
        assert_close(&channel_mirror(&g, &topo, &cfg, 15, 16).ranks, &oracle);
        assert_close(&pregel_basic(&g, &topo, &cfg, 15).ranks, &oracle);
        assert_close(&pregel_ghost(&g, &topo, &cfg, 15, 16).ranks, &oracle);
    }

    #[test]
    fn threaded_matches_sequential() {
        let g = test_graph();
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let seq = channel_scatter(&g, &topo, &Config::sequential(4), 10);
        let thr = channel_scatter(&g, &topo, &Config::with_workers(4), 10);
        assert_close(&seq.ranks, &thr.ranks);
        assert_eq!(seq.stats.remote_bytes(), thr.stats.remote_bytes());
    }

    #[test]
    fn scatter_saves_bytes_vs_basic() {
        let g = test_graph();
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let cfg = Config::sequential(4);
        let basic = channel_basic(&g, &topo, &cfg, 20);
        let scatter = channel_scatter(&g, &topo, &cfg, 20);
        assert!(
            (scatter.stats.remote_bytes() as f64) < 0.85 * basic.stats.remote_bytes() as f64,
            "scatter {} vs basic {}",
            scatter.stats.remote_bytes(),
            basic.stats.remote_bytes()
        );
    }

    #[test]
    fn ghost_saves_bytes_on_skewed_graphs() {
        let g = test_graph();
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let cfg = Config::sequential(4);
        let basic = pregel_basic(&g, &topo, &cfg, 10);
        let ghost = pregel_ghost(&g, &topo, &cfg, 10, 16);
        assert!(
            ghost.stats.remote_bytes() < basic.stats.remote_bytes(),
            "ghost {} vs basic {}",
            ghost.stats.remote_bytes(),
            basic.stats.remote_bytes()
        );
    }

    #[test]
    fn rank_mass_is_conserved_with_sinks() {
        // A graph guaranteed to have dead ends.
        let g = Arc::new(Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (3, 2), (4, 2)],
            true,
        ));
        let topo = Arc::new(Topology::hashed(6, 2));
        let out = channel_basic(&g, &topo, &Config::sequential(2), 30);
        let total: f64 = out.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        assert_close(&out.ranks, &reference::pagerank(&g, 30));
    }

    #[test]
    fn superstep_count_is_iters_plus_one() {
        let g = test_graph();
        let topo = Arc::new(Topology::hashed(g.n(), 3));
        let out = channel_basic(&g, &topo, &Config::sequential(3), 7);
        assert_eq!(out.stats.supersteps, 8);
    }
}
