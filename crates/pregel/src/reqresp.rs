//! Pregel+'s **reqresp mode** as a channel.
//!
//! Same idea as the channel system's request/respond optimization —
//! deduplicate requests per worker so a high-degree target answers once per
//! worker — but with the two implementation choices the paper measures
//! against (§V-B2 analysis):
//!
//! * deduplication through a **hash set** per destination worker (per
//!   request insertion cost), instead of sort + dedup at serialize time;
//! * responses are shipped as **`(vertex id, value)` pairs** and read back
//!   through a hash map, instead of positional value lists — roughly 50%
//!   more response bytes for 4-byte values ("so that the message size
//!   increases").

use crate::program::ProgramError;
use pc_bsp::codec::{Codec, FixedWidth};
use pc_channels::channel::{Channel, DeserializeCx, SerializeCx, WorkerEnv};
use pc_graph::VertexId;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The fallible respond callback shared with worker threads.
type RespondFn<AV, R> = Arc<dyn Fn(&AV) -> Result<R, ProgramError> + Send + Sync>;

/// Pregel+-style request/respond channel. The respond function is
/// fallible: a program that receives requests without implementing
/// `respond()` unwinds with a typed [`ProgramError`] payload, which
/// `try_run_pregel` turns back into a clean `Err`.
pub struct PregelReqResp<AV, R> {
    env: WorkerEnv,
    respond: RespondFn<AV, R>,
    /// Hash-set deduplication per destination worker.
    staged: Vec<HashSet<VertexId>>,
    /// Responses produced this superstep, per requesting worker, carrying
    /// the requested id alongside the value (Pregel+'s wire format).
    pending: Vec<Vec<(VertexId, R)>>,
    /// Received `(id, value)` responses (double-buffered).
    incoming: HashMap<VertexId, R>,
    readable: HashMap<VertexId, R>,
    phase: u8,
    traffic: bool,
    messages: u64,
}

impl<AV, R: Codec + FixedWidth + Clone + Send> PregelReqResp<AV, R> {
    /// Create this worker's instance with the respond function.
    pub fn new(
        env: &WorkerEnv,
        respond: impl Fn(&AV) -> Result<R, ProgramError> + Send + Sync + 'static,
    ) -> Self {
        let workers = env.workers();
        PregelReqResp {
            env: env.clone(),
            respond: Arc::new(respond),
            staged: vec![HashSet::new(); workers],
            pending: vec![Vec::new(); workers],
            incoming: HashMap::new(),
            readable: HashMap::new(),
            phase: 0,
            traffic: false,
            messages: 0,
        }
    }

    /// Request the attribute of `dst`; readable next superstep.
    pub fn add_request(&mut self, dst: VertexId) {
        self.staged[self.env.worker_of(dst)].insert(dst);
    }

    /// The response for `dst`, if requested last superstep.
    pub fn get_resp(&self, dst: VertexId) -> Option<&R> {
        self.readable.get(&dst)
    }
}

impl<AV, R: Codec + FixedWidth + Clone + Send> Channel<AV> for PregelReqResp<AV, R> {
    fn name(&self) -> &'static str {
        "pregel-reqresp"
    }

    fn before_superstep(&mut self, _step: u64) {
        self.readable = std::mem::take(&mut self.incoming);
        self.phase = 0;
        self.traffic = false;
    }

    fn serialize(&mut self, cx: &mut SerializeCx<'_>) {
        self.phase += 1;
        match self.phase {
            1 => {
                for peer in 0..self.staged.len() {
                    if self.staged[peer].is_empty() {
                        continue;
                    }
                    let reqs = std::mem::take(&mut self.staged[peer]);
                    self.messages += reqs.len() as u64;
                    self.traffic = true;
                    cx.frame(peer, |buf| {
                        for dst in &reqs {
                            dst.encode(buf);
                        }
                    });
                }
            }
            2 => {
                // (id, value) pairs back to each requesting worker — this
                // is where Pregel+ pays the id overhead.
                for peer in 0..self.pending.len() {
                    if self.pending[peer].is_empty() {
                        continue;
                    }
                    let resp = std::mem::take(&mut self.pending[peer]);
                    self.messages += resp.len() as u64;
                    cx.frame(peer, |buf| {
                        for (id, v) in &resp {
                            id.encode(buf);
                            v.encode_fixed(buf);
                        }
                    });
                }
            }
            _ => {}
        }
    }

    fn deserialize(&mut self, cx: &mut DeserializeCx<'_, AV>) {
        match self.phase {
            1 => {
                for (from, mut r) in cx.frames() {
                    self.traffic = true;
                    while !r.is_empty() {
                        let dst: VertexId = r.get();
                        let local = self.env.local_of(dst);
                        // A missing respond() unwinds with the typed
                        // error as payload — `try_run_pregel` catches it
                        // and returns it as a clean Err.
                        let value = match (self.respond)(cx.value(local)) {
                            Ok(v) => v,
                            Err(e) => std::panic::panic_any(e),
                        };
                        self.pending[from].push((dst, value));
                    }
                }
            }
            2 => {
                for (_from, mut r) in cx.frames() {
                    while !r.is_empty() {
                        let id: VertexId = r.get();
                        let v = R::decode_fixed(&mut r);
                        self.incoming.insert(id, v);
                    }
                }
            }
            _ => {}
        }
    }

    fn again(&self) -> bool {
        self.phase == 1 && self.traffic
    }

    fn message_count(&self) -> u64 {
        self.messages
    }
}
