//! # pc-pregel — the baseline systems
//!
//! Faithful-cost reimplementations of the systems the paper compares
//! against, running on the same `pc-bsp` substrate as the channel engine so
//! byte counts are directly comparable:
//!
//! * [`program`] — the classic **Pregel+ programming interface**: one
//!   monolithic message type per program, a single optional global
//!   combiner, an aggregator, voting-to-halt. The baseline for every
//!   "pregel (basic)" row in the paper's tables.
//! * [`monolithic`] — the monolithic message channel behind it: messages
//!   are encoded at the *fixed width of the largest variant* (like a C++
//!   `struct Message`), received into per-vertex nested vectors, and a
//!   combiner applies only if one operation fits **all** messages in the
//!   program (paper §II-B).
//! * [`reqresp`] — Pregel+'s **reqresp mode**: per-worker request
//!   deduplication via hash sets, responses shipped as `(id, value)` pairs
//!   (the id overhead the paper's channel version removes).
//! * [`ghost`] — Pregel+'s **ghost (mirroring) mode**: vertices with
//!   degree ≥ τ send one message per worker, expanded to neighbors at the
//!   receiver through mirror tables.
//! * [`blogel`] — **Blogel**'s block-centric WCC: per-block hash-min to
//!   local convergence each superstep, boundary exchange between
//!   supersteps.
//!
//! Architecturally these baselines are implemented as channels on the same
//! engine (so supersteps, activation and accounting behave identically);
//! what makes them "the baseline" is their wire format and data-structure
//! cost profile, which is what the paper's comparisons measure.

pub mod blogel;
pub mod ghost;
pub mod monolithic;
pub mod program;
pub mod reqresp;

pub use ghost::GhostMessage;
pub use monolithic::MonolithicMessage;
pub use program::{
    run_pregel, try_run_pregel, PregelOptions, PregelProgram, PregelVertex, ProgramError,
};
pub use reqresp::PregelReqResp;
