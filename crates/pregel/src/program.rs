//! The classic Pregel+ programming interface, used by every
//! "pregel (basic/reqresp/ghost)" row of the paper's tables.
//!
//! A [`PregelProgram`] has one vertex value type, **one** message type (the
//! monolithic interface of §II-B), an optional single global combiner, an
//! optional aggregator, and — for the two special modes — a respond
//! function (reqresp) and mirror tables (ghost). `compute` receives a
//! [`PregelVertex`] exposing the familiar surface: `messages()`,
//! `send_message()`, `vote_to_halt()`, aggregator access, and the
//! mode-specific calls.

use crate::ghost::GhostMessage;
use crate::monolithic::MonolithicMessage;
use crate::reqresp::PregelReqResp;
use pc_bsp::codec::{Codec, FixedWidth};
use pc_bsp::{Config, Topology};
use pc_channels::channel::{VertexCtx, WorkerEnv};
use pc_channels::engine::{run, Algorithm, Output};
use pc_channels::standard::aggregator::Aggregator;
use pc_channels::Combine;
use pc_graph::{Graph, VertexId};
use std::sync::Arc;

/// A typed misconfiguration of a [`PregelProgram`] — the failures that
/// used to be `unimplemented!` aborts inside worker code. Surfaced by
/// [`try_run_pregel`] as an `Err` instead of a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The program issued reqresp requests but does not implement
    /// [`PregelProgram::respond`].
    RespondNotImplemented {
        /// Type name of the offending program.
        program: &'static str,
    },
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::RespondNotImplemented { program } => write!(
                f,
                "{program} issues reqresp requests but does not implement respond()"
            ),
        }
    }
}

impl std::error::Error for ProgramError {}

/// A vertex-centric program against the classic Pregel+ interface.
///
/// Programs are shared across worker threads behind an `Arc` (the respond
/// function of reqresp mode is invoked from channel code), hence the
/// `Send + Sync + 'static` requirement.
pub trait PregelProgram: Send + Sync + 'static {
    /// Per-vertex state.
    type Value: Clone + Default + Send + 'static;
    /// The single monolithic message type. Encoded at fixed width (the
    /// size of its largest variant), as a C++ message struct would be.
    type Msg: Codec + FixedWidth + Clone + Default + Send + 'static;
    /// Aggregator value type (`u8` if unused).
    type Agg: Codec + Clone + Default + Send + 'static;
    /// Response type for reqresp mode (`u8` if unused).
    type Resp: Codec + FixedWidth + Clone + Send + 'static;

    /// The single global combiner — only if one operation suits **every**
    /// message in the program.
    fn combiner(&self) -> Option<Combine<Self::Msg>> {
        None
    }

    /// The aggregator's reduction, if the program uses one.
    fn aggregator(&self) -> Option<Combine<Self::Agg>> {
        None
    }

    /// Produce a reqresp response from a vertex value (reqresp mode
    /// only). The default is a typed [`ProgramError`]: a program that
    /// requests without responding fails cleanly through
    /// [`try_run_pregel`] instead of aborting the worker mid-superstep.
    fn respond(&self, _value: &Self::Value) -> Result<Self::Resp, ProgramError> {
        Err(ProgramError::RespondNotImplemented {
            program: std::any::type_name::<Self>(),
        })
    }

    /// The vertex program.
    fn compute(&self, v: &mut PregelVertex<'_, '_, Self>);
}

type PregelChannels<P> = (
    MonolithicMessage<<P as PregelProgram>::Msg>,
    Aggregator<<P as PregelProgram>::Agg>,
    PregelReqResp<<P as PregelProgram>::Value, <P as PregelProgram>::Resp>,
    GhostMessage<<P as PregelProgram>::Msg>,
);

/// The per-vertex view handed to [`PregelProgram::compute`].
pub struct PregelVertex<'a, 'b, P: PregelProgram + ?Sized> {
    ctx: &'a mut VertexCtx<'b>,
    value: &'a mut P::Value,
    channels: &'a mut PregelChannels<P>,
}

impl<P: PregelProgram> PregelVertex<'_, '_, P> {
    /// Global vertex id.
    pub fn id(&self) -> VertexId {
        self.ctx.id
    }

    /// 1-based superstep number.
    pub fn step(&self) -> u64 {
        self.ctx.step()
    }

    /// Total vertices in the graph.
    pub fn num_vertices(&self) -> usize {
        self.ctx.num_vertices()
    }

    /// Halt until re-activated by a message.
    pub fn vote_to_halt(&mut self) {
        self.ctx.vote_to_halt();
    }

    /// This vertex's state.
    pub fn value(&self) -> &P::Value {
        self.value
    }

    /// Mutable access to this vertex's state.
    pub fn value_mut(&mut self) -> &mut P::Value {
        self.value
    }

    /// Messages delivered this superstep.
    pub fn messages(&self) -> &[P::Msg] {
        self.channels.0.messages(self.ctx.local)
    }

    /// Whether any message arrived this superstep.
    pub fn has_messages(&self) -> bool {
        self.channels.0.has_messages(self.ctx.local)
    }

    /// Send a message to the vertex with global id `dst`.
    pub fn send_message(&mut self, dst: VertexId, m: P::Msg) {
        self.channels.0.send_message(dst, m);
    }

    /// Contribute to the aggregator.
    pub fn aggregate(&mut self, v: P::Agg) {
        self.channels.1.add(v);
    }

    /// Last superstep's aggregated result.
    pub fn agg_result(&self) -> &P::Agg {
        self.channels.1.result()
    }

    /// Reqresp mode: request an attribute of `dst`.
    pub fn request(&mut self, dst: VertexId) {
        self.channels.2.add_request(dst);
    }

    /// Reqresp mode: the response for `dst` requested last superstep.
    pub fn get_resp(&self, dst: VertexId) -> Option<&P::Resp> {
        self.channels.2.get_resp(dst)
    }

    /// Ghost mode: broadcast `m` to all out-neighbors (mirrored for
    /// high-degree vertices).
    pub fn ghost_send(&mut self, m: P::Msg) {
        self.channels
            .3
            .send_to_neighbors(self.ctx.local, self.ctx.id, m);
    }

    /// Ghost mode: the combined broadcast value received this superstep.
    pub fn ghost_message(&self) -> Option<&P::Msg> {
        self.channels.3.get_message(self.ctx.local)
    }
}

/// Mode configuration for a Pregel+ run.
#[derive(Default)]
pub struct PregelOptions {
    /// Enable ghost (mirroring) mode: the graph to mirror and the degree
    /// threshold τ (the paper uses 16). Ghost broadcasts are merged with
    /// the program's `combiner()`.
    pub ghost: Option<(Arc<Graph>, usize)>,
}

struct PregelAdapter<P: PregelProgram> {
    prog: Arc<P>,
    ghost: Option<(Arc<Graph>, usize)>,
}

impl<P: PregelProgram> Algorithm for PregelAdapter<P> {
    type Value = P::Value;
    type Channels = PregelChannels<P>;

    fn channels(&self, env: &WorkerEnv) -> Self::Channels {
        let msg = MonolithicMessage::new(env, self.prog.combiner());
        let agg = Aggregator::new(
            env,
            self.prog.aggregator().unwrap_or_else(|| {
                Combine::new(P::Agg::default(), |_, _| {
                    panic!("program aggregates but provides no aggregator()")
                })
            }),
        );
        let prog = Arc::clone(&self.prog);
        let rr = PregelReqResp::new(env, move |v: &P::Value| prog.respond(v));
        let ghost_combiner = self.prog.combiner().unwrap_or_else(|| {
            Combine::new(P::Msg::default(), |_, _| {
                panic!("ghost_send requires the program to define combiner()")
            })
        });
        let ghost = match &self.ghost {
            Some((g, threshold)) => GhostMessage::new(env, ghost_combiner, g, *threshold),
            None => GhostMessage::disabled(env, ghost_combiner),
        };
        (msg, agg, rr, ghost)
    }

    fn compute(&self, v: &mut VertexCtx<'_>, value: &mut Self::Value, ch: &mut Self::Channels) {
        let mut pv = PregelVertex {
            ctx: v,
            value,
            channels: ch,
        };
        self.prog.compute(&mut pv);
    }
}

/// Run a Pregel+ program, surfacing program misconfigurations (a reqresp
/// request against a program with no `respond()`) as a typed
/// [`ProgramError`] instead of an abort: worker unwinds whose payload is
/// a `ProgramError` are caught and returned as `Err`; every other panic
/// (engine invariants, transport failures) propagates unchanged.
pub fn try_run_pregel<P: PregelProgram>(
    prog: Arc<P>,
    topo: &Arc<Topology>,
    cfg: &Config,
    opts: PregelOptions,
) -> Result<Output<P::Value>, ProgramError> {
    let adapter = PregelAdapter {
        prog,
        ghost: opts.ghost,
    };
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&adapter, topo, cfg))) {
        Ok(out) => Ok(out),
        Err(payload) => match payload.downcast::<ProgramError>() {
            Ok(e) => Err(*e),
            Err(payload) => std::panic::resume_unwind(payload),
        },
    }
}

/// Run a Pregel+ program — the entry point for every baseline
/// measurement. Panics (with the error's message) on a
/// [`ProgramError`]; use [`try_run_pregel`] to handle it.
pub fn run_pregel<P: PregelProgram>(
    prog: Arc<P>,
    topo: &Arc<Topology>,
    cfg: &Config,
    opts: PregelOptions,
) -> Output<P::Value> {
    try_run_pregel(prog, topo, cfg, opts).unwrap_or_else(|e| panic!("pregel program error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// PageRank-free smoke program: flood the min id over edges given as a
    /// shared graph, Pregel style (monolithic u32 messages, min combiner).
    struct HashMin {
        g: Arc<Graph>,
    }
    impl PregelProgram for HashMin {
        type Value = u32;
        type Msg = u32;
        type Agg = u8;
        type Resp = u8;
        fn combiner(&self) -> Option<Combine<u32>> {
            Some(Combine::min_u32())
        }
        fn compute(&self, v: &mut PregelVertex<'_, '_, Self>) {
            if v.step() == 1 {
                *v.value_mut() = v.id();
            }
            let incoming = v.messages().iter().copied().min().unwrap_or(u32::MAX);
            let id = v.id();
            let cur = *v.value();
            let next = cur.min(incoming);
            if next < cur || v.step() == 1 {
                *v.value_mut() = next;
                for &t in self.g.neighbors(id) {
                    v.send_message(t, next);
                }
            }
            v.vote_to_halt();
        }
    }

    #[test]
    fn pregel_hashmin_finds_components() {
        let g = Arc::new(pc_graph::gen::rmat(
            8,
            1200,
            pc_graph::gen::RmatParams::default(),
            5,
            false,
        ));
        let expect = pc_graph::reference::connected_components(&g);
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        for cfg in [Config::sequential(4), Config::with_workers(4)] {
            let out = run_pregel(
                Arc::new(HashMin { g: Arc::clone(&g) }),
                &topo,
                &cfg,
                PregelOptions::default(),
            );
            assert_eq!(out.values, expect);
        }
    }

    /// Reqresp mode smoke test: every vertex asks `id/2` for its value.
    struct AskHalf;
    impl PregelProgram for AskHalf {
        type Value = u32;
        type Msg = u32;
        type Agg = u8;
        type Resp = u32;
        fn respond(&self, value: &u32) -> Result<u32, ProgramError> {
            Ok(value * 3)
        }
        fn compute(&self, v: &mut PregelVertex<'_, '_, Self>) {
            if v.step() == 1 {
                *v.value_mut() = v.id() + 1;
                let target = v.id() / 2;
                v.request(target);
            } else {
                let target = v.id() / 2;
                let got = *v.get_resp(target).expect("response missing");
                *v.value_mut() = got;
                v.vote_to_halt();
            }
        }
    }

    #[test]
    fn pregel_reqresp_mode_round_trips() {
        let topo = Arc::new(Topology::hashed(60, 4));
        let out = run_pregel(
            Arc::new(AskHalf),
            &topo,
            &Config::sequential(4),
            PregelOptions::default(),
        );
        for id in 0..60u32 {
            assert_eq!(out.values[id as usize], (id / 2 + 1) * 3);
        }
    }

    /// Ghost mode smoke test: sum of neighbor ids via mirrored broadcast.
    struct GhostSum;
    impl PregelProgram for GhostSum {
        type Value = u64;
        type Msg = u64;
        type Agg = u8;
        type Resp = u8;
        fn combiner(&self) -> Option<Combine<u64>> {
            Some(Combine::sum_u64())
        }
        fn compute(&self, v: &mut PregelVertex<'_, '_, Self>) {
            if v.step() == 1 {
                v.ghost_send(v.id() as u64);
                v.vote_to_halt();
            } else {
                *v.value_mut() = v.ghost_message().copied().unwrap_or(0);
                v.vote_to_halt();
            }
        }
    }

    #[test]
    fn pregel_ghost_mode_broadcasts() {
        let g = Arc::new(pc_graph::gen::star(300));
        let mut expect = vec![0u64; 300];
        for (u, t, ()) in g.arcs() {
            expect[t as usize] += u as u64;
        }
        let topo = Arc::new(Topology::hashed(300, 4));
        let out = run_pregel(
            Arc::new(GhostSum),
            &topo,
            &Config::sequential(4),
            PregelOptions {
                ghost: Some((Arc::clone(&g), 16)),
            },
        );
        assert_eq!(out.values, expect);
    }

    /// A program that requests without implementing `respond()` fails
    /// with a *typed* error through `try_run_pregel` — not an
    /// `unimplemented!` abort in the middle of a worker's exchange round.
    struct AsksButNeverAnswers;
    impl PregelProgram for AsksButNeverAnswers {
        type Value = u32;
        type Msg = u32;
        type Agg = u8;
        type Resp = u32; // declared but respond() not implemented
        fn compute(&self, v: &mut PregelVertex<'_, '_, Self>) {
            if v.step() == 1 {
                v.request(v.id() / 2);
            } else {
                v.vote_to_halt();
            }
        }
    }

    #[test]
    fn missing_respond_is_a_typed_error() {
        let topo = Arc::new(Topology::hashed(20, 2));
        for cfg in [Config::sequential(2), Config::with_workers(2)] {
            let err = try_run_pregel(
                Arc::new(AsksButNeverAnswers),
                &topo,
                &cfg,
                PregelOptions::default(),
            )
            .unwrap_err();
            assert!(
                matches!(err, ProgramError::RespondNotImplemented { program }
                    if program.contains("AsksButNeverAnswers")),
                "{err}"
            );
        }
    }

    /// Aggregator round trip through the facade.
    struct CountAll;
    impl PregelProgram for CountAll {
        type Value = u64;
        type Msg = u32;
        type Agg = u64;
        type Resp = u8;
        fn aggregator(&self) -> Option<Combine<u64>> {
            Some(Combine::sum_u64())
        }
        fn compute(&self, v: &mut PregelVertex<'_, '_, Self>) {
            if v.step() == 1 {
                v.aggregate(1);
            } else {
                *v.value_mut() = *v.agg_result();
                v.vote_to_halt();
            }
        }
    }

    #[test]
    fn pregel_aggregator_counts_vertices() {
        let topo = Arc::new(Topology::hashed(123, 3));
        let out = run_pregel(
            Arc::new(CountAll),
            &topo,
            &Config::with_workers(3),
            PregelOptions::default(),
        );
        assert!(out.values.iter().all(|&v| v == 123));
    }
}
