//! Blogel's block-centric WCC, the comparator for the Propagation channel
//! (Table V, bottom).
//!
//! Blogel opens the partition to the programmer: a *block* (a worker's
//! connected subgraph) runs a block-level program — for WCC, a hash-min
//! that converges locally — and only boundary updates travel between
//! blocks, once per superstep. We express exactly that with the
//! propagation machinery in [`pc_channels::Propagation::block_mode`]:
//! local convergence inside the superstep, boundary exchange at the
//! barrier, repeat until globally stable.
//!
//! (The paper notes the real Blogel encodes partition information in
//! vertex ids and saves a further ~33% of message bytes; we do not model
//! that detail — see EXPERIMENTS.md.)

use pc_bsp::{Config, Topology};
use pc_channels::channel::{VertexCtx, WorkerEnv};
use pc_channels::engine::{run, Algorithm, Output};
use pc_channels::{Combine, Propagation};
use pc_graph::{Graph, VertexId};
use std::sync::Arc;

struct BlogelWcc {
    g: Arc<Graph>,
}

impl Algorithm for BlogelWcc {
    type Value = VertexId;
    type Channels = (Propagation<u32>,);

    fn channels(&self, env: &WorkerEnv) -> Self::Channels {
        (Propagation::block_mode(env, Combine::min_u32()),)
    }

    fn compute(&self, v: &mut VertexCtx<'_>, value: &mut VertexId, ch: &mut Self::Channels) {
        if v.step() == 1 {
            for &t in self.g.neighbors(v.id) {
                ch.0.add_edge(v.local, t);
            }
            ch.0.set_value(v.local, v.id);
        }
        *value = *ch.0.get_value(v.local);
        v.vote_to_halt();
    }
}

/// Run Blogel-style block-centric WCC. Returns min-id component labels.
pub fn wcc(g: &Arc<Graph>, topo: &Arc<Topology>, cfg: &Config) -> Output<VertexId> {
    let mut out = run(&BlogelWcc { g: Arc::clone(g) }, topo, cfg);
    // One final sweep: compute() snapshots the label *before* the last
    // boundary exchange of each superstep, so harvest final labels from
    // the converged channel state via a trailing superstep. The run above
    // already includes that trailing superstep (activation keeps changed
    // vertices alive), so values are final here.
    out.stats
        .channels
        .retain(|c| c.bytes.total() > 0 || c.messages > 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_graph::{gen, partition, reference};

    #[test]
    fn blogel_wcc_matches_union_find() {
        let g = Arc::new(gen::rmat(9, 2500, gen::RmatParams::default(), 17, false));
        let expect = reference::connected_components(&g);
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        for cfg in [Config::sequential(4), Config::with_workers(4)] {
            let out = wcc(&g, &topo, &cfg);
            assert_eq!(out.values, expect);
        }
    }

    #[test]
    fn blogel_needs_more_supersteps_than_async_propagation() {
        // On a large-diameter graph with a good partition, Blogel needs one
        // superstep per inter-block hop, while the propagation channel
        // collapses everything into round loops inside ~1 superstep.
        let g = Arc::new(gen::grid2d(24, 24, 0.0, 3));
        let owners = partition::bfs_blocks(&*g, 4);
        let topo = Arc::new(Topology::from_owners(4, owners));
        let out = wcc(&g, &topo, &Config::sequential(4));
        assert_eq!(out.values, reference::connected_components(&g));
        assert!(
            out.stats.supersteps > 2,
            "block-centric WCC pays supersteps for inter-block hops, got {}",
            out.stats.supersteps
        );
    }

    #[test]
    fn blogel_on_partitioned_chain() {
        let g = Arc::new(gen::chain(500));
        let topo = Arc::new(Topology::blocked(g.n(), 4));
        let out = wcc(&g, &topo, &Config::sequential(4));
        assert!(out.values.iter().all(|&l| l == 0));
        // 4 contiguous blocks ⇒ label crosses 3 boundaries ⇒ ~4 supersteps.
        assert!(
            out.stats.supersteps <= 6,
            "supersteps = {}",
            out.stats.supersteps
        );
    }
}
