//! Pregel+'s **ghost mode** (a.k.a. mirroring / vertex replication).
//!
//! A vertex whose out-degree reaches the threshold τ gets *mirrors*: when
//! it broadcasts a value to its neighbors, it sends **one** message per
//! destination worker; the receiving worker expands the message to the
//! vertex's local neighbors through a pre-built mirror table. Low-degree
//! vertices keep sending per-edge messages.
//!
//! This is the *sender-centric* message combining of the paper's §V-B1
//! analysis: it reduces wire traffic below even the scatter-combine channel
//! (one message per worker, not per distinct destination), but the receive
//! path re-expands every message through hash-table lookups and per-edge
//! combining — the computational cost the paper blames for ghost mode's
//! flat runtimes.

use pc_bsp::codec::Codec;
use pc_channels::channel::{Channel, DeserializeCx, SerializeCx, WorkerEnv};
use pc_channels::combine::Combine;
use pc_graph::{Graph, VertexId};
use std::collections::HashMap;

/// Broadcast-to-neighbors channel with mirroring above a degree threshold.
pub struct GhostMessage<M> {
    env: WorkerEnv,
    combine: Combine<M>,
    /// For each local vertex: the peers holding ≥1 of its out-neighbors
    /// (only populated for vertices at or above the threshold).
    mirror_peers: Vec<Vec<u16>>,
    /// Low-degree out-neighbors per local vertex (global ids).
    direct_edges: Vec<Vec<VertexId>>,
    /// Receive-side mirror tables: global id of a ghosted vertex → local
    /// indices of its out-neighbors on this worker.
    ghost_in: HashMap<VertexId, Vec<u32>>,
    /// Staged traffic per peer. Mirrored broadcasts are one entry per
    /// (source, worker); direct messages keep the program's combiner
    /// (ghost mode composes with combining in Pregel+).
    staged_ghost: Vec<Vec<(VertexId, M)>>,
    staged_direct: Vec<HashMap<VertexId, M>>,
    /// Receiver-combined values per local vertex (double-buffered).
    incoming: Vec<Option<M>>,
    readable: Vec<Option<M>>,
    messages: u64,
}

impl<M: Codec + Clone + Send> GhostMessage<M> {
    /// Build this worker's instance, including the mirror tables, from the
    /// graph. This is the preprocessing step whose cost the paper includes
    /// in ghost-mode runtimes.
    pub fn new(env: &WorkerEnv, combine: Combine<M>, g: &Graph, threshold: usize) -> Self {
        let numv = env.local_count();
        let workers = env.workers();
        let mut mirror_peers = vec![Vec::new(); numv];
        let mut direct_edges = vec![Vec::new(); numv];
        let mut ghost_in: HashMap<VertexId, Vec<u32>> = HashMap::new();

        // Sender-side tables for local vertices.
        for (li, &gid) in env.topo.locals(env.worker).iter().enumerate() {
            let nbrs = g.neighbors(gid);
            if nbrs.len() >= threshold {
                let mut peers: Vec<u16> = nbrs.iter().map(|&t| env.worker_of(t) as u16).collect();
                peers.sort_unstable();
                peers.dedup();
                mirror_peers[li] = peers;
            } else {
                direct_edges[li] = nbrs.to_vec();
            }
        }
        // Receiver-side mirror table: which high-degree vertices (anywhere)
        // have neighbors here. In a distributed deployment this is built by
        // a preprocessing exchange; the simulated cluster reads the shared
        // graph directly.
        for v in g.vertices() {
            if g.degree(v) >= threshold {
                let locals: Vec<u32> = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&t| env.worker_of(t) == env.worker)
                    .map(|&t| env.local_of(t))
                    .collect();
                if !locals.is_empty() {
                    ghost_in.insert(v, locals);
                }
            }
        }
        GhostMessage {
            env: env.clone(),
            combine,
            mirror_peers,
            direct_edges,
            ghost_in,
            staged_ghost: vec![Vec::new(); workers],
            staged_direct: (0..workers).map(|_| HashMap::new()).collect(),
            incoming: vec![None; numv],
            readable: vec![None; numv],
            messages: 0,
        }
    }

    /// An inert instance with no mirror tables; any `send_to_neighbors`
    /// call finds no edges and sends nothing. Used when a Pregel run does
    /// not enable ghost mode.
    pub fn disabled(env: &WorkerEnv, combine: Combine<M>) -> Self {
        let numv = env.local_count();
        let workers = env.workers();
        GhostMessage {
            env: env.clone(),
            combine,
            mirror_peers: vec![Vec::new(); numv],
            direct_edges: vec![Vec::new(); numv],
            ghost_in: HashMap::new(),
            staged_ghost: vec![Vec::new(); workers],
            staged_direct: (0..workers).map(|_| HashMap::new()).collect(),
            incoming: vec![None; numv],
            readable: vec![None; numv],
            messages: 0,
        }
    }

    /// Broadcast `m` to all out-neighbors of the local vertex `src_local`
    /// (whose global id is `src_id`).
    pub fn send_to_neighbors(&mut self, src_local: u32, src_id: VertexId, m: M) {
        let li = src_local as usize;
        if !self.mirror_peers[li].is_empty() {
            for &peer in &self.mirror_peers[li] {
                self.staged_ghost[peer as usize].push((src_id, m.clone()));
            }
        }
        for i in 0..self.direct_edges[li].len() {
            let dst = self.direct_edges[li][i];
            let peer = self.env.worker_of(dst);
            match self.staged_direct[peer].entry(dst) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    self.combine.apply(e.get_mut(), m.clone());
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(m.clone());
                }
            }
        }
    }

    /// The combined value gathered by `local` this superstep.
    pub fn get_message(&self, local: u32) -> Option<&M> {
        self.readable[local as usize].as_ref()
    }

    /// Combined value or the combiner's identity.
    pub fn get_or_identity(&self, local: u32) -> M {
        self.get_message(local)
            .cloned()
            .unwrap_or_else(|| self.combine.identity())
    }

    fn absorb(&mut self, local: u32, m: M) {
        match &mut self.incoming[local as usize] {
            Some(acc) => self.combine.apply(acc, m),
            slot @ None => *slot = Some(m),
        }
    }
}

impl<AV, M: Codec + Clone + Send> Channel<AV> for GhostMessage<M> {
    fn name(&self) -> &'static str {
        "ghost"
    }

    fn before_superstep(&mut self, _step: u64) {
        std::mem::swap(&mut self.readable, &mut self.incoming);
        self.incoming.iter_mut().for_each(|s| *s = None);
    }

    fn serialize(&mut self, cx: &mut SerializeCx<'_>) {
        for peer in 0..self.staged_ghost.len() {
            if self.staged_ghost[peer].is_empty() && self.staged_direct[peer].is_empty() {
                continue;
            }
            let ghosts = std::mem::take(&mut self.staged_ghost[peer]);
            let directs = std::mem::take(&mut self.staged_direct[peer]);
            self.messages += (ghosts.len() + directs.len()) as u64;
            cx.frame(peer, |buf| {
                (ghosts.len() as u32).encode(buf);
                for (src, m) in &ghosts {
                    src.encode(buf);
                    m.encode(buf);
                }
                for (dst, m) in &directs {
                    dst.encode(buf);
                    m.encode(buf);
                }
            });
        }
    }

    fn deserialize(&mut self, cx: &mut DeserializeCx<'_, AV>) {
        for (_from, mut r) in cx.frames() {
            let ghost_count: u32 = r.get();
            for _ in 0..ghost_count {
                let src: VertexId = r.get();
                let m: M = r.get();
                // Hash lookup + per-edge expansion: the receive-side cost
                // of sender-centric combining.
                let locals = self.ghost_in.get(&src).cloned().unwrap_or_default();
                for local in locals {
                    self.absorb(local, m.clone());
                    cx.activate(local);
                }
            }
            while !r.is_empty() {
                let dst: VertexId = r.get();
                let m: M = r.get();
                let local = self.env.local_of(dst);
                self.absorb(local, m);
                cx.activate(local);
            }
        }
    }

    fn message_count(&self) -> u64 {
        self.messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_bsp::{Config, Topology};
    use pc_channels::channel::VertexCtx;
    use pc_channels::engine::{run, Algorithm};
    use pc_graph::gen;
    use std::sync::Arc;

    /// Broadcast each vertex's id; receivers keep the min — with mirroring
    /// for degree ≥ threshold.
    struct GhostMin {
        g: Arc<Graph>,
        threshold: usize,
    }
    impl Algorithm for GhostMin {
        type Value = u32;
        type Channels = (GhostMessage<u32>,);
        fn channels(&self, env: &WorkerEnv) -> Self::Channels {
            (GhostMessage::new(
                env,
                Combine::min_u32(),
                &self.g,
                self.threshold,
            ),)
        }
        fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u32, ch: &mut Self::Channels) {
            if v.step() == 1 {
                ch.0.send_to_neighbors(v.local, v.id, v.id);
                // Stay active so every vertex reads its gather at step 2
                // (vertices without in-edges receive nothing and would
                // otherwise sleep through it).
            } else {
                *value = ch.0.get_or_identity(v.local);
                v.vote_to_halt();
            }
        }
    }

    fn oracle(g: &Graph) -> Vec<u32> {
        let mut expect = vec![u32::MAX; g.n()];
        for (u, v, ()) in g.arcs() {
            expect[v as usize] = expect[v as usize].min(u);
        }
        expect
    }

    #[test]
    fn ghost_matches_direct_semantics() {
        let g = Arc::new(gen::rmat(8, 2000, gen::RmatParams::default(), 13, true));
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let expect = oracle(&g);
        for threshold in [1, 4, 16, usize::MAX] {
            for cfg in [Config::sequential(4), Config::with_workers(4)] {
                let out = run(
                    &GhostMin {
                        g: Arc::clone(&g),
                        threshold,
                    },
                    &topo,
                    &cfg,
                );
                assert_eq!(out.values, expect, "threshold {threshold}");
            }
        }
    }

    #[test]
    fn mirroring_reduces_messages_for_hubs() {
        // A star: the hub has degree n-1.
        let g = Arc::new(gen::star(1001));
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let with_mirrors = run(
            &GhostMin {
                g: Arc::clone(&g),
                threshold: 16,
            },
            &topo,
            &Config::sequential(4),
        );
        let without = run(
            &GhostMin {
                g: Arc::clone(&g),
                threshold: usize::MAX,
            },
            &topo,
            &Config::sequential(4),
        );
        assert_eq!(with_mirrors.values, without.values);
        // Hub broadcast: ≤ 4 ghost messages instead of 1000 per-destination
        // pairs (each leaf is a distinct destination, so the combiner can
        // not reduce them); the leaf→hub direction sender-combines to ≤ 4
        // pairs either way.
        assert!(
            without.stats.messages() >= 1000,
            "got {}",
            without.stats.messages()
        );
        assert!(
            with_mirrors.stats.messages() <= 8,
            "ghost should collapse the hub broadcast, got {}",
            with_mirrors.stats.messages()
        );
    }

    #[test]
    fn low_degree_vertices_bypass_mirrors() {
        let g = Arc::new(gen::cycle(40)); // all degree 2
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let out = run(
            &GhostMin {
                g: Arc::clone(&g),
                threshold: 16,
            },
            &topo,
            &Config::sequential(4),
        );
        assert_eq!(out.values, oracle(&g));
    }
}
