//! The monolithic message channel — Pregel's native message interface with
//! its two structural costs (paper §II-B):
//!
//! 1. **One message type per program.** Complex algorithms with several
//!    communication phases must instantiate the type "large enough to carry
//!    all those message values"; every message is encoded at the fixed
//!    width of the largest use ([`pc_bsp::codec::FixedWidth`]).
//! 2. **One optional global combiner.** A combiner may be supplied only
//!    when *every* message in the program is combinable with it; otherwise
//!    all messages travel uncombined, per edge.
//!
//! The receive path stores messages in per-vertex nested vectors
//! (`Vec<Vec<Msg>>`), modelling the Pregel+ implementation detail the paper
//! measures against its flat message iterator (45% on pointer jumping).

use pc_bsp::codec::{Codec, FixedWidth};
use pc_channels::channel::{Channel, DeserializeCx, SerializeCx, WorkerEnv};
use pc_channels::combine::Combine;
use pc_graph::VertexId;
use std::collections::HashMap;

/// Pregel's message interface as a channel.
pub struct MonolithicMessage<M> {
    env: WorkerEnv,
    combiner: Option<Combine<M>>,
    /// Uncombined staging (no combiner): every send is one wire message.
    staged_plain: Vec<Vec<(VertexId, M)>>,
    /// Sender-side combining tables (global combiner present).
    staged_combined: Vec<HashMap<VertexId, M>>,
    /// Receive: per-vertex nested vectors, Pregel+ style.
    incoming: Vec<Vec<M>>,
    readable: Vec<Vec<M>>,
    messages: u64,
}

impl<M: Codec + FixedWidth + Clone + Send> MonolithicMessage<M> {
    /// Create this worker's instance; `combiner` is the program's single
    /// global combiner, if one is applicable at all.
    pub fn new(env: &WorkerEnv, combiner: Option<Combine<M>>) -> Self {
        let numv = env.local_count();
        let workers = env.workers();
        MonolithicMessage {
            env: env.clone(),
            combiner,
            staged_plain: vec![Vec::new(); workers],
            staged_combined: (0..workers).map(|_| HashMap::new()).collect(),
            incoming: vec![Vec::new(); numv],
            readable: vec![Vec::new(); numv],
            messages: 0,
        }
    }

    /// Send `m` to the vertex with global id `dst`.
    pub fn send_message(&mut self, dst: VertexId, m: M) {
        let peer = self.env.worker_of(dst);
        match &self.combiner {
            None => self.staged_plain[peer].push((dst, m)),
            Some(c) => match self.staged_combined[peer].entry(dst) {
                std::collections::hash_map::Entry::Occupied(mut e) => c.apply(e.get_mut(), m),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(m);
                }
            },
        }
    }

    /// Messages delivered to `local` this superstep.
    pub fn messages(&self, local: u32) -> &[M] {
        &self.readable[local as usize]
    }

    /// Whether `local` received anything this superstep.
    pub fn has_messages(&self, local: u32) -> bool {
        !self.readable[local as usize].is_empty()
    }
}

impl<AV, M: Codec + FixedWidth + Clone + Send> Channel<AV> for MonolithicMessage<M> {
    fn name(&self) -> &'static str {
        "pregel-msg"
    }

    fn before_superstep(&mut self, _step: u64) {
        std::mem::swap(&mut self.readable, &mut self.incoming);
        self.incoming.iter_mut().for_each(Vec::clear);
    }

    fn serialize(&mut self, cx: &mut SerializeCx<'_>) {
        let workers = self.staged_plain.len();
        for peer in 0..workers {
            if !self.staged_plain[peer].is_empty() {
                let batch = std::mem::take(&mut self.staged_plain[peer]);
                self.messages += batch.len() as u64;
                cx.frame(peer, |buf| {
                    for (dst, m) in &batch {
                        dst.encode(buf);
                        m.encode_fixed(buf);
                    }
                });
            }
            if !self.staged_combined[peer].is_empty() {
                let batch = std::mem::take(&mut self.staged_combined[peer]);
                self.messages += batch.len() as u64;
                cx.frame(peer, |buf| {
                    for (dst, m) in &batch {
                        dst.encode(buf);
                        m.encode_fixed(buf);
                    }
                });
            }
        }
    }

    fn deserialize(&mut self, cx: &mut DeserializeCx<'_, AV>) {
        for (_from, mut r) in cx.frames() {
            while !r.is_empty() {
                let dst: VertexId = r.get();
                let m = M::decode_fixed(&mut r);
                let local = self.env.local_of(dst);
                // Receiver-side combine keeps per-vertex storage at one
                // element when a combiner exists.
                if let Some(c) = &self.combiner {
                    let bucket = &mut self.incoming[local as usize];
                    if let Some(acc) = bucket.first_mut() {
                        c.apply(acc, m);
                    } else {
                        bucket.push(m);
                    }
                } else {
                    self.incoming[local as usize].push(m);
                }
                cx.activate(local);
            }
        }
    }

    fn message_count(&self) -> u64 {
        self.messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_bsp::{Config, Topology};
    use pc_channels::channel::VertexCtx;
    use pc_channels::engine::{run, Algorithm};
    use std::sync::Arc;

    /// All vertices message vertex 0 with their id.
    struct FanInPlain;
    impl Algorithm for FanInPlain {
        type Value = u64;
        type Channels = (MonolithicMessage<u32>,);
        fn channels(&self, env: &WorkerEnv) -> Self::Channels {
            (MonolithicMessage::new(env, None),)
        }
        fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u64, ch: &mut Self::Channels) {
            if v.step() == 1 {
                ch.0.send_message(0, v.id);
                v.vote_to_halt();
            } else {
                *value = ch.0.messages(v.local).iter().map(|&m| m as u64).sum();
                v.vote_to_halt();
            }
        }
    }

    #[test]
    fn plain_mode_ships_every_message() {
        let n = 64u64;
        let topo = Arc::new(Topology::hashed(n as usize, 4));
        let out = run(&FanInPlain, &topo, &Config::sequential(4));
        assert_eq!(out.values[0], n * (n - 1) / 2);
        assert_eq!(out.stats.messages(), n);
        // 4 bytes dst + 4 bytes fixed width per message.
        assert!(out.stats.total_bytes() >= 8 * n);
    }

    /// Same fan-in but with a sum combiner: one pair per worker.
    struct FanInCombined;
    impl Algorithm for FanInCombined {
        type Value = u64;
        type Channels = (MonolithicMessage<u64>,);
        fn channels(&self, env: &WorkerEnv) -> Self::Channels {
            (MonolithicMessage::new(env, Some(Combine::sum_u64())),)
        }
        fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u64, ch: &mut Self::Channels) {
            if v.step() == 1 {
                ch.0.send_message(0, v.id as u64);
                v.vote_to_halt();
            } else {
                *value = ch.0.messages(v.local).iter().sum();
                v.vote_to_halt();
            }
        }
    }

    #[test]
    fn global_combiner_collapses_to_one_pair_per_worker() {
        let n = 64u64;
        let topo = Arc::new(Topology::hashed(n as usize, 4));
        let out = run(&FanInCombined, &topo, &Config::with_workers(4));
        assert_eq!(out.values[0], n * (n - 1) / 2);
        assert!(out.stats.messages() <= 4);
    }

    /// Fixed-width inflation: a small message padded to the largest
    /// variant's width costs more wire bytes than its content.
    #[derive(Debug, Clone, PartialEq)]
    enum MixedMsg {
        Small(u32),
        Large(u32, u32, u32, u32),
    }
    impl Codec for MixedMsg {
        fn encode(&self, buf: &mut Vec<u8>) {
            match self {
                MixedMsg::Small(a) => {
                    0u8.encode(buf);
                    a.encode(buf);
                }
                MixedMsg::Large(a, b, c, d) => {
                    1u8.encode(buf);
                    (*a, *b, *c, *d).encode(buf);
                }
            }
        }
        fn decode(r: &mut pc_bsp::codec::Reader<'_>) -> Self {
            match r.get::<u8>() {
                0 => MixedMsg::Small(r.get()),
                _ => {
                    let (a, b, c, d) = r.get();
                    MixedMsg::Large(a, b, c, d)
                }
            }
        }
    }
    impl FixedWidth for MixedMsg {
        const WIDTH: usize = 1 + 16; // tag + largest variant
    }

    struct MixedSender;
    impl Algorithm for MixedSender {
        type Value = u64;
        type Channels = (MonolithicMessage<MixedMsg>,);
        fn channels(&self, env: &WorkerEnv) -> Self::Channels {
            (MonolithicMessage::new(env, None),)
        }
        fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u64, ch: &mut Self::Channels) {
            if v.step() == 1 {
                // Mostly small messages — but they all pay the large width.
                ch.0.send_message((v.id + 1) % 50, MixedMsg::Small(v.id));
                v.vote_to_halt();
            } else {
                for m in ch.0.messages(v.local) {
                    if let MixedMsg::Small(x) = m {
                        *value += *x as u64;
                    }
                }
                v.vote_to_halt();
            }
        }
    }

    #[test]
    fn fixed_width_inflates_small_messages() {
        let topo = Arc::new(Topology::hashed(50, 4));
        let out = run(&MixedSender, &topo, &Config::sequential(4));
        let total: u64 = out.values.iter().sum();
        assert_eq!(total, (0..50).sum::<u64>());
        // 50 messages × (4 dst + 17 fixed) ≥ 1050 bytes, vs 8 B/var-width.
        assert!(out.stats.total_bytes() >= 50 * 21);
    }

    #[test]
    fn nested_vectors_group_per_vertex() {
        struct TwoEach;
        impl Algorithm for TwoEach {
            type Value = u64;
            type Channels = (MonolithicMessage<u32>,);
            fn channels(&self, env: &WorkerEnv) -> Self::Channels {
                (MonolithicMessage::new(env, None),)
            }
            fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u64, ch: &mut Self::Channels) {
                if v.step() == 1 {
                    ch.0.send_message(v.id, 1);
                    ch.0.send_message(v.id, 2);
                    v.vote_to_halt();
                } else {
                    assert_eq!(ch.0.messages(v.local).len(), 2);
                    assert!(ch.0.has_messages(v.local));
                    *value = ch.0.messages(v.local).iter().map(|&x| x as u64).sum();
                    v.vote_to_halt();
                }
            }
        }
        let topo = Arc::new(Topology::hashed(20, 3));
        let out = run(&TwoEach, &topo, &Config::sequential(3));
        assert!(out.values.iter().all(|&v| v == 3));
    }
}
