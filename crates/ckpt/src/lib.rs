//! # pc-ckpt — superstep checkpointing for the channel engine
//!
//! BSP superstep boundaries are natural consistency points: every worker
//! has finished its exchange rounds, no message is in flight, and the
//! next superstep's frontier is fully decided. This crate stores that
//! state durably so a multi-process run can survive a rank being killed
//! (`pc_dist`'s supervisor respawns it and every rank resumes from the
//! last *committed* checkpoint).
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/step-0000000008/rank-0000.seg     per-rank state snapshot
//!                       rank-0001.seg
//!                       ...
//!                       MANIFEST          commit record (written last)
//! ```
//!
//! A checkpoint of superstep `s` is **either complete or invisible**:
//!
//! * every rank writes its segment to `*.tmp`, fsyncs, and atomically
//!   renames it into place — a crash mid-write leaves at worst a `.tmp`
//!   straggler that is never read;
//! * rank 0 writes the `MANIFEST` (same tmp + fsync + rename discipline)
//!   only after *all* ranks have passed the checkpoint barrier, so a
//!   step directory without a digest-valid manifest is not a checkpoint;
//! * the manifest pins each segment's content digest, so a torn or
//!   truncated segment is detected at restore time and the restore falls
//!   back to the previous complete epoch ([`Store::latest_restorable`]).
//!
//! Every file carries a trailing [`fnv64`] digest over its own bytes, and
//! the manifest additionally records each segment's digest — validation
//! never trusts file lengths or headers alone.
//!
//! The *contents* of a segment payload belong to the engine
//! (`pc_channels::engine` encodes vertex values, frontier, channel state
//! and counters); this crate only frames, digests and commits them.

use pc_bsp::{Codec, Reader};
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Magic prefix of a segment file ("pcSEG\x01" padded).
pub const SEGMENT_MAGIC: u64 = 0x0100_4745_5363_7000;
/// Magic prefix of a manifest file ("pcMAN\x01" padded).
pub const MANIFEST_MAGIC: u64 = 0x0100_4e41_4d63_7000;
/// Magic prefix of a control-replica commit record ("pcCTL\x01" padded).
pub const CTRL_MAGIC: u64 = 0x0100_4c54_4363_7000;
/// Magic prefix of the coordinator advertisement ("pcADV\x01" padded).
pub const ADVERT_MAGIC: u64 = 0x0100_5644_4163_7000;
/// On-disk format version; bumped on any layout change.
pub const FORMAT_VERSION: u32 = 1;
/// Committed epochs the garbage collector keeps: the newest one plus one
/// fallback for the torn-write path.
pub const KEEP_COMMITTED: usize = 2;

/// FNV-1a 64-bit digest — small, dependency-free, and plenty for
/// detecting torn writes and bit rot (this is not an adversarial setting:
/// checkpoints live on the operator's own disk).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A checkpointing failure.
#[derive(Debug)]
pub enum CkptError {
    /// An underlying filesystem operation failed.
    Io {
        /// Path involved.
        path: PathBuf,
        /// What was being attempted.
        during: &'static str,
        /// The OS error kind.
        kind: std::io::ErrorKind,
    },
    /// A file exists but fails digest or structural validation.
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// The directory holds checkpoints of a *different* run (other
    /// algorithm, worker count or graph) — refusing to restore from them
    /// is a loud error, not a silent cold start.
    Incompatible {
        /// Human-readable mismatch description.
        detail: String,
    },
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io { path, during, kind } => {
                write!(
                    f,
                    "i/o error ({kind:?}) during {during}: {}",
                    path.display()
                )
            }
            CkptError::Corrupt { path, detail } => {
                write!(f, "corrupt checkpoint file {}: {detail}", path.display())
            }
            CkptError::Incompatible { detail } => {
                write!(f, "incompatible checkpoint: {detail}")
            }
        }
    }
}

impl std::error::Error for CkptError {}

fn io_err(path: &Path, during: &'static str, e: std::io::Error) -> CkptError {
    CkptError::Io {
        path: path.to_path_buf(),
        during,
        kind: e.kind(),
    }
}

/// Identity of a run, pinned into every manifest so a checkpoint is only
/// ever restored into the run shape that wrote it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunId {
    /// Cluster width (workers / ranks).
    pub workers: u32,
    /// Total vertices in the graph.
    pub n: u64,
    /// Algorithm tag (the engine uses the algorithm's type name).
    pub algo: String,
}

impl RunId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.workers.encode(buf);
        self.n.encode(buf);
        let bytes = self.algo.as_bytes();
        (bytes.len() as u32).encode(buf);
        buf.extend_from_slice(bytes);
    }

    fn decode(r: &mut Reader<'_>, path: &Path) -> Result<Self, CkptError> {
        let corrupt = |detail: String| CkptError::Corrupt {
            path: path.to_path_buf(),
            detail,
        };
        if r.remaining() < 16 {
            return Err(corrupt("run id truncated".into()));
        }
        let workers = r.get();
        let n = r.get();
        let len: u32 = r.get();
        if r.remaining() < len as usize {
            return Err(corrupt("algo tag truncated".into()));
        }
        let algo = String::from_utf8(r.take(len as usize).to_vec())
            .map_err(|e| corrupt(format!("algo tag is not utf-8: {e}")))?;
        Ok(RunId { workers, n, algo })
    }
}

/// The commit record of one checkpoint epoch, written by rank 0 after
/// every rank acked the checkpoint barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The run this checkpoint belongs to.
    pub id: RunId,
    /// Superstep the checkpoint was taken after.
    pub superstep: u64,
    /// Exchange rounds completed at that point.
    pub rounds: u64,
    /// Per-rank segment content digests, indexed by rank.
    pub digests: Vec<u64>,
}

/// One rank's state snapshot. The payload bytes are produced and consumed
/// by the engine; this crate treats them as opaque.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Superstep the snapshot was taken after.
    pub superstep: u64,
    /// Exchange rounds completed at that point.
    pub rounds: u64,
    /// The rank whose state this is.
    pub rank: u32,
    /// Cluster width, for cross-checking against the manifest.
    pub workers: u32,
    /// Engine-encoded worker state.
    pub payload: Vec<u8>,
}

/// Replicated control-plane state of one run: everything the coordinator
/// holds that a standby needs to take over after rank 0 dies — the
/// encoded partition plan of every rank (index = rank; rank 0's own plan
/// included so a respawned rank 0 can rejoin as a plain follower), the
/// recovery epoch the replica was shipped at, and which rank is the
/// designated standby. Stored under `<dir>/replica/` with the same
/// per-file + commit-record discipline as checkpoint epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlReplica {
    /// The run this control state belongs to.
    pub id: RunId,
    /// Recovery epoch the replica was last refreshed at.
    pub epoch: u32,
    /// The rank currently designated as standby coordinator.
    pub standby: u32,
    /// One engine-encoded partition plan per rank.
    pub plans: Vec<Vec<u8>>,
}

/// The coordinator advertisement: which rank is *acting* coordinator at
/// which recovery epoch, and where its rendezvous listener is. Written
/// atomically to `<dir>/COORDINATOR` at bootstrap and on every takeover;
/// survivors, respawned ranks (including a respawned rank 0 rejoining as
/// a follower) and the launcher all discover the current coordinator by
/// reading it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Advertisement {
    /// Recovery epoch this advertisement was published at.
    pub epoch: u32,
    /// Rank currently acting as coordinator.
    pub acting: u32,
    /// Rendezvous (control-plane) listener address of the acting rank.
    pub addr: String,
}

/// Trailing digest width on every checkpoint file.
const DIGEST_LEN: usize = 8;
/// File name of the commit record inside a step directory.
const MANIFEST_NAME: &str = "MANIFEST";
/// Directory (under the store root) holding the control-plane replica.
const REPLICA_DIR: &str = "replica";
/// File name of the control-replica commit record.
const CTRL_NAME: &str = "CTRL";
/// File name of the coordinator advertisement at the store root.
const ADVERT_NAME: &str = "COORDINATOR";

/// Checkpoint I/O counters of one [`Store`] (shared by its clones): how
/// many bytes hit or left the disk and how long the store spent doing it.
/// The engine's `checkpoint`/`recovery` trace spans time the *barrier-
/// inclusive* checkpoint path; these isolate the file I/O inside it.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Bytes written (segment/manifest bodies plus their digest trailers).
    pub bytes_written: u64,
    /// Microseconds spent in atomic writes (create + write + fsync +
    /// rename).
    pub write_us: u64,
    /// Bytes read back (validated reads: restores, digest-checked scans).
    pub bytes_read: u64,
    /// Microseconds spent reading and digest-validating files.
    pub read_us: u64,
}

#[derive(Debug, Default)]
struct IoTally {
    bytes_written: AtomicU64,
    write_us: AtomicU64,
    bytes_read: AtomicU64,
    read_us: AtomicU64,
}

/// A checkpoint directory. Cheap to construct per worker; all methods are
/// `&self` and safe to call concurrently from different ranks (each rank
/// writes only its own segment, rank 0 alone writes manifests).
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
    io: Arc<IoTally>,
    /// Epochs whose segments all validated against their manifest within
    /// this store's lifetime, keyed by epoch → manifest file digest.
    /// Lets repeated recoveries skip the O(ranks) segment re-reads;
    /// cleared by [`Store::gc`] and [`Store::wipe`] (which change what is
    /// on disk) so a segment torn across those calls is still caught.
    validated: Arc<Mutex<HashMap<u64, u64>>>,
}

impl Store {
    /// Open (creating if needed) a checkpoint directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CkptError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, "create checkpoint dir", e))?;
        Ok(Store {
            dir,
            io: Arc::new(IoTally::default()),
            validated: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// Snapshot of this store's I/O counters (shared across clones).
    pub fn io_stats(&self) -> IoStats {
        IoStats {
            bytes_written: self.io.bytes_written.load(Ordering::Relaxed),
            write_us: self.io.write_us.load(Ordering::Relaxed),
            bytes_read: self.io.bytes_read.load(Ordering::Relaxed),
            read_us: self.io.read_us.load(Ordering::Relaxed),
        }
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Directory of one checkpoint epoch.
    pub fn step_dir(&self, superstep: u64) -> PathBuf {
        self.dir.join(format!("step-{superstep:010}"))
    }

    /// Path of one rank's segment file.
    pub fn segment_path(&self, superstep: u64, rank: u32) -> PathBuf {
        self.step_dir(superstep).join(format!("rank-{rank:04}.seg"))
    }

    /// Path of an epoch's manifest.
    pub fn manifest_path(&self, superstep: u64) -> PathBuf {
        self.step_dir(superstep).join(MANIFEST_NAME)
    }

    /// Write `bytes + fnv64(bytes)` to `path` atomically: tmp file, data
    /// fsync, rename, directory fsync. Returns the digest.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<u64, CkptError> {
        let started = Instant::now();
        let digest = fnv64(bytes);
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, "create tmp file", e))?;
            f.write_all(bytes)
                .and_then(|()| f.write_all(&digest.to_le_bytes()))
                .map_err(|e| io_err(&tmp, "write checkpoint bytes", e))?;
            f.sync_all()
                .map_err(|e| io_err(&tmp, "fsync checkpoint", e))?;
        }
        fs::rename(&tmp, path).map_err(|e| io_err(path, "rename into place", e))?;
        if let Some(parent) = path.parent() {
            // Make the rename itself durable. Failing to fsync a directory
            // only weakens durability, not atomicity, so a filesystem that
            // refuses (some tmpfs setups) is tolerated.
            if let Ok(d) = fs::File::open(parent) {
                let _ = d.sync_all();
            }
        }
        self.io
            .bytes_written
            .fetch_add((bytes.len() + DIGEST_LEN) as u64, Ordering::Relaxed);
        self.io
            .write_us
            .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        Ok(digest)
    }

    /// Read `path` and validate its trailing digest; returns the body
    /// and the (verified) content digest, so callers comparing against a
    /// manifest never need to re-hash.
    fn read_validated(&self, path: &Path) -> Result<(Vec<u8>, u64), CkptError> {
        let started = Instant::now();
        let bytes = fs::read(path).map_err(|e| io_err(path, "read checkpoint file", e))?;
        if bytes.len() < DIGEST_LEN {
            return Err(CkptError::Corrupt {
                path: path.to_path_buf(),
                detail: format!("{} bytes is too short to carry a digest", bytes.len()),
            });
        }
        let (body, trailer) = bytes.split_at(bytes.len() - DIGEST_LEN);
        let stored = u64::from_le_bytes(trailer.try_into().unwrap());
        let actual = fnv64(body);
        if stored != actual {
            return Err(CkptError::Corrupt {
                path: path.to_path_buf(),
                detail: format!("digest mismatch: stored {stored:#018x}, content {actual:#018x}"),
            });
        }
        self.io
            .bytes_read
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.io
            .read_us
            .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        Ok((body.to_vec(), stored))
    }

    /// Write one rank's segment (atomically); returns its content digest.
    pub fn write_segment(&self, seg: &Segment) -> Result<u64, CkptError> {
        let step = self.step_dir(seg.superstep);
        fs::create_dir_all(&step).map_err(|e| io_err(&step, "create step dir", e))?;
        let buf = encode_segment_body(seg);
        self.write_atomic(&self.segment_path(seg.superstep, seg.rank), &buf)
    }

    /// The digest a segment file carries (its last 8 bytes). Rank 0 reads
    /// these at commit time instead of re-hashing whole segments.
    pub fn segment_digest(&self, superstep: u64, rank: u32) -> Result<u64, CkptError> {
        use std::io::{Read, Seek, SeekFrom};
        let path = self.segment_path(superstep, rank);
        let mut f = fs::File::open(&path).map_err(|e| io_err(&path, "open segment", e))?;
        f.seek(SeekFrom::End(-(DIGEST_LEN as i64)))
            .map_err(|e| io_err(&path, "seek segment trailer", e))?;
        let mut trailer = [0u8; DIGEST_LEN];
        f.read_exact(&mut trailer)
            .map_err(|e| io_err(&path, "read segment trailer", e))?;
        Ok(u64::from_le_bytes(trailer))
    }

    /// Read and fully validate one rank's segment.
    pub fn read_segment(&self, superstep: u64, rank: u32) -> Result<Segment, CkptError> {
        Ok(self.read_segment_with_digest(superstep, rank)?.0)
    }

    /// [`Store::read_segment`] plus the segment's verified content
    /// digest (what the manifest pins), without re-hashing.
    fn read_segment_with_digest(
        &self,
        superstep: u64,
        rank: u32,
    ) -> Result<(Segment, u64), CkptError> {
        let path = self.segment_path(superstep, rank);
        let (body, digest) = self.read_validated(&path)?;
        let corrupt = |detail: String| CkptError::Corrupt {
            path: path.clone(),
            detail,
        };
        let mut r = Reader::new(&body);
        if r.remaining() < 40 {
            return Err(corrupt("segment header truncated".into()));
        }
        let magic: u64 = r.get();
        if magic != SEGMENT_MAGIC {
            return Err(corrupt(format!("bad magic {magic:#018x}")));
        }
        let version: u32 = r.get();
        if version != FORMAT_VERSION {
            return Err(corrupt(format!("unsupported format version {version}")));
        }
        let seg = Segment {
            superstep: r.get(),
            rounds: r.get(),
            rank: r.get(),
            workers: r.get(),
            payload: {
                let len: u64 = r.get();
                if r.remaining() as u64 != len {
                    return Err(corrupt(format!(
                        "payload length {len} but {} bytes follow",
                        r.remaining()
                    )));
                }
                r.take(len as usize).to_vec()
            },
        };
        if seg.superstep != superstep || seg.rank != rank {
            return Err(corrupt(format!(
                "segment claims superstep {}/rank {}, expected {superstep}/{rank}",
                seg.superstep, seg.rank
            )));
        }
        Ok((seg, digest))
    }

    /// Commit one epoch: write its manifest atomically. After this
    /// returns, the epoch is visible to [`Store::latest_restorable`].
    pub fn commit(&self, m: &Manifest) -> Result<(), CkptError> {
        assert_eq!(
            m.digests.len() as u32,
            m.id.workers,
            "manifest must carry one digest per rank"
        );
        let step = self.step_dir(m.superstep);
        fs::create_dir_all(&step).map_err(|e| io_err(&step, "create step dir", e))?;
        let mut buf = Vec::new();
        MANIFEST_MAGIC.encode(&mut buf);
        FORMAT_VERSION.encode(&mut buf);
        m.id.encode(&mut buf);
        m.superstep.encode(&mut buf);
        m.rounds.encode(&mut buf);
        m.digests.encode(&mut buf);
        self.write_atomic(&self.manifest_path(m.superstep), &buf)?;
        Ok(())
    }

    /// Read and validate the manifest of one epoch.
    pub fn read_manifest(&self, superstep: u64) -> Result<Manifest, CkptError> {
        Ok(self.read_manifest_with_digest(superstep)?.0)
    }

    /// [`Store::read_manifest`] plus the manifest *file's* verified
    /// digest — the key the validated-epoch cache is checked against.
    fn read_manifest_with_digest(&self, superstep: u64) -> Result<(Manifest, u64), CkptError> {
        let path = self.manifest_path(superstep);
        let (body, file_digest) = self.read_validated(&path)?;
        let corrupt = |detail: String| CkptError::Corrupt {
            path: path.clone(),
            detail,
        };
        let mut r = Reader::new(&body);
        if r.remaining() < 12 {
            return Err(corrupt("manifest header truncated".into()));
        }
        let magic: u64 = r.get();
        if magic != MANIFEST_MAGIC {
            return Err(corrupt(format!("bad magic {magic:#018x}")));
        }
        let version: u32 = r.get();
        if version != FORMAT_VERSION {
            return Err(corrupt(format!("unsupported format version {version}")));
        }
        let id = RunId::decode(&mut r, &path)?;
        if r.remaining() < 20 {
            return Err(corrupt("manifest body truncated".into()));
        }
        let superstep_in: u64 = r.get();
        let rounds: u64 = r.get();
        let digests: Vec<u64> = r.get();
        if superstep_in != superstep {
            return Err(corrupt(format!(
                "manifest claims superstep {superstep_in}, expected {superstep}"
            )));
        }
        if !r.is_empty() {
            return Err(corrupt(format!("{} trailing bytes", r.remaining())));
        }
        Ok((
            Manifest {
                id,
                superstep,
                rounds,
                digests,
            },
            file_digest,
        ))
    }

    /// Every step directory present, ascending by superstep. Directories
    /// with unparsable names are ignored.
    fn step_dirs(&self) -> Result<Vec<u64>, CkptError> {
        let mut steps = Vec::new();
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(ref e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(steps),
            Err(e) => return Err(io_err(&self.dir, "scan checkpoint dir", e)),
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(rest) = name.to_str().and_then(|s| s.strip_prefix("step-")) else {
                continue;
            };
            if let Ok(step) = rest.parse::<u64>() {
                steps.push(step);
            }
        }
        steps.sort_unstable();
        Ok(steps)
    }

    /// Epochs with a manifest file present (not yet digest-validated),
    /// ascending.
    pub fn committed_steps(&self) -> Result<Vec<u64>, CkptError> {
        Ok(self
            .step_dirs()?
            .into_iter()
            .filter(|&s| self.manifest_path(s).exists())
            .collect())
    }

    /// The newest epoch that can actually be restored for `id`: its
    /// manifest is digest-valid, names the same run, and **every** rank's
    /// segment validates against the manifest's pinned digest. A torn or
    /// truncated segment fails that epoch and the scan falls back to the
    /// previous committed one — all ranks scanning the same directory
    /// reach the same answer.
    ///
    /// A digest-valid manifest for a *different* run is an
    /// [`CkptError::Incompatible`] error, never a silent cold start.
    pub fn latest_restorable(&self, id: &RunId) -> Result<Option<Manifest>, CkptError> {
        for step in self.committed_steps()?.into_iter().rev() {
            let (manifest, file_digest) = match self.read_manifest_with_digest(step) {
                Ok(m) => m,
                // A torn manifest is an uncommitted epoch.
                Err(CkptError::Corrupt { .. }) => continue,
                Err(e) => return Err(e),
            };
            if manifest.id != *id {
                return Err(CkptError::Incompatible {
                    detail: format!(
                        "checkpoint dir {} holds epoch {} of run {:?}, but this run is {:?}",
                        self.dir.display(),
                        step,
                        manifest.id,
                        id
                    ),
                });
            }
            // Repeated recoveries re-validate the same epochs; once every
            // segment of an epoch checked out against this exact manifest
            // (same file digest), skip the O(ranks) segment re-reads for
            // the rest of this store's lifetime. `gc`/`wipe` clear the
            // cache because they change what is on disk.
            let cached = self
                .validated
                .lock()
                .unwrap()
                .get(&step)
                .is_some_and(|&d| d == file_digest);
            if cached {
                return Ok(Some(manifest));
            }
            let all_valid = (0..manifest.id.workers).all(|rank| {
                matches!(
                    self.read_segment_with_digest(step, rank),
                    Ok((ref seg, digest))
                        if digest == manifest.digests[rank as usize]
                            && seg.rounds == manifest.rounds
                            && seg.workers == manifest.id.workers
                )
            });
            if all_valid {
                self.validated.lock().unwrap().insert(step, file_digest);
                return Ok(Some(manifest));
            }
        }
        Ok(None)
    }

    /// Garbage-collect superseded epochs: keep the newest `keep` committed
    /// epochs (and anything newer than the newest committed one — an
    /// in-flight checkpoint), delete the rest. Best-effort: removal errors
    /// on individual directories are ignored.
    ///
    /// Committed epochs are additionally swept for orphaned `*.tmp`
    /// files: a rank killed between `create tmp` and `rename into place`
    /// whose restart rewrote the segment leaves the abandoned tmp behind,
    /// and epoch-granular GC (which keeps the whole directory) would
    /// otherwise carry it forever. Uncommitted epochs are left untouched
    /// — a newer in-flight checkpoint legitimately holds tmp files
    /// mid-write.
    pub fn gc(&self, keep: usize) -> Result<(), CkptError> {
        self.validated.lock().unwrap().clear();
        let committed = self.committed_steps()?;
        for &step in &committed {
            self.sweep_orphan_tmps(step);
        }
        if committed.len() <= keep {
            // Still remove uncommitted stragglers older than the oldest
            // kept committed epoch (a crashed run's partial epoch).
            if let Some(&oldest_kept) = committed.first() {
                for step in self.step_dirs()? {
                    if step < oldest_kept && !committed.contains(&step) {
                        let _ = fs::remove_dir_all(self.step_dir(step));
                    }
                }
            }
            return Ok(());
        }
        let cutoff = committed[committed.len() - keep];
        for step in self.step_dirs()? {
            if step < cutoff {
                let _ = fs::remove_dir_all(self.step_dir(step));
            }
        }
        Ok(())
    }

    /// Remove every checkpoint epoch (the launcher wipes the directory at
    /// the start of a fresh job so stale epochs cannot be restored into
    /// it, and cleans up after a successful one). `remove_dir_all` takes
    /// each epoch wholesale, orphaned tmp files included. The control
    /// replica and coordinator advertisement go with them: a fresh job
    /// must not discover a previous job's coordinator.
    pub fn wipe(&self) -> Result<(), CkptError> {
        self.validated.lock().unwrap().clear();
        for step in self.step_dirs()? {
            fs::remove_dir_all(self.step_dir(step))
                .map_err(|e| io_err(&self.step_dir(step), "remove step dir", e))?;
        }
        let replica = self.replica_dir();
        if replica.exists() {
            fs::remove_dir_all(&replica).map_err(|e| io_err(&replica, "remove replica dir", e))?;
        }
        let advert = self.advertisement_path();
        match fs::remove_file(&advert) {
            Ok(()) => {}
            Err(ref e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(&advert, "remove advertisement", e)),
        }
        Ok(())
    }

    /// Directory holding the control-plane replica.
    pub fn replica_dir(&self) -> PathBuf {
        self.dir.join(REPLICA_DIR)
    }

    /// Path of one rank's replicated plan file.
    fn replica_plan_path(&self, rank: u32) -> PathBuf {
        self.replica_dir().join(format!("plan-{rank:04}.bin"))
    }

    /// Path of the control-replica commit record.
    fn replica_ctrl_path(&self) -> PathBuf {
        self.replica_dir().join(CTRL_NAME)
    }

    /// Path of the coordinator advertisement.
    pub fn advertisement_path(&self) -> PathBuf {
        self.dir.join(ADVERT_NAME)
    }

    /// Persist the control-plane replica: every plan file is written
    /// atomically, then the `CTRL` commit record (pinning each plan's
    /// digest, the epoch and the designated standby) last — the same
    /// complete-or-invisible discipline as a checkpoint epoch, so a rank
    /// killed mid-replication leaves the previous replica intact.
    pub fn write_replica(&self, replica: &ControlReplica) -> Result<(), CkptError> {
        assert_eq!(
            replica.plans.len() as u32,
            replica.id.workers,
            "replica must carry one plan per rank"
        );
        let dir = self.replica_dir();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, "create replica dir", e))?;
        let mut digests = Vec::with_capacity(replica.plans.len());
        for (rank, plan) in replica.plans.iter().enumerate() {
            digests.push(self.write_atomic(&self.replica_plan_path(rank as u32), plan)?);
        }
        let mut buf = Vec::new();
        CTRL_MAGIC.encode(&mut buf);
        FORMAT_VERSION.encode(&mut buf);
        replica.id.encode(&mut buf);
        replica.epoch.encode(&mut buf);
        replica.standby.encode(&mut buf);
        digests.encode(&mut buf);
        self.write_atomic(&self.replica_ctrl_path(), &buf)?;
        Ok(())
    }

    /// Load the control-plane replica, if one was committed: `None` when
    /// no `CTRL` record exists, [`CkptError::Incompatible`] when it names
    /// a different run, [`CkptError::Corrupt`] when any plan file fails
    /// its pinned digest.
    pub fn read_replica(&self, id: &RunId) -> Result<Option<ControlReplica>, CkptError> {
        let path = self.replica_ctrl_path();
        let body = match self.read_validated(&path) {
            Ok((body, _)) => body,
            Err(CkptError::Io {
                kind: std::io::ErrorKind::NotFound,
                ..
            }) => return Ok(None),
            Err(e) => return Err(e),
        };
        let corrupt = |detail: String| CkptError::Corrupt {
            path: path.clone(),
            detail,
        };
        let mut r = Reader::new(&body);
        if r.remaining() < 12 {
            return Err(corrupt("control record truncated".into()));
        }
        let magic: u64 = r.get();
        if magic != CTRL_MAGIC {
            return Err(corrupt(format!("bad magic {magic:#018x}")));
        }
        let version: u32 = r.get();
        if version != FORMAT_VERSION {
            return Err(corrupt(format!("unsupported format version {version}")));
        }
        let id_in = RunId::decode(&mut r, &path)?;
        if id_in != *id {
            return Err(CkptError::Incompatible {
                detail: format!(
                    "replica in {} belongs to run {:?}, but this run is {:?}",
                    self.replica_dir().display(),
                    id_in,
                    id
                ),
            });
        }
        if r.remaining() < 12 {
            return Err(corrupt("control record body truncated".into()));
        }
        let epoch: u32 = r.get();
        let standby: u32 = r.get();
        let digests: Vec<u64> = r.get();
        if !r.is_empty() {
            return Err(corrupt(format!("{} trailing bytes", r.remaining())));
        }
        if digests.len() as u32 != id_in.workers {
            return Err(corrupt(format!(
                "{} plan digests for {} ranks",
                digests.len(),
                id_in.workers
            )));
        }
        let mut plans = Vec::with_capacity(digests.len());
        for (rank, &pinned) in digests.iter().enumerate() {
            let plan_path = self.replica_plan_path(rank as u32);
            let (plan, digest) = self.read_validated(&plan_path)?;
            if digest != pinned {
                return Err(CkptError::Corrupt {
                    path: plan_path,
                    detail: format!(
                        "plan digest {digest:#018x} does not match pinned {pinned:#018x}"
                    ),
                });
            }
            plans.push(plan);
        }
        Ok(Some(ControlReplica {
            id: id_in,
            epoch,
            standby,
            plans,
        }))
    }

    /// Publish (atomically replace) the coordinator advertisement.
    pub fn advertise(&self, ad: &Advertisement) -> Result<(), CkptError> {
        let mut buf = Vec::new();
        ADVERT_MAGIC.encode(&mut buf);
        FORMAT_VERSION.encode(&mut buf);
        ad.epoch.encode(&mut buf);
        ad.acting.encode(&mut buf);
        let addr = ad.addr.as_bytes();
        (addr.len() as u32).encode(&mut buf);
        buf.extend_from_slice(addr);
        self.write_atomic(&self.advertisement_path(), &buf)?;
        Ok(())
    }

    /// Read the current coordinator advertisement, if one was published.
    pub fn read_advertisement(&self) -> Result<Option<Advertisement>, CkptError> {
        let path = self.advertisement_path();
        let body = match self.read_validated(&path) {
            Ok((body, _)) => body,
            Err(CkptError::Io {
                kind: std::io::ErrorKind::NotFound,
                ..
            }) => return Ok(None),
            Err(e) => return Err(e),
        };
        let corrupt = |detail: String| CkptError::Corrupt {
            path: path.clone(),
            detail,
        };
        let mut r = Reader::new(&body);
        if r.remaining() < 24 {
            return Err(corrupt("advertisement truncated".into()));
        }
        let magic: u64 = r.get();
        if magic != ADVERT_MAGIC {
            return Err(corrupt(format!("bad magic {magic:#018x}")));
        }
        let version: u32 = r.get();
        if version != FORMAT_VERSION {
            return Err(corrupt(format!("unsupported format version {version}")));
        }
        let epoch: u32 = r.get();
        let acting: u32 = r.get();
        let len: u32 = r.get();
        if r.remaining() != len as usize {
            return Err(corrupt(format!(
                "address length {len} but {} bytes follow",
                r.remaining()
            )));
        }
        let addr = String::from_utf8(r.take(len as usize).to_vec())
            .map_err(|e| corrupt(format!("address is not utf-8: {e}")))?;
        Ok(Some(Advertisement {
            epoch,
            acting,
            addr,
        }))
    }

    /// Best-effort removal of orphaned `*.tmp` files inside one epoch's
    /// directory. Only meaningful on committed epochs: once the manifest
    /// is in place every surviving tmp is an abandoned write, never an
    /// in-flight one.
    fn sweep_orphan_tmps(&self, superstep: u64) {
        let Ok(entries) = fs::read_dir(self.step_dir(superstep)) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|ext| ext == "tmp") {
                let _ = fs::remove_file(&path);
            }
        }
    }
}

/// A segment's on-disk body (header + payload, digest trailer excluded)
/// — the one encoding both the writer and the digest re-check use, so
/// the two can never drift apart and silently disable restores.
fn encode_segment_body(seg: &Segment) -> Vec<u8> {
    let mut buf = Vec::with_capacity(48 + seg.payload.len());
    SEGMENT_MAGIC.encode(&mut buf);
    FORMAT_VERSION.encode(&mut buf);
    seg.superstep.encode(&mut buf);
    seg.rounds.encode(&mut buf);
    seg.rank.encode(&mut buf);
    seg.workers.encode(&mut buf);
    (seg.payload.len() as u64).encode(&mut buf);
    buf.extend_from_slice(&seg.payload);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!(
            "pc_ckpt_test_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    fn run_id(workers: u32) -> RunId {
        RunId {
            workers,
            n: 1000,
            algo: "test::Algo".into(),
        }
    }

    fn write_epoch(store: &Store, id: &RunId, superstep: u64, rounds: u64) -> Manifest {
        let mut digests = Vec::new();
        for rank in 0..id.workers {
            let seg = Segment {
                superstep,
                rounds,
                rank,
                workers: id.workers,
                payload: vec![rank as u8; 64 + superstep as usize],
            };
            store.write_segment(&seg).unwrap();
            digests.push(store.segment_digest(superstep, rank).unwrap());
        }
        let m = Manifest {
            id: id.clone(),
            superstep,
            rounds,
            digests,
        };
        store.commit(&m).unwrap();
        m
    }

    /// The store's I/O counters account every write and validated read:
    /// a segment write moves body + digest bytes, a read moves them back,
    /// and clones of the store share the same tally.
    #[test]
    fn io_stats_account_writes_and_reads() {
        let store = tmp_store("io_stats");
        assert_eq!(store.io_stats(), IoStats::default());
        let payload = vec![9u8; 256];
        let seg = Segment {
            superstep: 1,
            rounds: 2,
            rank: 0,
            workers: 1,
            payload: payload.clone(),
        };
        store.write_segment(&seg).unwrap();
        let after_write = store.io_stats();
        let body_len = encode_segment_body(&seg).len() as u64;
        assert_eq!(after_write.bytes_written, body_len + DIGEST_LEN as u64);
        assert_eq!(after_write.bytes_read, 0);
        let clone = store.clone();
        clone.read_segment(1, 0).unwrap();
        let after_read = store.io_stats();
        assert_eq!(after_read.bytes_written, after_write.bytes_written);
        assert_eq!(
            after_read.bytes_read,
            body_len + DIGEST_LEN as u64,
            "a validated read covers body + digest trailer"
        );
        assert!(after_read.write_us >= after_write.write_us);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn segment_roundtrip_is_byte_exact() {
        let store = tmp_store("seg_rt");
        let seg = Segment {
            superstep: 8,
            rounds: 31,
            rank: 2,
            workers: 4,
            payload: (0..=255u8).collect(),
        };
        let digest = store.write_segment(&seg).unwrap();
        assert_eq!(store.segment_digest(8, 2).unwrap(), digest);
        assert_eq!(store.read_segment(8, 2).unwrap(), seg);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn manifest_commit_makes_epoch_visible() {
        let store = tmp_store("commit");
        let id = run_id(3);
        // Segments alone are invisible.
        for rank in 0..3 {
            store
                .write_segment(&Segment {
                    superstep: 4,
                    rounds: 9,
                    rank,
                    workers: 3,
                    payload: vec![7; 32],
                })
                .unwrap();
        }
        assert_eq!(store.latest_restorable(&id).unwrap(), None);
        let m = write_epoch(&store, &id, 4, 9);
        assert_eq!(store.latest_restorable(&id).unwrap(), Some(m.clone()));
        assert_eq!(store.read_manifest(4).unwrap(), m);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn torn_segment_falls_back_to_previous_epoch() {
        let store = tmp_store("torn");
        let id = run_id(2);
        let older = write_epoch(&store, &id, 4, 10);
        write_epoch(&store, &id, 8, 20);
        // Truncate rank 1's newest segment: the epoch is committed but no
        // longer restorable; the scan must fall back to superstep 4.
        let victim = store.segment_path(8, 1);
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(store.latest_restorable(&id).unwrap(), Some(older));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupted_bytes_are_detected() {
        let store = tmp_store("flip");
        let id = run_id(1);
        write_epoch(&store, &id, 2, 3);
        let victim = store.segment_path(2, 0);
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&victim, &bytes).unwrap();
        assert!(matches!(
            store.read_segment(2, 0),
            Err(CkptError::Corrupt { .. })
        ));
        assert_eq!(store.latest_restorable(&id).unwrap(), None);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn foreign_run_is_a_loud_incompatibility() {
        let store = tmp_store("foreign");
        write_epoch(&store, &run_id(2), 2, 5);
        let other = RunId {
            workers: 2,
            n: 1000,
            algo: "test::OtherAlgo".into(),
        };
        assert!(matches!(
            store.latest_restorable(&other),
            Err(CkptError::Incompatible { .. })
        ));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn gc_keeps_newest_committed_epochs() {
        let store = tmp_store("gc");
        let id = run_id(2);
        for step in [2, 4, 6, 8] {
            write_epoch(&store, &id, step, step * 3);
        }
        // An uncommitted straggler older than the kept window.
        store
            .write_segment(&Segment {
                superstep: 1,
                rounds: 1,
                rank: 0,
                workers: 2,
                payload: vec![0; 8],
            })
            .unwrap();
        store.gc(KEEP_COMMITTED).unwrap();
        assert_eq!(store.committed_steps().unwrap(), vec![6, 8]);
        assert!(!store.step_dir(1).exists(), "straggler survived gc");
        assert!(!store.step_dir(2).exists());
        assert!(store.read_segment(6, 0).is_ok());
        let _ = fs::remove_dir_all(store.dir());
    }

    /// A rank killed mid-snapshot leaves `rank-NNNN.tmp` behind; once the
    /// epoch commits (the restarted rank rewrote its segment), `gc` must
    /// sweep the orphan even when the epoch itself is kept — and must not
    /// touch the committed segments or the manifest while doing so.
    #[test]
    fn gc_sweeps_orphaned_tmp_segments_from_committed_epochs() {
        let store = tmp_store("gc_tmp");
        let id = run_id(2);
        write_epoch(&store, &id, 4, 12);
        let orphan = store.segment_path(4, 7).with_extension("tmp");
        fs::write(&orphan, b"half a snapshot").unwrap();
        // An uncommitted newer epoch with a tmp mid-write stays intact.
        let in_flight = store.step_dir(6).join("rank-0000.tmp");
        fs::create_dir_all(store.step_dir(6)).unwrap();
        fs::write(&in_flight, b"still writing").unwrap();

        store.gc(KEEP_COMMITTED).unwrap();

        assert!(!orphan.exists(), "orphaned tmp survived gc");
        assert!(in_flight.exists(), "in-flight tmp was swept");
        assert!(store.read_segment(4, 0).is_ok());
        assert!(store.read_segment(4, 1).is_ok());
        assert_eq!(store.latest_restorable(&id).unwrap().unwrap().superstep, 4);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn wipe_clears_all_epochs() {
        let store = tmp_store("wipe");
        let id = run_id(1);
        write_epoch(&store, &id, 2, 2);
        write_epoch(&store, &id, 4, 4);
        store.wipe().unwrap();
        assert_eq!(store.committed_steps().unwrap(), Vec::<u64>::new());
        assert_eq!(store.latest_restorable(&id).unwrap(), None);
        let _ = fs::remove_dir_all(store.dir());
    }

    /// Repeated `latest_restorable` calls within one store lifetime must
    /// not re-read every segment: the second scan costs one manifest
    /// read, nothing more. The cache is trusted until `gc`/`wipe` —
    /// after either, a newly torn segment is caught again.
    #[test]
    fn latest_restorable_caches_validated_epochs_until_gc() {
        let store = tmp_store("val_cache");
        let id = run_id(2);
        write_epoch(&store, &id, 4, 10);

        let before = store.io_stats().bytes_read;
        assert_eq!(store.latest_restorable(&id).unwrap().unwrap().superstep, 4);
        let first_scan = store.io_stats().bytes_read - before;

        let manifest_len = fs::metadata(store.manifest_path(4)).unwrap().len();
        let before = store.io_stats().bytes_read;
        assert_eq!(store.latest_restorable(&id).unwrap().unwrap().superstep, 4);
        let second_scan = store.io_stats().bytes_read - before;
        assert_eq!(
            second_scan, manifest_len,
            "a cache hit reads the manifest only, no segments"
        );
        assert!(second_scan < first_scan);

        // Tear a segment: the cached verdict (stale, by design — nothing
        // mutates committed segments under a live store) still stands...
        let victim = store.segment_path(4, 1);
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
        assert!(store.latest_restorable(&id).unwrap().is_some());

        // ...but gc invalidates the cache, and the re-validation catches
        // the torn segment.
        store.gc(KEEP_COMMITTED).unwrap();
        assert_eq!(store.latest_restorable(&id).unwrap(), None);
        let _ = fs::remove_dir_all(store.dir());
    }

    /// A rewritten manifest (same epoch, different content) must miss the
    /// cache: the key is the manifest file's own digest.
    #[test]
    fn cache_is_keyed_on_manifest_digest() {
        let store = tmp_store("val_cache_key");
        let id = run_id(1);
        write_epoch(&store, &id, 2, 5);
        assert!(store.latest_restorable(&id).unwrap().is_some());
        // Recommit the same epoch with a different rounds count (digest
        // changes); segments no longer match the new manifest's rounds.
        let digests = vec![store.segment_digest(2, 0).unwrap()];
        store
            .commit(&Manifest {
                id: id.clone(),
                superstep: 2,
                rounds: 6,
                digests,
            })
            .unwrap();
        assert_eq!(
            store.latest_restorable(&id).unwrap(),
            None,
            "stale cache entry must not vouch for a rewritten manifest"
        );
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn control_replica_round_trips() {
        let store = tmp_store("replica");
        let id = run_id(3);
        assert_eq!(store.read_replica(&id).unwrap(), None);
        let replica = ControlReplica {
            id: id.clone(),
            epoch: 2,
            standby: 1,
            plans: vec![vec![0xAA; 40], vec![0xBB; 7], Vec::new()],
        };
        store.write_replica(&replica).unwrap();
        assert_eq!(store.read_replica(&id).unwrap(), Some(replica.clone()));
        // Refresh at a later epoch replaces it atomically.
        let fresher = ControlReplica {
            epoch: 3,
            standby: 2,
            ..replica
        };
        store.write_replica(&fresher).unwrap();
        assert_eq!(store.read_replica(&id).unwrap(), Some(fresher));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn torn_replica_plan_is_detected() {
        let store = tmp_store("replica_torn");
        let id = run_id(2);
        store
            .write_replica(&ControlReplica {
                id: id.clone(),
                epoch: 1,
                standby: 1,
                plans: vec![vec![1; 64], vec![2; 64]],
            })
            .unwrap();
        let victim = store.replica_dir().join("plan-0001.bin");
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            store.read_replica(&id),
            Err(CkptError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn replica_of_another_run_is_incompatible() {
        let store = tmp_store("replica_foreign");
        store
            .write_replica(&ControlReplica {
                id: run_id(2),
                epoch: 1,
                standby: 1,
                plans: vec![vec![1; 8], vec![2; 8]],
            })
            .unwrap();
        let other = RunId {
            workers: 2,
            n: 1000,
            algo: "test::OtherAlgo".into(),
        };
        assert!(matches!(
            store.read_replica(&other),
            Err(CkptError::Incompatible { .. })
        ));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn advertisement_round_trips_and_wipe_clears_control_state() {
        let store = tmp_store("advert");
        let id = run_id(1);
        assert_eq!(store.read_advertisement().unwrap(), None);
        let ad = Advertisement {
            epoch: 0,
            acting: 0,
            addr: "127.0.0.1:4400".into(),
        };
        store.advertise(&ad).unwrap();
        assert_eq!(store.read_advertisement().unwrap(), Some(ad));
        let takeover = Advertisement {
            epoch: 2,
            acting: 1,
            addr: "127.0.0.1:4411".into(),
        };
        store.advertise(&takeover).unwrap();
        assert_eq!(store.read_advertisement().unwrap(), Some(takeover));
        store
            .write_replica(&ControlReplica {
                id: id.clone(),
                epoch: 2,
                standby: 1,
                plans: vec![vec![3; 16]],
            })
            .unwrap();
        store.wipe().unwrap();
        assert_eq!(store.read_advertisement().unwrap(), None);
        assert_eq!(store.read_replica(&id).unwrap(), None);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn fnv64_is_stable_and_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }
}
