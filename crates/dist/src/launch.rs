//! The rank launcher: spawn one OS process per rank and supervise them.
//!
//! `pcgraph <algo> --ranks M` runs this supervisor: it picks a rendezvous
//! address, spawns `M` children (`pcgraph <algo> --rank i --ranks M
//! --coordinator HOST:PORT`), and waits for all of them under a deadline.
//! Rank 0 inherits the terminal (it prints the merged results); follower
//! stderr is captured and replayed only when something fails, so a clean
//! run prints exactly what a single-process run would.
//!
//! Failure handling is typed: a child that exits non-zero (or is killed
//! by a signal, or outlives the deadline) becomes a [`LaunchError`]
//! carrying the rank, the exit-code classification (usage / runtime /
//! bootstrap / panic) and the captured stderr; the remaining children are
//! killed so a wedged rank cannot leak processes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Exit code: success.
pub const EXIT_OK: i32 = 0;
/// Exit code: runtime failure (I/O, engine error, verification mismatch).
pub const EXIT_RUNTIME: i32 = 1;
/// Exit code: bad command line.
pub const EXIT_USAGE: i32 = 2;
/// Exit code: bootstrap/transport failure (rendezvous, shipping, mesh).
pub const EXIT_BOOTSTRAP: i32 = 3;

/// Human label for a child's exit code.
pub fn classify_exit(code: Option<i32>) -> &'static str {
    match code {
        Some(EXIT_OK) => "success",
        Some(EXIT_RUNTIME) => "runtime error",
        Some(EXIT_USAGE) => "usage error",
        Some(EXIT_BOOTSTRAP) => "bootstrap/transport failure",
        Some(101) => "panic",
        Some(_) => "unexpected exit code",
        None => "killed by signal",
    }
}

/// A launcher failure, carrying enough context to diagnose the rank.
#[derive(Debug)]
pub enum LaunchError {
    /// A child process could not be spawned at all.
    Spawn {
        /// Rank that failed to start.
        rank: usize,
        /// The underlying OS error.
        error: std::io::Error,
    },
    /// A child exited unsuccessfully.
    Exit {
        /// Rank that failed.
        rank: usize,
        /// Its raw exit code (`None`: killed by a signal).
        code: Option<i32>,
        /// [`classify_exit`] of `code`.
        kind: &'static str,
        /// The rank's captured stderr (empty for rank 0, which inherits
        /// the terminal).
        stderr: String,
    },
    /// Ranks still running when the join deadline expired (they have been
    /// killed).
    Timeout {
        /// Ranks that never finished.
        pending: Vec<usize>,
    },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Spawn { rank, error } => {
                write!(f, "cannot spawn rank {rank}: {error}")
            }
            LaunchError::Exit {
                rank,
                code,
                kind,
                stderr,
            } => {
                write!(f, "rank {rank} failed: {kind} (exit {code:?})")?;
                if !stderr.is_empty() {
                    write!(f, "\n--- rank {rank} stderr ---\n{}", stderr.trim_end())?;
                }
                Ok(())
            }
            LaunchError::Timeout { pending } => {
                write!(
                    f,
                    "ranks {pending:?} did not finish before the deadline (killed)"
                )
            }
        }
    }
}

impl std::error::Error for LaunchError {}

/// What to launch.
#[derive(Debug)]
pub struct LaunchSpec {
    /// The `pcgraph` binary (usually `std::env::current_exe()`).
    pub exe: PathBuf,
    /// Number of ranks to spawn.
    pub ranks: usize,
    /// Deadline for the whole cluster to finish.
    pub join_timeout: Duration,
    /// How many times a rank that exits abnormally is respawned before
    /// its failure is propagated. 0 (the default for runs without
    /// checkpointing) keeps the original fail-fast supervision: any
    /// abnormal exit kills the cluster. Without [`LaunchSpec::ctrl_dir`],
    /// rank 0 is never respawned — it owns the rendezvous listener, the
    /// control plane and the loaded graph, so its death is fatal by
    /// design; with coordinator failover armed, rank 0 shares the budget
    /// like everyone else (it comes back as a plain follower).
    pub max_respawns: u32,
    /// Checkpoint directory holding the coordinator advertisement
    /// (`COORDINATOR`). `Some` arms coordinator failover: job completion
    /// is judged by the *acting* coordinator named in the advertisement
    /// (rank 0 until a standby takes over) rather than rank 0, rank 0
    /// becomes respawnable, and follower stdout is captured so a takeover
    /// coordinator's merged results can be replayed to the terminal.
    pub ctrl_dir: Option<PathBuf>,
}

/// Pick a free loopback address for the rendezvous.
///
/// The port is probed by binding and releasing it; rank 0 re-binds it
/// immediately on startup, so the race window is the spawn latency —
/// acceptable on loopback, and a lost race fails fast with a typed bind
/// error rather than a hang.
pub fn pick_rendezvous_addr() -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    listener.local_addr()
}

/// Kill and reap every child still running.
fn kill_all(children: &mut [(usize, Option<Child>)]) {
    for (_, slot) in children.iter_mut() {
        if let Some(child) = slot.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Drain a child pipe on a capture thread.
fn capture(pipe: impl Read + Send + 'static) -> std::thread::JoinHandle<String> {
    std::thread::spawn(move || {
        let mut pipe = pipe;
        let mut out = String::new();
        let _ = pipe.read_to_string(&mut out);
        out
    })
}

/// Read the acting coordinator's rank from the advertisement, if
/// failover is armed and one has been published. Rank 0 is acting until
/// a standby takes over (and always, when failover is off).
fn advertised_acting(ctrl_dir: &Option<PathBuf>) -> usize {
    let Some(dir) = ctrl_dir else { return 0 };
    match pc_ckpt::Store::open(dir).and_then(|s| s.read_advertisement()) {
        Ok(Some(ad)) => ad.acting as usize,
        _ => 0,
    }
}

/// Spawn one rank's child process; rank 0 inherits the terminal, other
/// ranks get their stderr piped into a capture thread (stdout too when
/// failover is armed, so a takeover coordinator's results survive).
fn spawn_rank(
    spec: &LaunchSpec,
    rank: usize,
    args: Vec<String>,
    stderr_slot: &mut Option<std::thread::JoinHandle<String>>,
    stdout_slot: &mut Option<std::thread::JoinHandle<String>>,
) -> Result<Child, std::io::Error> {
    let mut cmd = Command::new(&spec.exe);
    cmd.args(args);
    if rank > 0 {
        if spec.ctrl_dir.is_some() {
            cmd.stdout(Stdio::piped());
        } else {
            cmd.stdout(Stdio::null());
        }
        cmd.stderr(Stdio::piped());
    }
    let mut child = cmd.spawn()?;
    if let Some(pipe) = child.stderr.take() {
        *stderr_slot = Some(capture(pipe));
    }
    if let Some(pipe) = child.stdout.take() {
        *stdout_slot = Some(capture(pipe));
    }
    Ok(child)
}

/// Spawn `spec.ranks` children (`args_for_rank(i)` builds rank `i`'s
/// argument vector) and supervise them to completion.
///
/// Rank 0 inherits stdout/stderr; follower stderr is piped and captured.
/// Returns as soon as every rank exits 0. An abnormal exit of a non-zero
/// rank is respawned up to `spec.max_respawns` times (the rank-failure
/// recovery path: the new process re-joins the coordinator and the
/// cluster resumes from the last committed checkpoint); past the budget
/// — or with `max_respawns == 0` — the first failure kills the remaining
/// children and is returned typed. Rank 0's death is fatal too, unless
/// [`LaunchSpec::ctrl_dir`] arms coordinator failover: then rank 0 is
/// respawned like any other rank (the in-cluster standby election gives
/// the survivors a new coordinator; the respawn rejoins it as a plain
/// follower) and the job is complete when the *acting* coordinator named
/// in the advertisement exits 0.
pub fn launch(
    spec: &LaunchSpec,
    args_for_rank: impl Fn(usize) -> Vec<String>,
) -> Result<(), LaunchError> {
    assert!(spec.ranks >= 1);
    let failover = spec.ctrl_dir.is_some();
    let mut children: Vec<(usize, Option<Child>)> = Vec::with_capacity(spec.ranks);
    let mut stderr_readers: Vec<Option<std::thread::JoinHandle<String>>> =
        (0..spec.ranks).map(|_| None).collect();
    let mut stdout_readers: Vec<Option<std::thread::JoinHandle<String>>> =
        (0..spec.ranks).map(|_| None).collect();
    let mut respawns = vec![0u32; spec.ranks];
    // Rank 0 first: it binds the rendezvous address the others dial.
    for rank in 0..spec.ranks {
        let (err_slot, out_slot) = (&mut stderr_readers[rank], &mut stdout_readers[rank]);
        match spawn_rank(spec, rank, args_for_rank(rank), err_slot, out_slot) {
            Ok(child) => children.push((rank, Some(child))),
            Err(error) => {
                kill_all(&mut children);
                return Err(LaunchError::Spawn { rank, error });
            }
        }
    }
    let recovery = spec.max_respawns > 0;
    let deadline = Instant::now() + spec.join_timeout;
    let mut done = vec![false; spec.ranks];
    while !done.iter().all(|&d| d) {
        let mut progressed = false;
        let mut respawn_event = false;
        for i in 0..children.len() {
            let (rank, ref mut slot) = children[i];
            let Some(child) = slot.as_mut() else { continue };
            match child.try_wait() {
                Ok(None) => {}
                Ok(Some(status)) => {
                    progressed = true;
                    *slot = None;
                    if status.success() {
                        done[rank] = true;
                        if (recovery || failover) && rank == advertised_acting(&spec.ctrl_dir) {
                            // The acting coordinator printed (and, under
                            // --verify, validated) the merged results:
                            // the job is complete. Stragglers — e.g. a
                            // respawned rank still looking for a cluster
                            // that just finished without it — are moot.
                            // A takeover coordinator's streams were piped
                            // (it started as a follower); replay them so
                            // the terminal sees the results and the
                            // report/verify lines.
                            if rank != 0 {
                                if let Some(out) =
                                    stdout_readers[rank].take().and_then(|h| h.join().ok())
                                {
                                    let mut stdout = std::io::stdout();
                                    let _ = stdout.write_all(out.as_bytes());
                                    let _ = stdout.flush();
                                }
                                if let Some(err) =
                                    stderr_readers[rank].take().and_then(|h| h.join().ok())
                                {
                                    let mut stderr = std::io::stderr();
                                    let _ = stderr.write_all(err.as_bytes());
                                    let _ = stderr.flush();
                                }
                            }
                            kill_all(&mut children);
                            return Ok(());
                        }
                        continue;
                    }
                    let code = status.code();
                    let kind = classify_exit(code);
                    if recovery && (rank != 0 || failover) && respawns[rank] < spec.max_respawns {
                        respawns[rank] += 1;
                        // A dead rank's partial stdout (it may have been
                        // the acting coordinator) is noise: discard it so
                        // the eventual winner's output stands alone.
                        drop(stdout_readers[rank].take().map(|h| h.join()));
                        let captured = stderr_readers[rank]
                            .take()
                            .and_then(|h| h.join().ok())
                            .unwrap_or_default();
                        if !captured.trim().is_empty() {
                            eprintln!("--- rank {rank} stderr (before respawn) ---");
                            eprintln!("{}", captured.trim_end());
                        }
                        eprintln!(
                            "pcgraph launcher: rank {rank} died ({kind}, exit {code:?}); \
                             respawning (attempt {}/{})",
                            respawns[rank], spec.max_respawns
                        );
                        respawn_event = true;
                        continue;
                    }
                    kill_all(&mut children);
                    let stderr = stderr_readers[rank]
                        .take()
                        .and_then(|h| h.join().ok())
                        .unwrap_or_default();
                    return Err(LaunchError::Exit {
                        rank,
                        code,
                        kind,
                        stderr,
                    });
                }
                Err(error) => {
                    kill_all(&mut children);
                    return Err(LaunchError::Spawn { rank, error });
                }
            }
        }
        if respawn_event {
            // Recovery path: bring the dead rank(s) back — the
            // coordinator's recovery rendezvous re-ships their partitions
            // and the cluster resumes from the last committed checkpoint.
            // Every rank is needed for that resume, so non-zero ranks
            // that had already finished their part (the end-of-run
            // window, where followers exit right after posting their
            // gather) come back too; they restore the same checkpoint and
            // replay the same tail. Any non-live rank is (re)spawned
            // here — rank 0 included when failover is armed — so several
            // victims in one poll pass all come back.
            for i in 0..children.len() {
                let (rank, ref slot) = children[i];
                if (rank == 0 && !failover) || slot.is_some() {
                    continue;
                }
                if done[rank] {
                    eprintln!(
                        "pcgraph launcher: rank {rank} had finished; \
                         re-joining it for the recovery epoch"
                    );
                    done[rank] = false;
                }
                match spawn_rank(
                    spec,
                    rank,
                    args_for_rank(rank),
                    &mut stderr_readers[rank],
                    &mut stdout_readers[rank],
                ) {
                    Ok(new_child) => children[i].1 = Some(new_child),
                    Err(error) => {
                        kill_all(&mut children);
                        return Err(LaunchError::Spawn { rank, error });
                    }
                }
            }
        }
        if done.iter().all(|&d| d) {
            break;
        }
        if Instant::now() >= deadline {
            let pending: Vec<usize> = children
                .iter()
                .filter(|(_, c)| c.is_some())
                .map(|&(r, _)| r)
                .collect();
            kill_all(&mut children);
            return Err(LaunchError::Timeout { pending });
        }
        if !progressed {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh_spec(ranks: usize, timeout_ms: u64) -> LaunchSpec {
        LaunchSpec {
            exe: PathBuf::from("/bin/sh"),
            ranks,
            join_timeout: Duration::from_millis(timeout_ms),
            max_respawns: 0,
            ctrl_dir: None,
        }
    }

    /// A scratch directory that is removed when dropped.
    struct ScratchDir(PathBuf);

    impl ScratchDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!("pc_launch_{tag}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            ScratchDir(dir)
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn launch_succeeds_when_all_ranks_exit_zero() {
        let spec = sh_spec(3, 10_000);
        launch(&spec, |_| vec!["-c".into(), "exit 0".into()]).unwrap();
    }

    #[test]
    fn launch_reports_failing_rank_with_stderr() {
        let spec = sh_spec(3, 10_000);
        let err = launch(&spec, |rank| {
            if rank == 2 {
                vec!["-c".into(), "echo rank2 broke >&2; exit 3".into()]
            } else {
                vec!["-c".into(), "sleep 5".into()]
            }
        })
        .unwrap_err();
        match err {
            LaunchError::Exit {
                rank,
                code,
                kind,
                stderr,
            } => {
                assert_eq!(rank, 2);
                assert_eq!(code, Some(3));
                assert_eq!(kind, "bootstrap/transport failure");
                assert!(stderr.contains("rank2 broke"), "stderr: {stderr:?}");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn launch_kills_stragglers_on_deadline() {
        let spec = sh_spec(2, 300);
        let start = Instant::now();
        let err = launch(&spec, |_| vec!["-c".into(), "sleep 30".into()]).unwrap_err();
        assert!(matches!(err, LaunchError::Timeout { ref pending } if pending.len() == 2));
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "stragglers were not killed promptly"
        );
    }

    #[test]
    fn launch_surfaces_spawn_failures() {
        let spec = LaunchSpec {
            exe: PathBuf::from("/nonexistent/binary"),
            ranks: 2,
            join_timeout: Duration::from_secs(1),
            max_respawns: 0,
            ctrl_dir: None,
        };
        let err = launch(&spec, |_| vec![]).unwrap_err();
        assert!(matches!(err, LaunchError::Spawn { rank: 0, .. }));
    }

    /// With a respawn budget, a non-zero rank that dies abnormally is
    /// brought back (with the same argument vector) and the job still
    /// completes; the budget bounds how often.
    #[test]
    fn abnormal_follower_exit_is_respawned_within_budget() {
        let marker = std::env::temp_dir().join(format!("pc_launch_respawn_{}", std::process::id()));
        let _ = std::fs::remove_file(&marker);
        let spec = LaunchSpec {
            max_respawns: 3,
            ..sh_spec(3, 20_000)
        };
        let script = format!(
            "if [ -e {m} ]; then exit 0; else touch {m}; exit 1; fi",
            m = marker.display()
        );
        launch(&spec, |rank| {
            if rank == 2 {
                vec!["-c".into(), script.clone()]
            } else {
                vec!["-c".into(), "exit 0".into()]
            }
        })
        .unwrap();
        let _ = std::fs::remove_file(&marker);
    }

    /// A rank that keeps dying exhausts the budget and the original
    /// typed failure comes back.
    #[test]
    fn respawn_budget_is_bounded() {
        let spec = LaunchSpec {
            max_respawns: 2,
            ..sh_spec(2, 20_000)
        };
        let err = launch(&spec, |rank| {
            if rank == 1 {
                vec!["-c".into(), "exit 3".into()]
            } else {
                vec!["-c".into(), "sleep 5".into()]
            }
        })
        .unwrap_err();
        assert!(
            matches!(
                err,
                LaunchError::Exit {
                    rank: 1,
                    code: Some(3),
                    ..
                }
            ),
            "{err}"
        );
    }

    /// Without coordinator failover armed, rank 0 is never respawned,
    /// whatever the budget.
    #[test]
    fn rank_zero_death_is_fatal_without_failover() {
        let spec = LaunchSpec {
            max_respawns: 5,
            ..sh_spec(2, 20_000)
        };
        let err = launch(&spec, |rank| {
            if rank == 0 {
                vec!["-c".into(), "exit 1".into()]
            } else {
                vec!["-c".into(), "sleep 5".into()]
            }
        })
        .unwrap_err();
        assert!(matches!(err, LaunchError::Exit { rank: 0, .. }), "{err}");
    }

    /// With `ctrl_dir` set, a dying rank 0 is respawned within the same
    /// budget as everyone else.
    #[test]
    fn rank_zero_death_is_respawned_when_failover_is_armed() {
        let scratch = ScratchDir::new("failover_respawn");
        let marker = scratch.0.join("died_once");
        let spec = LaunchSpec {
            max_respawns: 3,
            ctrl_dir: Some(scratch.0.clone()),
            ..sh_spec(2, 20_000)
        };
        // First incarnation of rank 0 dies; its respawn completes the
        // job (no advertisement, so rank 0 stays the acting coordinator).
        let script = format!(
            "if [ -e {m} ]; then exit 0; else touch {m}; exit 1; fi",
            m = marker.display()
        );
        launch(&spec, |rank| {
            if rank == 0 {
                vec!["-c".into(), script.clone()]
            } else {
                vec!["-c".into(), "sleep 15".into()]
            }
        })
        .unwrap();
    }

    /// Completion follows the advertisement: once a takeover coordinator
    /// is advertised, *its* clean exit finishes the job even while other
    /// ranks (here: a wedged rank 0) are still running.
    #[test]
    fn completion_follows_the_advertised_acting_rank() {
        let scratch = ScratchDir::new("failover_acting");
        let store = pc_ckpt::Store::open(&scratch.0).unwrap();
        store
            .advertise(&pc_ckpt::Advertisement {
                epoch: 3,
                acting: 1,
                addr: "127.0.0.1:1".to_string(),
            })
            .unwrap();
        let spec = LaunchSpec {
            max_respawns: 2,
            ctrl_dir: Some(scratch.0.clone()),
            ..sh_spec(3, 20_000)
        };
        let start = Instant::now();
        launch(&spec, |rank| {
            if rank == 1 {
                vec!["-c".into(), "exit 0".into()]
            } else {
                vec!["-c".into(), "sleep 30".into()]
            }
        })
        .unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "acting rank's exit should have ended the job promptly"
        );
    }

    #[test]
    fn exit_codes_classify() {
        assert_eq!(classify_exit(Some(0)), "success");
        assert_eq!(classify_exit(Some(1)), "runtime error");
        assert_eq!(classify_exit(Some(2)), "usage error");
        assert_eq!(classify_exit(Some(3)), "bootstrap/transport failure");
        assert_eq!(classify_exit(Some(101)), "panic");
        assert_eq!(classify_exit(None), "killed by signal");
    }
}
