//! Out-of-process rendezvous for a multi-process cluster.
//!
//! Rank 0 (the *coordinator*) listens on a configurable address. Every
//! other rank (a *follower*) connects, sends a `JOIN` frame carrying its
//! rank and its freshly-bound data-plane address, and blocks until the
//! coordinator answers with the full `PEERS` table. Once every rank holds
//! the same table, each builds its [`pc_bsp::Tcp::mesh`] endpoint and the
//! data plane takes over; the control connection stays open for partition
//! shipping (`PLAN` frames, see [`crate::ship`]).
//!
//! ```text
//! follower r:  JOIN{rank, data_addr}  ─────▶  coordinator (rank 0)
//! follower r:  ◀─────  PEERS{addr_0 .. addr_{M-1}}
//! follower r:  ◀─────  PLAN{owner table + CSR slice(s) of rank r}
//! ```
//!
//! Every frame rides the transport's `tag + len` wire format
//! ([`pc_bsp::tcp::write_frame`]); every blocking call polls against an
//! explicit deadline and fails with a typed [`TransportError`] — a rank
//! that never shows up is an error, not a hang.

use pc_bsp::tcp::{configure_stream, read_frame_into, write_frame};
use pc_bsp::{Codec, Reader, TransportError};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Control frame: a follower announces `{rank, data_addr}`.
pub const TAG_JOIN: u8 = b'J';
/// Control frame: the coordinator's peer-address table.
pub const TAG_PEERS: u8 = b'P';
/// Control frame: a rank's shipped partition (owner table + CSR slices).
pub const TAG_PLAN: u8 = b'G';
/// Control frame: run settings the coordinator decides for every rank.
pub const TAG_SETTINGS: u8 = b'S';

/// Timeouts of the rendezvous and the control-plane I/O.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapOptions {
    /// How long ranks may take to appear (covers slow process spawns).
    pub connect_timeout: Duration,
    /// Deadline for any single control-plane frame. Plan frames carry
    /// whole CSR slices, so this is generous.
    pub io_timeout: Duration,
}

impl Default for BootstrapOptions {
    fn default() -> Self {
        BootstrapOptions {
            connect_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(60),
        }
    }
}

fn encode_addr(addr: &SocketAddr, buf: &mut Vec<u8>) {
    let s = addr.to_string();
    (s.len() as u32).encode(buf);
    buf.extend_from_slice(s.as_bytes());
}

fn decode_addr(r: &mut Reader<'_>, peer: usize) -> Result<SocketAddr, TransportError> {
    let protocol = |detail: String| TransportError::Protocol { peer, detail };
    let len: u32 = if r.remaining() >= 4 {
        r.get()
    } else {
        return Err(protocol("truncated address length".to_string()));
    };
    if r.remaining() < len as usize {
        return Err(protocol(format!(
            "address of {len} bytes but only {} left",
            r.remaining()
        )));
    }
    let s = std::str::from_utf8(r.take(len as usize))
        .map_err(|e| protocol(format!("address is not utf-8: {e}")))?;
    s.parse()
        .map_err(|e| protocol(format!("unparsable address '{s}': {e}")))
}

fn io_err(peer: usize, during: &'static str, e: std::io::Error) -> TransportError {
    TransportError::Io {
        peer,
        kind: e.kind(),
        during,
    }
}

/// Rank 0's side of the rendezvous: accepts every follower, collects the
/// data-plane peer table, broadcasts it, and keeps one control stream per
/// follower for partition shipping.
#[derive(Debug)]
pub struct Coordinator {
    ranks: usize,
    /// Control stream per follower (`None` at index 0 — that is us).
    links: Vec<Option<TcpStream>>,
    peers: Vec<SocketAddr>,
    opts: BootstrapOptions,
}

impl Coordinator {
    /// Bind `bind_addr`, accept `ranks - 1` followers, exchange the peer
    /// table. `data_addr` is rank 0's own (already bound) data-plane
    /// address, published as `peers[0]`.
    pub fn rendezvous(
        bind_addr: SocketAddr,
        ranks: usize,
        data_addr: SocketAddr,
        opts: BootstrapOptions,
    ) -> Result<Self, TransportError> {
        assert!(ranks >= 1, "a cluster needs at least one rank");
        let listener = TcpListener::bind(bind_addr).map_err(|e| TransportError::Connect {
            peer: 0,
            detail: format!("bind rendezvous address {bind_addr}: {e}"),
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| io_err(0, "rendezvous set_nonblocking", e))?;
        let deadline = Instant::now() + opts.connect_timeout;
        let mut links: Vec<Option<TcpStream>> = (0..ranks).map(|_| None).collect();
        let mut peers: Vec<Option<SocketAddr>> = (0..ranks).map(|_| None).collect();
        peers[0] = Some(data_addr);
        let mut scratch = Vec::new();
        while links.iter().skip(1).any(Option::is_none) {
            if Instant::now() >= deadline {
                let missing = (1..ranks).find(|&r| links[r].is_none()).unwrap();
                return Err(TransportError::Timeout {
                    peer: missing,
                    during: "bootstrap rendezvous (a rank never joined)",
                });
            }
            let stream = match listener.accept() {
                Ok((s, _)) => s,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                Err(e) => return Err(io_err(usize::MAX, "rendezvous accept", e)),
            };
            stream
                .set_nonblocking(false)
                .map_err(|e| io_err(usize::MAX, "joiner set_nonblocking", e))?;
            configure_stream(&stream).map_err(|e| io_err(usize::MAX, "configure joiner", e))?;
            let tag = read_frame_into(&stream, &mut scratch, deadline, usize::MAX)?;
            if tag != TAG_JOIN {
                return Err(TransportError::Protocol {
                    peer: usize::MAX,
                    detail: format!("expected JOIN, got tag {tag:#04x}"),
                });
            }
            let mut r = Reader::new(&scratch);
            if r.remaining() < 4 {
                return Err(TransportError::Protocol {
                    peer: usize::MAX,
                    detail: "JOIN too short".to_string(),
                });
            }
            let rank = r.get::<u32>() as usize;
            if rank == 0 || rank >= ranks {
                return Err(TransportError::Protocol {
                    peer: rank,
                    detail: format!("JOIN from rank {rank}, expected 1..{ranks}"),
                });
            }
            if links[rank].is_some() {
                return Err(TransportError::Protocol {
                    peer: rank,
                    detail: "duplicate JOIN".to_string(),
                });
            }
            let addr = decode_addr(&mut r, rank)?;
            peers[rank] = Some(addr);
            links[rank] = Some(stream);
        }
        let peers: Vec<SocketAddr> = peers.into_iter().map(Option::unwrap).collect();
        let mut table = Vec::new();
        (ranks as u32).encode(&mut table);
        for addr in &peers {
            encode_addr(addr, &mut table);
        }
        let io_deadline = Instant::now() + opts.io_timeout;
        for (rank, link) in links.iter().enumerate().skip(1) {
            write_frame(link.as_ref().unwrap(), TAG_PEERS, &table, io_deadline, rank)?;
        }
        Ok(Coordinator {
            ranks,
            links,
            peers,
            opts,
        })
    }

    /// The agreed data-plane address table, rank by rank.
    pub fn peers(&self) -> &[SocketAddr] {
        &self.peers
    }

    /// Number of ranks in the cluster.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Send one control frame to a follower.
    pub fn send(&mut self, rank: usize, tag: u8, payload: &[u8]) -> Result<(), TransportError> {
        let deadline = Instant::now() + self.opts.io_timeout;
        let link = self.links[rank]
            .as_ref()
            .expect("no control link for that rank");
        write_frame(link, tag, payload, deadline, rank)
    }

    /// Receive one control frame from a follower into `buf`; returns the
    /// tag.
    pub fn recv(&mut self, rank: usize, buf: &mut Vec<u8>) -> Result<u8, TransportError> {
        let deadline = Instant::now() + self.opts.io_timeout;
        let link = self.links[rank]
            .as_ref()
            .expect("no control link for that rank");
        read_frame_into(link, buf, deadline, rank)
    }
}

/// A non-zero rank's side of the rendezvous: connect, announce, receive
/// the peer table, then consume shipped frames.
#[derive(Debug)]
pub struct Follower {
    rank: usize,
    link: TcpStream,
    peers: Vec<SocketAddr>,
    opts: BootstrapOptions,
}

impl Follower {
    /// Connect to the coordinator (retrying until the connect deadline —
    /// rank 0 may still be starting), announce `rank` + `data_addr`, and
    /// block for the peer table.
    pub fn join(
        coordinator: SocketAddr,
        rank: usize,
        data_addr: SocketAddr,
        opts: BootstrapOptions,
    ) -> Result<Self, TransportError> {
        assert!(rank >= 1, "rank 0 is the coordinator; it does not join");
        let deadline = Instant::now() + opts.connect_timeout;
        let stream = loop {
            match TcpStream::connect(coordinator) {
                Ok(s) => break s,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(TransportError::Connect {
                            peer: 0,
                            detail: format!("connect rendezvous {coordinator}: {e}"),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        };
        configure_stream(&stream).map_err(|e| io_err(0, "configure rendezvous stream", e))?;
        let mut join = Vec::new();
        (rank as u32).encode(&mut join);
        encode_addr(&data_addr, &mut join);
        write_frame(&stream, TAG_JOIN, &join, deadline, 0)?;
        let mut scratch = Vec::new();
        let tag = read_frame_into(&stream, &mut scratch, deadline, 0)?;
        if tag != TAG_PEERS {
            return Err(TransportError::Protocol {
                peer: 0,
                detail: format!("expected PEERS, got tag {tag:#04x}"),
            });
        }
        let mut r = Reader::new(&scratch);
        if r.remaining() < 4 {
            return Err(TransportError::Protocol {
                peer: 0,
                detail: "PEERS too short".to_string(),
            });
        }
        let ranks = r.get::<u32>() as usize;
        if rank >= ranks {
            return Err(TransportError::Protocol {
                peer: 0,
                detail: format!("peer table has {ranks} ranks but we are rank {rank}"),
            });
        }
        let mut peers = Vec::with_capacity(ranks);
        for p in 0..ranks {
            peers.push(decode_addr(&mut r, p)?);
        }
        if peers[rank] != data_addr {
            return Err(TransportError::Protocol {
                peer: 0,
                detail: format!(
                    "peer table lists {} for rank {rank}, but we bound {data_addr}",
                    peers[rank]
                ),
            });
        }
        Ok(Follower {
            rank,
            link: stream,
            peers,
            opts,
        })
    }

    /// The agreed data-plane address table, rank by rank.
    pub fn peers(&self) -> &[SocketAddr] {
        &self.peers
    }

    /// This follower's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Receive one control frame from the coordinator into `buf`; returns
    /// the tag.
    pub fn recv(&mut self, buf: &mut Vec<u8>) -> Result<u8, TransportError> {
        let deadline = Instant::now() + self.opts.io_timeout;
        read_frame_into(&self.link, buf, deadline, 0)
    }

    /// Send one control frame to the coordinator.
    pub fn send(&mut self, tag: u8, payload: &[u8]) -> Result<(), TransportError> {
        let deadline = Instant::now() + self.opts.io_timeout;
        write_frame(&self.link, tag, payload, deadline, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn free_addr() -> SocketAddr {
        TcpListener::bind(("127.0.0.1", 0))
            .unwrap()
            .local_addr()
            .unwrap()
    }

    fn quick() -> BootstrapOptions {
        BootstrapOptions {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(5),
        }
    }

    /// Full rendezvous: 3 ranks agree on a peer table and can exchange
    /// control frames both ways.
    #[test]
    fn rendezvous_exchanges_peer_table_and_frames() {
        let rendezvous = free_addr();
        let data: Vec<SocketAddr> = (0..3).map(|_| free_addr()).collect();
        let mut handles = Vec::new();
        for rank in 1..3usize {
            let data = data.clone();
            handles.push(std::thread::spawn(move || {
                let mut f = Follower::join(rendezvous, rank, data[rank], quick()).unwrap();
                assert_eq!(f.peers(), &data[..]);
                let mut buf = Vec::new();
                let tag = f.recv(&mut buf).unwrap();
                assert_eq!(tag, TAG_PLAN);
                assert_eq!(buf, vec![rank as u8; 4]);
                f.send(TAG_SETTINGS, &[rank as u8]).unwrap();
            }));
        }
        let mut c = Coordinator::rendezvous(rendezvous, 3, data[0], quick()).unwrap();
        assert_eq!(c.peers(), &data[..]);
        for rank in 1..3 {
            c.send(rank, TAG_PLAN, &[rank as u8; 4]).unwrap();
        }
        let mut buf = Vec::new();
        for rank in 1..3 {
            let tag = c.recv(rank, &mut buf).unwrap();
            assert_eq!(tag, TAG_SETTINGS);
            assert_eq!(buf, vec![rank as u8]);
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    /// A missing rank is a typed timeout, not a hang.
    #[test]
    fn rendezvous_times_out_on_missing_rank() {
        let rendezvous = free_addr();
        let opts = BootstrapOptions {
            connect_timeout: Duration::from_millis(300),
            io_timeout: Duration::from_millis(300),
        };
        let err = Coordinator::rendezvous(rendezvous, 2, free_addr(), opts).unwrap_err();
        assert!(
            matches!(err, TransportError::Timeout { peer: 1, .. }),
            "{err}"
        );
    }

    /// A follower pointed at a dead address fails with a typed connect
    /// error within the deadline.
    #[test]
    fn follower_fails_fast_on_dead_coordinator() {
        let dead = free_addr(); // bound then dropped: nothing listens
        let opts = BootstrapOptions {
            connect_timeout: Duration::from_millis(300),
            io_timeout: Duration::from_millis(300),
        };
        let err = Follower::join(dead, 1, free_addr(), opts).unwrap_err();
        assert!(
            matches!(err, TransportError::Connect { peer: 0, .. }),
            "{err}"
        );
    }

    /// Duplicate JOINs are protocol violations, not silent overwrites.
    #[test]
    fn rendezvous_rejects_duplicate_joins() {
        let rendezvous = free_addr();
        // Two joiners claiming the same rank, racing from separate
        // threads; whichever arrives second trips the coordinator.
        let joiners: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(move || Follower::join(rendezvous, 1, free_addr(), quick()))
            })
            .collect();
        let err = Coordinator::rendezvous(rendezvous, 3, free_addr(), quick()).unwrap_err();
        assert!(matches!(err, TransportError::Protocol { .. }), "{err}");
        for j in joiners {
            // The coordinator died: at most one join can have gotten as
            // far as a peer table, and that table never arrives.
            assert!(j.join().unwrap().is_err());
        }
    }
}
