//! Out-of-process rendezvous for a multi-process cluster.
//!
//! Rank 0 (the *coordinator*) listens on a configurable address. Every
//! other rank (a *follower*) connects, sends a `JOIN` frame carrying its
//! rank and its freshly-bound data-plane address, and blocks until the
//! coordinator answers with the full `PEERS` table. Once every rank holds
//! the same table, each builds its [`pc_bsp::Tcp::mesh`] endpoint and the
//! data plane takes over; the control connection stays open for partition
//! shipping (`PLAN` frames, see [`crate::ship`]).
//!
//! ```text
//! follower r:  JOIN{rank, data_addr}  ─────▶  coordinator (rank 0)
//! follower r:  ◀─────  PEERS{addr_0 .. addr_{M-1}}
//! follower r:  ◀─────  PLAN{owner table + CSR slice(s) of rank r}
//! ```
//!
//! Every frame rides the transport's `tag + len` wire format
//! ([`pc_bsp::tcp::write_frame`]); every blocking call polls against an
//! explicit deadline and fails with a typed [`TransportError`] — a rank
//! that never shows up is an error, not a hang.

use crate::backoff::Backoff;
use pc_bsp::tcp::{configure_stream, read_frame_into, write_frame};
use pc_bsp::{Codec, Reader, TransportError};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Control frame: a follower announces `{rank, data_addr, flags, epoch}`.
pub const TAG_JOIN: u8 = b'J';
/// Control frame: the coordinator's peer-address table (plus the
/// recovery epoch it belongs to; 0 for the initial bootstrap).
pub const TAG_PEERS: u8 = b'P';
/// Control frame: a rank's shipped partition (owner table + CSR slices).
pub const TAG_PLAN: u8 = b'G';
/// Control frame: run settings the coordinator decides for every rank.
pub const TAG_SETTINGS: u8 = b'S';
/// Control frame: the coordinator starts recovery epoch `{epoch}` after a
/// data-plane failure (payload also names the acting coordinator's
/// rendezvous address, so a rank can tell who is running the recovery);
/// every surviving rank re-binds a fresh data-plane listener and answers
/// with a new `JOIN`.
pub const TAG_RECOVER: u8 = b'R';
/// Control frame: replicated control-plane state (`CTRL`) — the recovery
/// epoch, the designated standby rank, and (for the standby itself) every
/// rank's encoded plan. Only sent when coordinator failover is armed.
pub const TAG_CTRL: u8 = b'C';

/// `JOIN` flag: this rank holds no graph partition and needs its `PLAN`
/// (re-)shipped — set by every initial join and by respawned ranks, clear
/// on a surviving rank's recovery re-join.
pub const JOIN_NEEDS_PLAN: u8 = 1;

/// Timeouts of the rendezvous and the control-plane I/O.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapOptions {
    /// How long ranks may take to appear (covers slow process spawns).
    pub connect_timeout: Duration,
    /// Deadline for any single control-plane frame. Plan frames carry
    /// whole CSR slices, so this is generous.
    pub io_timeout: Duration,
    /// Recovery mode: a follower dying *during* the rendezvous is
    /// tolerated instead of failing the bootstrap — a broken joiner
    /// stream is dropped (its respawned process re-joins), a duplicate
    /// `JOIN` replaces the dead link, and a failed `PEERS` write marks
    /// the link dead for the recovery rendezvous to repair. Off (the
    /// fail-fast default) unless checkpoint-based recovery is armed.
    pub tolerate_lost: bool,
}

impl Default for BootstrapOptions {
    fn default() -> Self {
        BootstrapOptions {
            connect_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(60),
            tolerate_lost: false,
        }
    }
}

fn encode_addr(addr: &SocketAddr, buf: &mut Vec<u8>) {
    let s = addr.to_string();
    (s.len() as u32).encode(buf);
    buf.extend_from_slice(s.as_bytes());
}

fn decode_addr(r: &mut Reader<'_>, peer: usize) -> Result<SocketAddr, TransportError> {
    let protocol = |detail: String| TransportError::Protocol { peer, detail };
    let len: u32 = if r.remaining() >= 4 {
        r.get()
    } else {
        return Err(protocol("truncated address length".to_string()));
    };
    if r.remaining() < len as usize {
        return Err(protocol(format!(
            "address of {len} bytes but only {} left",
            r.remaining()
        )));
    }
    let s = std::str::from_utf8(r.take(len as usize))
        .map_err(|e| protocol(format!("address is not utf-8: {e}")))?;
    s.parse()
        .map_err(|e| protocol(format!("unparsable address '{s}': {e}")))
}

fn io_err(peer: usize, during: &'static str, e: std::io::Error) -> TransportError {
    TransportError::Io {
        peer,
        kind: e.kind(),
        during,
    }
}

/// One parsed `JOIN` frame.
#[derive(Debug, Clone, Copy)]
struct Join {
    rank: usize,
    addr: SocketAddr,
    flags: u8,
    epoch: u32,
}

fn encode_join(rank: usize, addr: &SocketAddr, flags: u8, epoch: u32) -> Vec<u8> {
    let mut buf = Vec::new();
    (rank as u32).encode(&mut buf);
    encode_addr(addr, &mut buf);
    flags.encode(&mut buf);
    epoch.encode(&mut buf);
    buf
}

fn decode_join(payload: &[u8], peer: usize) -> Result<Join, TransportError> {
    let mut r = Reader::new(payload);
    if r.remaining() < 4 {
        return Err(TransportError::Protocol {
            peer,
            detail: "JOIN too short".to_string(),
        });
    }
    let rank = r.get::<u32>() as usize;
    let addr = decode_addr(&mut r, rank)?;
    if r.remaining() < 5 {
        return Err(TransportError::Protocol {
            peer: rank,
            detail: "JOIN missing flags/epoch".to_string(),
        });
    }
    Ok(Join {
        rank,
        addr,
        flags: r.get(),
        epoch: r.get(),
    })
}

/// Encode the `PEERS` table: rank count, one address per rank, and the
/// recovery epoch the table belongs to (0 = initial bootstrap).
fn encode_peers(peers: &[SocketAddr], epoch: u32) -> Vec<u8> {
    let mut table = Vec::new();
    (peers.len() as u32).encode(&mut table);
    for addr in peers {
        encode_addr(addr, &mut table);
    }
    epoch.encode(&mut table);
    table
}

fn decode_peers(payload: &[u8], rank: usize) -> Result<(Vec<SocketAddr>, u32), TransportError> {
    let mut r = Reader::new(payload);
    if r.remaining() < 4 {
        return Err(TransportError::Protocol {
            peer: 0,
            detail: "PEERS too short".to_string(),
        });
    }
    let ranks = r.get::<u32>() as usize;
    if rank >= ranks {
        return Err(TransportError::Protocol {
            peer: 0,
            detail: format!("peer table has {ranks} ranks but we are rank {rank}"),
        });
    }
    let mut peers = Vec::with_capacity(ranks);
    for p in 0..ranks {
        peers.push(decode_addr(&mut r, p)?);
    }
    if r.remaining() < 4 {
        return Err(TransportError::Protocol {
            peer: 0,
            detail: "PEERS missing epoch".to_string(),
        });
    }
    Ok((peers, r.get()))
}

/// The control-plane configuration a `CTRL` frame distributes: which
/// recovery epoch it belongs to, which rank is the designated standby,
/// and — on the frame sent to the standby itself — every rank's encoded
/// partition plan (the replica a takeover re-ships from).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtrlState {
    /// Recovery epoch this configuration was published at.
    pub epoch: u32,
    /// Rank designated as standby coordinator.
    pub standby: u32,
    /// Every rank's encoded plan; `Some` only on the standby's frame.
    pub plans: Option<Vec<Vec<u8>>>,
}

/// Encode a `CTRL` frame payload.
pub fn encode_ctrl(state: &CtrlState) -> Vec<u8> {
    let mut buf = Vec::new();
    state.epoch.encode(&mut buf);
    state.standby.encode(&mut buf);
    match &state.plans {
        None => false.encode(&mut buf),
        Some(plans) => {
            true.encode(&mut buf);
            (plans.len() as u32).encode(&mut buf);
            for plan in plans {
                (plan.len() as u64).encode(&mut buf);
                buf.extend_from_slice(plan);
            }
        }
    }
    buf
}

/// Decode a `CTRL` frame payload.
pub fn decode_ctrl(payload: &[u8], peer: usize) -> Result<CtrlState, TransportError> {
    let protocol = |detail: String| TransportError::Protocol { peer, detail };
    let mut r = Reader::new(payload);
    if r.remaining() < 9 {
        return Err(protocol("CTRL too short".to_string()));
    }
    let epoch: u32 = r.get();
    let standby: u32 = r.get();
    let has_plans: bool = r.get();
    let plans = if has_plans {
        if r.remaining() < 4 {
            return Err(protocol("CTRL plan count truncated".to_string()));
        }
        let count = r.get::<u32>() as usize;
        let mut plans = Vec::with_capacity(count);
        for i in 0..count {
            if r.remaining() < 8 {
                return Err(protocol(format!("CTRL plan {i} length truncated")));
            }
            let len: u64 = r.get();
            if (r.remaining() as u64) < len {
                return Err(protocol(format!(
                    "CTRL plan {i} of {len} bytes but only {} left",
                    r.remaining()
                )));
            }
            plans.push(r.take(len as usize).to_vec());
        }
        Some(plans)
    } else {
        None
    };
    if !r.is_empty() {
        return Err(protocol(format!("{} trailing CTRL bytes", r.remaining())));
    }
    Ok(CtrlState {
        epoch,
        standby,
        plans,
    })
}

/// The coordinator's side of the rendezvous: accepts every follower,
/// collects the data-plane peer table, broadcasts it, and keeps one
/// control stream per follower for partition shipping. Normally rank 0;
/// after a failover, the elected standby (see [`Coordinator::takeover`]).
#[derive(Debug)]
pub struct Coordinator {
    ranks: usize,
    /// Which rank this coordinator is (0 at bootstrap; the elected
    /// standby after a takeover).
    self_rank: usize,
    /// Control stream per follower (`None` at our own index).
    links: Vec<Option<TcpStream>>,
    peers: Vec<SocketAddr>,
    opts: BootstrapOptions,
    /// The rendezvous listener, kept open for the whole run so respawned
    /// ranks can re-join during recovery.
    listener: TcpListener,
    /// Current recovery epoch (0 = the initial bootstrap generation).
    epoch: u32,
}

impl Coordinator {
    /// Bind `bind_addr`, accept `ranks - 1` followers, exchange the peer
    /// table. `data_addr` is rank 0's own (already bound) data-plane
    /// address, published as `peers[0]`.
    pub fn rendezvous(
        bind_addr: SocketAddr,
        ranks: usize,
        data_addr: SocketAddr,
        opts: BootstrapOptions,
    ) -> Result<Self, TransportError> {
        assert!(ranks >= 1, "a cluster needs at least one rank");
        let listener = TcpListener::bind(bind_addr).map_err(|e| TransportError::Connect {
            peer: 0,
            detail: format!("bind rendezvous address {bind_addr}: {e}"),
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| io_err(0, "rendezvous set_nonblocking", e))?;
        let deadline = Instant::now() + opts.connect_timeout;
        let mut links: Vec<Option<TcpStream>> = (0..ranks).map(|_| None).collect();
        let mut peers: Vec<Option<SocketAddr>> = (0..ranks).map(|_| None).collect();
        peers[0] = Some(data_addr);
        let mut scratch = Vec::new();
        while links.iter().skip(1).any(Option::is_none) {
            if Instant::now() >= deadline {
                let missing = (1..ranks).find(|&r| links[r].is_none()).unwrap();
                return Err(TransportError::Timeout {
                    peer: missing,
                    during: "bootstrap rendezvous (a rank never joined)",
                });
            }
            let stream = match listener.accept() {
                Ok((s, _)) => s,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                Err(e) => return Err(io_err(usize::MAX, "rendezvous accept", e)),
            };
            stream
                .set_nonblocking(false)
                .map_err(|e| io_err(usize::MAX, "joiner set_nonblocking", e))?;
            configure_stream(&stream).map_err(|e| io_err(usize::MAX, "configure joiner", e))?;
            let join = match read_frame_into(&stream, &mut scratch, deadline, usize::MAX) {
                Ok(TAG_JOIN) => match decode_join(&scratch, usize::MAX) {
                    Ok(j) => j,
                    Err(e) if opts.tolerate_lost => {
                        let _ = e; // a dying joiner; its respawn re-joins
                        continue;
                    }
                    Err(e) => return Err(e),
                },
                Ok(tag) => {
                    return Err(TransportError::Protocol {
                        peer: usize::MAX,
                        detail: format!("expected JOIN, got tag {tag:#04x}"),
                    })
                }
                Err(_) if opts.tolerate_lost => continue,
                Err(e) => return Err(e),
            };
            let rank = join.rank;
            if rank == 0 || rank >= ranks {
                return Err(TransportError::Protocol {
                    peer: rank,
                    detail: format!("JOIN from rank {rank}, expected 1..{ranks}"),
                });
            }
            if links[rank].is_some() && !opts.tolerate_lost {
                return Err(TransportError::Protocol {
                    peer: rank,
                    detail: "duplicate JOIN".to_string(),
                });
            }
            // In recovery mode a duplicate JOIN means the rank died after
            // joining and was respawned before the rendezvous finished —
            // the newer join replaces the dead link.
            peers[rank] = Some(join.addr);
            links[rank] = Some(stream);
        }
        let peers: Vec<SocketAddr> = peers.into_iter().map(Option::unwrap).collect();
        let table = encode_peers(&peers, 0);
        let io_deadline = Instant::now() + opts.io_timeout;
        for (rank, link) in links.iter_mut().enumerate().skip(1) {
            let write = write_frame(link.as_ref().unwrap(), TAG_PEERS, &table, io_deadline, rank);
            match write {
                Ok(()) => {}
                Err(_) if opts.tolerate_lost => *link = None, // repaired at recovery
                Err(e) => return Err(e),
            }
        }
        Ok(Coordinator {
            ranks,
            self_rank: 0,
            links,
            peers,
            opts,
            listener,
            epoch: 0,
        })
    }

    /// A standby rank **takes over** as coordinator after rank-0 (or a
    /// previous acting coordinator's) death: bind a fresh rendezvous
    /// listener, adopt the cluster shape at recovery epoch `epoch`, and
    /// return with *no* live control links — the next
    /// [`Coordinator::recover`] call collects every rank (survivors and
    /// respawns alike) through the listener, which is why survivors must
    /// learn the new rendezvous address out of band (the coordinator
    /// advertisement in the checkpoint store).
    pub fn takeover(
        bind_addr: SocketAddr,
        ranks: usize,
        self_rank: usize,
        epoch: u32,
        opts: BootstrapOptions,
    ) -> Result<Self, TransportError> {
        assert!(self_rank < ranks, "acting rank must be in the cluster");
        let listener = TcpListener::bind(bind_addr).map_err(|e| TransportError::Connect {
            peer: self_rank,
            detail: format!("bind takeover rendezvous address {bind_addr}: {e}"),
        })?;
        Ok(Coordinator {
            ranks,
            self_rank,
            links: (0..ranks).map(|_| None).collect(),
            peers: Vec::new(),
            opts,
            listener,
            epoch,
        })
    }

    /// The agreed data-plane address table, rank by rank.
    pub fn peers(&self) -> &[SocketAddr] {
        &self.peers
    }

    /// Number of ranks in the cluster.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The rank acting as coordinator (0 unless this is a takeover).
    pub fn acting_rank(&self) -> usize {
        self.self_rank
    }

    /// The rendezvous listener's address — what followers connect to,
    /// and what the coordinator advertisement publishes.
    pub fn control_addr(&self) -> Result<SocketAddr, TransportError> {
        self.listener
            .local_addr()
            .map_err(|e| io_err(self.self_rank, "rendezvous local_addr", e))
    }

    /// Send one control frame to a follower. A rank whose control link
    /// is gone (it died during a tolerant rendezvous) is a typed
    /// disconnect, repaired by the next recovery rendezvous.
    pub fn send(&mut self, rank: usize, tag: u8, payload: &[u8]) -> Result<(), TransportError> {
        let deadline = Instant::now() + self.opts.io_timeout;
        let link = self.links[rank]
            .as_ref()
            .ok_or(TransportError::Disconnected {
                peer: rank,
                during: "control-plane send (link lost)",
            })?;
        write_frame(link, tag, payload, deadline, rank)
    }

    /// Receive one control frame from a follower into `buf`; returns the
    /// tag.
    pub fn recv(&mut self, rank: usize, buf: &mut Vec<u8>) -> Result<u8, TransportError> {
        let deadline = Instant::now() + self.opts.io_timeout;
        let link = self.links[rank]
            .as_ref()
            .ok_or(TransportError::Disconnected {
                peer: rank,
                during: "control-plane recv (link lost)",
            })?;
        read_frame_into(link, buf, deadline, rank)
    }

    /// The current recovery epoch (0 before any recovery).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Run one **recovery rendezvous** after a data-plane failure: agree
    /// on a fresh peer table that replaces every rank's (torn-down) mesh.
    ///
    /// ```text
    /// coordinator:  RECOVER{epoch, coordinator_addr}  ──▶  every live control link
    /// survivor r:   JOIN{r, new_data_addr, flags=0, epoch}  ──▶  (same link)
    /// respawned r:  JOIN{r, data_addr, NEEDS_PLAN, ·}  ──▶  (fresh connection
    ///                                                        to the kept listener)
    /// coordinator:  PEERS{addrs, epoch}  ──────▶  everyone
    /// ```
    ///
    /// `data_addr` is the acting coordinator's own freshly bound
    /// data-plane address. Returns, per rank, whether its `PLAN` must be
    /// (re-)shipped — true exactly for the joins that carried
    /// `NEEDS_PLAN` (fresh processes holding no partition; a survivor
    /// reconnecting through a takeover coordinator's listener clears the
    /// flag and keeps its partition). Control links that fail during the
    /// exchange are treated as dead ranks and replaced by a listener
    /// join; a rank that appears on neither path before the connect
    /// deadline is a typed timeout.
    pub fn recover(&mut self, data_addr: SocketAddr) -> Result<Vec<bool>, TransportError> {
        self.epoch += 1;
        let epoch = self.epoch;
        let self_rank = self.self_rank;
        // A healthy survivor only notices the failure at its next
        // transport call, which can be a full compute phase away — give
        // the re-JOIN collection the generous control-plane deadline,
        // not just the connect one, so a long superstep on a big graph
        // doesn't get a live rank declared dead.
        let deadline = Instant::now() + self.opts.connect_timeout.max(self.opts.io_timeout);
        let mut peers: Vec<Option<SocketAddr>> = (0..self.ranks).map(|_| None).collect();
        let mut needs_plan = vec![false; self.ranks];
        peers[self_rank] = Some(data_addr);
        // Phase 1a: announce the epoch (and where this coordinator's
        // listener is) on every control link that still accepts writes;
        // failures mark the rank dead (its replacement will come through
        // the listener).
        let mut notice = Vec::new();
        epoch.encode(&mut notice);
        encode_addr(&self.control_addr()?, &mut notice);
        for rank in (0..self.ranks).filter(|&r| r != self_rank) {
            let dead = match &self.links[rank] {
                Some(link) => write_frame(link, TAG_RECOVER, &notice, deadline, rank).is_err(),
                None => true,
            };
            if dead {
                self.links[rank] = None;
            }
        }
        // Phase 1b: collect the survivors' re-JOINs. A stale JOIN from an
        // aborted earlier recovery epoch is skipped, not an error.
        let mut scratch = Vec::new();
        for rank in (0..self.ranks).filter(|&r| r != self_rank) {
            let Some(link) = &self.links[rank] else {
                continue;
            };
            let joined = loop {
                match read_frame_into(link, &mut scratch, deadline, rank) {
                    Ok(TAG_JOIN) => match decode_join(&scratch, rank) {
                        Ok(j) if j.epoch != epoch => continue,
                        Ok(j) if j.rank == rank => break Some(j),
                        _ => break None,
                    },
                    _ => break None,
                }
            };
            match joined {
                Some(j) => {
                    peers[rank] = Some(j.addr);
                    needs_plan[rank] = j.flags & JOIN_NEEDS_PLAN != 0;
                }
                None => self.links[rank] = None,
            }
        }
        // Phase 2: accept fresh JOINs (respawned ranks) for the dead
        // slots on the listener kept from the initial bootstrap. The
        // backlog may hold JOINs from *abandoned* attempts (a respawned
        // rank that timed out waiting and reconnected), so a newer JOIN
        // for an already-filled listener slot replaces the older one —
        // the newest connection is the one a live process is waiting on.
        self.listener
            .set_nonblocking(true)
            .map_err(|e| io_err(0, "recovery set_nonblocking", e))?;
        let mut from_listener = vec![false; self.ranks];
        loop {
            let complete = peers.iter().all(Option::is_some);
            let stream = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    if complete {
                        break; // every slot filled and the backlog drained
                    }
                    if Instant::now() >= deadline {
                        let missing = (0..self.ranks).find(|&r| peers[r].is_none()).unwrap();
                        return Err(TransportError::Timeout {
                            peer: missing,
                            during: "recovery rendezvous (a rank never re-joined)",
                        });
                    }
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                Err(e) => return Err(io_err(usize::MAX, "recovery accept", e)),
            };
            if stream.set_nonblocking(false).is_err() || configure_stream(&stream).is_err() {
                continue;
            }
            let Ok(TAG_JOIN) = read_frame_into(&stream, &mut scratch, deadline, usize::MAX) else {
                continue; // a dying straggler; ignore it
            };
            let Ok(join) = decode_join(&scratch, usize::MAX) else {
                continue;
            };
            let rank = join.rank;
            let replaceable = rank != self_rank
                && rank < self.ranks
                && (peers[rank].is_none() || from_listener[rank]);
            if !replaceable {
                // A listener join may only fill a dead slot (or replace a
                // staler listener join); survivors answered on their
                // control links.
                continue;
            }
            peers[rank] = Some(join.addr);
            // A fresh process joins with NEEDS_PLAN set; a *survivor*
            // joining through the listener (its old control link pointed
            // at a dead coordinator) keeps its in-memory partition and
            // joins with the flag clear.
            needs_plan[rank] = join.flags & JOIN_NEEDS_PLAN != 0;
            from_listener[rank] = true;
            self.links[rank] = Some(stream);
        }
        self.peers = peers.into_iter().map(Option::unwrap).collect();
        // Phase 3: broadcast the new table (old links and new alike). A
        // link that dies mid-broadcast is marked dead rather than
        // aborting the epoch: the stale address it leaves in the table
        // faults the new mesh, and the *next* recovery epoch repairs it.
        let table = encode_peers(&self.peers, epoch);
        let io_deadline = Instant::now() + self.opts.io_timeout;
        for rank in (0..self.ranks).filter(|&r| r != self_rank) {
            let link = self.links[rank].as_ref().expect("all ranks re-joined");
            if write_frame(link, TAG_PEERS, &table, io_deadline, rank).is_err() {
                self.links[rank] = None;
            }
        }
        Ok(needs_plan)
    }
}

/// A non-zero rank's side of the rendezvous: connect, announce, receive
/// the peer table, then consume shipped frames.
#[derive(Debug)]
pub struct Follower {
    rank: usize,
    link: TcpStream,
    peers: Vec<SocketAddr>,
    opts: BootstrapOptions,
    /// Recovery epoch of the peer table currently held (0 = initial).
    epoch: u32,
}

impl Follower {
    /// Connect to the coordinator (retrying until the connect deadline —
    /// rank 0 may still be starting), announce `rank` + `data_addr`, and
    /// block for the peer table. Joining processes never hold a
    /// partition, so the `JOIN` carries `NEEDS_PLAN`; a *survivor*
    /// reconnecting to a takeover coordinator uses
    /// [`Follower::join_with`] with the flag clear to keep its partition.
    pub fn join(
        coordinator: SocketAddr,
        rank: usize,
        data_addr: SocketAddr,
        opts: BootstrapOptions,
    ) -> Result<Self, TransportError> {
        Self::join_with(coordinator, rank, data_addr, JOIN_NEEDS_PLAN, opts)
    }

    /// [`Follower::join`] with explicit `JOIN` flags. Any rank may join —
    /// including a respawned rank 0 rejoining a takeover coordinator as a
    /// plain follower. Connect retries follow a jittered exponential
    /// backoff (seeded by `rank` so a whole cluster of retriers does not
    /// SYN-storm a slow coordinator in lockstep).
    pub fn join_with(
        coordinator: SocketAddr,
        rank: usize,
        data_addr: SocketAddr,
        flags: u8,
        opts: BootstrapOptions,
    ) -> Result<Self, TransportError> {
        let deadline = Instant::now() + opts.connect_timeout;
        let mut backoff = Backoff::for_connect(rank as u64);
        let stream = loop {
            match TcpStream::connect(coordinator) {
                Ok(s) => break s,
                Err(e) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(TransportError::Connect {
                            peer: 0,
                            detail: format!("connect rendezvous {coordinator}: {e}"),
                        });
                    }
                    backoff.sleep(deadline - now);
                }
            }
        };
        configure_stream(&stream).map_err(|e| io_err(0, "configure rendezvous stream", e))?;
        let join = encode_join(rank, &data_addr, flags, 0);
        write_frame(&stream, TAG_JOIN, &join, deadline, 0)?;
        let mut scratch = Vec::new();
        let tag = read_frame_into(&stream, &mut scratch, deadline, 0)?;
        if tag != TAG_PEERS {
            return Err(TransportError::Protocol {
                peer: 0,
                detail: format!("expected PEERS, got tag {tag:#04x}"),
            });
        }
        let (peers, epoch) = decode_peers(&scratch, rank)?;
        if peers[rank] != data_addr {
            return Err(TransportError::Protocol {
                peer: 0,
                detail: format!(
                    "peer table lists {} for rank {rank}, but we bound {data_addr}",
                    peers[rank]
                ),
            });
        }
        Ok(Follower {
            rank,
            link: stream,
            peers,
            opts,
            epoch,
        })
    }

    /// The agreed data-plane address table, rank by rank.
    pub fn peers(&self) -> &[SocketAddr] {
        &self.peers
    }

    /// This follower's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Receive one control frame from the coordinator into `buf`; returns
    /// the tag.
    pub fn recv(&mut self, buf: &mut Vec<u8>) -> Result<u8, TransportError> {
        let deadline = Instant::now() + self.opts.io_timeout;
        read_frame_into(&self.link, buf, deadline, 0)
    }

    /// Send one control frame to the coordinator.
    pub fn send(&mut self, tag: u8, payload: &[u8]) -> Result<(), TransportError> {
        let deadline = Instant::now() + self.opts.io_timeout;
        write_frame(&self.link, tag, payload, deadline, 0)
    }

    /// Recovery epoch of the peer table currently held.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// A surviving rank's side of a recovery rendezvous: wait for the
    /// coordinator's `RECOVER`, announce this rank's freshly bound
    /// `data_addr` (keeping its in-memory partition — no plan re-ship),
    /// and adopt the rebroadcast peer table. If another failure interrupts
    /// the exchange (a second `RECOVER` arrives instead of `PEERS`), the
    /// handshake restarts at the newer epoch. Returns the agreed epoch.
    pub fn rejoin(&mut self, data_addr: SocketAddr) -> Result<u32, TransportError> {
        let deadline = Instant::now() + self.opts.connect_timeout;
        let mut scratch = Vec::new();
        fn recover_epoch(scratch: &[u8]) -> Result<u32, TransportError> {
            let mut r = Reader::new(scratch);
            if r.remaining() < 4 {
                return Err(TransportError::Protocol {
                    peer: 0,
                    detail: "RECOVER too short".to_string(),
                });
            }
            let epoch = r.get();
            // The payload also names the acting coordinator's rendezvous
            // address; on a live control link it is by construction the
            // peer this frame arrived from, so it is informational here
            // (respawned ranks learn it from the advertisement instead).
            let _ = decode_addr(&mut r, 0)?;
            Ok(epoch)
        }
        // Wait for the coordinator to open the recovery epoch.
        let mut epoch = match read_frame_into(&self.link, &mut scratch, deadline, 0)? {
            TAG_RECOVER => recover_epoch(&scratch)?,
            other => {
                return Err(TransportError::Protocol {
                    peer: 0,
                    detail: format!("expected RECOVER, got tag {other:#04x}"),
                })
            }
        };
        loop {
            let join = encode_join(self.rank, &data_addr, 0, epoch);
            write_frame(&self.link, TAG_JOIN, &join, deadline, 0)?;
            match read_frame_into(&self.link, &mut scratch, deadline, 0)? {
                TAG_PEERS => {
                    let (peers, peers_epoch) = decode_peers(&scratch, self.rank)?;
                    if peers[self.rank] != data_addr {
                        return Err(TransportError::Protocol {
                            peer: 0,
                            detail: format!(
                                "recovery table lists {} for rank {}, but we bound {data_addr}",
                                peers[self.rank], self.rank
                            ),
                        });
                    }
                    self.peers = peers;
                    self.epoch = peers_epoch;
                    return Ok(peers_epoch);
                }
                TAG_RECOVER => {
                    // The recovery itself was interrupted by another
                    // failure; re-announce under the newer epoch.
                    epoch = recover_epoch(&scratch)?;
                }
                other => {
                    return Err(TransportError::Protocol {
                        peer: 0,
                        detail: format!("expected PEERS, got tag {other:#04x}"),
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn free_addr() -> SocketAddr {
        TcpListener::bind(("127.0.0.1", 0))
            .unwrap()
            .local_addr()
            .unwrap()
    }

    fn quick() -> BootstrapOptions {
        BootstrapOptions {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(5),
            tolerate_lost: false,
        }
    }

    /// Full rendezvous: 3 ranks agree on a peer table and can exchange
    /// control frames both ways.
    #[test]
    fn rendezvous_exchanges_peer_table_and_frames() {
        let rendezvous = free_addr();
        let data: Vec<SocketAddr> = (0..3).map(|_| free_addr()).collect();
        let mut handles = Vec::new();
        for rank in 1..3usize {
            let data = data.clone();
            handles.push(std::thread::spawn(move || {
                let mut f = Follower::join(rendezvous, rank, data[rank], quick()).unwrap();
                assert_eq!(f.peers(), &data[..]);
                let mut buf = Vec::new();
                let tag = f.recv(&mut buf).unwrap();
                assert_eq!(tag, TAG_PLAN);
                assert_eq!(buf, vec![rank as u8; 4]);
                f.send(TAG_SETTINGS, &[rank as u8]).unwrap();
            }));
        }
        let mut c = Coordinator::rendezvous(rendezvous, 3, data[0], quick()).unwrap();
        assert_eq!(c.peers(), &data[..]);
        for rank in 1..3 {
            c.send(rank, TAG_PLAN, &[rank as u8; 4]).unwrap();
        }
        let mut buf = Vec::new();
        for rank in 1..3 {
            let tag = c.recv(rank, &mut buf).unwrap();
            assert_eq!(tag, TAG_SETTINGS);
            assert_eq!(buf, vec![rank as u8]);
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    /// A missing rank is a typed timeout, not a hang.
    #[test]
    fn rendezvous_times_out_on_missing_rank() {
        let rendezvous = free_addr();
        let opts = BootstrapOptions {
            connect_timeout: Duration::from_millis(300),
            io_timeout: Duration::from_millis(300),
            tolerate_lost: false,
        };
        let err = Coordinator::rendezvous(rendezvous, 2, free_addr(), opts).unwrap_err();
        assert!(
            matches!(err, TransportError::Timeout { peer: 1, .. }),
            "{err}"
        );
    }

    /// A follower pointed at a dead address fails with a typed connect
    /// error within the deadline.
    #[test]
    fn follower_fails_fast_on_dead_coordinator() {
        let dead = free_addr(); // bound then dropped: nothing listens
        let opts = BootstrapOptions {
            connect_timeout: Duration::from_millis(300),
            io_timeout: Duration::from_millis(300),
            tolerate_lost: false,
        };
        let err = Follower::join(dead, 1, free_addr(), opts).unwrap_err();
        assert!(
            matches!(err, TransportError::Connect { peer: 0, .. }),
            "{err}"
        );
    }

    /// A full recovery rendezvous: one rank "dies" (drops its control
    /// link) and re-joins through the kept listener as a fresh process,
    /// the survivor re-joins over its existing link, and everyone agrees
    /// on the new table. The fresh rank — and only the fresh rank — is
    /// flagged for plan re-shipping.
    #[test]
    fn recovery_rendezvous_replaces_a_dead_rank() {
        let rendezvous = free_addr();
        let data: Vec<SocketAddr> = (0..3).map(|_| free_addr()).collect();
        let new_data: Vec<SocketAddr> = (0..3).map(|_| free_addr()).collect();
        let survivor_new = new_data[1];
        let respawn_new = new_data[2];
        // Rank 1 survives: joins, then re-joins over the same link.
        let (data1, data2) = (data[1], data[2]);
        let survivor = std::thread::spawn(move || {
            let mut f = Follower::join(rendezvous, 1, data1, quick()).unwrap();
            assert_eq!(f.epoch(), 0);
            let epoch = f.rejoin(survivor_new).unwrap();
            assert_eq!(epoch, 1);
            assert_eq!(f.epoch(), 1);
            f.peers().to_vec()
        });
        // Rank 2 dies after the bootstrap: its link simply drops.
        let dying = std::thread::spawn(move || {
            let f = Follower::join(rendezvous, 2, data2, quick()).unwrap();
            drop(f);
        });
        let mut c = Coordinator::rendezvous(rendezvous, 3, data[0], quick()).unwrap();
        dying.join().unwrap();
        // The respawned rank 2 re-joins through the ordinary join path.
        let respawned = std::thread::spawn(move || {
            let mut f = Follower::join(rendezvous, 2, respawn_new, quick()).unwrap();
            assert_eq!(f.epoch(), 1, "respawned rank adopts the recovery epoch");
            // The rebuilt control link carries the re-shipped plan.
            let mut plan = Vec::new();
            assert_eq!(f.recv(&mut plan).unwrap(), TAG_PLAN);
            assert_eq!(plan, vec![9, 9]);
            f.peers().to_vec()
        });
        let needs_plan = c.recover(new_data[0]).unwrap();
        assert_eq!(c.epoch(), 1);
        assert_eq!(needs_plan, vec![false, false, true]);
        let expect = vec![new_data[0], survivor_new, respawn_new];
        assert_eq!(c.peers(), &expect[..]);
        c.send(2, TAG_PLAN, &[9, 9]).unwrap();
        assert_eq!(survivor.join().unwrap(), expect);
        assert_eq!(respawned.join().unwrap(), expect);
    }

    /// A recovery where a rank never re-appears is a typed timeout.
    #[test]
    fn recovery_times_out_on_a_missing_rank() {
        let rendezvous = free_addr();
        let data: Vec<SocketAddr> = (0..2).map(|_| free_addr()).collect();
        let opts = BootstrapOptions {
            connect_timeout: Duration::from_millis(400),
            io_timeout: Duration::from_millis(400),
            tolerate_lost: false,
        };
        let data1 = data[1];
        let dying = std::thread::spawn(move || {
            let f = Follower::join(rendezvous, 1, data1, opts).unwrap();
            drop(f);
        });
        let mut c = Coordinator::rendezvous(rendezvous, 2, data[0], opts).unwrap();
        dying.join().unwrap();
        let err = c.recover(free_addr()).unwrap_err();
        assert!(
            matches!(err, TransportError::Timeout { peer: 1, .. }),
            "{err}"
        );
    }

    /// `CTRL` frames round-trip both shapes: configuration-only (no
    /// plans) and the standby's full replica.
    #[test]
    fn ctrl_frame_round_trips() {
        let bare = CtrlState {
            epoch: 3,
            standby: 2,
            plans: None,
        };
        assert_eq!(decode_ctrl(&encode_ctrl(&bare), 1).unwrap(), bare);
        let full = CtrlState {
            epoch: 7,
            standby: 1,
            plans: Some(vec![vec![1, 2, 3], Vec::new(), vec![9; 300]]),
        };
        assert_eq!(decode_ctrl(&encode_ctrl(&full), 1).unwrap(), full);
        assert!(matches!(
            decode_ctrl(&[1, 2], 1),
            Err(TransportError::Protocol { .. })
        ));
    }

    /// Coordinator failover: rank 1 takes over after rank 0's death,
    /// binds a fresh listener, and runs a recovery rendezvous where the
    /// survivor (rank 2) reconnects keeping its partition, the respawned
    /// rank 0 joins as a plain follower needing its plan, and everyone
    /// agrees on the new table at the bumped epoch.
    #[test]
    fn takeover_rendezvous_elects_a_standby_coordinator() {
        let data: Vec<SocketAddr> = (0..3).map(|_| free_addr()).collect();
        let mut c = Coordinator::takeover(free_addr(), 3, 1, 4, quick()).unwrap();
        assert_eq!(c.acting_rank(), 1);
        let rendezvous = c.control_addr().unwrap();
        let (data0, data2) = (data[0], data[2]);
        // Survivor rank 2: reconnects with NEEDS_PLAN clear.
        let survivor = std::thread::spawn(move || {
            let f = Follower::join_with(rendezvous, 2, data2, 0, quick()).unwrap();
            assert_eq!(f.epoch(), 5, "survivor adopts the takeover epoch");
            f.peers().to_vec()
        });
        // Respawned rank 0: an ordinary join — it is a follower now.
        let respawned = std::thread::spawn(move || {
            let mut f = Follower::join(rendezvous, 0, data0, quick()).unwrap();
            assert_eq!(f.epoch(), 5);
            let mut plan = Vec::new();
            assert_eq!(f.recv(&mut plan).unwrap(), TAG_PLAN);
            assert_eq!(plan, vec![7; 3]);
            f.peers().to_vec()
        });
        let needs_plan = c.recover(data[1]).unwrap();
        assert_eq!(c.epoch(), 5);
        assert_eq!(
            needs_plan,
            vec![true, false, false],
            "only the respawned rank needs its plan re-shipped"
        );
        assert_eq!(c.peers(), &data[..]);
        c.send(0, TAG_PLAN, &[7; 3]).unwrap();
        assert_eq!(survivor.join().unwrap(), data);
        assert_eq!(respawned.join().unwrap(), data);
    }

    /// Duplicate JOINs are protocol violations, not silent overwrites.
    #[test]
    fn rendezvous_rejects_duplicate_joins() {
        let rendezvous = free_addr();
        // Two joiners claiming the same rank, racing from separate
        // threads; whichever arrives second trips the coordinator.
        let joiners: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(move || Follower::join(rendezvous, 1, free_addr(), quick()))
            })
            .collect();
        let err = Coordinator::rendezvous(rendezvous, 3, free_addr(), quick()).unwrap_err();
        assert!(matches!(err, TransportError::Protocol { .. }), "{err}");
        for j in joiners {
            // The coordinator died: at most one join can have gotten as
            // far as a peer table, and that table never arrives.
            assert!(j.join().unwrap().is_err());
        }
    }
}
