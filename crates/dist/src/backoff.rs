//! Bounded exponential backoff with jitter for control-plane retries.
//!
//! Rendezvous joins used to hammer `TcpStream::connect` in a tight
//! 2 ms loop until the deadline — harmless on localhost, a SYN storm
//! against a slow coordinator on a real network, and a thundering herd
//! when a whole cluster of followers retries in lockstep. This schedule
//! doubles the delay per failed attempt up to a cap and spreads each
//! sleep uniformly over `[delay/2, delay]` (decorrelation jitter), so
//! concurrent retriers drift apart instead of synchronizing.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Duration;

/// An exponential retry schedule: `base, 2·base, 4·base, … , cap`, each
/// delay jittered down by up to half. Deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct Backoff {
    next_us: u64,
    cap_us: u64,
    rng: StdRng,
}

impl Backoff {
    /// A schedule starting at `base` and never exceeding `cap` per sleep.
    /// `seed` decorrelates concurrent retriers (ranks seed with their
    /// rank id); equal seeds produce equal schedules.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        let base_us = (base.as_micros() as u64).max(1);
        Backoff {
            next_us: base_us,
            cap_us: (cap.as_micros() as u64).max(base_us),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The schedule the connect path uses: 2 ms doubling to a 250 ms
    /// ceiling — sub-second reaction when the coordinator appears,
    /// a handful of attempts per second once it is clearly slow.
    pub fn for_connect(seed: u64) -> Self {
        Backoff::new(Duration::from_millis(2), Duration::from_millis(250), seed)
    }

    /// Next delay: the current step jittered uniformly into
    /// `[step/2, step]`, then the step doubles (saturating at the cap).
    pub fn next_delay(&mut self) -> Duration {
        let step = self.next_us;
        self.next_us = (step.saturating_mul(2)).min(self.cap_us);
        let lo = (step / 2).max(1);
        Duration::from_micros(self.rng.random_range(lo..=step))
    }

    /// Sleep for [`Backoff::next_delay`], but never past `remaining` —
    /// a retry loop racing a deadline should wake exactly at it.
    pub fn sleep(&mut self, remaining: Duration) {
        let delay = self.next_delay().min(remaining);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The schedule is exponential with a hard cap, every delay lands in
    /// `[step/2, step]`, and equal seeds give equal schedules while
    /// different seeds decorrelate.
    #[test]
    fn schedule_doubles_jitters_and_caps() {
        let base = Duration::from_millis(2);
        let cap = Duration::from_millis(250);
        let mut b = Backoff::new(base, cap, 7);
        let mut step_us = 2_000u64;
        for attempt in 0..12 {
            let d = b.next_delay().as_micros() as u64;
            assert!(
                d >= step_us / 2 && d <= step_us,
                "attempt {attempt}: delay {d}µs outside [{}, {step_us}]µs",
                step_us / 2
            );
            step_us = (step_us * 2).min(250_000);
        }
        // Past the cap the step stays pinned.
        for _ in 0..8 {
            let d = b.next_delay().as_micros() as u64;
            assert!((125_000..=250_000).contains(&d), "capped delay {d}µs");
        }

        let seq = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(base, cap, seed);
            (0..10).map(|_| b.next_delay()).collect()
        };
        assert_eq!(seq(42), seq(42), "same seed, same schedule");
        assert_ne!(seq(1), seq(2), "different seeds decorrelate");
    }

    /// Sleeping against a deadline never overshoots the remaining budget.
    #[test]
    fn sleep_respects_the_remaining_budget() {
        let mut b = Backoff::new(Duration::from_millis(50), Duration::from_millis(250), 3);
        let started = std::time::Instant::now();
        b.sleep(Duration::from_millis(5));
        assert!(
            started.elapsed() < Duration::from_millis(40),
            "slept past the remaining budget: {:?}",
            started.elapsed()
        );
    }
}
