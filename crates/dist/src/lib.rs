//! # pc-dist — the multi-process distributed runtime
//!
//! PR 2's `Tcp` exchange transport already speaks a real length-prefixed
//! wire protocol; this crate adds the three pieces that turn it from a
//! loopback simulation into a deployment where **every worker is its own
//! OS process**:
//!
//! * [`bootstrap`] — the out-of-process rendezvous. Rank 0 listens on a
//!   configurable address; every other rank connects, announces its
//!   data-plane address, and receives the full peer table plus its
//!   shipped partition. The control connections reuse the transport's
//!   frame protocol, so every blocking step is deadline-bounded and fails
//!   with a typed [`pc_bsp::TransportError`] instead of hanging.
//! * [`ship`] — partition shipping. Rank 0 loads (or generates) the
//!   graph, partitions it, and streams each rank its CSR **row slice**
//!   (`pc_graph::io::encode_graph`) together with the ownership table —
//!   non-zero ranks never touch the input file.
//! * [`launch`] — the process supervisor behind `pcgraph --ranks N`: it
//!   spawns one `pcgraph --rank i` child per rank, captures follower
//!   stderr, enforces a join deadline, and maps child exits to typed
//!   [`launch::LaunchError`]s. With a respawn budget
//!   ([`launch::LaunchSpec::max_respawns`], armed by checkpointing) it
//!   becomes a real supervisor: a non-zero rank that dies abnormally is
//!   respawned, the [`bootstrap`] recovery rendezvous re-admits it
//!   (surviving ranks re-JOIN over their kept control links with fresh
//!   data-plane addresses, the coordinator re-ships the dead rank's
//!   partition and rebroadcasts the peer table), and the cluster resumes
//!   from the last committed `pc_ckpt` checkpoint.
//!
//! The engine side lives in `pc_channels::engine`: a [`pc_bsp::Config`]
//! whose `dist` field carries a [`pc_bsp::RankRole`] drives exactly one
//! worker over a [`pc_bsp::Tcp::mesh`] and gathers results to rank 0
//! through the same transport. The multi-process arm of the conformance
//! suite pins the whole stack to the sequential reference: identical
//! values, bytes, messages, supersteps, rounds and pool traffic.

pub mod backoff;
pub mod bootstrap;
pub mod launch;
pub mod ship;

pub use backoff::Backoff;
pub use bootstrap::{BootstrapOptions, Coordinator, Follower};
pub use launch::{pick_rendezvous_addr, LaunchError, LaunchSpec};
