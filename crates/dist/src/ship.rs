//! Partition shipping: rank 0 loads the graph, partitions it, and streams
//! every rank exactly the rows it owns.
//!
//! A rank's `compute()` only ever reads the adjacency of its **local**
//! vertices, so the plan shipped to rank `r` is the CSR *row slice*
//! ([`pc_graph::Graph::restrict_rows`]) of the full graph — same vertex id
//! space, same row contents byte for byte, empty rows elsewhere. That
//! keeps the engine-observable behavior identical to a single-process run
//! (the conformance contract) while each rank stores only its share of
//! the arcs. Algorithms that also walk reverse edges (SCC) get a second
//! slice of the transposed graph; the plan carries any number of slices.
//!
//! The ownership table rides along so every rank builds the identical
//! [`pc_bsp::Topology`] without re-deriving the partition — and when a
//! degree-aware partitioner built mirror/ghost tables for high-degree
//! vertices, the [`pc_bsp::MirrorPlan`] rides along too, so every rank
//! pre-wires its Mirror channel instead of shipping tables in-band.

use pc_bsp::{Codec, MirrorPlan, Reader, Topology};
use pc_graph::{io as gio, Graph};

/// The row slice of `g` that `rank` needs: adjacency kept verbatim for
/// the vertices `topo` assigns to `rank`, empty rows elsewhere.
pub fn slice_for_rank<W: Copy + Default>(g: &Graph<W>, topo: &Topology, rank: usize) -> Graph<W> {
    g.restrict_rows(|v| topo.worker_of(v) == rank)
}

/// Encode one rank's plan: the full ownership table, its graph slices
/// (one per graph the algorithm walks — forward, and reverse for
/// SCC-style programs), and the mirror plan when one was built.
pub fn encode_plan<W: Codec + Copy>(
    owner: &[u16],
    graphs: &[&Graph<W>],
    mirror: Option<&MirrorPlan>,
) -> Vec<u8> {
    let mut buf = Vec::new();
    (owner.len() as u64).encode(&mut buf);
    for &o in owner {
        o.encode(&mut buf);
    }
    (graphs.len() as u32).encode(&mut buf);
    for g in graphs {
        gio::encode_graph(g, &mut buf);
    }
    match mirror {
        None => false.encode(&mut buf),
        Some(plan) => {
            true.encode(&mut buf);
            plan.encode_into(&mut buf);
        }
    }
    buf
}

/// Reassemble the full graph from every rank's row slice (index =
/// rank). The slices partition the rows — each vertex's adjacency lives
/// verbatim in exactly its owner's slice and is empty everywhere else —
/// so the union is bit-identical to the graph rank 0 originally loaded.
///
/// This is how a takeover coordinator serves `--verify` without ever
/// having seen the input: the replicated plans hold every rank's slice,
/// and merging them reconstructs the sequential reference's graph.
pub fn merge_slices<W: Copy + Default>(
    owner: &[u16],
    slices: &[Graph<W>],
) -> Result<Graph<W>, String> {
    let Some(first) = slices.first() else {
        return Err("no slices to merge".to_string());
    };
    let n = first.n();
    if n != owner.len() {
        return Err(format!("{n}-vertex slices but {} owners", owner.len()));
    }
    let directed = {
        let (_, _, _, _, d) = first.csr_parts();
        d
    };
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut targets = Vec::new();
    let mut weights: Vec<W> = Vec::new();
    for v in 0..n as u32 {
        let rank = owner[v as usize] as usize;
        let slice = slices
            .get(rank)
            .ok_or_else(|| format!("vertex {v} owned by rank {rank}, but no such slice"))?;
        if slice.n() != n {
            return Err(format!(
                "slice {rank} has {} vertices, expected {n}",
                slice.n()
            ));
        }
        targets.extend_from_slice(slice.neighbors(v));
        weights.extend_from_slice(slice.weights(v));
        offsets.push(targets.len());
    }
    Graph::from_csr_parts(n, offsets, targets, weights, directed)
}

/// What [`decode_plan`] recovers: the ownership table, the graph slices,
/// and the mirror plan when rank 0 built one.
pub type DecodedPlan<W> = (Vec<u16>, Vec<Graph<W>>, Option<MirrorPlan>);

/// Decode a plan written by [`encode_plan`].
pub fn decode_plan<W: Codec + Copy + Default>(payload: &[u8]) -> Result<DecodedPlan<W>, String> {
    let mut r = Reader::new(payload);
    if r.remaining() < 8 {
        return Err("plan header truncated".to_string());
    }
    let n: u64 = r.get();
    let n = usize::try_from(n).map_err(|_| "owner count overflows usize".to_string())?;
    if r.remaining() < n.checked_mul(2).ok_or("owner table overflows")? {
        return Err(format!(
            "owner table truncated: {} bytes left, {} needed",
            r.remaining(),
            n * 2
        ));
    }
    let mut owner = Vec::with_capacity(n);
    for _ in 0..n {
        owner.push(r.get::<u16>());
    }
    if r.remaining() < 4 {
        return Err("graph count truncated".to_string());
    }
    let ngraphs: u32 = r.get();
    let mut graphs = Vec::with_capacity(ngraphs as usize);
    for _ in 0..ngraphs {
        graphs.push(gio::decode_graph(&mut r)?);
    }
    if r.remaining() < 1 {
        return Err("mirror section truncated".to_string());
    }
    let mirror = if r.get::<bool>() {
        Some(MirrorPlan::decode_from(&mut r)?)
    } else {
        None
    };
    if !r.is_empty() {
        return Err(format!("{} trailing bytes after plan", r.remaining()));
    }
    Ok((owner, graphs, mirror))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_graph::gen;

    /// Slices cover the graph: every arc of the original appears in
    /// exactly one rank's slice, rows verbatim, and the whole plan
    /// round-trips through the wire encoding.
    #[test]
    fn plan_roundtrip_partitions_all_rows() {
        let g = gen::rmat_weighted(7, 700, gen::RmatParams::default(), 3, false, 100);
        let workers = 3;
        let topo = Topology::hashed(g.n(), workers);
        let owner: Vec<u16> = (0..g.n() as u32)
            .map(|v| topo.worker_of(v) as u16)
            .collect();
        let mut covered = 0usize;
        for rank in 0..workers {
            let slice = slice_for_rank(&g, &topo, rank);
            let payload = encode_plan(&owner, &[&slice], None);
            let (owner2, graphs, mirror) = decode_plan::<u32>(&payload).unwrap();
            assert!(mirror.is_none());
            assert_eq!(owner2, owner);
            assert_eq!(graphs.len(), 1);
            assert_eq!(&graphs[0], &slice);
            for v in 0..g.n() as u32 {
                if topo.worker_of(v) == rank {
                    assert_eq!(slice.neighbors(v), g.neighbors(v));
                    assert_eq!(slice.weights(v), g.weights(v));
                    covered += slice.degree(v);
                } else {
                    assert_eq!(slice.degree(v), 0);
                }
            }
        }
        assert_eq!(covered, g.arc_count(), "slices cover every arc once");
    }

    /// Merging every rank's slice reconstructs the original graph
    /// bit-for-bit — the property a takeover coordinator's `--verify`
    /// depends on.
    #[test]
    fn merged_slices_reconstruct_the_full_graph() {
        let g = gen::rmat_weighted(7, 700, gen::RmatParams::default(), 3, false, 100);
        let workers = 3;
        let topo = Topology::hashed(g.n(), workers);
        let owner: Vec<u16> = (0..g.n() as u32)
            .map(|v| topo.worker_of(v) as u16)
            .collect();
        let slices: Vec<Graph<u32>> = (0..workers)
            .map(|rank| slice_for_rank(&g, &topo, rank))
            .collect();
        let merged = merge_slices(&owner, &slices).unwrap();
        assert_eq!(merged, g);
        // A missing slice is an error, not a silent hole.
        assert!(merge_slices(&owner, &slices[..workers - 1]).is_err());
        assert!(merge_slices::<u32>(&owner, &[]).is_err());
    }

    /// Multi-graph plans (forward + reverse, the SCC shape) round-trip.
    #[test]
    fn plan_carries_multiple_slices() {
        let g = gen::rmat(7, 500, gen::RmatParams::default(), 9, true);
        let rev = g.reverse();
        let topo = Topology::hashed(g.n(), 2);
        let owner: Vec<u16> = (0..g.n() as u32)
            .map(|v| topo.worker_of(v) as u16)
            .collect();
        let fwd_slice = slice_for_rank(&g, &topo, 1);
        let rev_slice = slice_for_rank(&rev, &topo, 1);
        let payload = encode_plan(&owner, &[&fwd_slice, &rev_slice], None);
        let (_, graphs, _) = decode_plan::<()>(&payload).unwrap();
        assert_eq!(graphs.len(), 2);
        assert_eq!(&graphs[0], &fwd_slice);
        assert_eq!(&graphs[1], &rev_slice);
    }

    /// A mirror plan rides with the owner table and slices, byte-exact,
    /// and truncating its section errors instead of panicking.
    #[test]
    fn plan_carries_mirror_tables() {
        let g = gen::star(200);
        let topo = Topology::hashed(g.n(), 4);
        let owner: Vec<u16> = (0..g.n() as u32)
            .map(|v| topo.worker_of(v) as u16)
            .collect();
        let plan = pc_graph::partition::build_mirror_plan(&g, &topo, 16);
        assert!(!plan.hubs.is_empty());
        let slice = slice_for_rank(&g, &topo, 2);
        let payload = encode_plan(&owner, &[&slice], Some(&plan));
        let (owner2, graphs, mirror) = decode_plan::<()>(&payload).unwrap();
        assert_eq!(owner2, owner);
        assert_eq!(&graphs[0], &slice);
        assert_eq!(mirror.as_ref(), Some(&plan));
        // Truncation anywhere inside the mirror section errors cleanly.
        let without = encode_plan(&owner, &[&slice], None).len();
        for cut in without..payload.len() {
            assert!(decode_plan::<()>(&payload[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn plan_decode_rejects_garbage() {
        assert!(decode_plan::<()>(&[]).is_err());
        let g = gen::cycle(5);
        let topo = Topology::hashed(5, 2);
        let payload = encode_plan(&[0, 0, 1, 1, 0], &[&slice_for_rank(&g, &topo, 0)], None);
        // Truncation anywhere must error, never panic.
        for cut in [3, 10, payload.len() - 1] {
            assert!(decode_plan::<()>(&payload[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing junk is rejected too.
        let mut noisy = payload.clone();
        noisy.push(7);
        assert!(decode_plan::<()>(&noisy).is_err());
    }
}
