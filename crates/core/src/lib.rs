//! # pc-channels — the channel-based vertex-centric engine
//!
//! This crate is the paper's primary contribution: a replacement for
//! Pregel's monolithic message passing + aggregator interface in which all
//! communication flows through **channels** — typed, per-purpose message
//! containers that sit between the vertices and the per-worker raw buffers
//! (Fig. 2 of the paper).
//!
//! A program is an [`Algorithm`]: a per-vertex `compute()` plus a set of
//! channels. Each superstep the engine runs `compute()` on every active
//! vertex, then performs one or more *rounds* of
//! `serialize → buffer exchange → deserialize` over the active channels
//! until every channel's `again()` is false (the worker loop of Fig. 4).
//! Channels re-activate vertices, which simulates Pregel's voting-to-halt.
//!
//! ## Standard channels (Table I)
//!
//! * [`DirectMessage`] — point-to-point messages, iterated by the receiver;
//! * [`CombinedMessage`] — messages combined per receiver with a
//!   [`Combine`] function;
//! * [`Aggregator`] — global reduction, result visible next superstep.
//!
//! ## Optimized channels (Table II)
//!
//! * [`ScatterCombine`] — the *static messaging pattern*: every vertex
//!   sends one value along all its pre-registered edges each superstep; a
//!   pre-sorted edge array lets the worker produce receiver-combined
//!   messages with a linear scan instead of hashing (§IV-C1);
//! * [`RequestRespond`] — two-round "read an attribute of vertex X"
//!   conversations with per-worker request deduplication and positional
//!   (id-free) responses (§IV-C2);
//! * [`Propagation`] — label propagation with asynchronous intra-worker
//!   convergence: each worker pushes labels through its local subgraph as
//!   far as possible between exchanges, collapsing `O(diameter)` supersteps
//!   into a few rounds (§IV-C3); [`Propagation::weighted`] is the full
//!   Fig. 7 model with per-edge values;
//! * [`Mirror`] — sender-centric combining (ghost vertices) as a fourth
//!   optimized channel, demonstrating that new optimizations are "just
//!   another channel" (§IV-B).
//!
//! Channels *compose*: an algorithm lists one channel per communication
//! pattern (e.g. the S-V program composes `RequestRespond` +
//! `ScatterCombine` + `CombinedMessage` + `Aggregator`) and every pattern
//! is optimized independently — the composition the paper's title is about.

pub mod channel;
pub mod combine;
pub mod engine;
pub mod frontier;
pub mod optimized;
pub mod standard;

pub use channel::{Channel, ChannelSet, DeserializeCx, SerializeCx, VertexCtx, WorkerEnv};
pub use combine::Combine;
pub use engine::{run, Algorithm, Output};

/// Implement the multi-process value hooks of [`Algorithm`]
/// (`encode_value`/`decode_value`) by delegating to the value type's
/// [`pc_bsp::Codec`] implementation. Expand inside an `impl Algorithm`
/// block:
///
/// ```ignore
/// impl Algorithm for MyAlgo {
///     type Value = f64;
///     pc_channels::dist_value_via_codec!();
///     // channels(), compute() ...
/// }
/// ```
#[macro_export]
macro_rules! dist_value_via_codec {
    () => {
        fn encode_value(value: &Self::Value, buf: &mut ::std::vec::Vec<u8>) {
            ::pc_bsp::Codec::encode(value, buf)
        }
        fn decode_value(r: &mut ::pc_bsp::Reader<'_>) -> Self::Value {
            ::pc_bsp::Codec::decode(r)
        }
    };
}
pub use optimized::mirror::Mirror;
pub use optimized::propagation::Propagation;
pub use optimized::reqresp::RequestRespond;
pub use optimized::scatter::ScatterCombine;
pub use standard::aggregator::Aggregator;
pub use standard::combined::CombinedMessage;
pub use standard::direct::DirectMessage;
