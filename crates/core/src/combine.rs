//! Message combiners.
//!
//! A [`Combine`] pairs an identity value with an associative, commutative
//! binary operation. Channels use it to merge messages addressed to the
//! same receiver — on the sender side (scatter-combine, combined-message)
//! and again on the receiver side. One of the paper's observations
//! (§V-A analysis) is that per-channel combiners apply in programs where a
//! single *global* Pregel combiner cannot; this type is what makes the
//! per-channel form trivial to express.

use std::sync::Arc;

/// Shared fold step.
type FoldFn<V> = Arc<dyn Fn(&mut V, V) + Send + Sync>;

/// An identity element plus an associative, commutative fold step.
///
/// Cheap to clone (the closure is shared); every worker clones the
/// algorithm's combiner into its own channel instance.
#[derive(Clone)]
pub struct Combine<V> {
    identity: V,
    f: FoldFn<V>,
}

impl<V: Clone> Combine<V> {
    /// Build from an identity and a fold step `f(acc, v)`.
    ///
    /// `f` must be associative and commutative up to the algorithm's
    /// tolerance — message arrival order is unspecified.
    pub fn new(identity: V, f: impl Fn(&mut V, V) + Send + Sync + 'static) -> Self {
        Combine {
            identity,
            f: Arc::new(f),
        }
    }

    /// A fresh copy of the identity element.
    pub fn identity(&self) -> V {
        self.identity.clone()
    }

    /// Fold `v` into `acc`.
    #[inline]
    pub fn apply(&self, acc: &mut V, v: V) {
        (self.f)(acc, v);
    }

    /// Combine two values into one.
    pub fn join(&self, mut a: V, b: V) -> V {
        self.apply(&mut a, b);
        a
    }

    /// Fold an iterator starting from the identity.
    pub fn fold(&self, it: impl IntoIterator<Item = V>) -> V {
        let mut acc = self.identity();
        for v in it {
            self.apply(&mut acc, v);
        }
        acc
    }
}

impl<V: Ord + Clone> Combine<V> {
    /// Minimum with explicit identity (usually the type's max value).
    pub fn min_with_identity(identity: V) -> Self {
        Combine::new(identity, |acc: &mut V, v: V| {
            if v < *acc {
                *acc = v;
            }
        })
    }

    /// Maximum with explicit identity (usually the type's min value).
    pub fn max_with_identity(identity: V) -> Self {
        Combine::new(identity, |acc: &mut V, v: V| {
            if v > *acc {
                *acc = v;
            }
        })
    }
}

impl Combine<u32> {
    /// `min` over `u32` (identity `u32::MAX`).
    pub fn min_u32() -> Self {
        Combine::min_with_identity(u32::MAX)
    }
}

impl Combine<u64> {
    /// `min` over `u64` (identity `u64::MAX`).
    pub fn min_u64() -> Self {
        Combine::min_with_identity(u64::MAX)
    }

    /// Sum over `u64` (identity 0).
    pub fn sum_u64() -> Self {
        Combine::new(0u64, |acc, v| *acc += v)
    }
}

impl Combine<f64> {
    /// Sum over `f64` (identity 0.0).
    pub fn sum_f64() -> Self {
        Combine::new(0.0f64, |acc, v| *acc += v)
    }

    /// Minimum over `f64` (identity +inf).
    pub fn min_f64() -> Self {
        Combine::new(f64::INFINITY, |acc: &mut f64, v| {
            if v < *acc {
                *acc = v;
            }
        })
    }
}

impl Combine<bool> {
    /// Logical OR (identity false).
    pub fn or() -> Self {
        Combine::new(false, |acc, v| *acc |= v)
    }

    /// Logical AND (identity true).
    pub fn and() -> Self {
        Combine::new(true, |acc, v| *acc &= v)
    }
}

impl<V> std::fmt::Debug for Combine<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Combine { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_and_max() {
        let min = Combine::min_u32();
        assert_eq!(min.fold([5, 3, 9]), 3);
        assert_eq!(min.fold(std::iter::empty()), u32::MAX);
        let max = Combine::max_with_identity(0u32);
        assert_eq!(max.fold([5, 3, 9]), 9);
    }

    #[test]
    fn sums() {
        assert_eq!(Combine::sum_u64().fold([1, 2, 3]), 6);
        assert!((Combine::sum_f64().fold([0.5, 0.25]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn boolean_folds() {
        assert!(Combine::or().fold([false, true]));
        assert!(!Combine::or().fold(std::iter::empty()));
        assert!(!Combine::and().fold([true, false]));
        assert!(Combine::and().fold(std::iter::empty()));
    }

    #[test]
    fn join_and_apply_agree() {
        let c = Combine::min_u32();
        let mut acc = 9;
        c.apply(&mut acc, 4);
        assert_eq!(acc, 4);
        assert_eq!(c.join(9, 4), 4);
    }

    #[test]
    fn clones_share_behaviour() {
        let c = Combine::new(0u64, |acc, v| *acc += 2 * v);
        let d = c.clone();
        assert_eq!(c.fold([1, 2]), d.fold([1, 2]));
    }
}
