//! The [`Channel`] abstraction (Fig. 3 of the paper) and the contexts the
//! engine hands to channels and vertices.
//!
//! A channel lives between the vertices and the worker's raw buffers: in
//! every exchange round the engine asks each active channel to
//! [`Channel::serialize`] its outgoing data into per-destination frames,
//! swaps buffers with the other workers, and then asks the channel to
//! [`Channel::deserialize`] the frames addressed to it. A channel that
//! answers `true` from [`Channel::again`] keeps the round loop going —
//! that is how request/respond gets its second phase and how propagation
//! converges inside a single superstep.

use crate::frontier::Frontier;
use pc_bsp::buffer::{FrameSpan, FrameWriter, OutBuffers};
use pc_bsp::codec::Reader;
use pc_bsp::metrics::ByteCounter;
use pc_bsp::topology::Topology;
use pc_graph::VertexId;
use std::sync::Arc;

/// Static description of the worker a channel instance belongs to.
#[derive(Debug, Clone)]
pub struct WorkerEnv {
    /// This worker's id in `0..workers`.
    pub worker: usize,
    /// Shared ownership map.
    pub topo: Arc<Topology>,
}

impl WorkerEnv {
    /// Number of workers in the simulated cluster.
    pub fn workers(&self) -> usize {
        self.topo.workers()
    }

    /// Number of vertices on this worker.
    pub fn local_count(&self) -> usize {
        self.topo.local_count(self.worker)
    }

    /// Total vertices in the graph.
    pub fn n(&self) -> usize {
        self.topo.n()
    }

    /// Global id of the local vertex with index `local`.
    pub fn global_of(&self, local: u32) -> VertexId {
        self.topo.locals(self.worker)[local as usize]
    }

    /// Owning worker of a global vertex id.
    #[inline]
    pub fn worker_of(&self, v: VertexId) -> usize {
        self.topo.worker_of(v)
    }

    /// Local index of a global vertex id on its owning worker.
    #[inline]
    pub fn local_of(&self, v: VertexId) -> u32 {
        self.topo.local_of(v)
    }
}

/// Per-vertex view passed to [`crate::Algorithm::compute`].
#[derive(Debug)]
pub struct VertexCtx<'a> {
    /// Global vertex id.
    pub id: VertexId,
    /// Local index on this worker (used as the channel-slot index).
    pub local: u32,
    pub(crate) step: u64,
    pub(crate) halted: bool,
    pub(crate) env: &'a WorkerEnv,
}

impl VertexCtx<'_> {
    /// 1-based superstep number, as in Pregel's `step_num()`.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Total vertices in the graph (`get_vnum()` in the paper's Fig. 1).
    pub fn num_vertices(&self) -> usize {
        self.env.n()
    }

    /// Halt this vertex; it stays halted until a channel re-activates it.
    pub fn vote_to_halt(&mut self) {
        self.halted = true;
    }

    /// The worker environment.
    pub fn env(&self) -> &WorkerEnv {
        self.env
    }
}

/// Context for [`Channel::serialize`]: opens per-destination frames and
/// accounts their bytes to the channel.
pub struct SerializeCx<'a> {
    pub(crate) channel_id: u16,
    pub(crate) env: &'a WorkerEnv,
    pub(crate) out: &'a mut OutBuffers,
    pub(crate) bytes: &'a mut ByteCounter,
}

impl SerializeCx<'_> {
    /// The worker environment.
    pub fn env(&self) -> &WorkerEnv {
        self.env
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.out.workers()
    }

    /// Write one frame to `peer`; `fill` appends the payload. Empty frames
    /// are elided and cost nothing on the wire.
    pub fn frame(&mut self, peer: usize, fill: impl FnOnce(&mut Vec<u8>)) {
        let before = self.out.buf(peer).len();
        let mut fw = FrameWriter::begin(self.out.buf(peer), self.channel_id);
        fill(fw.payload());
        fw.finish();
        let used = (self.out.buf(peer).len() - before) as u64;
        if used > 0 {
            if peer == self.out.self_id() {
                self.bytes.local += used;
            } else {
                self.bytes.remote += used;
            }
        }
    }
}

/// Context for [`Channel::deserialize`]: the frames addressed to this
/// channel in this round, read access to local vertex values, and the
/// activation interface (how channels wake halted vertices, simulating
/// Pregel's message-driven reactivation).
pub struct DeserializeCx<'a, AV> {
    pub(crate) env: &'a WorkerEnv,
    /// This channel's frames, as offsets into `bufs` (the engine reuses
    /// the span tables across rounds — see [`FrameSpan`]).
    pub(crate) spans: &'a [FrameSpan],
    /// The round's received `(sender, buffer)` pairs.
    pub(crate) bufs: &'a [(usize, Vec<u8>)],
    pub(crate) values: &'a [AV],
    pub(crate) frontier: &'a mut Frontier,
}

impl<'a, AV> DeserializeCx<'a, AV> {
    /// The worker environment.
    pub fn env(&self) -> &WorkerEnv {
        self.env
    }

    /// Iterate `(sender, payload-reader)` over this round's frames. The
    /// iterator borrows the frame data, not the context, so `activate` can
    /// be called while iterating.
    pub fn frames(&self) -> impl Iterator<Item = (usize, Reader<'a>)> + 'a {
        let bufs = self.bufs;
        self.spans.iter().map(move |span| {
            let (from, data) = &bufs[span.buf as usize];
            (
                *from,
                Reader::new(&data[span.start as usize..span.end as usize]),
            )
        })
    }

    /// Read a local vertex's value (the state *after* this superstep's
    /// `compute`) — request/respond uses this to produce responses.
    pub fn value(&self, local: u32) -> &AV {
        &self.values[local as usize]
    }

    /// Re-activate a local vertex for the next superstep.
    pub fn activate(&mut self, local: u32) {
        self.frontier.activate(local);
    }
}

/// A message container implementing one communication pattern
/// (the base class of Fig. 3).
///
/// `AV` is the algorithm's per-vertex value type; most channels ignore it,
/// but request/respond reads it to compute responses.
pub trait Channel<AV>: Send {
    /// Channel name for metrics ("msg", "scatter", "reqresp", …).
    fn name(&self) -> &'static str;

    /// Called once per superstep before any `compute`; channels swap their
    /// receive buffers here so data sent in superstep `s` is readable in
    /// `s + 1`.
    fn before_superstep(&mut self, _step: u64) {}

    /// Write this round's outgoing frames.
    fn serialize(&mut self, cx: &mut SerializeCx<'_>);

    /// Consume this round's incoming frames.
    fn deserialize(&mut self, cx: &mut DeserializeCx<'_, AV>);

    /// Request another exchange round within this superstep. The engine
    /// ORs this across workers, so answering `true` on any worker keeps the
    /// channel active everywhere.
    fn again(&self) -> bool {
        false
    }

    /// Application-level messages produced so far (unit is
    /// channel-specific: combined values, requests, label updates, …).
    fn message_count(&self) -> u64 {
        0
    }

    /// `(mirrored, saved)`: messages sent as per-worker mirror broadcasts,
    /// and the per-edge messages those broadcasts avoided. Non-zero only
    /// for channels that replicate vertices (the Mirror channel).
    fn mirror_stats(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Serialize this channel's cross-superstep state for a checkpoint
    /// taken at a superstep boundary (all exchange rounds finished, the
    /// frontier advanced, nothing in flight). Everything a restored
    /// instance cannot rebuild from [`crate::Algorithm::channels`] alone
    /// must be written: registered routes, staged receive state for the
    /// next superstep's `before_superstep`, the message counter.
    ///
    /// Return `true` when the state was written; the default returns
    /// `false`, marking the channel as not checkpointable (the engine
    /// refuses to start a checkpointing run over such a channel, before
    /// the first superstep).
    fn encode_state(&self, buf: &mut Vec<u8>) -> bool {
        let _ = buf;
        false
    }

    /// Restore state written by [`Channel::encode_state`] into a freshly
    /// constructed instance. Only called when `encode_state` returned
    /// `true`; the default is therefore unreachable.
    fn decode_state(&mut self, r: &mut Reader<'_>) {
        let _ = r;
        unreachable!(
            "decode_state called on channel '{}', which never encodes state",
            self.name()
        )
    }
}

/// A fixed collection of channels — the engine iterates them untyped, the
/// algorithm's `compute` uses them fully typed. Implemented for tuples of
/// up to six channels.
pub trait ChannelSet<AV>: Send {
    /// Number of channels in the set.
    fn len(&self) -> usize;

    /// True when the set is empty (a pure-local algorithm).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visit each channel with its index.
    fn for_each(&mut self, f: &mut dyn FnMut(u16, &mut dyn Channel<AV>));
}

macro_rules! channel_set_tuple {
    ($( $name:ident : $idx:tt ),* ; $len:expr) => {
        impl<AV, $($name: Channel<AV>),*> ChannelSet<AV> for ($($name,)*) {
            fn len(&self) -> usize { $len }
            fn for_each(&mut self, f: &mut dyn FnMut(u16, &mut dyn Channel<AV>)) {
                $( f($idx as u16, &mut self.$idx); )*
            }
        }
    };
}

impl<AV> ChannelSet<AV> for () {
    fn len(&self) -> usize {
        0
    }
    fn for_each(&mut self, _f: &mut dyn FnMut(u16, &mut dyn Channel<AV>)) {}
}

channel_set_tuple!(A:0; 1);
channel_set_tuple!(A:0, B:1; 2);
channel_set_tuple!(A:0, B:1, C:2; 3);
channel_set_tuple!(A:0, B:1, C:2, D:3; 4);
channel_set_tuple!(A:0, B:1, C:2, D:3, E:4; 5);
channel_set_tuple!(A:0, B:1, C:2, D:3, E:4, F:5; 6);

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe(&'static str);
    impl Channel<u32> for Probe {
        fn name(&self) -> &'static str {
            self.0
        }
        fn serialize(&mut self, _cx: &mut SerializeCx<'_>) {}
        fn deserialize(&mut self, _cx: &mut DeserializeCx<'_, u32>) {}
    }

    #[test]
    fn tuples_enumerate_in_order() {
        let mut set = (Probe("a"), Probe("b"), Probe("c"));
        let mut seen = Vec::new();
        ChannelSet::<u32>::for_each(&mut set, &mut |i, c| seen.push((i, c.name())));
        assert_eq!(seen, vec![(0, "a"), (1, "b"), (2, "c")]);
        assert_eq!(ChannelSet::<u32>::len(&set), 3);
    }

    #[test]
    fn empty_set() {
        let mut set = ();
        let mut called = false;
        ChannelSet::<u32>::for_each(&mut set, &mut |_, _| called = true);
        assert!(!called);
        assert!(ChannelSet::<u32>::is_empty(&set));
    }

    #[test]
    fn worker_env_lookups() {
        let topo = Arc::new(Topology::from_owners(2, vec![0, 1, 0, 1]));
        let env = WorkerEnv { worker: 0, topo };
        assert_eq!(env.workers(), 2);
        assert_eq!(env.n(), 4);
        assert_eq!(env.local_count(), 2);
        assert_eq!(env.global_of(1), 2);
        assert_eq!(env.worker_of(3), 1);
        assert_eq!(env.local_of(3), 1);
    }
}
