//! The channel engine: the worker computation logic of Fig. 4.
//!
//! ```text
//! load_graph(); channels.initialize(); all vertices active
//! while active vertex exists:            // a superstep
//!     for active vertex v: compute(v)
//!     all channels active
//!     while active channel exists:       // an exchange round
//!         for active channel c: c.serialize()
//!         buffer_exchange()
//!         for active channel c: c.deserialize(); c.set_active(c.again())
//! ```
//!
//! The engine runs the same per-worker phases under two drivers: a
//! deterministic [`ExecMode::Sequential`] loop and a threaded
//! [`ExecMode::Threads`] driver with one OS thread per worker (barrier +
//! mailbox rendezvous). Channel activity and vertex activity are global
//! decisions: per-channel `again()` flags are OR-reduced across workers and
//! active-vertex counts are sum-reduced, so all workers leave the loops
//! together.

use crate::channel::{ChannelSet, DeserializeCx, SerializeCx, VertexCtx, WorkerEnv};
use pc_bsp::buffer::{iter_frames, OutBuffers};
use pc_bsp::exchange::Hub;
use pc_bsp::metrics::{ByteCounter, ChannelMetrics, RunStats};
use pc_bsp::topology::Topology;
use pc_bsp::{Config, ExecMode};
use std::sync::Arc;
use std::time::Instant;

/// A channel-based vertex-centric program.
///
/// Implementations are shared (by reference) across worker threads, so the
/// usual pattern is to keep the graph in an `Arc` field and read adjacency
/// inside [`Algorithm::compute`].
pub trait Algorithm: Sync {
    /// Per-vertex state.
    type Value: Clone + Default + Send + 'static;
    /// The program's channels — a tuple, one element per communication
    /// pattern.
    type Channels: ChannelSet<Self::Value>;

    /// Construct this worker's channel instances.
    fn channels(&self, env: &WorkerEnv) -> Self::Channels;

    /// The vertex program, run once per active vertex per superstep.
    fn compute(&self, v: &mut VertexCtx<'_>, value: &mut Self::Value, ch: &mut Self::Channels);
}

/// Result of a run: the final vertex values (indexed by global vertex id)
/// and the run statistics.
#[derive(Debug, Clone)]
pub struct Output<V> {
    /// Final per-vertex values, `values[v]` for global id `v`.
    pub values: Vec<V>,
    /// Supersteps, rounds, wall time, per-channel bytes/messages.
    pub stats: RunStats,
}

/// Per-worker run result: `(global id, value)` pairs plus channel metrics.
type WorkerPart<V> = (Vec<(u32, V)>, Vec<ChannelMetrics>);

struct WorkerState<'a, A: Algorithm> {
    algo: &'a A,
    env: WorkerEnv,
    values: Vec<A::Value>,
    active: Vec<bool>,
    next_active: Vec<bool>,
    channels: A::Channels,
    out: OutBuffers,
    bytes: Vec<ByteCounter>,
    step: u64,
}

impl<'a, A: Algorithm> WorkerState<'a, A> {
    fn new(algo: &'a A, topo: &Arc<Topology>, worker: usize) -> Self {
        let env = WorkerEnv { worker, topo: Arc::clone(topo) };
        let numv = env.local_count();
        let channels = algo.channels(&env);
        let n_channels = channels.len();
        assert!(n_channels <= 64, "at most 64 channels per algorithm");
        WorkerState {
            algo,
            env,
            values: vec![A::Value::default(); numv],
            active: vec![true; numv],
            next_active: vec![false; numv],
            channels,
            out: OutBuffers::new(worker, topo.workers()),
            bytes: vec![ByteCounter::default(); n_channels],
            step: 0,
        }
    }

    fn worker(&self) -> usize {
        self.env.worker
    }

    fn channel_mask(&self) -> u64 {
        let n = self.channels.len();
        if n == 0 {
            0
        } else if n == 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    /// Superstep prologue: bump the counter and let channels swap their
    /// receive buffers, then run `compute` on every active vertex.
    fn compute_phase(&mut self) {
        self.step += 1;
        let step = self.step;
        self.channels.for_each(&mut |_, ch| ch.before_superstep(step));
        let WorkerState { algo, env, values, active, next_active, channels, .. } = self;
        let locals = env.topo.locals(env.worker);
        for (li, (&gid, value)) in locals.iter().zip(values.iter_mut()).enumerate() {
            if !active[li] {
                continue;
            }
            let mut ctx = VertexCtx { id: gid, local: li as u32, step, halted: false, env };
            algo.compute(&mut ctx, value, channels);
            if !ctx.halted {
                next_active[li] = true;
            }
        }
    }

    /// Serialize the channels named in `mask` into the out-buffers.
    fn serialize_phase(&mut self, mask: u64) {
        let WorkerState { env, channels, out, bytes, .. } = self;
        channels.for_each(&mut |i, ch| {
            if mask & (1 << i) == 0 {
                return;
            }
            let mut cx = SerializeCx {
                channel_id: i,
                env,
                out: &mut *out,
                bytes: &mut bytes[i as usize],
            };
            ch.serialize(&mut cx);
        });
    }

    /// Move the out-buffers to their destinations (returned to the driver).
    fn drain(&mut self) -> Vec<(usize, Vec<u8>)> {
        // Frame bytes were already attributed per channel in SerializeCx;
        // the drain-side counter is only a cross-check.
        let mut scratch = ByteCounter::default();
        self.out.drain_into(&mut scratch)
    }

    /// Deserialize this round's received buffers into the channels named in
    /// `mask`; returns the bitmask of channels asking for another round.
    fn deserialize_phase(&mut self, received: &[(usize, Vec<u8>)], mask: u64) -> u64 {
        let n_channels = self.channels.len();
        let mut per_channel: Vec<Vec<(usize, &[u8])>> = vec![Vec::new(); n_channels];
        for (from, buf) in received {
            for (cid, payload) in iter_frames(buf) {
                per_channel[cid as usize].push((*from, payload));
            }
        }
        let WorkerState { env, values, next_active, channels, .. } = self;
        let mut again = 0u64;
        channels.for_each(&mut |i, ch| {
            if mask & (1 << i) == 0 {
                return;
            }
            let mut cx = DeserializeCx {
                env,
                frames: &per_channel[i as usize],
                values,
                next_active,
            };
            ch.deserialize(&mut cx);
            if ch.again() {
                again |= 1 << i;
            }
        });
        again
    }

    /// Superstep epilogue: publish next-superstep activity; returns the
    /// local active-vertex count.
    fn end_superstep(&mut self) -> u64 {
        std::mem::swap(&mut self.active, &mut self.next_active);
        self.next_active.iter_mut().for_each(|b| *b = false);
        self.active.iter().filter(|&&b| b).count() as u64
    }

    /// Final per-worker results: `(global_id, value)` pairs plus channel
    /// metrics.
    fn finish(mut self) -> WorkerPart<A::Value> {
        let locals = self.env.topo.locals(self.env.worker);
        let pairs = locals.iter().copied().zip(self.values).collect();
        let mut metrics = Vec::with_capacity(self.channels.len());
        let bytes = &self.bytes;
        self.channels.for_each(&mut |i, ch| {
            metrics.push(ChannelMetrics {
                name: ch.name().to_string(),
                bytes: bytes[i as usize],
                messages: ch.message_count(),
            });
        });
        (pairs, metrics)
    }
}

/// Run an algorithm over a partitioned graph.
///
/// Returns the final vertex values (dense, by global id) and [`RunStats`].
pub fn run<A: Algorithm>(algo: &A, topo: &Arc<Topology>, cfg: &Config) -> Output<A::Value> {
    assert_eq!(
        topo.workers(),
        cfg.workers,
        "topology was built for {} workers but config asks for {}",
        topo.workers(),
        cfg.workers
    );
    match cfg.mode {
        ExecMode::Sequential => run_sequential(algo, topo, cfg),
        ExecMode::Threads => run_threaded(algo, topo, cfg),
    }
}

fn assemble<V: Clone + Default>(n: usize, parts: Vec<WorkerPart<V>>, stats: &mut RunStats) -> Vec<V> {
    let mut values = vec![V::default(); n];
    for (pairs, metrics) in parts {
        stats.absorb_channels(metrics);
        for (gid, v) in pairs {
            values[gid as usize] = v;
        }
    }
    values
}

fn run_sequential<A: Algorithm>(algo: &A, topo: &Arc<Topology>, cfg: &Config) -> Output<A::Value> {
    let workers = cfg.workers;
    let mut states: Vec<WorkerState<'_, A>> =
        (0..workers).map(|w| WorkerState::new(algo, topo, w)).collect();
    let mut stats = RunStats::default();
    let start = Instant::now();
    loop {
        for s in &mut states {
            s.compute_phase();
        }
        stats.supersteps += 1;
        let mut mask = states[0].channel_mask();
        while mask != 0 {
            for s in &mut states {
                s.serialize_phase(mask);
            }
            let mut inbox: Vec<Vec<(usize, Vec<u8>)>> = vec![Vec::new(); workers];
            for s in &mut states {
                let from = s.worker();
                for (peer, buf) in s.drain() {
                    inbox[peer].push((from, buf));
                }
            }
            let mut again = 0u64;
            for (w, s) in states.iter_mut().enumerate() {
                again |= s.deserialize_phase(&inbox[w], mask);
            }
            stats.rounds += 1;
            mask = again;
        }
        let active: u64 = states.iter_mut().map(|s| s.end_superstep()).sum();
        if active == 0 {
            break;
        }
        assert!(
            stats.supersteps < cfg.max_supersteps,
            "exceeded max_supersteps = {}",
            cfg.max_supersteps
        );
    }
    stats.elapsed = start.elapsed();
    let parts = states.into_iter().map(|s| s.finish()).collect();
    let values = assemble(topo.n(), parts, &mut stats);
    Output { values, stats }
}

fn run_threaded<A: Algorithm>(algo: &A, topo: &Arc<Topology>, cfg: &Config) -> Output<A::Value> {
    let workers = cfg.workers;
    let hub = Hub::new(workers, 1);
    let start = Instant::now();
    let mut results: Vec<Option<WorkerPart<A::Value>>> = Vec::new();
    results.resize_with(workers, || None);
    let mut counters = (0u64, 0u64); // (supersteps, rounds) — identical on all workers
    std::thread::scope(|scope| {
        let hub = &hub;
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            handles.push(scope.spawn(move || {
                let mut s = WorkerState::new(algo, topo, w);
                let mut supersteps = 0u64;
                let mut rounds = 0u64;
                loop {
                    s.compute_phase();
                    supersteps += 1;
                    let mut mask = s.channel_mask();
                    // All workers computed identical masks, so the round
                    // loop stays in lock-step.
                    while mask != 0 {
                        s.serialize_phase(mask);
                        let from = s.worker();
                        for (peer, buf) in s.drain() {
                            hub.mailbox().post(from, peer, buf);
                        }
                        hub.sync();
                        let received = hub.mailbox().take_all_for(w);
                        let again = s.deserialize_phase(&received, mask);
                        mask = hub.reduce_or(w, &[again])[0];
                        rounds += 1;
                    }
                    let local_active = s.end_superstep();
                    let total = hub.reduce(w, &[local_active])[0];
                    if total == 0 {
                        break;
                    }
                    assert!(
                        supersteps < cfg.max_supersteps,
                        "exceeded max_supersteps = {}",
                        cfg.max_supersteps
                    );
                }
                (w, s.finish(), supersteps, rounds)
            }));
        }
        for h in handles {
            let (w, part, supersteps, rounds) = h.join().expect("worker thread panicked");
            results[w] = Some(part);
            counters = (supersteps, rounds);
        }
    });
    let mut stats = RunStats { supersteps: counters.0, rounds: counters.1, ..Default::default() };
    let parts = results.into_iter().map(|r| r.expect("missing worker result")).collect();
    let values = assemble(topo.n(), parts, &mut stats);
    stats.elapsed = start.elapsed();
    Output { values, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, DeserializeCx, SerializeCx};
    use pc_bsp::Codec;
    // (Channel is only needed by the probe channels defined below.)

    /// An algorithm with no channels: every vertex counts to 3 then halts.
    struct CountToThree;
    impl Algorithm for CountToThree {
        type Value = u64;
        type Channels = ();
        fn channels(&self, _env: &WorkerEnv) -> Self::Channels {}
        fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u64, _ch: &mut ()) {
            *value += 1;
            if v.step() >= 3 {
                v.vote_to_halt();
            }
        }
    }

    #[test]
    fn channel_free_algorithm_terminates() {
        let topo = Arc::new(Topology::hashed(100, 4));
        for cfg in [Config::sequential(4), Config::with_workers(4)] {
            let out = run(&CountToThree, &topo, &cfg);
            assert_eq!(out.stats.supersteps, 3);
            assert!(out.values.iter().all(|&v| v == 3));
            assert_eq!(out.stats.remote_bytes(), 0);
        }
    }

    /// A ring-forwarding channel used to test activation, rounds and byte
    /// accounting: each vertex sends its id to `(id + 1) % n` once.
    struct RingChannel {
        env: WorkerEnv,
        staged: Vec<(u32, u64)>,      // (dst global, payload)
        incoming: Vec<(u32, u64)>,    // (dst local, payload)
        readable: Vec<(u32, u64)>,
        messages: u64,
    }
    impl RingChannel {
        fn new(env: &WorkerEnv) -> Self {
            RingChannel {
                env: env.clone(),
                staged: Vec::new(),
                incoming: Vec::new(),
                readable: Vec::new(),
                messages: 0,
            }
        }
        fn send(&mut self, dst: u32, v: u64) {
            self.staged.push((dst, v));
        }
    }
    impl Channel<u64> for RingChannel {
        fn name(&self) -> &'static str {
            "ring"
        }
        fn before_superstep(&mut self, _step: u64) {
            self.readable = std::mem::take(&mut self.incoming);
        }
        fn serialize(&mut self, cx: &mut SerializeCx<'_>) {
            let staged = std::mem::take(&mut self.staged);
            for peer in 0..cx.workers() {
                let msgs: Vec<&(u32, u64)> = staged
                    .iter()
                    .filter(|(dst, _)| self.env.worker_of(*dst) == peer)
                    .collect();
                if msgs.is_empty() {
                    continue;
                }
                cx.frame(peer, |buf| {
                    for (dst, v) in msgs {
                        dst.encode(buf);
                        v.encode(buf);
                    }
                });
            }
            self.messages += staged.len() as u64;
        }
        fn deserialize(&mut self, cx: &mut DeserializeCx<'_, u64>) {
            for (_from, mut r) in cx.frames() {
                while !r.is_empty() {
                    let dst: u32 = r.get();
                    let v: u64 = r.get();
                    let local = self.env.local_of(dst);
                    self.incoming.push((local, v));
                    cx.activate(local);
                }
            }
        }
        fn message_count(&self) -> u64 {
            self.messages
        }
    }

    /// Send id to the ring successor at step 1, sum what arrives at step 2.
    struct RingSum {
        n: u32,
    }
    impl Algorithm for RingSum {
        type Value = u64;
        type Channels = (RingChannel,);
        fn channels(&self, env: &WorkerEnv) -> Self::Channels {
            (RingChannel::new(env),)
        }
        fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u64, ch: &mut Self::Channels) {
            if v.step() == 1 {
                ch.0.send((v.id + 1) % self.n, v.id as u64 + 1);
                v.vote_to_halt();
            } else {
                *value = ch
                    .0
                    .readable
                    .iter()
                    .filter(|&&(local, _)| local == v.local)
                    .map(|&(_, m)| m)
                    .sum();
                v.vote_to_halt();
            }
        }
    }

    #[test]
    fn messages_flow_and_reactivate() {
        let n = 64u32;
        let topo = Arc::new(Topology::hashed(n as usize, 3));
        for cfg in [Config::sequential(3), Config::with_workers(3)] {
            let out = run(&RingSum { n }, &topo, &cfg);
            // Vertex v receives (v == 0 ? n : v) from its predecessor.
            for v in 0..n as usize {
                let expect = if v == 0 { n as u64 } else { v as u64 };
                assert_eq!(out.values[v], expect, "vertex {v}");
            }
            assert_eq!(out.stats.supersteps, 2);
            assert_eq!(out.stats.messages(), n as u64);
            assert!(out.stats.remote_bytes() > 0);
            assert_eq!(out.stats.channels.len(), 1);
            assert_eq!(out.stats.channels[0].name, "ring");
        }
    }

    #[test]
    fn sequential_and_threaded_agree_on_bytes() {
        let n = 200u32;
        let topo = Arc::new(Topology::hashed(n as usize, 4));
        let a = run(&RingSum { n }, &topo, &Config::sequential(4));
        let b = run(&RingSum { n }, &topo, &Config::with_workers(4));
        assert_eq!(a.values, b.values);
        assert_eq!(a.stats.remote_bytes(), b.stats.remote_bytes());
        assert_eq!(a.stats.supersteps, b.stats.supersteps);
        assert_eq!(a.stats.rounds, b.stats.rounds);
    }

    #[test]
    #[should_panic(expected = "exceeded max_supersteps")]
    fn runaway_program_is_caught() {
        struct Forever;
        impl Algorithm for Forever {
            type Value = u64;
            type Channels = ();
            fn channels(&self, _env: &WorkerEnv) -> Self::Channels {}
            fn compute(&self, _v: &mut VertexCtx<'_>, _value: &mut u64, _ch: &mut ()) {}
        }
        let topo = Arc::new(Topology::hashed(10, 2));
        let cfg = Config { max_supersteps: 50, ..Config::sequential(2) };
        run(&Forever, &topo, &cfg);
    }

    #[test]
    fn single_worker_runs() {
        let topo = Arc::new(Topology::hashed(32, 1));
        let out = run(&RingSum { n: 32 }, &topo, &Config::sequential(1));
        assert_eq!(out.stats.remote_bytes(), 0, "all traffic is loop-back");
        assert!(out.stats.total_bytes() > 0);
    }
}
