//! The channel engine: the worker computation logic of Fig. 4.
//!
//! ```text
//! load_graph(); channels.initialize(); all vertices active
//! while active vertex exists:            // a superstep
//!     for active vertex v: compute(v)
//!     all channels active
//!     while active channel exists:       // an exchange round
//!         for active channel c: c.serialize()
//!         buffer_exchange()
//!         for active channel c: c.deserialize(); c.set_active(c.again())
//! ```
//!
//! The engine runs the same per-worker phases under two drivers: a
//! deterministic [`ExecMode::Sequential`] loop and a threaded
//! [`ExecMode::Threads`] driver with one OS thread per worker. The
//! threaded driver is generic over an [`ExchangeTransport`] — the
//! rendezvous surface (post/sync/flush/take/recycle/reduce) behind which
//! the backends live: the shared-memory [`InProcess`] hub (default) or
//! the real-socket [`pc_bsp::tcp::Tcp`] mesh, synchronous (`tcp`) or
//! non-blocking batched (`tcp-batched`, where `sync` only queues and the
//! take drives the socket mesh until the round quiesces), selected by
//! [`pc_bsp::TransportKind`] in the [`Config`]. Channel activity and
//! vertex activity are global decisions: per-channel `again()` flags are
//! OR-reduced across workers and active-vertex counts are sum-reduced, so
//! all workers leave the loops together.
//!
//! The steady-state loop is allocation-free and synchronization-lean:
//!
//! * active vertices live in an epoch-stamped [`Frontier`] worklist, so a
//!   superstep costs O(active), not O(n/workers);
//! * outgoing buffers are swapped against a per-worker
//!   [`BufferPool`](pc_bsp::pool::BufferPool) and consumed receive buffers
//!   cycle back to their sender (directly in sequential mode, through the
//!   transport's return path in threaded mode), with a per-round
//!   high-water trim releasing capacity a one-off giant superstep would
//!   otherwise pin;
//! * frame routing reuses per-channel [`FrameSpan`] tables instead of
//!   rebuilding nested vectors every round;
//! * a threaded round synchronizes exactly twice (the post/take
//!   rendezvous + the fused `again`/active-count reduction of
//!   [`ExchangeTransport::reduce_round`]).

use crate::channel::{ChannelSet, DeserializeCx, SerializeCx, VertexCtx, WorkerEnv};
use crate::frontier::Frontier;
use pc_bsp::buffer::{frame_spans, FrameSpan, OutBuffers};
use pc_bsp::codec::{Codec, Reader};
use pc_bsp::metrics::{ByteCounter, ChannelMetrics, RunStats, TransportStats};
use pc_bsp::pool::{BufferPool, PoolStats};
use pc_bsp::tcp::TcpOptions;
use pc_bsp::topology::Topology;
use pc_bsp::trace::{self, RankTrace, SpanKind, SuperstepStats, Tracer};
use pc_bsp::transport::{ExchangeTransport, InProcess};
use pc_bsp::{CkptPolicy, Config, ExecMode, RankRole, Tcp, TransportKind};
use pc_ckpt::{Manifest, RunId, Segment, Store, KEEP_COMMITTED};
use std::sync::Arc;
use std::time::Instant;

/// A channel-based vertex-centric program.
///
/// Implementations are shared (by reference) across worker threads, so the
/// usual pattern is to keep the graph in an `Arc` field and read adjacency
/// inside [`Algorithm::compute`].
pub trait Algorithm: Sync {
    /// Per-vertex state.
    type Value: Clone + Default + Send + 'static;
    /// The program's channels — a tuple, one element per communication
    /// pattern.
    type Channels: ChannelSet<Self::Value>;

    /// Construct this worker's channel instances.
    fn channels(&self, env: &WorkerEnv) -> Self::Channels;

    /// The vertex program, run once per active vertex per superstep.
    fn compute(&self, v: &mut VertexCtx<'_>, value: &mut Self::Value, ch: &mut Self::Channels);

    /// Serialize one final vertex value for cross-process result
    /// gathering. Multi-process runs ([`Config::dist`]) ship each rank's
    /// values to rank 0 over the exchange transport once the program
    /// terminates; in-process modes never call this.
    ///
    /// The default panics — implement both hooks (most easily via
    /// [`crate::dist_value_via_codec!`] when the value type implements
    /// [`Codec`]) to make an algorithm runnable under `Config::dist`.
    fn encode_value(value: &Self::Value, buf: &mut Vec<u8>) {
        let _ = (value, buf);
        panic!(
            "{} has no value serialization for multi-process runs; \
             implement Algorithm::encode_value/decode_value",
            std::any::type_name::<Self>()
        );
    }

    /// Deserialize one vertex value written by [`Algorithm::encode_value`].
    fn decode_value(r: &mut Reader<'_>) -> Self::Value {
        let _ = r;
        panic!(
            "{} has no value serialization for multi-process runs; \
             implement Algorithm::encode_value/decode_value",
            std::any::type_name::<Self>()
        );
    }
}

/// Result of a run: the final vertex values (indexed by global vertex id)
/// and the run statistics.
#[derive(Debug, Clone)]
pub struct Output<V> {
    /// Final per-vertex values, `values[v]` for global id `v`.
    pub values: Vec<V>,
    /// Supersteps, rounds, wall time, per-channel bytes/messages, buffer
    /// pool hit rate, barrier crossings.
    pub stats: RunStats,
}

/// Per-worker run result: `(global id, value)` pairs, channel metrics and
/// the worker's buffer-pool counters.
type WorkerPart<V> = (Vec<(u32, V)>, Vec<ChannelMetrics>, PoolStats);

/// Per-round buffer scratch: `(sender-or-peer, bytes)` pairs whose
/// capacity is reused across rounds.
type BufList = Vec<(usize, Vec<u8>)>;

struct WorkerState<'a, A: Algorithm> {
    algo: &'a A,
    env: WorkerEnv,
    values: Vec<A::Value>,
    frontier: Frontier,
    channels: A::Channels,
    out: OutBuffers,
    /// Freelist feeding [`OutBuffers::drain_into`]; refilled with the
    /// round's consumed receive buffers.
    pool: BufferPool,
    /// Per-channel frame routing tables, reused across rounds.
    spans: Vec<Vec<FrameSpan>>,
    bytes: Vec<ByteCounter>,
    step: u64,
}

/// Initial capacity of the buffers pre-warmed into each worker's pool —
/// enough for a typical small frame, so the first rounds of a short run
/// genuinely reuse the buffer instead of merely dodging the miss counter.
const PREWARM_CAPACITY: usize = 4096;

impl<'a, A: Algorithm> WorkerState<'a, A> {
    fn new(algo: &'a A, topo: &Arc<Topology>, worker: usize) -> Self {
        let env = WorkerEnv {
            worker,
            topo: Arc::clone(topo),
        };
        let numv = env.local_count();
        let channels = algo.channels(&env);
        let n_channels = channels.len();
        assert!(n_channels <= 64, "at most 64 channels per algorithm");
        // Pre-warm one buffer per peer: the first exchange round swaps a
        // buffer toward every destination, and on short runs those
        // warm-up misses used to dominate the hit rate (the
        // wcc_rmat_propagation entry of BENCH_exchange.json sat at 0.71).
        // Every execution mode pre-warms identically, so cross-mode
        // PoolStats determinism is untouched.
        let mut pool = BufferPool::new();
        pool.prewarm(topo.workers(), PREWARM_CAPACITY);
        WorkerState {
            algo,
            env,
            values: vec![A::Value::default(); numv],
            frontier: Frontier::all_active(numv),
            channels,
            out: OutBuffers::new(worker, topo.workers()),
            pool,
            spans: vec![Vec::new(); n_channels],
            bytes: vec![ByteCounter::default(); n_channels],
            step: 0,
        }
    }

    fn worker(&self) -> usize {
        self.env.worker
    }

    fn channel_mask(&self) -> u64 {
        let n = self.channels.len();
        if n == 0 {
            0
        } else if n == 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    /// Superstep prologue: bump the counter and let channels swap their
    /// receive buffers, then run `compute` on every active vertex
    /// (ascending local order, O(active)).
    fn compute_phase(&mut self) {
        self.step += 1;
        let step = self.step;
        self.channels
            .for_each(&mut |_, ch| ch.before_superstep(step));
        let WorkerState {
            algo,
            env,
            values,
            channels,
            frontier,
            ..
        } = self;
        let locals = env.topo.locals(env.worker);
        let (current, mut activator) = frontier.split();
        for &li in current {
            let mut ctx = VertexCtx {
                id: locals[li as usize],
                local: li,
                step,
                halted: false,
                env,
            };
            algo.compute(&mut ctx, &mut values[li as usize], channels);
            if !ctx.halted {
                activator.activate(li);
            }
        }
    }

    /// Serialize the channels named in `mask` into the out-buffers.
    fn serialize_phase(&mut self, mask: u64) {
        let WorkerState {
            env,
            channels,
            out,
            bytes,
            ..
        } = self;
        channels.for_each(&mut |i, ch| {
            if mask & (1 << i) == 0 {
                return;
            }
            let mut cx = SerializeCx {
                channel_id: i,
                env,
                out: &mut *out,
                bytes: &mut bytes[i as usize],
            };
            ch.serialize(&mut cx);
        });
    }

    /// Move the out-buffers into `drained` (destinations for the driver),
    /// swapping pooled buffers into their place.
    fn drain(&mut self, drained: &mut BufList) {
        // Frame bytes were already attributed per channel in SerializeCx;
        // the drain-side counter is only a cross-check.
        let mut scratch = ByteCounter::default();
        self.out.drain_into(&mut scratch, &mut self.pool, drained);
    }

    /// Deserialize this round's received buffers into the channels named in
    /// `mask`; returns the bitmask of channels asking for another round.
    fn deserialize_phase(&mut self, received: &BufList, mask: u64) -> u64 {
        for spans in &mut self.spans {
            spans.clear();
        }
        for (bi, (_, buf)) in received.iter().enumerate() {
            for (cid, start, end) in frame_spans(buf) {
                self.spans[cid as usize].push(FrameSpan {
                    buf: bi as u32,
                    start,
                    end,
                });
            }
        }
        let WorkerState {
            env,
            values,
            frontier,
            channels,
            spans,
            ..
        } = self;
        let mut again = 0u64;
        channels.for_each(&mut |i, ch| {
            if mask & (1 << i) == 0 {
                return;
            }
            let mut cx = DeserializeCx {
                env,
                spans: &spans[i as usize],
                bufs: received,
                values,
                frontier,
            };
            ch.deserialize(&mut cx);
            if ch.again() {
                again |= 1 << i;
            }
        });
        again
    }

    /// Vertices queued for the next superstep so far — after the final
    /// exchange round this is exactly the next superstep's active count.
    fn pending_active(&self) -> u64 {
        self.frontier.pending() as u64
    }

    /// Vertices active in the superstep about to run (the current
    /// frontier). Tracing records this as the superstep's `active` count.
    fn active_now(&self) -> u64 {
        self.frontier.current().len() as u64
    }

    /// Monotone traffic totals over this worker's channels: application
    /// messages and remote bytes since the run (or the restored epoch's
    /// original start). Tracing snapshots these at superstep boundaries;
    /// the deltas become the timeline rows.
    fn traffic_totals(&mut self) -> (u64, u64) {
        let mut messages = 0u64;
        self.channels
            .for_each(&mut |_, ch| messages += ch.message_count());
        let remote_bytes = self.bytes.iter().map(|b| b.remote).sum();
        (messages, remote_bytes)
    }

    /// Superstep epilogue: the queued activations become the active set.
    fn end_superstep(&mut self) -> u64 {
        self.frontier.advance() as u64
    }

    /// Panic (before the first superstep) unless this worker's state can
    /// be checkpointed: every channel must implement the state codec and
    /// the algorithm must implement the value codec.
    fn assert_checkpointable(&mut self) {
        let mut scratch = Vec::new();
        A::encode_value(&A::Value::default(), &mut scratch);
        self.channels.for_each(&mut |_, ch| {
            scratch.clear();
            assert!(
                ch.encode_state(&mut scratch),
                "channel '{}' does not support checkpointing; implement \
                 Channel::encode_state/decode_state or disable checkpoints",
                ch.name()
            );
        });
    }

    /// Serialize this worker's complete superstep-boundary state: vertex
    /// values, the advanced frontier, per-channel byte counters, pool
    /// counters and every channel's own state. The inverse of
    /// [`WorkerState::restore_snapshot`].
    fn encode_snapshot(&mut self) -> Vec<u8> {
        let mut buf = Vec::new();
        (self.values.len() as u64).encode(&mut buf);
        for v in &self.values {
            A::encode_value(v, &mut buf);
        }
        self.frontier.current().to_vec().encode(&mut buf);
        (self.bytes.len() as u32).encode(&mut buf);
        for b in &self.bytes {
            b.remote.encode(&mut buf);
            b.local.encode(&mut buf);
        }
        let pool = self.pool.stats();
        pool.hits.encode(&mut buf);
        pool.misses.encode(&mut buf);
        let n_channels = self.channels.len() as u32;
        n_channels.encode(&mut buf);
        let mut state = Vec::new();
        self.channels.for_each(&mut |_, ch| {
            state.clear();
            assert!(ch.encode_state(&mut state), "channel lost its state codec");
            (state.len() as u64).encode(&mut buf);
            buf.extend_from_slice(&state);
        });
        buf
    }

    /// Restore a freshly constructed worker from a snapshot taken after
    /// `superstep` (the checkpoint's superstep boundary).
    fn restore_snapshot(&mut self, payload: &[u8], superstep: u64) {
        let mut r = Reader::new(payload);
        let numv: u64 = r.get();
        assert_eq!(
            numv as usize,
            self.values.len(),
            "snapshot holds {numv} values but this worker owns {}",
            self.values.len()
        );
        for v in &mut self.values {
            *v = A::decode_value(&mut r);
        }
        let current: Vec<u32> = r.get();
        self.frontier = Frontier::restore(self.values.len(), (superstep + 1) as u32, current);
        let n_bytes: u32 = r.get();
        assert_eq!(n_bytes as usize, self.bytes.len(), "channel count drifted");
        for b in &mut self.bytes {
            b.remote = r.get();
            b.local = r.get();
        }
        self.pool.set_stats(PoolStats {
            hits: r.get(),
            misses: r.get(),
        });
        let n_channels: u32 = r.get();
        assert_eq!(
            n_channels as usize,
            self.channels.len(),
            "channel count drifted"
        );
        self.channels.for_each(&mut |i, ch| {
            let len: u64 = r.get();
            let slice = r.take(len as usize);
            let mut cr = Reader::new(slice);
            ch.decode_state(&mut cr);
            assert!(
                cr.is_empty(),
                "channel {i} left {} unread snapshot bytes",
                cr.remaining()
            );
        });
        assert!(r.is_empty(), "trailing bytes in worker snapshot");
        self.step = superstep;
    }

    /// Final per-worker results: `(global_id, value)` pairs plus channel
    /// metrics and pool counters.
    fn finish(mut self) -> WorkerPart<A::Value> {
        let locals = self.env.topo.locals(self.env.worker);
        let pairs = locals.iter().copied().zip(self.values).collect();
        let mut metrics = Vec::with_capacity(self.channels.len());
        let bytes = &self.bytes;
        self.channels.for_each(&mut |i, ch| {
            let (mirrored, mirror_saved) = ch.mirror_stats();
            metrics.push(ChannelMetrics {
                name: ch.name().to_string(),
                bytes: bytes[i as usize],
                messages: ch.message_count(),
                mirrored,
                mirror_saved,
            });
        });
        (pairs, metrics, self.pool.stats())
    }
}

/// Run an algorithm over a partitioned graph.
///
/// Returns the final vertex values (dense, by global id) and [`RunStats`].
pub fn run<A: Algorithm>(algo: &A, topo: &Arc<Topology>, cfg: &Config) -> Output<A::Value> {
    assert_eq!(
        topo.workers(),
        cfg.workers,
        "topology was built for {} workers but config asks for {}",
        topo.workers(),
        cfg.workers
    );
    if let Some(role) = &cfg.dist {
        return run_rank(algo, topo, cfg, role);
    }
    match cfg.mode {
        ExecMode::Sequential => run_sequential(algo, topo, cfg),
        ExecMode::Threads => match cfg.transport {
            TransportKind::InProcess => run_threaded(
                algo,
                topo,
                cfg,
                &InProcess::with_budget(cfg.workers, cfg.spin_budget),
            ),
            TransportKind::Tcp => {
                let tcp = Tcp::loopback(cfg.workers)
                    .unwrap_or_else(|e| panic!("cannot bind tcp transport: {e}"));
                run_threaded(algo, topo, cfg, &tcp)
            }
            TransportKind::TcpBatched => {
                // One knob tunes both waits: `spin_budget` reaches the
                // barrier below and the transport's readiness multiplexer
                // here (None keeps the cores-vs-workers heuristic).
                let opts = TcpOptions {
                    spins: cfg.spin_budget,
                    ..TcpOptions::batched()
                };
                let tcp = Tcp::loopback_with(cfg.workers, opts)
                    .unwrap_or_else(|e| panic!("cannot bind tcp-batched transport: {e}"));
                run_threaded(algo, topo, cfg, &tcp)
            }
        },
    }
}

fn assemble<V: Clone + Default>(
    n: usize,
    parts: Vec<WorkerPart<V>>,
    stats: &mut RunStats,
) -> Vec<V> {
    let mut values = vec![V::default(); n];
    for (pairs, metrics, pool) in parts {
        // The skew metric: one part = one worker (or rank), so the largest
        // per-part message volume is the hottest rank's send load.
        let part_msgs: u64 = metrics.iter().map(|m| m.messages).sum();
        stats.max_rank_msgs = stats.max_rank_msgs.max(part_msgs);
        stats.absorb_channels(metrics);
        stats.pool.merge(&pool);
        for (gid, v) in pairs {
            values[gid as usize] = v;
        }
    }
    values
}

/// One worker's view of the run's checkpoint policy: the opened store,
/// the run identity pinned into every manifest, and the epoch (if any)
/// this run resumes from. Every worker computes the same `restore`
/// decision — [`Store::latest_restorable`] validates the manifest *and*
/// all segments, so a torn segment fails the epoch for everyone alike.
struct CkptCtx {
    store: Store,
    every: u64,
    id: RunId,
    restore: Option<Manifest>,
}

impl CkptCtx {
    fn open<A: Algorithm>(policy: &CkptPolicy, topo: &Topology, workers: usize) -> CkptCtx {
        let store = Store::open(&policy.dir)
            .unwrap_or_else(|e| panic!("cannot open checkpoint store: {e}"));
        let id = RunId {
            workers: workers as u32,
            n: topo.n() as u64,
            algo: std::any::type_name::<A>().to_string(),
        };
        let restore = store
            .latest_restorable(&id)
            .unwrap_or_else(|e| panic!("checkpoint restore scan failed: {e}"));
        CkptCtx {
            store,
            every: policy.every.max(1),
            id,
            restore,
        }
    }

    /// Write this worker's segment for the boundary after `supersteps`,
    /// wait for every worker to do the same (one transport reduction —
    /// no buffers move, so pool accounting is untouched), then let
    /// worker 0 commit the manifest and garbage-collect superseded
    /// epochs. Checkpoint I/O failures are fatal, not recoverable: a rank
    /// that cannot persist its state must not ack the barrier.
    fn take<A: Algorithm, T: ExchangeTransport + ?Sized>(
        &self,
        s: &mut WorkerState<'_, A>,
        hub: &T,
        w: usize,
        workers: usize,
        supersteps: u64,
        rounds: u64,
    ) {
        let payload = s.encode_snapshot();
        self.store
            .write_segment(&Segment {
                superstep: supersteps,
                rounds,
                rank: w as u32,
                workers: workers as u32,
                payload,
            })
            .unwrap_or_else(|e| panic!("checkpoint segment write failed: {e}"));
        let acks = hub.reduce(w, &[1])[0];
        debug_assert_eq!(acks as usize, workers, "checkpoint barrier lost a worker");
        if w == 0 {
            let digests: Vec<u64> = (0..workers)
                .map(|r| {
                    self.store
                        .segment_digest(supersteps, r as u32)
                        .unwrap_or_else(|e| panic!("checkpoint digest read failed: {e}"))
                })
                .collect();
            self.store
                .commit(&Manifest {
                    id: self.id.clone(),
                    superstep: supersteps,
                    rounds,
                    digests,
                })
                .unwrap_or_else(|e| panic!("checkpoint commit failed: {e}"));
            let _ = self.store.gc(KEEP_COMMITTED);
        }
    }
}

fn run_sequential<A: Algorithm>(algo: &A, topo: &Arc<Topology>, cfg: &Config) -> Output<A::Value> {
    assert!(
        cfg.ckpt.is_none(),
        "checkpointing requires the threaded or multi-process driver \
         (the sequential driver is the deterministic reference and never checkpoints)"
    );
    let workers = cfg.workers;
    let mut states: Vec<WorkerState<'_, A>> = (0..workers)
        .map(|w| WorkerState::new(algo, topo, w))
        .collect();
    let mut stats = RunStats::default();
    // Round scratch, allocated once: per-receiver inboxes and the drain
    // list. Buffers inside cycle back to their sender's pool every round.
    let mut inbox: Vec<BufList> = vec![Vec::new(); workers];
    let mut drained: BufList = Vec::new();
    let start = Instant::now();
    loop {
        for s in &mut states {
            s.compute_phase();
        }
        stats.supersteps += 1;
        let mut mask = states[0].channel_mask();
        while mask != 0 {
            for s in &mut states {
                s.serialize_phase(mask);
            }
            for s in &mut states {
                let from = s.worker();
                s.drain(&mut drained);
                for (peer, buf) in drained.drain(..) {
                    inbox[peer].push((from, buf));
                }
            }
            let mut again = 0u64;
            for (w, s) in states.iter_mut().enumerate() {
                again |= s.deserialize_phase(&inbox[w], mask);
            }
            // Consumed buffers go home: straight back to the sender's
            // pool, to be swapped in again at the next drain.
            for column in &mut inbox {
                while let Some((from, buf)) = column.pop() {
                    states[from].pool.put(buf);
                }
            }
            for s in &mut states {
                s.pool.end_round();
            }
            stats.rounds += 1;
            mask = again;
        }
        let active: u64 = states.iter_mut().map(|s| s.end_superstep()).sum();
        if active == 0 {
            break;
        }
        assert!(
            stats.supersteps < cfg.max_supersteps,
            "exceeded max_supersteps = {}",
            cfg.max_supersteps
        );
    }
    stats.elapsed = start.elapsed();
    stats.transport_name = "sequential";
    let parts = states.into_iter().map(|s| s.finish()).collect();
    let values = assemble(topo.n(), parts, &mut stats);
    Output { values, stats }
}

/// Per-superstep baseline of the monotone worker counters, captured at
/// superstep start so the end-of-superstep deltas become one timeline
/// row. Only exists while tracing.
struct TraceBase {
    active: u64,
    messages: u64,
    remote_bytes: u64,
    pool_misses: u64,
    stall_us: u64,
    rounds: u64,
}

/// Drive one worker's superstep/round loop over a transport until the
/// program terminates globally. This is the per-worker body shared by the
/// threaded driver (one call per worker thread) and the multi-process
/// rank driver (one call per OS process). Returns the worker's results
/// plus its superstep/round counters (identical on every worker — the
/// loop exits are global decisions) and, when [`Config::trace`] is set,
/// the worker's recorded [`RankTrace`].
///
/// Tracing is strictly additive: every probe branches on the `Option`
/// tracer, so an untraced run executes the exact pre-tracing phase
/// sequence (pinned by the conformance suite) and performs zero extra
/// transport or clock calls.
fn drive_worker<A: Algorithm, T: ExchangeTransport + ?Sized>(
    algo: &A,
    topo: &Arc<Topology>,
    cfg: &Config,
    hub: &T,
    w: usize,
) -> (WorkerPart<A::Value>, u64, u64, Option<RankTrace>) {
    let mut s = WorkerState::new(algo, topo, w);
    let mut drained: BufList = Vec::new();
    let mut received: BufList = Vec::new();
    let mut supersteps = 0u64;
    let mut rounds = 0u64;
    let mut tracer = if cfg.trace {
        Some(Tracer::new(w))
    } else {
        None
    };
    // The probe lets the batched TCP driver's readiness multiplexer hand
    // its kernel waits to this worker's trace without the transport ever
    // seeing the tracer; it uninstalls when the guard drops.
    let _poll_probe = tracer
        .as_ref()
        .map(|t| trace::install_poll_probe(t.origin()));
    // Checkpointing: restore the last committed epoch (if one exists for
    // this run) before the first superstep, then snapshot at the policy's
    // cadence. Both decisions are pure functions of the shared checkpoint
    // directory and the loop counters, so every worker takes them
    // identically and the barrier structure stays in lock-step.
    let ckpt = cfg
        .ckpt
        .as_ref()
        .map(|p| CkptCtx::open::<A>(p, topo, cfg.workers));
    let mut last_ckpt = 0u64;
    if let Some(ck) = &ckpt {
        s.assert_checkpointable();
        if let Some(m) = &ck.restore {
            let t0 = tracer.as_ref().map(|t| t.now_us());
            let seg = ck
                .store
                .read_segment(m.superstep, w as u32)
                .unwrap_or_else(|e| panic!("checkpoint segment read failed: {e}"));
            s.restore_snapshot(&seg.payload, m.superstep);
            supersteps = m.superstep;
            rounds = m.rounds;
            last_ckpt = m.superstep;
            if let (Some(t), Some(t0)) = (tracer.as_mut(), t0) {
                t.end(SpanKind::Recovery, m.superstep, t0);
            }
        }
    }
    loop {
        let base = tracer.as_ref().map(|_| {
            let (messages, remote_bytes) = s.traffic_totals();
            TraceBase {
                active: s.active_now(),
                messages,
                remote_bytes,
                pool_misses: s.pool.stats().misses,
                stall_us: hub.worker_stats(w).stall_us(),
                rounds,
            }
        });
        let mut compute_us = 0u64;
        let mut exchange_us = 0u64;
        let t0 = tracer.as_ref().map(|t| t.now_us());
        s.compute_phase();
        supersteps += 1;
        if let (Some(t), Some(t0)) = (tracer.as_mut(), t0) {
            compute_us = t.end(SpanKind::Compute, supersteps, t0);
        }
        let mut mask = s.channel_mask();
        let mut total_active;
        if mask == 0 {
            // Channel-free superstep: one reduction decides global
            // activity.
            let t0 = tracer.as_ref().map(|t| t.now_us());
            total_active = hub.reduce(w, &[s.pending_active()])[0];
            if let (Some(t), Some(t0)) = (tracer.as_mut(), t0) {
                t.end(SpanKind::Barrier, supersteps, t0);
            }
        } else {
            total_active = 0;
        }
        // All workers computed identical masks, so the round loop stays in
        // lock-step. Each iteration synchronizes exactly twice: the
        // post/take rendezvous and the fused again/active reduction.
        while mask != 0 {
            let tx = tracer.as_ref().map(|t| t.now_us());
            s.serialize_phase(mask);
            // Buffers recycled by last round's receivers come home before
            // we drain, so the swap hits the pool.
            hub.reclaim_into(w, &mut s.pool);
            s.drain(&mut drained);
            let from = s.worker();
            for (peer, buf) in drained.drain(..) {
                hub.post(from, peer, buf);
            }
            hub.sync(w);
            hub.take_all_into(w, &mut received);
            let again = s.deserialize_phase(&received, mask);
            for (sender, buf) in received.drain(..) {
                hub.recycle(w, sender, buf);
            }
            s.pool.end_round();
            if let (Some(t), Some(tx)) = (tracer.as_mut(), tx) {
                exchange_us += t.end(SpanKind::Exchange, supersteps, tx);
            }
            let tb = tracer.as_ref().map(|t| t.now_us());
            let (gmask, active) = hub.reduce_round(w, again, s.pending_active());
            if let (Some(t), Some(tb)) = (tracer.as_mut(), tb) {
                t.end(SpanKind::Barrier, supersteps, tb);
            }
            rounds += 1;
            mask = gmask;
            total_active = active;
        }
        s.end_superstep();
        if let (Some(t), Some(base)) = (tracer.as_mut(), base) {
            let (messages, remote_bytes) = s.traffic_totals();
            t.drain_poll_spans(supersteps);
            t.superstep(SuperstepStats {
                superstep: supersteps,
                rounds: rounds - base.rounds,
                active: base.active,
                messages: messages - base.messages,
                remote_bytes: remote_bytes - base.remote_bytes,
                stall_us: hub.worker_stats(w).stall_us() - base.stall_us,
                pool_misses: s.pool.stats().misses - base.pool_misses,
                compute_us,
                exchange_us,
            });
        }
        if total_active == 0 {
            break;
        }
        if let Some(ck) = &ckpt {
            // Snapshot only at boundaries the run continues past (the
            // terminal state is about to be gathered anyway), and never
            // re-snapshot the boundary a restore just reproduced.
            if supersteps.is_multiple_of(ck.every) && supersteps > last_ckpt {
                let t0 = tracer.as_ref().map(|t| t.now_us());
                ck.take(&mut s, hub, w, cfg.workers, supersteps, rounds);
                if let (Some(t), Some(t0)) = (tracer.as_mut(), t0) {
                    t.end(SpanKind::Checkpoint, supersteps, t0);
                }
                last_ckpt = supersteps;
            }
        }
        assert!(
            supersteps < cfg.max_supersteps,
            "exceeded max_supersteps = {}",
            cfg.max_supersteps
        );
    }
    // Nothing follows the final reduction, so frames a batched transport
    // still holds for coalescing (the last round's reduction result)
    // must be pushed out before this worker leaves the protocol.
    hub.flush(w);
    let trace = tracer.map(|mut t| {
        // Waits incurred by the final flush still belong to the last
        // superstep's track.
        t.drain_poll_spans(supersteps);
        t.finish()
    });
    (s.finish(), supersteps, rounds, trace)
}

/// The threaded driver, generic over the exchange backend. One OS thread
/// per worker; the transport carries the buffer exchange and the global
/// reductions. Everything a transport can observe — the post/sync/take/
/// reduce call sequence — is identical across backends, which is what the
/// conformance suite (`tests/transport_conformance.rs`) pins down.
fn run_threaded<A: Algorithm, T: ExchangeTransport>(
    algo: &A,
    topo: &Arc<Topology>,
    cfg: &Config,
    hub: &T,
) -> Output<A::Value> {
    let workers = cfg.workers;
    assert_eq!(hub.workers(), workers, "transport sized for wrong cluster");
    let start = Instant::now();
    let mut results: Vec<Option<WorkerPart<A::Value>>> = Vec::new();
    results.resize_with(workers, || None);
    let mut counters = (0u64, 0u64); // (supersteps, rounds) — identical on all workers
    let mut traces: Vec<RankTrace> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            handles.push(scope.spawn(move || {
                let (part, supersteps, rounds, trace) = drive_worker(algo, topo, cfg, hub, w);
                (w, part, supersteps, rounds, trace)
            }));
        }
        for h in handles {
            // Propagate a worker panic with its original payload — a
            // recovery-capable supervisor above `run` matches it against
            // the transport's typed fault slot.
            let (w, part, supersteps, rounds, trace) = match h.join() {
                Ok(result) => result,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            results[w] = Some(part);
            counters = (supersteps, rounds);
            if let Some(tr) = trace {
                traces.push(tr); // joined in spawn order: rank order
            }
        }
    });
    let mut stats = RunStats {
        supersteps: counters.0,
        rounds: counters.1,
        barrier_crossings: hub.barrier_crossings(),
        barrier_spins: hub.barrier_spins(),
        transport_name: hub.name(),
        transport: hub.stats(),
        ..Default::default()
    };
    if !traces.is_empty() {
        trace::align_epochs(&mut traces);
        stats.timeline = trace::merge_timelines(&traces);
        stats.traces = traces;
    }
    let parts = results
        .into_iter()
        .map(|r| r.expect("missing worker result"))
        .collect();
    let values = assemble(topo.n(), parts, &mut stats);
    stats.elapsed = start.elapsed();
    Output { values, stats }
}

/// Encode one worker's results for the cross-process gather: value pairs,
/// per-channel metrics, pool counters, the rank's transport counters and
/// (when the run traced) the rank's trace stream. The trace rides as a
/// flagged trailing section, so untraced gather frames are byte-identical
/// to the pre-tracing wire format; recovery counters ride a second
/// flagged section the same way (an unfailed run encodes one `false`
/// byte).
fn encode_part<A: Algorithm>(
    part: &WorkerPart<A::Value>,
    tstats: TransportStats,
    trace: Option<&RankTrace>,
    recovery: (u64, u64),
    buf: &mut Vec<u8>,
) {
    let (pairs, metrics, pool) = part;
    (pairs.len() as u32).encode(buf);
    for (gid, v) in pairs {
        gid.encode(buf);
        A::encode_value(v, buf);
    }
    (metrics.len() as u32).encode(buf);
    for m in metrics {
        let name = m.name.as_bytes();
        (name.len() as u32).encode(buf);
        buf.extend_from_slice(name);
        m.bytes.remote.encode(buf);
        m.bytes.local.encode(buf);
        m.messages.encode(buf);
        m.mirrored.encode(buf);
        m.mirror_saved.encode(buf);
    }
    pool.hits.encode(buf);
    pool.misses.encode(buf);
    tstats.wire_bytes.encode(buf);
    tstats.frames.encode(buf);
    tstats.round_trips.encode(buf);
    tstats.coalesced_frames.encode(buf);
    tstats.flushes.encode(buf);
    tstats.send_stall_us.encode(buf);
    tstats.recv_stall_us.encode(buf);
    tstats.poll_waits.encode(buf);
    tstats.wakeups_spurious.encode(buf);
    match trace {
        Some(tr) => {
            true.encode(buf);
            tr.encode(buf);
        }
        None => false.encode(buf),
    }
    let (recoveries, recovery_us) = recovery;
    if recoveries == 0 && recovery_us == 0 {
        false.encode(buf);
    } else {
        true.encode(buf);
        recoveries.encode(buf);
        recovery_us.encode(buf);
    }
}

/// Decode one worker's gather frame (see [`encode_part`]).
///
/// Gather frames are produced by [`encode_part`] in a peer running the
/// same binary, after the conformance-checked exchange protocol has
/// already carried the whole run, so they are trusted bytes: a malformed
/// frame (version-skewed peer, corrupted wire) panics and aborts the run
/// — the same policy the engine applies to any other transport failure.
/// External inputs that cross a trust boundary (shipped plans, graph
/// files) go through the fallible decoders in `pc_graph::io`/`pc_dist`
/// instead.
fn decode_part<A: Algorithm>(
    r: &mut Reader<'_>,
) -> (
    WorkerPart<A::Value>,
    TransportStats,
    Option<RankTrace>,
    (u64, u64),
) {
    let npairs: u32 = r.get();
    let mut pairs = Vec::with_capacity(npairs as usize);
    for _ in 0..npairs {
        let gid: u32 = r.get();
        pairs.push((gid, A::decode_value(r)));
    }
    let nchannels: u32 = r.get();
    let mut metrics = Vec::with_capacity(nchannels as usize);
    for _ in 0..nchannels {
        let len: u32 = r.get();
        let name =
            String::from_utf8(r.take(len as usize).to_vec()).expect("channel name is not utf-8");
        metrics.push(ChannelMetrics {
            name,
            bytes: ByteCounter {
                remote: r.get(),
                local: r.get(),
            },
            messages: r.get(),
            mirrored: r.get(),
            mirror_saved: r.get(),
        });
    }
    let pool = PoolStats {
        hits: r.get(),
        misses: r.get(),
    };
    let tstats = TransportStats {
        wire_bytes: r.get(),
        frames: r.get(),
        round_trips: r.get(),
        coalesced_frames: r.get(),
        flushes: r.get(),
        send_stall_us: r.get(),
        recv_stall_us: r.get(),
        poll_waits: r.get(),
        wakeups_spurious: r.get(),
    };
    let trace = if r.get::<bool>() {
        Some(r.get::<RankTrace>())
    } else {
        None
    };
    let recovery = if r.get::<bool>() {
        (r.get(), r.get())
    } else {
        (0, 0)
    };
    ((pairs, metrics, pool), tstats, trace, recovery)
}

/// The multi-process driver: this process runs exactly one worker
/// (`role.rank`) over the shared socket mesh; its peers are other OS
/// processes (or, in tests, other threads holding the same mesh object).
///
/// The superstep/round loop is byte-identical to the threaded TCP driver
/// — same [`drive_worker`] body, same wire traffic — which is what the
/// multi-process arm of the conformance suite pins down. When the program
/// terminates, one extra exchange round gathers every rank's results to
/// the gather root (`role.gather_root` — rank 0 normally, the acting
/// coordinator after a failover): each rank posts its encoded
/// values/metrics ([`encode_part`]), the root merges them into a
/// complete [`Output`]. Other ranks return an `Output` holding only
/// their local values (every other slot is `Default`) and their local
/// statistics.
fn run_rank<A: Algorithm>(
    algo: &A,
    topo: &Arc<Topology>,
    cfg: &Config,
    role: &RankRole,
) -> Output<A::Value> {
    let workers = cfg.workers;
    let t: &Tcp = &role.transport;
    assert_eq!(t.workers(), workers, "transport sized for wrong cluster");
    assert!(
        role.rank < workers,
        "rank {} out of range 0..{workers}",
        role.rank
    );
    let w = role.rank;
    let start = Instant::now();
    let (part, supersteps, rounds, trace) = drive_worker(algo, topo, cfg, t, w);
    // Result gather: one extra post/sync/take round addressed at rank 0.
    // Transport counters are snapshotted first so every rank reports the
    // same traffic the conformant run produced (the gather's own frames
    // are bookkeeping, not algorithm traffic). The rank's trace stream —
    // when the run traced — rides the same frame.
    let local_tstats = t.worker_stats(w);
    let root = role.gather_root;
    assert!(
        root < workers,
        "gather root {root} out of range 0..{workers}"
    );
    let mut frame = Vec::new();
    supersteps.encode(&mut frame);
    rounds.encode(&mut frame);
    encode_part::<A>(
        &part,
        local_tstats,
        trace.as_ref(),
        (role.recoveries, role.recovery_us),
        &mut frame,
    );
    t.post(w, root, frame);
    t.sync(w);
    // No reduction follows the gather round, so the batched driver's
    // held-for-coalescing frames must be pushed out explicitly — without
    // this, rank 0 would wait on frames parked in its peers' send queues
    // until the io deadline.
    t.flush(w);
    let mut received: BufList = Vec::new();
    t.take_all_into(w, &mut received);
    let mut stats = RunStats {
        supersteps,
        rounds,
        transport_name: t.name(),
        ..Default::default()
    };
    if w != root {
        // Non-root ranks keep their local view; `received` only drained
        // the round's SKIP markers.
        stats.transport = local_tstats;
        stats.recoveries = role.recoveries;
        stats.recovery_us = role.recovery_us;
        if let Some(tr) = trace {
            stats.timeline = tr.timeline.clone();
            stats.traces = vec![tr];
        }
        let values = assemble(topo.n(), vec![part], &mut stats);
        stats.elapsed = start.elapsed();
        return Output { values, stats };
    }
    let mut parts = Vec::with_capacity(workers);
    let mut traces: Vec<RankTrace> = Vec::new();
    for (sender, buf) in received.drain(..) {
        let mut r = Reader::new(&buf);
        let ss: u64 = r.get();
        let rr: u64 = r.get();
        assert_eq!(
            (ss, rr),
            (supersteps, rounds),
            "rank {sender} disagrees on the superstep/round count"
        );
        let (p, tstats, tr, (recoveries, recovery_us)) = decode_part::<A>(&mut r);
        assert!(r.is_empty(), "trailing bytes in rank {sender}'s results");
        stats.transport.merge(&tstats);
        stats.recoveries += recoveries;
        stats.recovery_us += recovery_us;
        if let Some(tr) = tr {
            traces.push(tr);
        }
        parts.push(p);
        t.recycle(w, sender, buf);
    }
    assert_eq!(parts.len(), workers, "missing rank results in the gather");
    if !traces.is_empty() {
        assert_eq!(traces.len(), workers, "missing rank traces in the gather");
        traces.sort_by_key(|tr| tr.rank);
        trace::align_epochs(&mut traces);
        stats.timeline = trace::merge_timelines(&traces);
        stats.traces = traces;
    }
    let values = assemble(topo.n(), parts, &mut stats);
    stats.elapsed = start.elapsed();
    Output { values, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, DeserializeCx, SerializeCx};
    use pc_bsp::Codec;
    // (Channel is only needed by the probe channels defined below.)

    /// An algorithm with no channels: every vertex counts to 3 then halts.
    struct CountToThree;
    impl Algorithm for CountToThree {
        type Value = u64;
        type Channels = ();
        fn channels(&self, _env: &WorkerEnv) -> Self::Channels {}
        fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u64, _ch: &mut ()) {
            *value += 1;
            if v.step() >= 3 {
                v.vote_to_halt();
            }
        }
    }

    #[test]
    fn channel_free_algorithm_terminates() {
        let topo = Arc::new(Topology::hashed(100, 4));
        for cfg in [Config::sequential(4), Config::with_workers(4)] {
            let out = run(&CountToThree, &topo, &cfg);
            assert_eq!(out.stats.supersteps, 3);
            assert!(out.values.iter().all(|&v| v == 3));
            assert_eq!(out.stats.remote_bytes(), 0);
        }
    }

    /// A ring-forwarding channel used to test activation, rounds and byte
    /// accounting: each vertex sends its id to `(id + 1) % n` once.
    struct RingChannel {
        env: WorkerEnv,
        staged: Vec<(u32, u64)>,   // (dst global, payload)
        incoming: Vec<(u32, u64)>, // (dst local, payload)
        readable: Vec<(u32, u64)>,
        messages: u64,
    }
    impl RingChannel {
        fn new(env: &WorkerEnv) -> Self {
            RingChannel {
                env: env.clone(),
                staged: Vec::new(),
                incoming: Vec::new(),
                readable: Vec::new(),
                messages: 0,
            }
        }
        fn send(&mut self, dst: u32, v: u64) {
            self.staged.push((dst, v));
        }
    }
    impl Channel<u64> for RingChannel {
        fn name(&self) -> &'static str {
            "ring"
        }
        fn before_superstep(&mut self, _step: u64) {
            self.readable = std::mem::take(&mut self.incoming);
        }
        fn serialize(&mut self, cx: &mut SerializeCx<'_>) {
            let staged = std::mem::take(&mut self.staged);
            for peer in 0..cx.workers() {
                let msgs: Vec<&(u32, u64)> = staged
                    .iter()
                    .filter(|(dst, _)| self.env.worker_of(*dst) == peer)
                    .collect();
                if msgs.is_empty() {
                    continue;
                }
                cx.frame(peer, |buf| {
                    for (dst, v) in msgs {
                        dst.encode(buf);
                        v.encode(buf);
                    }
                });
            }
            self.messages += staged.len() as u64;
        }
        fn deserialize(&mut self, cx: &mut DeserializeCx<'_, u64>) {
            for (_from, mut r) in cx.frames() {
                while !r.is_empty() {
                    let dst: u32 = r.get();
                    let v: u64 = r.get();
                    let local = self.env.local_of(dst);
                    self.incoming.push((local, v));
                    cx.activate(local);
                }
            }
        }
        fn message_count(&self) -> u64 {
            self.messages
        }
        fn encode_state(&self, buf: &mut Vec<u8>) -> bool {
            self.incoming.encode(buf);
            self.messages.encode(buf);
            true
        }
        fn decode_state(&mut self, r: &mut pc_bsp::Reader<'_>) {
            self.incoming = r.get();
            self.messages = r.get();
        }
    }

    /// Send id to the ring successor at step 1, sum what arrives at step 2.
    struct RingSum {
        n: u32,
    }
    impl Algorithm for RingSum {
        type Value = u64;
        type Channels = (RingChannel,);
        crate::dist_value_via_codec!();
        fn channels(&self, env: &WorkerEnv) -> Self::Channels {
            (RingChannel::new(env),)
        }
        fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u64, ch: &mut Self::Channels) {
            if v.step() == 1 {
                ch.0.send((v.id + 1) % self.n, v.id as u64 + 1);
                v.vote_to_halt();
            } else {
                *value =
                    ch.0.readable
                        .iter()
                        .filter(|&&(local, _)| local == v.local)
                        .map(|&(_, m)| m)
                        .sum();
                v.vote_to_halt();
            }
        }
    }

    #[test]
    fn messages_flow_and_reactivate() {
        let n = 64u32;
        let topo = Arc::new(Topology::hashed(n as usize, 3));
        for cfg in [Config::sequential(3), Config::with_workers(3)] {
            let out = run(&RingSum { n }, &topo, &cfg);
            // Vertex v receives (v == 0 ? n : v) from its predecessor.
            for v in 0..n as usize {
                let expect = if v == 0 { n as u64 } else { v as u64 };
                assert_eq!(out.values[v], expect, "vertex {v}");
            }
            assert_eq!(out.stats.supersteps, 2);
            assert_eq!(out.stats.messages(), n as u64);
            assert!(out.stats.remote_bytes() > 0);
            assert_eq!(out.stats.channels.len(), 1);
            assert_eq!(out.stats.channels[0].name, "ring");
        }
    }

    #[test]
    fn sequential_and_threaded_agree_on_bytes() {
        let n = 200u32;
        let topo = Arc::new(Topology::hashed(n as usize, 4));
        let a = run(&RingSum { n }, &topo, &Config::sequential(4));
        let b = run(&RingSum { n }, &topo, &Config::with_workers(4));
        assert_eq!(a.values, b.values);
        assert_eq!(a.stats.remote_bytes(), b.stats.remote_bytes());
        assert_eq!(a.stats.supersteps, b.stats.supersteps);
        assert_eq!(a.stats.rounds, b.stats.rounds);
        // Pool traffic is part of the determinism contract too.
        assert_eq!(a.stats.pool, b.stats.pool);
    }

    /// The TCP backend is a drop-in for the in-process hub: same values,
    /// bytes, rounds — and even the same pool traffic, because posted
    /// buffers come home through the transport's return path.
    #[test]
    fn tcp_transport_is_observationally_identical() {
        let n = 120u32;
        let topo = Arc::new(Topology::hashed(n as usize, 3));
        let a = run(&RingSum { n }, &topo, &Config::with_workers(3));
        let b = run(&RingSum { n }, &topo, &Config::tcp(3));
        assert_eq!(a.values, b.values);
        assert_eq!(a.stats.remote_bytes(), b.stats.remote_bytes());
        assert_eq!(a.stats.total_bytes(), b.stats.total_bytes());
        assert_eq!(a.stats.messages(), b.stats.messages());
        assert_eq!(a.stats.supersteps, b.stats.supersteps);
        assert_eq!(a.stats.rounds, b.stats.rounds);
        assert_eq!(a.stats.pool, b.stats.pool);
        assert_eq!(b.stats.transport_name, "tcp");
        // Wire accounting differs by design: the hub counts every posted
        // payload (loop-back included), tcp counts real socket traffic
        // (headers, skip markers and reduction frames; self-delivery
        // never touches the wire). Both must be live.
        assert!(b.stats.transport.wire_bytes > 0);
        assert!(b.stats.transport.frames > 0);
        assert!(b.stats.transport.round_trips > 0);
        assert!(a.stats.transport.frames > 0);
    }

    /// The multi-process driver, simulated: three "processes" (threads)
    /// each drive one rank of a shared loopback mesh through the public
    /// `run` entry point. Rank 0 gathers a complete output identical to
    /// the sequential reference; other ranks keep only their local view.
    #[test]
    fn rank_driver_gathers_results_to_rank_zero() {
        let n = 120u32;
        let workers = 3;
        let topo = Arc::new(Topology::hashed(n as usize, workers));
        let seq = run(&RingSum { n }, &topo, &Config::sequential(workers));
        let tcp = Arc::new(Tcp::loopback(workers).unwrap());
        let mut outs: Vec<Option<Output<u64>>> = (0..workers).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..workers {
                let cfg = Config::rank(workers, w, Arc::clone(&tcp));
                let topo = Arc::clone(&topo);
                handles.push(scope.spawn(move || (w, run(&RingSum { n }, &topo, &cfg))));
            }
            for h in handles {
                let (w, out) = h.join().unwrap();
                outs[w] = Some(out);
            }
        });
        let outs: Vec<Output<u64>> = outs.into_iter().map(Option::unwrap).collect();
        // Rank 0: complete values and fully merged statistics.
        assert_eq!(outs[0].values, seq.values);
        assert_eq!(outs[0].stats.remote_bytes(), seq.stats.remote_bytes());
        assert_eq!(outs[0].stats.total_bytes(), seq.stats.total_bytes());
        assert_eq!(outs[0].stats.messages(), seq.stats.messages());
        assert_eq!(outs[0].stats.supersteps, seq.stats.supersteps);
        assert_eq!(outs[0].stats.rounds, seq.stats.rounds);
        assert_eq!(outs[0].stats.pool, seq.stats.pool);
        assert_eq!(outs[0].stats.transport_name, "tcp");
        assert!(outs[0].stats.transport.wire_bytes > 0);
        // Non-zero ranks: local values only, everything else default.
        for (w, out) in outs.iter().enumerate().skip(1) {
            for &gid in topo.locals(w) {
                assert_eq!(out.values[gid as usize], seq.values[gid as usize]);
            }
            assert!(out.stats.messages() < seq.stats.messages());
        }
    }

    /// After a coordinator failover, result gather follows the *acting*
    /// coordinator: with `gather_root = 1`, rank 1 assembles the
    /// complete output (identical to the sequential reference) and sums
    /// every rank's recovery counters, while rank 0 keeps only its local
    /// view like any other non-root rank.
    #[test]
    fn rank_driver_gathers_results_to_the_acting_root() {
        let n = 120u32;
        let workers = 3;
        let root = 1usize;
        let topo = Arc::new(Topology::hashed(n as usize, workers));
        let seq = run(&RingSum { n }, &topo, &Config::sequential(workers));
        let tcp = Arc::new(Tcp::loopback(workers).unwrap());
        let mut outs: Vec<Option<Output<u64>>> = (0..workers).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..workers {
                let mut cfg = Config::rank(workers, w, Arc::clone(&tcp));
                let role = cfg.dist.as_mut().unwrap();
                role.gather_root = root;
                role.recoveries = 1;
                role.recovery_us = 100 + w as u64;
                let topo = Arc::clone(&topo);
                handles.push(scope.spawn(move || (w, run(&RingSum { n }, &topo, &cfg))));
            }
            for h in handles {
                let (w, out) = h.join().unwrap();
                outs[w] = Some(out);
            }
        });
        let outs: Vec<Output<u64>> = outs.into_iter().map(Option::unwrap).collect();
        assert_eq!(outs[root].values, seq.values);
        assert_eq!(outs[root].stats.messages(), seq.stats.messages());
        assert_eq!(outs[root].stats.supersteps, seq.stats.supersteps);
        assert_eq!(outs[root].stats.pool, seq.stats.pool);
        assert_eq!(outs[root].stats.recoveries, workers as u64);
        assert_eq!(outs[root].stats.recovery_us, 100 + 101 + 102);
        for (w, out) in outs.iter().enumerate() {
            if w == root {
                continue;
            }
            for &gid in topo.locals(w) {
                assert_eq!(out.values[gid as usize], seq.values[gid as usize]);
            }
            assert!(out.stats.messages() < seq.stats.messages());
            assert_eq!(out.stats.recoveries, 1, "non-root keeps its local count");
        }
    }

    /// The dist gather codec round-trips a complete rank frame — with
    /// and without the flagged trace section — bit-exactly: value pairs,
    /// channel metrics, pool counters, every transport counter, every
    /// span/timeline field of the trace, and the recovery counters. Each
    /// recovery field carries a distinct non-zero value so a summation
    /// or ordering typo in the codec breaks a distinct assertion, and
    /// the zero case must cost exactly one flag byte.
    #[test]
    fn gather_frame_round_trips_rank_traces() {
        use pc_bsp::trace::TraceEvent;
        let part: WorkerPart<u64> = (
            vec![(3, 7u64), (9, 1)],
            vec![ChannelMetrics {
                name: "ring".to_string(),
                bytes: ByteCounter {
                    remote: 10,
                    local: 2,
                },
                messages: 4,
                mirrored: 1,
                mirror_saved: 6,
            }],
            PoolStats { hits: 5, misses: 1 },
        );
        let tstats = TransportStats {
            wire_bytes: 11,
            frames: 2,
            round_trips: 1,
            coalesced_frames: 7,
            flushes: 3,
            send_stall_us: 4,
            recv_stall_us: 5,
            poll_waits: 6,
            wakeups_spurious: 2,
        };
        let tr = RankTrace {
            rank: 2,
            epoch_us: 123_456,
            dropped: 1,
            events: vec![
                TraceEvent {
                    kind: SpanKind::Compute,
                    superstep: 1,
                    start_us: 5,
                    dur_us: 9,
                },
                TraceEvent {
                    kind: SpanKind::PollWait,
                    superstep: 2,
                    start_us: 20,
                    dur_us: 300,
                },
            ],
            timeline: vec![SuperstepStats {
                superstep: 1,
                rounds: 1,
                active: 2,
                messages: 4,
                remote_bytes: 10,
                stall_us: 9,
                pool_misses: 1,
                compute_us: 9,
                exchange_us: 3,
            }],
        };
        for trace in [None, Some(&tr)] {
            for recovery in [(0u64, 0u64), (3, 41_000)] {
                let mut buf = Vec::new();
                encode_part::<RingSum>(&part, tstats, trace, recovery, &mut buf);
                if recovery == (0, 0) {
                    let mut plain = Vec::new();
                    encode_part::<RingSum>(&part, tstats, trace, (0, 0), &mut plain);
                    assert_eq!(
                        buf.len(),
                        plain.len(),
                        "unfailed frames must stay one flag byte"
                    );
                }
                let mut r = Reader::new(&buf);
                let (p, ts, tr_back, rec_back) = decode_part::<RingSum>(&mut r);
                assert!(r.is_empty(), "trailing gather bytes");
                assert_eq!(rec_back, recovery);
                assert_eq!(p.0, part.0);
                assert_eq!(p.2, part.2);
                let (m, m0) = (&p.1[0], &part.1[0]);
                assert_eq!(
                    (
                        m.name.as_str(),
                        m.bytes,
                        m.messages,
                        m.mirrored,
                        m.mirror_saved
                    ),
                    (
                        m0.name.as_str(),
                        m0.bytes,
                        m0.messages,
                        m0.mirrored,
                        m0.mirror_saved
                    )
                );
                assert_eq!(ts, tstats);
                assert_eq!(tr_back.as_ref(), trace);
            }
        }
    }

    /// Tracing is transparent and self-consistent: a traced threaded run
    /// reports counters identical to an untraced one, its timeline has
    /// one row per superstep, and the rows sum back to the run totals.
    #[test]
    fn traced_threaded_run_is_transparent_and_reconciles() {
        let n = 200u32;
        let topo = Arc::new(Topology::hashed(n as usize, 4));
        let plain = run(&RingSum { n }, &topo, &Config::with_workers(4));
        assert!(plain.stats.timeline.is_empty() && plain.stats.traces.is_empty());
        let traced = run(
            &RingSum { n },
            &topo,
            &Config {
                trace: true,
                ..Config::with_workers(4)
            },
        );
        assert_eq!(traced.values, plain.values);
        assert_eq!(traced.stats.remote_bytes(), plain.stats.remote_bytes());
        assert_eq!(traced.stats.total_bytes(), plain.stats.total_bytes());
        assert_eq!(traced.stats.messages(), plain.stats.messages());
        assert_eq!(traced.stats.supersteps, plain.stats.supersteps);
        assert_eq!(traced.stats.rounds, plain.stats.rounds);
        assert_eq!(traced.stats.pool, plain.stats.pool);
        let tl = &traced.stats.timeline;
        assert_eq!(tl.len() as u64, traced.stats.supersteps);
        assert_eq!(
            tl.iter().map(|r| r.rounds).sum::<u64>(),
            traced.stats.rounds
        );
        assert_eq!(
            tl.iter().map(|r| r.messages).sum::<u64>(),
            traced.stats.messages()
        );
        assert_eq!(
            tl.iter().map(|r| r.remote_bytes).sum::<u64>(),
            traced.stats.remote_bytes()
        );
        assert_eq!(tl[0].active, n as u64, "superstep 1 computes every vertex");
        // One trace per worker, each with a compute span per superstep.
        assert_eq!(traced.stats.traces.len(), 4);
        for (w, tr) in traced.stats.traces.iter().enumerate() {
            assert_eq!(tr.rank as usize, w);
            assert_eq!(tr.dropped, 0);
            for step in 1..=traced.stats.supersteps {
                assert!(
                    tr.events
                        .iter()
                        .any(|e| e.superstep == step && e.kind == SpanKind::Compute),
                    "rank {w} has no compute span for superstep {step}"
                );
            }
        }
    }

    /// The rank driver ships traces through the gather frame: rank 0
    /// merges one trace per rank onto a common epoch and its timeline
    /// reconciles with the merged run totals.
    #[test]
    fn rank_driver_gathers_traces_to_rank_zero() {
        let n = 120u32;
        let workers = 3;
        let topo = Arc::new(Topology::hashed(n as usize, workers));
        let tcp = Arc::new(Tcp::loopback(workers).unwrap());
        let mut outs: Vec<Option<Output<u64>>> = (0..workers).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..workers {
                let cfg = Config {
                    trace: true,
                    ..Config::rank(workers, w, Arc::clone(&tcp))
                };
                let topo = Arc::clone(&topo);
                handles.push(scope.spawn(move || (w, run(&RingSum { n }, &topo, &cfg))));
            }
            for h in handles {
                let (w, out) = h.join().unwrap();
                outs[w] = Some(out);
            }
        });
        let outs: Vec<Output<u64>> = outs.into_iter().map(Option::unwrap).collect();
        let stats = &outs[0].stats;
        assert_eq!(stats.traces.len(), workers);
        for (w, tr) in stats.traces.iter().enumerate() {
            assert_eq!(tr.rank as usize, w);
            assert_eq!(tr.timeline.len() as u64, stats.supersteps);
            assert!(!tr.events.is_empty());
        }
        assert_eq!(stats.timeline.len() as u64, stats.supersteps);
        assert_eq!(
            stats.timeline.iter().map(|r| r.messages).sum::<u64>(),
            stats.messages()
        );
        assert_eq!(
            stats.timeline.iter().map(|r| r.remote_bytes).sum::<u64>(),
            stats.remote_bytes()
        );
        // Non-zero ranks keep their own (local) trace.
        for (w, out) in outs.iter().enumerate().skip(1) {
            assert_eq!(out.stats.traces.len(), 1);
            assert_eq!(out.stats.traces[0].rank as usize, w);
            assert_eq!(out.stats.timeline.len() as u64, out.stats.supersteps);
        }
    }

    /// Checkpointing is observationally free (same values, bytes,
    /// messages, supersteps, rounds, pool), leaves a committed epoch
    /// behind, and a second run against the same directory restores it
    /// and replays only the tail — converging to the identical output.
    #[test]
    fn threaded_checkpoint_is_transparent_and_resumable() {
        let n = 96u32;
        let dir = std::env::temp_dir().join(format!(
            "pc_engine_ckpt_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let topo = Arc::new(Topology::hashed(n as usize, 3));
        let plain = run(&RingSum { n }, &topo, &Config::with_workers(3));
        let ck_cfg = Config {
            ckpt: Some(CkptPolicy {
                every: 1,
                dir: dir.clone(),
            }),
            ..Config::with_workers(3)
        };
        let ck = run(&RingSum { n }, &topo, &ck_cfg);
        assert_eq!(ck.values, plain.values);
        assert_eq!(ck.stats.remote_bytes(), plain.stats.remote_bytes());
        assert_eq!(ck.stats.total_bytes(), plain.stats.total_bytes());
        assert_eq!(ck.stats.messages(), plain.stats.messages());
        assert_eq!(ck.stats.supersteps, plain.stats.supersteps);
        assert_eq!(ck.stats.rounds, plain.stats.rounds);
        assert_eq!(ck.stats.pool, plain.stats.pool);
        // The run terminated after superstep 2, so the committed epoch is
        // the boundary after superstep 1.
        let store = pc_ckpt::Store::open(&dir).unwrap();
        assert_eq!(store.committed_steps().unwrap(), vec![1]);
        // Resume: restores superstep 1 and replays only superstep 2.
        let resumed = run(&RingSum { n }, &topo, &ck_cfg);
        assert_eq!(resumed.values, plain.values);
        assert_eq!(resumed.stats.supersteps, plain.stats.supersteps);
        assert_eq!(resumed.stats.rounds, plain.stats.rounds);
        assert_eq!(resumed.stats.messages(), plain.stats.messages());
        assert_eq!(resumed.stats.total_bytes(), plain.stats.total_bytes());
        assert_eq!(resumed.stats.pool, plain.stats.pool);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A channel without a state codec is refused before the first
    /// superstep, with a message naming the channel.
    #[test]
    #[should_panic(expected = "does not support checkpointing")]
    fn non_checkpointable_channel_is_refused_up_front() {
        let dir =
            std::env::temp_dir().join(format!("pc_engine_ckpt_refuse_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let topo = Arc::new(Topology::hashed(64, 2));
        let cfg = Config {
            ckpt: Some(CkptPolicy { every: 2, dir }),
            ..Config::with_workers(2)
        };
        run(&PulseAlgo { steps: 10 }, &topo, &cfg);
    }

    /// `Config::spin_budget = Some(0)` reaches the barrier: no arrival
    /// spins are ever recorded.
    #[test]
    fn spin_budget_zero_is_plumbed_to_the_barrier() {
        let topo = Arc::new(Topology::hashed(64, 4));
        let cfg = Config {
            spin_budget: Some(0),
            ..Config::with_workers(4)
        };
        let out = run(&PulseAlgo { steps: 10 }, &topo, &cfg);
        assert_eq!(out.stats.barrier_spins, 0);
        assert!(out.stats.barrier_crossings > 0);
    }

    #[test]
    #[should_panic(expected = "exceeded max_supersteps")]
    fn runaway_program_is_caught() {
        struct Forever;
        impl Algorithm for Forever {
            type Value = u64;
            type Channels = ();
            fn channels(&self, _env: &WorkerEnv) -> Self::Channels {}
            fn compute(&self, _v: &mut VertexCtx<'_>, _value: &mut u64, _ch: &mut ()) {}
        }
        let topo = Arc::new(Topology::hashed(10, 2));
        let cfg = Config {
            max_supersteps: 50,
            ..Config::sequential(2)
        };
        run(&Forever, &topo, &cfg);
    }

    #[test]
    fn single_worker_runs() {
        let topo = Arc::new(Topology::hashed(32, 1));
        let out = run(&RingSum { n: 32 }, &topo, &Config::sequential(1));
        assert_eq!(out.stats.remote_bytes(), 0, "all traffic is loop-back");
        assert!(out.stats.total_bytes() > 0);
    }

    /// A channel that re-sends every superstep — drives the exchange path
    /// into steady state so pool reuse is observable.
    struct Pulse {
        env: WorkerEnv,
        rounds: u64,
    }
    impl Channel<u64> for Pulse {
        fn name(&self) -> &'static str {
            "pulse"
        }
        fn serialize(&mut self, cx: &mut SerializeCx<'_>) {
            for peer in 0..cx.workers() {
                cx.frame(peer, |buf| self.rounds.encode(buf));
            }
            self.rounds += 1;
        }
        fn deserialize(&mut self, cx: &mut DeserializeCx<'_, u64>) {
            let _ = &self.env;
            for (_from, mut r) in cx.frames() {
                let _: u64 = r.get();
            }
        }
    }

    /// Every vertex stays active for `steps` supersteps; the channel
    /// broadcasts every round.
    struct PulseAlgo {
        steps: u64,
    }
    impl Algorithm for PulseAlgo {
        type Value = u64;
        type Channels = (Pulse,);
        crate::dist_value_via_codec!();
        fn channels(&self, env: &WorkerEnv) -> Self::Channels {
            (Pulse {
                env: env.clone(),
                rounds: 0,
            },)
        }
        fn compute(&self, v: &mut VertexCtx<'_>, _value: &mut u64, _ch: &mut Self::Channels) {
            if v.step() >= self.steps {
                v.vote_to_halt();
            }
        }
    }

    #[test]
    fn steady_state_exchange_reuses_buffers() {
        let topo = Arc::new(Topology::hashed(64, 4));
        for cfg in [Config::sequential(4), Config::with_workers(4)] {
            let out = run(&PulseAlgo { steps: 50 }, &topo, &cfg);
            let pool = out.stats.pool;
            // The pool is pre-warmed with one buffer per peer, so even
            // the first round allocates nothing: every round of the run
            // is served from the pool.
            assert_eq!(pool.misses, 0, "the exchange path allocated ({cfg:?})");
            assert_eq!(
                out.stats.pool_hit_rate(),
                1.0,
                "hit rate below 1.0 ({cfg:?})"
            );
        }
    }

    #[test]
    fn threaded_rounds_cross_barrier_twice() {
        let topo = Arc::new(Topology::hashed(64, 4));
        let out = run(&PulseAlgo { steps: 50 }, &topo, &Config::with_workers(4));
        // Each superstep has one exchange round (2 crossings) and the last
        // superstep of the run adds nothing extra; allow the final
        // channel-free accounting margin.
        let per_round = out.stats.crossings_per_round();
        assert!(
            per_round <= 2.1,
            "expected ≤2 barrier crossings per round, measured {per_round}"
        );
        assert!(out.stats.barrier_crossings > 0);
    }

    /// Sparse-frontier regression guard: after step 1 only vertex 0 stays
    /// active, and the run must still terminate with correct values.
    struct Lonely;
    impl Algorithm for Lonely {
        type Value = u64;
        type Channels = ();
        fn channels(&self, _env: &WorkerEnv) -> Self::Channels {}
        fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u64, _ch: &mut ()) {
            *value += 1;
            if v.id != 0 || v.step() >= 20 {
                v.vote_to_halt();
            }
        }
    }

    #[test]
    fn sparse_frontier_only_computes_active_vertices() {
        let topo = Arc::new(Topology::hashed(1000, 4));
        for cfg in [Config::sequential(4), Config::with_workers(4)] {
            let out = run(&Lonely, &topo, &cfg);
            assert_eq!(out.stats.supersteps, 20);
            assert_eq!(out.values[0], 20);
            assert!(
                out.values[1..].iter().all(|&v| v == 1),
                "halted vertices ran once"
            );
        }
    }
}
