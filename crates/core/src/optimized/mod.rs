//! The optimized channels of Table II. Each is a drop-in replacement for a
//! message-passing pattern, carrying one targeted optimization (§IV-C):
//!
//! * [`scatter::ScatterCombine`] — static messaging pattern, pre-sorted
//!   edge array, sender-side combining by linear scan;
//! * [`reqresp::RequestRespond`] — request deduplication per worker and
//!   positional responses, fixing high-degree responder imbalance;
//! * [`propagation::Propagation`] — intra-worker asynchronous label
//!   propagation, collapsing diameter-bound supersteps;
//! * [`mirror::Mirror`] — sender-centric combining (ghost vertices) as a
//!   composable channel, which Pregel+ only offers as a non-composable
//!   execution mode.

pub mod mirror;
pub mod propagation;
pub mod reqresp;
pub mod scatter;
