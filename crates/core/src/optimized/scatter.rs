//! The `ScatterCombine` channel (§IV-C1, Fig. 5).
//!
//! Targets the **static messaging pattern**: every vertex sends a value to
//! all of its (pre-registered) neighbors each superstep, regardless of
//! local state — PageRank's rank broadcast, S-V's neighborhood pointer
//! exchange. An iterative algorithm with this pattern wastes time repeating
//! the same message-dispatch procedure every superstep; this channel
//! pre-processes the routes once:
//!
//! * at registration, edges are grouped per destination worker and sorted
//!   by destination vertex (Fig. 5's pre-calculated sorted edge array);
//! * each superstep, one linear scan of the sorted edges folds the values
//!   of all local sources per distinct destination (combining without a
//!   hash table) and emits one message per distinct destination;
//! * because the destination sequence is static, the ids are transmitted
//!   **once**; later supersteps ship bare values in the agreed order and
//!   the receiver zips them with its cached route list — the "removal of
//!   redundant transmission of vertices' identifiers" that gives the
//!   paper's ~1/3 message-size reduction on PageRank;
//! * the receiver writes combined values into a dense slot array by local
//!   index — no routing table, no hashing.
//!
//! If a superstep is *not* complete (some registered vertex didn't
//! `set_message`, e.g. the algorithm's last iteration), the channel
//! transparently falls back to explicit `(dst, value)` pairs for that
//! superstep, preserving correctness for non-static uses.

use crate::channel::{Channel, DeserializeCx, SerializeCx, WorkerEnv};
use crate::combine::Combine;
use pc_bsp::codec::Codec;
use pc_graph::VertexId;

/// Wire modes for one scatter frame.
const MODE_VALUES: u8 = 0;
const MODE_FULL: u8 = 1;
const MODE_PAIRS: u8 = 2;

/// Sender-combined broadcast channel over a static edge set.
pub struct ScatterCombine<M> {
    env: WorkerEnv,
    combine: Combine<M>,
    /// Per destination worker: `(dst local index at receiver, src local
    /// index here)`, sorted by destination once registration settles.
    edges: Vec<Vec<(u32, u32)>>,
    /// Distinct destinations per peer, aligned with the scan output order.
    unique_dsts: Vec<Vec<u32>>,
    /// Whether the id sequence has been shipped to each peer.
    ids_shipped: Vec<bool>,
    dirty: bool,
    /// Local vertices with at least one registered edge.
    registered: Vec<bool>,
    /// This superstep's outgoing value per local vertex.
    slots: Vec<Option<M>>,
    /// Cached destination routes per *sender* worker (receive side).
    routes: Vec<Vec<u32>>,
    /// Receive-side dense slot arrays (double-buffered).
    incoming: Vec<Option<M>>,
    readable: Vec<Option<M>>,
    messages: u64,
}

impl<M: Codec + Clone + Send> ScatterCombine<M> {
    /// Create this worker's instance.
    pub fn new(env: &WorkerEnv, combine: Combine<M>) -> Self {
        let numv = env.local_count();
        let workers = env.workers();
        ScatterCombine {
            env: env.clone(),
            combine,
            edges: vec![Vec::new(); workers],
            unique_dsts: vec![Vec::new(); workers],
            ids_shipped: vec![false; workers],
            dirty: false,
            registered: vec![false; numv],
            slots: vec![None; numv],
            routes: vec![Vec::new(); workers],
            incoming: vec![None; numv],
            readable: vec![None; numv],
            messages: 0,
        }
    }

    /// Register a static edge from local vertex `src_local` to the vertex
    /// with global id `dst`. Usually called once per out-edge in the first
    /// superstep; adding edges later re-triggers preprocessing.
    pub fn add_edge(&mut self, src_local: u32, dst: VertexId) {
        let peer = self.env.worker_of(dst);
        self.edges[peer].push((self.env.local_of(dst), src_local));
        self.registered[src_local as usize] = true;
        self.dirty = true;
    }

    /// Set the value this vertex scatters along all its registered edges
    /// this superstep.
    pub fn set_message(&mut self, src_local: u32, m: M) {
        self.slots[src_local as usize] = Some(m);
    }

    /// The combined value gathered by `local` this superstep, if any
    /// in-neighbor scattered.
    pub fn get_message(&self, local: u32) -> Option<&M> {
        self.readable[local as usize].as_ref()
    }

    /// Combined value or the combiner's identity.
    pub fn get_or_identity(&self, local: u32) -> M {
        self.get_message(local)
            .cloned()
            .unwrap_or_else(|| self.combine.identity())
    }

    /// Total registered edges on this worker.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    fn finalize_routes(&mut self) {
        for peer in 0..self.edges.len() {
            self.edges[peer].sort_unstable();
            let mut uniq = Vec::new();
            for &(dst, _) in &self.edges[peer] {
                if uniq.last() != Some(&dst) {
                    uniq.push(dst);
                }
            }
            self.unique_dsts[peer] = uniq;
            self.ids_shipped[peer] = false;
        }
        self.dirty = false;
    }

    /// All registered sources set a message this superstep — the static
    /// pattern in effect.
    fn superstep_complete(&self) -> bool {
        self.registered
            .iter()
            .zip(&self.slots)
            .all(|(&reg, slot)| !reg || slot.is_some())
    }

    /// One linear scan of a peer's sorted edges: fold the slot values of
    /// all sources per distinct destination (Fig. 5's execution logic).
    fn combined_for_peer(&self, peer: usize) -> Vec<(u32, M)> {
        let per_peer = &self.edges[peer];
        let mut out = Vec::with_capacity(self.unique_dsts[peer].len());
        let mut i = 0usize;
        while i < per_peer.len() {
            let dst = per_peer[i].0;
            let mut acc: Option<M> = None;
            while i < per_peer.len() && per_peer[i].0 == dst {
                if let Some(v) = &self.slots[per_peer[i].1 as usize] {
                    match &mut acc {
                        Some(a) => self.combine.apply(a, v.clone()),
                        None => acc = Some(v.clone()),
                    }
                }
                i += 1;
            }
            if let Some(v) = acc {
                out.push((dst, v));
            }
        }
        out
    }
}

impl<AV, M: Codec + Clone + Send> Channel<AV> for ScatterCombine<M> {
    fn name(&self) -> &'static str {
        "scatter"
    }

    fn before_superstep(&mut self, _step: u64) {
        std::mem::swap(&mut self.readable, &mut self.incoming);
        self.incoming.iter_mut().for_each(|s| *s = None);
    }

    fn serialize(&mut self, cx: &mut SerializeCx<'_>) {
        if self.dirty {
            self.finalize_routes();
        }
        if self.slots.iter().all(Option::is_none) {
            return; // nothing scattered this superstep
        }
        let complete = self.superstep_complete();
        for peer in 0..self.edges.len() {
            if self.edges[peer].is_empty() {
                continue;
            }
            let combined = self.combined_for_peer(peer);
            if combined.is_empty() {
                continue;
            }
            self.messages += combined.len() as u64;
            if complete {
                debug_assert_eq!(combined.len(), self.unique_dsts[peer].len());
                if self.ids_shipped[peer] {
                    // Static pattern, routes known: bare values only.
                    cx.frame(peer, |buf| {
                        MODE_VALUES.encode(buf);
                        for (_, m) in &combined {
                            m.encode(buf);
                        }
                    });
                } else {
                    // First scatter: ship the id sequence once.
                    cx.frame(peer, |buf| {
                        MODE_FULL.encode(buf);
                        (combined.len() as u32).encode(buf);
                        for (dst, _) in &combined {
                            dst.encode(buf);
                        }
                        for (_, m) in &combined {
                            m.encode(buf);
                        }
                    });
                    self.ids_shipped[peer] = true;
                }
            } else {
                // Partial superstep: explicit pairs, cache untouched.
                cx.frame(peer, |buf| {
                    MODE_PAIRS.encode(buf);
                    for (dst, m) in &combined {
                        dst.encode(buf);
                        m.encode(buf);
                    }
                });
            }
        }
        self.slots.iter_mut().for_each(|s| *s = None);
    }

    fn deserialize(&mut self, cx: &mut DeserializeCx<'_, AV>) {
        for (from, mut r) in cx.frames() {
            let mode: u8 = r.get();
            match mode {
                MODE_FULL => {
                    let count = r.get::<u32>() as usize;
                    let mut route = Vec::with_capacity(count);
                    for _ in 0..count {
                        route.push(r.get::<u32>());
                    }
                    for &dst_local in &route {
                        let m: M = r.get();
                        absorb(&mut self.incoming, &self.combine, dst_local, m);
                        cx.activate(dst_local);
                    }
                    self.routes[from] = route;
                }
                MODE_VALUES => {
                    for i in 0..self.routes[from].len() {
                        let dst_local = self.routes[from][i];
                        let m: M = r.get();
                        absorb(&mut self.incoming, &self.combine, dst_local, m);
                        cx.activate(dst_local);
                    }
                    debug_assert!(r.is_empty(), "scatter VALUES frame length mismatch");
                }
                MODE_PAIRS => {
                    while !r.is_empty() {
                        let dst_local: u32 = r.get();
                        let m: M = r.get();
                        absorb(&mut self.incoming, &self.combine, dst_local, m);
                        cx.activate(dst_local);
                    }
                }
                other => unreachable!("unknown scatter frame mode {other}"),
            }
        }
    }

    fn message_count(&self) -> u64 {
        self.messages
    }

    fn encode_state(&self, buf: &mut Vec<u8>) -> bool {
        // The registered route tables are built by `compute` in early
        // supersteps and never rebuilt on restore, so they are state just
        // as much as the staged receive slots are.
        self.edges.encode(buf);
        self.unique_dsts.encode(buf);
        self.ids_shipped.encode(buf);
        self.dirty.encode(buf);
        self.registered.encode(buf);
        self.slots.encode(buf);
        self.routes.encode(buf);
        self.incoming.encode(buf);
        self.messages.encode(buf);
        true
    }

    fn decode_state(&mut self, r: &mut pc_bsp::codec::Reader<'_>) {
        self.edges = r.get();
        self.unique_dsts = r.get();
        self.ids_shipped = r.get();
        self.dirty = r.get();
        self.registered = r.get();
        self.slots = r.get();
        self.routes = r.get();
        self.incoming = r.get();
        self.messages = r.get();
    }
}

fn absorb<M: Clone>(slots: &mut [Option<M>], combine: &Combine<M>, dst: u32, m: M) {
    match &mut slots[dst as usize] {
        Some(acc) => combine.apply(acc, m),
        slot @ None => *slot = Some(m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::VertexCtx;
    use crate::engine::{run, Algorithm};
    use pc_bsp::{Config, Topology};
    use pc_graph::{gen, Graph};
    use std::sync::Arc;

    /// Scatter vertex ids along graph edges; gather the min per receiver.
    struct MinOfNeighbors {
        g: Arc<Graph>,
    }
    impl Algorithm for MinOfNeighbors {
        type Value = u32;
        type Channels = (ScatterCombine<u32>,);
        fn channels(&self, env: &WorkerEnv) -> Self::Channels {
            (ScatterCombine::new(env, Combine::min_u32()),)
        }
        fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u32, ch: &mut Self::Channels) {
            match v.step() {
                1 => {
                    for &t in self.g.neighbors(v.id) {
                        ch.0.add_edge(v.local, t);
                    }
                    ch.0.set_message(v.local, v.id);
                }
                _ => {
                    *value = ch.0.get_or_identity(v.local);
                    v.vote_to_halt();
                }
            }
        }
    }

    fn min_in_neighbor_oracle(g: &Graph) -> Vec<u32> {
        let mut expect = vec![u32::MAX; g.n()];
        for (u, v, ()) in g.arcs() {
            expect[v as usize] = expect[v as usize].min(u);
        }
        expect
    }

    #[test]
    fn scatter_gathers_min_over_in_neighbors() {
        let g = Arc::new(gen::rmat(8, 2000, gen::RmatParams::default(), 9, true));
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let expect = min_in_neighbor_oracle(&g);
        for cfg in [Config::sequential(4), Config::with_workers(4)] {
            let out = run(&MinOfNeighbors { g: Arc::clone(&g) }, &topo, &cfg);
            assert_eq!(out.values, expect);
        }
    }

    #[test]
    fn sender_combining_reduces_wire_pairs() {
        // A star pointing inward: every leaf scatters to the hub. With 4
        // workers, the hub receives at most 4 combined messages instead of
        // n-1.
        let n = 101;
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (i, 0)).collect();
        let g = Arc::new(Graph::from_edges(n, &edges, true));
        let topo = Arc::new(Topology::hashed(n, 4));
        let out = run(&MinOfNeighbors { g }, &topo, &Config::sequential(4));
        assert_eq!(out.values[0], 1);
        let ch = &out.stats.channels[0];
        assert!(
            ch.messages <= 4,
            "one combined message per worker, got {}",
            ch.messages
        );
    }

    /// Scatter a constant for `iters` supersteps — used to verify the
    /// ids-shipped-once wire saving.
    struct RepeatScatter {
        g: Arc<Graph>,
        iters: u64,
    }
    impl Algorithm for RepeatScatter {
        type Value = u64;
        type Channels = (ScatterCombine<u64>,);
        fn channels(&self, env: &WorkerEnv) -> Self::Channels {
            (ScatterCombine::new(env, Combine::sum_u64()),)
        }
        fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u64, ch: &mut Self::Channels) {
            if v.step() == 1 {
                for &t in self.g.neighbors(v.id) {
                    ch.0.add_edge(v.local, t);
                }
            }
            *value += ch.0.get_or_identity(v.local);
            if v.step() <= self.iters {
                ch.0.set_message(v.local, 1);
            } else {
                v.vote_to_halt();
            }
        }
    }

    #[test]
    fn ids_are_transmitted_only_once() {
        let g = Arc::new(gen::rmat(8, 1500, gen::RmatParams::default(), 4, true));
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let short = run(
            &RepeatScatter {
                g: Arc::clone(&g),
                iters: 1,
            },
            &topo,
            &Config::sequential(4),
        );
        let long = run(
            &RepeatScatter {
                g: Arc::clone(&g),
                iters: 11,
            },
            &topo,
            &Config::sequential(4),
        );
        let b1 = short.stats.total_bytes() as f64;
        let b11 = long.stats.total_bytes() as f64;
        // 11 scatters cost far less than 11× one scatter: ids ship once.
        // With u64 values, steady-state frames are ~8/12 of the first.
        let per_extra = (b11 - b1) / 10.0;
        assert!(
            per_extra < 0.75 * b1,
            "per-superstep cost {per_extra} should drop below 0.75× first-superstep cost {b1}"
        );
    }

    #[test]
    fn repeated_supersteps_accumulate_correctly() {
        let g = Arc::new(gen::cycle(12));
        let topo = Arc::new(Topology::hashed(12, 4));
        let out = run(
            &RepeatScatter { g, iters: 3 },
            &topo,
            &Config::with_workers(4),
        );
        // Each vertex has 2 in-neighbors scattering 1 for 3 supersteps.
        assert!(out.values.iter().all(|&v| v == 6), "{:?}", out.values);
    }

    #[test]
    fn partial_supersteps_fall_back_to_pairs() {
        /// Only even vertices scatter.
        struct EvenOnly {
            g: Arc<Graph>,
        }
        impl Algorithm for EvenOnly {
            type Value = u32;
            type Channels = (ScatterCombine<u32>,);
            fn channels(&self, env: &WorkerEnv) -> Self::Channels {
                (ScatterCombine::new(env, Combine::min_u32()),)
            }
            fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u32, ch: &mut Self::Channels) {
                if v.step() == 1 {
                    for &t in self.g.neighbors(v.id) {
                        ch.0.add_edge(v.local, t);
                    }
                    if v.id.is_multiple_of(2) {
                        ch.0.set_message(v.local, v.id);
                    }
                } else {
                    *value = ch.0.get_or_identity(v.local);
                    v.vote_to_halt();
                }
            }
        }
        let g = Arc::new(gen::cycle(10));
        let topo = Arc::new(Topology::hashed(10, 3));
        let out = run(
            &EvenOnly { g: Arc::clone(&g) },
            &topo,
            &Config::sequential(3),
        );
        // Odd vertices have two even neighbors; even vertices have none.
        for v in 0..10u32 {
            let expect = if v % 2 == 1 {
                g.neighbors(v)
                    .iter()
                    .copied()
                    .filter(|t| t % 2 == 0)
                    .min()
                    .unwrap()
            } else {
                u32::MAX
            };
            assert_eq!(out.values[v as usize], expect, "vertex {v}");
        }
    }

    #[test]
    fn mixed_complete_and_partial_supersteps() {
        /// Complete at steps 1-2, partial at step 3, complete at 4.
        struct Mixed {
            g: Arc<Graph>,
        }
        impl Algorithm for Mixed {
            type Value = Vec<u64>;
            type Channels = (ScatterCombine<u64>,);
            fn channels(&self, env: &WorkerEnv) -> Self::Channels {
                (ScatterCombine::new(env, Combine::sum_u64()),)
            }
            fn compute(
                &self,
                v: &mut VertexCtx<'_>,
                value: &mut Vec<u64>,
                ch: &mut Self::Channels,
            ) {
                if v.step() == 1 {
                    for &t in self.g.neighbors(v.id) {
                        ch.0.add_edge(v.local, t);
                    }
                }
                if v.step() >= 2 {
                    value.push(ch.0.get_or_identity(v.local));
                }
                match v.step() {
                    1 | 2 | 4 => ch.0.set_message(v.local, 1),
                    3 => {
                        if v.id == 0 {
                            ch.0.set_message(v.local, 100);
                        }
                    }
                    _ => v.vote_to_halt(),
                }
            }
        }
        let g = Arc::new(gen::cycle(8));
        let topo = Arc::new(Topology::hashed(8, 3));
        let out = run(&Mixed { g: Arc::clone(&g) }, &topo, &Config::sequential(3));
        for (id, vals) in out.values.iter().enumerate() {
            assert_eq!(vals[0], 2, "step2 gather at {id}"); // both neighbors sent 1
            assert_eq!(vals[1], 2, "step3 gather at {id}");
            // step 4 reads step-3 partial scatter: only vertex 0 sent 100.
            let expect = if g.neighbors(id as u32).contains(&0) {
                100
            } else {
                0
            };
            assert_eq!(vals[2], expect, "step4 gather at {id}");
            assert_eq!(vals[3], 2, "step5 gather at {id}");
        }
    }
}
