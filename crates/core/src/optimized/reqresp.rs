//! The `RequestRespond` channel (§IV-C2, Fig. 6).
//!
//! Two rounds of message passing form a conversation: in the *request*
//! round every vertex may ask for an attribute of any other vertex; in the
//! *respond* round the attribute values travel back. The naive
//! implementation (each requester messages the target, the target replies
//! individually) makes high-degree targets reply to thousands of
//! requesters — the load-imbalance issue the paper identifies in S-V's
//! parent queries.
//!
//! The optimization (after Pregel+'s reqresp mode, with the paper's two
//! improvements):
//!
//! * per-worker **deduplication**: each worker sorts and dedups the targets
//!   its vertices requested, sending every distinct target exactly once —
//!   a target replies at most once per *worker*, not per requester;
//! * **positional responses**: the responder returns a bare value list in
//!   request order, so responses carry no vertex ids at all (the trick the
//!   paper credits for its constant 33% size win over Pregel+'s
//!   id+value replies).
//!
//! The respond value is produced by a user function applied to the target
//! vertex's value, so target vertices participate without running
//! `compute` — "implicit style" in the paper's words.

use crate::channel::{Channel, DeserializeCx, SerializeCx, WorkerEnv};
use pc_bsp::codec::Codec;
use pc_graph::VertexId;
use std::sync::Arc;

/// Request/respond conversation channel: requests target vertices with
/// values of type `AV`; responses carry type `R`.
pub struct RequestRespond<AV, R> {
    env: WorkerEnv,
    respond: Arc<dyn Fn(&AV) -> R + Send + Sync>,
    /// Targets requested this superstep (global ids), bucketed per owner.
    staged: Vec<Vec<VertexId>>,
    /// Sorted, deduplicated requests sent this superstep, per owner.
    sent: Vec<Vec<VertexId>>,
    /// Response lists produced for each requesting worker (respond round).
    pending: Vec<Vec<R>>,
    /// Received responses, positional with `sent` (double-buffered).
    incoming: Vec<Vec<R>>,
    read_requests: Vec<Vec<VertexId>>,
    read_responses: Vec<Vec<R>>,
    phase: u8,
    traffic: bool,
    messages: u64,
}

impl<AV, R: Codec + Clone + Send> RequestRespond<AV, R> {
    /// Create this worker's instance. `respond` derives the response from
    /// the target vertex's value (the constructor argument of Table II).
    pub fn new(env: &WorkerEnv, respond: impl Fn(&AV) -> R + Send + Sync + 'static) -> Self {
        let workers = env.workers();
        RequestRespond {
            env: env.clone(),
            respond: Arc::new(respond),
            staged: vec![Vec::new(); workers],
            sent: vec![Vec::new(); workers],
            pending: (0..workers).map(|_| Vec::new()).collect(),
            incoming: (0..workers).map(|_| Vec::new()).collect(),
            read_requests: vec![Vec::new(); workers],
            read_responses: (0..workers).map(|_| Vec::new()).collect(),
            phase: 0,
            traffic: false,
            messages: 0,
        }
    }

    /// Request the attribute of the vertex with global id `dst`; the
    /// response is readable via [`RequestRespond::get_respond`] next
    /// superstep.
    pub fn add_request(&mut self, dst: VertexId) {
        self.staged[self.env.worker_of(dst)].push(dst);
    }

    /// The response for target `dst`, if it was requested last superstep.
    pub fn get_respond(&self, dst: VertexId) -> Option<&R> {
        let peer = self.env.worker_of(dst);
        let idx = self.read_requests[peer].binary_search(&dst).ok()?;
        self.read_responses[peer].get(idx)
    }
}

impl<AV, R: Codec + Clone + Send> Channel<AV> for RequestRespond<AV, R> {
    fn name(&self) -> &'static str {
        "reqresp"
    }

    fn before_superstep(&mut self, _step: u64) {
        self.read_requests = std::mem::replace(&mut self.sent, vec![Vec::new(); self.staged.len()]);
        self.read_responses = std::mem::take(&mut self.incoming);
        self.incoming = (0..self.staged.len()).map(|_| Vec::new()).collect();
        self.phase = 0;
        self.traffic = false;
    }

    fn serialize(&mut self, cx: &mut SerializeCx<'_>) {
        self.phase += 1;
        match self.phase {
            1 => {
                // Request round: dedup and ship distinct targets.
                for peer in 0..self.staged.len() {
                    let mut reqs = std::mem::take(&mut self.staged[peer]);
                    if reqs.is_empty() {
                        continue;
                    }
                    reqs.sort_unstable();
                    reqs.dedup();
                    self.messages += reqs.len() as u64;
                    self.traffic = true;
                    cx.frame(peer, |buf| {
                        for &dst in &reqs {
                            dst.encode(buf);
                        }
                    });
                    self.sent[peer] = reqs;
                }
            }
            2 => {
                // Respond round: bare positional value lists.
                for peer in 0..self.pending.len() {
                    if self.pending[peer].is_empty() {
                        continue;
                    }
                    let resp = std::mem::take(&mut self.pending[peer]);
                    self.messages += resp.len() as u64;
                    cx.frame(peer, |buf| {
                        for r in &resp {
                            r.encode(buf);
                        }
                    });
                }
            }
            _ => {}
        }
    }

    fn deserialize(&mut self, cx: &mut DeserializeCx<'_, AV>) {
        match self.phase {
            1 => {
                // Receive requests; produce responses from vertex values.
                for (from, mut r) in cx.frames() {
                    self.traffic = true;
                    while !r.is_empty() {
                        let dst: VertexId = r.get();
                        let local = self.env.local_of(dst);
                        let value = cx.value(local);
                        self.pending[from].push((self.respond)(value));
                    }
                }
            }
            2 => {
                for (from, mut r) in cx.frames() {
                    let expected = self.sent[from].len();
                    let mut resp = Vec::with_capacity(expected);
                    while !r.is_empty() {
                        resp.push(r.get::<R>());
                    }
                    debug_assert_eq!(resp.len(), expected, "positional response mismatch");
                    self.incoming[from] = resp;
                }
            }
            _ => {}
        }
    }

    fn again(&self) -> bool {
        // One extra round is needed whenever any requests flowed; the
        // engine ORs this across workers, so phase counters stay aligned.
        self.phase == 1 && self.traffic
    }

    fn message_count(&self) -> u64 {
        self.messages
    }

    fn encode_state(&self, buf: &mut Vec<u8>) -> bool {
        // At a boundary the conversation is complete: `sent` holds the
        // requests whose positional responses sit in `incoming`; both are
        // consumed by the next `before_superstep`. `staged`/`pending` are
        // drained and `phase`/`traffic` reset.
        self.sent.encode(buf);
        (self.incoming.len() as u32).encode(buf);
        for resp in &self.incoming {
            resp.encode(buf);
        }
        self.messages.encode(buf);
        true
    }

    fn decode_state(&mut self, r: &mut pc_bsp::codec::Reader<'_>) {
        self.sent = r.get();
        let n: u32 = r.get();
        assert_eq!(n as usize, self.incoming.len(), "peer count drifted");
        for resp in &mut self.incoming {
            *resp = r.get();
        }
        self.messages = r.get();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::VertexCtx;
    use crate::engine::{run, Algorithm};
    use pc_bsp::{Config, Topology};
    use std::sync::Arc;

    /// Every vertex asks for the squared value of vertex `id / 2`.
    struct AskParent;
    impl Algorithm for AskParent {
        type Value = u64;
        type Channels = (RequestRespond<u64, u64>,);
        fn channels(&self, env: &WorkerEnv) -> Self::Channels {
            (RequestRespond::new(env, |v: &u64| v * v),)
        }
        fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u64, ch: &mut Self::Channels) {
            match v.step() {
                1 => {
                    *value = v.id as u64 + 1;
                    ch.0.add_request(v.id / 2);
                }
                _ => {
                    let target = (v.id / 2) as u64 + 1;
                    assert_eq!(ch.0.get_respond(v.id / 2), Some(&(target * target)));
                    *value = *ch.0.get_respond(v.id / 2).unwrap();
                    v.vote_to_halt();
                }
            }
        }
    }

    #[test]
    fn responses_match_targets() {
        let topo = Arc::new(Topology::hashed(64, 4));
        for cfg in [Config::sequential(4), Config::with_workers(4)] {
            let out = run(&AskParent, &topo, &cfg);
            for id in 0..64u64 {
                let t = id / 2 + 1;
                assert_eq!(out.values[id as usize], t * t);
            }
            // Exactly 2 rounds in the request superstep, 1 in the final.
            assert_eq!(out.stats.supersteps, 2);
            assert_eq!(out.stats.rounds, 3);
        }
    }

    #[test]
    fn requests_are_deduplicated_per_worker() {
        /// All vertices request vertex 0.
        struct AllAskZero;
        impl Algorithm for AllAskZero {
            type Value = u64;
            type Channels = (RequestRespond<u64, u64>,);
            fn channels(&self, env: &WorkerEnv) -> Self::Channels {
                (RequestRespond::new(env, |v: &u64| *v),)
            }
            fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u64, ch: &mut Self::Channels) {
                if v.step() == 1 {
                    *value = v.id as u64 + 100;
                    ch.0.add_request(0);
                } else {
                    *value = *ch.0.get_respond(0).unwrap();
                    v.vote_to_halt();
                }
            }
        }
        let topo = Arc::new(Topology::hashed(1000, 4));
        let out = run(&AllAskZero, &topo, &Config::sequential(4));
        assert!(out.values.iter().all(|&v| v == 100));
        let ch = &out.stats.channels[0];
        // 4 deduped requests + 4 responses instead of 1000 + 1000.
        assert_eq!(ch.messages, 8);
    }

    #[test]
    fn no_requests_costs_one_round() {
        struct Quiet;
        impl Algorithm for Quiet {
            type Value = u64;
            type Channels = (RequestRespond<u64, u64>,);
            fn channels(&self, env: &WorkerEnv) -> Self::Channels {
                (RequestRespond::new(env, |v: &u64| *v),)
            }
            fn compute(&self, v: &mut VertexCtx<'_>, _value: &mut u64, ch: &mut Self::Channels) {
                assert!(ch.0.get_respond(0).is_none());
                v.vote_to_halt();
            }
        }
        let topo = Arc::new(Topology::hashed(10, 2));
        let out = run(&Quiet, &topo, &Config::sequential(2));
        assert_eq!(out.stats.rounds, 1);
        assert_eq!(out.stats.total_bytes(), 0);
    }

    #[test]
    fn repeated_conversations_across_supersteps() {
        /// Chase parent pointers: each vertex asks its current pointer for
        /// that vertex's pointer, three times (pointer doubling on a path).
        struct Chase;
        impl Algorithm for Chase {
            type Value = u32; // current pointer
            type Channels = (RequestRespond<u32, u32>,);
            fn channels(&self, env: &WorkerEnv) -> Self::Channels {
                (RequestRespond::new(env, |v: &u32| *v),)
            }
            fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u32, ch: &mut Self::Channels) {
                if v.step() == 1 {
                    *value = v.id.saturating_sub(1); // chain parent
                } else {
                    *value = *ch.0.get_respond(*value).unwrap();
                }
                if v.step() <= 3 {
                    ch.0.add_request(*value);
                } else {
                    v.vote_to_halt();
                }
            }
        }
        let n = 32u32;
        let topo = Arc::new(Topology::hashed(n as usize, 3));
        let out = run(&Chase, &topo, &Config::with_workers(3));
        // After k rounds of doubling a vertex's pointer moves 2^k - 1… here
        // simply check monotone decrease toward 0 and the head's fixpoint.
        assert_eq!(out.values[0], 0);
        assert_eq!(out.values[1], 0);
        for id in 2..n {
            assert!(out.values[id as usize] < id.saturating_sub(1).max(1));
        }
    }

    #[test]
    fn local_requests_use_loopback() {
        let topo = Arc::new(Topology::hashed(64, 1));
        let out = run(&AskParent, &topo, &Config::sequential(1));
        assert_eq!(out.stats.remote_bytes(), 0);
        assert!(out.stats.total_bytes() > 0);
    }
}
