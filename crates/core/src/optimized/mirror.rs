//! The `Mirror` channel — sender-centric message combining (vertex
//! replication / ghost vertices) as a *composable* channel.
//!
//! Pregel+ offers mirroring only as a global execution mode ("ghost
//! mode") that cannot be combined with its other mode (§VI: "it is less
//! flexible since the two modes cannot be composed and adding
//! optimizations is inconvenient"). In the channel architecture the same
//! optimization is just another channel, freely composable with the rest
//! of the library.
//!
//! Mechanism: a vertex whose registered out-degree reaches the threshold τ
//! is *mirrored* — broadcasting a value to its neighbors sends **one**
//! message per destination worker; the receiving worker expands it through
//! a mirror table built at registration time. Low-degree vertices send
//! per-edge messages, combined per destination at the sender like
//! [`crate::CombinedMessage`].
//!
//! Compared with [`crate::ScatterCombine`] (receiver-centric combining of
//! the same static pattern): mirroring ships fewer bytes when hubs
//! dominate — one message per *worker* instead of one per *distinct
//! destination* — but pays hash lookups and per-edge expansion at the
//! receiver (the paper's §V-B1 analysis of why ghost mode saves bytes
//! without saving time).

use crate::channel::{Channel, DeserializeCx, SerializeCx, WorkerEnv};
use crate::combine::Combine;
use pc_bsp::codec::Codec;
use pc_graph::VertexId;
use std::collections::HashMap;

/// Broadcast-to-neighbors channel with sender-centric combining above a
/// degree threshold.
pub struct Mirror<M> {
    env: WorkerEnv,
    combine: Combine<M>,
    threshold: usize,
    /// Out-edges registered per local vertex (global ids).
    edges: Vec<Vec<VertexId>>,
    /// For mirrored vertices: the distinct peers holding their neighbors.
    mirror_peers: Vec<Vec<u16>>,
    /// Whether registration changed since the tables were built.
    dirty: bool,
    /// Receive-side mirror tables: ghosted source id → local targets.
    ghost_in: HashMap<VertexId, Vec<u32>>,
    /// Mirror-table updates to ship (new ghosted vertex → its per-peer
    /// target lists), sent once like scatter's id transmission.
    pending_tables: Vec<Vec<(VertexId, Vec<u32>)>>,
    /// Staged traffic per peer.
    staged_ghost: Vec<Vec<(VertexId, M)>>,
    staged_direct: Vec<HashMap<VertexId, M>>,
    /// Receiver-combined values per local vertex (double-buffered).
    incoming: Vec<Option<M>>,
    readable: Vec<Option<M>>,
    messages: u64,
    /// Messages sent as per-worker mirror broadcasts.
    mirrored: u64,
    /// Per-edge messages the broadcasts avoided.
    saved: u64,
}

impl<M: Codec + Clone + Send> Mirror<M> {
    /// Create this worker's instance with mirroring threshold τ (the paper
    /// uses 16 for ghost mode).
    ///
    /// When the topology carries a [`pc_bsp::MirrorPlan`] (built at ship
    /// time by a degree-aware partitioner), the channel pre-wires from it:
    /// the plan's τ replaces `threshold`, owned hubs get their per-worker
    /// broadcast fan-out installed up front, and receive-side ghost tables
    /// for remote hubs targeting this worker are installed too — so no
    /// mirror tables ever ship in-band.
    pub fn new(env: &WorkerEnv, combine: Combine<M>, threshold: usize) -> Self {
        let numv = env.local_count();
        let workers = env.workers();
        let mut ch = Mirror {
            env: env.clone(),
            combine,
            threshold: threshold.max(1),
            edges: vec![Vec::new(); numv],
            mirror_peers: vec![Vec::new(); numv],
            dirty: false,
            ghost_in: HashMap::new(),
            pending_tables: vec![Vec::new(); workers],
            staged_ghost: vec![Vec::new(); workers],
            staged_direct: (0..workers).map(|_| HashMap::new()).collect(),
            incoming: vec![None; numv],
            readable: vec![None; numv],
            messages: 0,
            mirrored: 0,
            saved: 0,
        };
        if let Some(plan) = env.topo.mirror_plan() {
            ch.threshold = (plan.threshold as usize).max(1);
            for hub in &plan.hubs {
                if env.worker_of(hub.id) == env.worker {
                    ch.mirror_peers[env.local_of(hub.id) as usize] = hub.peers.clone();
                }
                if let Some(locals) = hub.targets_for(env.worker as u16) {
                    ch.ghost_in.insert(hub.id, locals.to_vec());
                }
            }
        }
        ch
    }

    /// The effective mirroring threshold τ (the plan's, when the topology
    /// carries one) — algorithms use it to route hub traffic here and
    /// low-degree traffic through cheaper channels.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Register a broadcast edge from local vertex `src_local` to the
    /// vertex with global id `dst`.
    pub fn add_edge(&mut self, src_local: u32, dst: VertexId) {
        self.edges[src_local as usize].push(dst);
        self.dirty = true;
    }

    /// Broadcast `m` to all registered out-neighbors of `src_local` (whose
    /// global id is `src_id`).
    pub fn send_to_neighbors(&mut self, src_local: u32, src_id: VertexId, m: M) {
        if self.dirty {
            self.rebuild_tables();
        }
        let li = src_local as usize;
        if !self.mirror_peers[li].is_empty() {
            for &peer in &self.mirror_peers[li] {
                self.staged_ghost[peer as usize].push((src_id, m.clone()));
            }
            self.mirrored += self.mirror_peers[li].len() as u64;
            self.saved +=
                (self.edges[li].len() as u64).saturating_sub(self.mirror_peers[li].len() as u64);
            return;
        }
        for i in 0..self.edges[li].len() {
            let dst = self.edges[li][i];
            let peer = self.env.worker_of(dst);
            match self.staged_direct[peer].entry(dst) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    self.combine.apply(e.get_mut(), m.clone());
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(m.clone());
                }
            }
        }
    }

    /// The combined value gathered by `local` this superstep.
    pub fn get_message(&self, local: u32) -> Option<&M> {
        self.readable[local as usize].as_ref()
    }

    /// Combined value or the combiner's identity.
    pub fn get_or_identity(&self, local: u32) -> M {
        self.get_message(local)
            .cloned()
            .unwrap_or_else(|| self.combine.identity())
    }

    /// Build mirror tables for newly-qualifying hubs and queue their
    /// receiver-side tables for (one-time) shipment.
    fn rebuild_tables(&mut self) {
        for li in 0..self.edges.len() {
            if self.edges[li].len() < self.threshold || !self.mirror_peers[li].is_empty() {
                continue;
            }
            let src_id = self.env.global_of(li as u32);
            // Group this hub's targets per owning worker.
            let mut per_peer: HashMap<u16, Vec<u32>> = HashMap::new();
            for &dst in &self.edges[li] {
                let peer = self.env.worker_of(dst) as u16;
                per_peer
                    .entry(peer)
                    .or_default()
                    .push(self.env.local_of(dst));
            }
            let mut peers: Vec<u16> = per_peer.keys().copied().collect();
            peers.sort_unstable();
            self.mirror_peers[li] = peers;
            for (peer, locals) in per_peer {
                self.pending_tables[peer as usize].push((src_id, locals));
            }
        }
        self.dirty = false;
    }

    fn absorb(&mut self, local: u32, m: M) {
        match &mut self.incoming[local as usize] {
            Some(acc) => self.combine.apply(acc, m),
            slot @ None => *slot = Some(m),
        }
    }
}

impl<AV, M: Codec + Clone + Send> Channel<AV> for Mirror<M> {
    fn name(&self) -> &'static str {
        "mirror"
    }

    fn before_superstep(&mut self, _step: u64) {
        std::mem::swap(&mut self.readable, &mut self.incoming);
        self.incoming.iter_mut().for_each(|s| *s = None);
    }

    fn serialize(&mut self, cx: &mut SerializeCx<'_>) {
        if self.dirty {
            self.rebuild_tables();
        }
        for peer in 0..self.staged_ghost.len() {
            let has_traffic = !self.staged_ghost[peer].is_empty()
                || !self.staged_direct[peer].is_empty()
                || !self.pending_tables[peer].is_empty();
            if !has_traffic {
                continue;
            }
            let tables = std::mem::take(&mut self.pending_tables[peer]);
            let ghosts = std::mem::take(&mut self.staged_ghost[peer]);
            let directs = std::mem::take(&mut self.staged_direct[peer]);
            self.messages += (ghosts.len() + directs.len()) as u64;
            cx.frame(peer, |buf| {
                // Section 1: one-time mirror-table updates.
                (tables.len() as u32).encode(buf);
                for (src, locals) in &tables {
                    src.encode(buf);
                    locals.encode(buf);
                }
                // Section 2: mirrored broadcasts.
                (ghosts.len() as u32).encode(buf);
                for (src, m) in &ghosts {
                    src.encode(buf);
                    m.encode(buf);
                }
                // Section 3: direct (sender-combined) messages to the end.
                for (dst, m) in &directs {
                    dst.encode(buf);
                    m.encode(buf);
                }
            });
        }
    }

    fn deserialize(&mut self, cx: &mut DeserializeCx<'_, AV>) {
        for (_from, mut r) in cx.frames() {
            let table_count: u32 = r.get();
            for _ in 0..table_count {
                let src: VertexId = r.get();
                let locals: Vec<u32> = r.get();
                self.ghost_in.insert(src, locals);
            }
            let ghost_count: u32 = r.get();
            for _ in 0..ghost_count {
                let src: VertexId = r.get();
                let m: M = r.get();
                let locals = self.ghost_in.get(&src).cloned().unwrap_or_default();
                for local in locals {
                    self.absorb(local, m.clone());
                    cx.activate(local);
                }
            }
            while !r.is_empty() {
                let dst: VertexId = r.get();
                let m: M = r.get();
                let local = self.env.local_of(dst);
                self.absorb(local, m);
                cx.activate(local);
            }
        }
    }

    fn message_count(&self) -> u64 {
        self.messages
    }

    fn mirror_stats(&self) -> (u64, u64) {
        (self.mirrored, self.saved)
    }

    fn encode_state(&self, buf: &mut Vec<u8>) -> bool {
        // Registration tables, receive-side mirror tables, not-yet-shipped
        // table updates and the staged receive slots. Hash maps are
        // written sorted by key so checkpoint bytes are deterministic.
        self.edges.encode(buf);
        self.mirror_peers.encode(buf);
        self.dirty.encode(buf);
        let mut ghosts: Vec<(&VertexId, &Vec<u32>)> = self.ghost_in.iter().collect();
        ghosts.sort_unstable_by_key(|(k, _)| **k);
        (ghosts.len() as u32).encode(buf);
        for (src, locals) in ghosts {
            src.encode(buf);
            locals.encode(buf);
        }
        self.pending_tables.encode(buf);
        self.incoming.encode(buf);
        self.messages.encode(buf);
        self.mirrored.encode(buf);
        self.saved.encode(buf);
        true
    }

    fn decode_state(&mut self, r: &mut pc_bsp::codec::Reader<'_>) {
        self.edges = r.get();
        self.mirror_peers = r.get();
        self.dirty = r.get();
        self.ghost_in.clear();
        let n: u32 = r.get();
        for _ in 0..n {
            let src: VertexId = r.get();
            let locals: Vec<u32> = r.get();
            self.ghost_in.insert(src, locals);
        }
        self.pending_tables = r.get();
        self.incoming = r.get();
        self.messages = r.get();
        self.mirrored = r.get();
        self.saved = r.get();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::VertexCtx;
    use crate::engine::{run, Algorithm};
    use pc_bsp::{Config, Topology};
    use pc_graph::{gen, Graph};
    use std::sync::Arc;

    /// Broadcast ids for several supersteps; receivers keep the min.
    struct MirrorMin {
        g: Arc<Graph>,
        threshold: usize,
        rounds: u64,
    }
    impl Algorithm for MirrorMin {
        type Value = u32;
        type Channels = (Mirror<u32>,);
        fn channels(&self, env: &WorkerEnv) -> Self::Channels {
            (Mirror::new(env, Combine::min_u32(), self.threshold),)
        }
        fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u32, ch: &mut Self::Channels) {
            if v.step() == 1 {
                *value = u32::MAX;
                for &t in self.g.neighbors(v.id) {
                    ch.0.add_edge(v.local, t);
                }
            } else {
                *value = ch.0.get_or_identity(v.local).min(*value);
            }
            if v.step() <= self.rounds {
                ch.0.send_to_neighbors(v.local, v.id, v.id);
            } else {
                v.vote_to_halt();
            }
        }
    }

    fn oracle(g: &Graph) -> Vec<u32> {
        let mut expect = vec![u32::MAX; g.n()];
        for (u, v, ()) in g.arcs() {
            expect[v as usize] = expect[v as usize].min(u);
        }
        expect
    }

    #[test]
    fn mirror_matches_direct_semantics_at_any_threshold() {
        let g = Arc::new(gen::rmat(8, 2000, gen::RmatParams::default(), 31, true));
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let expect = oracle(&g);
        for threshold in [1, 8, 64, usize::MAX] {
            for cfg in [Config::sequential(4), Config::with_workers(4)] {
                let algo = MirrorMin {
                    g: Arc::clone(&g),
                    threshold,
                    rounds: 1,
                };
                let out = run(&algo, &topo, &cfg);
                for (v, (&got, &want)) in out.values.iter().zip(&expect).enumerate() {
                    if want != u32::MAX {
                        assert_eq!(got, want, "v={v} threshold={threshold}");
                    }
                }
            }
        }
    }

    #[test]
    fn hub_broadcast_collapses_to_one_message_per_worker() {
        let g = Arc::new(gen::star(801));
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let cfg = Config::sequential(4);
        let mirrored = run(
            &MirrorMin {
                g: Arc::clone(&g),
                threshold: 16,
                rounds: 3,
            },
            &topo,
            &cfg,
        );
        let direct = run(
            &MirrorMin {
                g: Arc::clone(&g),
                threshold: usize::MAX,
                rounds: 3,
            },
            &topo,
            &cfg,
        );
        assert_eq!(mirrored.values, direct.values);
        // Hub: ≤ 4 ghost messages per superstep instead of 800 pairs.
        assert!(
            mirrored.stats.messages() * 50 < direct.stats.messages(),
            "mirrored {} vs direct {}",
            mirrored.stats.messages(),
            direct.stats.messages()
        );
    }

    #[test]
    fn prewired_plan_matches_lazy_tables_and_ships_none() {
        let g = Arc::new(gen::star(801));
        let lazy_topo = Arc::new(Topology::hashed(g.n(), 4));
        let plan = pc_graph::partition::build_mirror_plan(&*g, &lazy_topo, 16);
        let wired_topo = Arc::new(Topology::hashed(g.n(), 4).with_mirror(Arc::new(plan)));
        let cfg = Config::sequential(4);
        let algo = || MirrorMin {
            g: Arc::clone(&g),
            threshold: 16,
            rounds: 3,
        };
        let lazy = run(&algo(), &lazy_topo, &cfg);
        let wired = run(&algo(), &wired_topo, &cfg);
        assert_eq!(lazy.values, wired.values);
        // Same broadcasts either way; the plan only removes the in-band
        // mirror-table shipment, so the wired run is strictly smaller.
        assert_eq!(lazy.stats.messages(), wired.stats.messages());
        assert!(
            wired.stats.total_bytes() < lazy.stats.total_bytes(),
            "wired {} vs lazy {}",
            wired.stats.total_bytes(),
            lazy.stats.total_bytes()
        );
        assert!(wired.stats.mirrored_msgs() > 0);
        assert!(wired.stats.mirror_saved() > 0);
        assert_eq!(lazy.stats.mirrored_msgs(), wired.stats.mirrored_msgs());
    }

    #[test]
    fn plan_threshold_overrides_the_constructor() {
        let g = Arc::new(gen::star(801));
        let base = Topology::hashed(g.n(), 4);
        let plan = pc_graph::partition::build_mirror_plan(&*g, &base, 16);
        let topo = Arc::new(base.with_mirror(Arc::new(plan)));
        // The algorithm asks for no mirroring at all; the shipped plan's
        // τ=16 wins, so the hub still broadcasts per worker.
        let out = run(
            &MirrorMin {
                g: Arc::clone(&g),
                threshold: usize::MAX,
                rounds: 3,
            },
            &topo,
            &Config::sequential(4),
        );
        assert!(out.stats.mirrored_msgs() > 0);
        let expect = oracle(&g);
        for (v, (&got, &want)) in out.values.iter().zip(&expect).enumerate() {
            if want != u32::MAX {
                assert_eq!(got, want, "v={v}");
            }
        }
    }

    #[test]
    fn mirror_tables_ship_once() {
        let g = Arc::new(gen::star(801));
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let cfg = Config::sequential(4);
        let short = run(
            &MirrorMin {
                g: Arc::clone(&g),
                threshold: 4,
                rounds: 1,
            },
            &topo,
            &cfg,
        );
        let long = run(
            &MirrorMin {
                g: Arc::clone(&g),
                threshold: 4,
                rounds: 11,
            },
            &topo,
            &cfg,
        );
        // The table shipment is one-time: 10 extra supersteps of hub
        // broadcast cost far less than 10× the first.
        let extra = (long.stats.total_bytes() - short.stats.total_bytes()) as f64 / 10.0;
        assert!(
            extra < 0.2 * short.stats.total_bytes() as f64,
            "per-superstep cost {extra} vs first {}",
            short.stats.total_bytes()
        );
    }
}
