//! The `Propagation` channel (§IV-C3, Fig. 7).
//!
//! Targets propagation-based algorithms — some vertices emit initial
//! labels, receivers fold them in with a commutative combiner and propagate
//! onward when their value changes. Under plain message passing such
//! algorithms need one superstep per hop, so graphs with large diameters
//! converge very slowly.
//!
//! This channel combines the strengths of asynchronous GAS execution and
//! block-centric computation (Blogel): within every exchange round, each
//! worker performs a BFS-like traversal of *its own* subgraph, pushing
//! labels as far as they go locally; only updates to remote vertices
//! become messages. Remote updates are combined in dense per-peer slot
//! arrays with dirty lists ([`PeerStage`]) — the hottest combiner path
//! does no hashing and serializes in deterministic first-touch order.
//! The engine keeps the round loop running (via [`Channel::again`]) until
//! no worker has pending work — so an entire label-propagation fixpoint
//! completes inside a single superstep, in a few exchange rounds instead
//! of `O(diameter)` supersteps.
//!
//! The vertex value is the channel's state: seed with
//! [`Propagation::set_value`], read the converged result with
//! [`Propagation::get_value`] in the next superstep. The combiner must be
//! commutative and idempotent-friendly (the fold order is unspecified);
//! monotone folds like `min`/`max` are the intended use.
//!
//! Table II presents the channel's *simplified* API "for saving space";
//! the full model of Fig. 7 also applies a user function `aᵢ = f(eᵢ, vᵢ)`
//! to each edge value. Both are supported here: `Propagation<M>` is the
//! simplified (unweighted) form, and [`Propagation::weighted`] constructs
//! the full form with per-edge values of type `E` (e.g. asynchronous
//! shortest paths with `f = |w, d| d + w` and a `min` combiner).

use crate::channel::{Channel, DeserializeCx, SerializeCx, WorkerEnv};
use crate::combine::Combine;
use pc_bsp::codec::Codec;
use pc_graph::VertexId;
use std::collections::VecDeque;
use std::sync::Arc;

/// Edge transformation `aᵢ = f(eᵢ, vᵢ)` of the propagation model (Fig. 7).
type EdgeFn<E, M> = Arc<dyn Fn(&E, &M) -> M + Send + Sync>;

/// Outgoing remote updates for one peer, combined per target without
/// hashing: a dense slot array indexed by the *receiver's* local vertex
/// index plus a dirty list of occupied slots (the same design the
/// scatter channel uses on its receive side). The combiner hot path is a
/// bounds-checked array access; serialization walks only the dirty list,
/// in deterministic first-touch order.
///
/// The slot array is allocated lazily on the first update to that peer,
/// so a worker only pays O(peer's vertices) memory for peers it actually
/// exchanges labels with — under locality-preserving partitions most
/// worker pairs never do.
struct PeerStage<M> {
    receiver_vertices: usize,
    slots: Vec<Option<M>>,
    dirty: Vec<u32>,
}

impl<M: Clone> PeerStage<M> {
    fn new(receiver_vertices: usize) -> Self {
        PeerStage {
            receiver_vertices,
            slots: Vec::new(),
            dirty: Vec::new(),
        }
    }

    /// Fold `m` into the slot for `dst_local` on the receiving worker.
    #[inline]
    fn stage(&mut self, combine: &Combine<M>, dst_local: u32, m: M) {
        if self.slots.is_empty() {
            self.slots.resize(self.receiver_vertices, None);
        }
        match &mut self.slots[dst_local as usize] {
            Some(acc) => combine.apply(acc, m),
            slot @ None => {
                *slot = Some(m);
                self.dirty.push(dst_local);
            }
        }
    }
}

/// Asynchronous label-propagation channel with values of type `M` and
/// per-edge values of type `E` (`()` in the simplified form).
pub struct Propagation<M, E = ()> {
    env: WorkerEnv,
    combine: Combine<M>,
    /// The per-edge transformation applied before folding at the target.
    edge_fn: EdgeFn<E, M>,
    /// Edges registered but not yet split into local/remote form.
    pending_edges: Vec<(u32, VertexId, E)>,
    /// Out-neighbors on this worker, by local index, with edge values.
    local_adj: Vec<Vec<(u32, E)>>,
    /// Out-neighbors on other workers as `(peer, local index there, edge)`.
    remote_adj: Vec<Vec<(u16, u32, E)>>,
    values: Vec<M>,
    queue: VecDeque<u32>,
    in_queue: Vec<bool>,
    /// Vertices whose value changed this superstep, pending activation.
    changed: Vec<u32>,
    is_changed: Vec<bool>,
    /// Outgoing remote updates, combined per `(peer, target)` in dense
    /// per-peer slot arrays — no hashing on the combiner hot path.
    staging: Vec<PeerStage<M>>,
    /// In block mode the channel never extends the round loop: one local
    /// convergence + one boundary exchange per superstep, like Blogel's
    /// B-compute. The default (asynchronous) mode keeps exchanging rounds
    /// inside the superstep until the global fixpoint.
    synchronous: bool,
    messages: u64,
}

impl<M: Codec + Clone + PartialEq + Send> Propagation<M> {
    /// Create this worker's instance (simplified, unweighted form). Values
    /// start at the combiner's identity.
    pub fn new(env: &WorkerEnv, combine: Combine<M>) -> Self {
        Propagation::weighted(env, combine, |_: &(), v: &M| v.clone())
    }

    /// Blogel-style block-centric variant: local propagation still runs to
    /// convergence within the worker each superstep, but boundary updates
    /// are exchanged only at superstep boundaries (no extra rounds). Used
    /// as the block-centric baseline in the Table V comparison.
    pub fn block_mode(env: &WorkerEnv, combine: Combine<M>) -> Self {
        Propagation {
            synchronous: true,
            ..Propagation::new(env, combine)
        }
    }

    /// Register a propagation edge from local vertex `src_local` to the
    /// vertex with global id `dst` (labels flow `src → dst`).
    pub fn add_edge(&mut self, src_local: u32, dst: VertexId) {
        self.pending_edges.push((src_local, dst, ()));
    }
}

impl<M: Codec + Clone + PartialEq + Send, E: Clone + Send> Propagation<M, E> {
    /// Create a channel implementing the *full* propagation model of
    /// Fig. 7: each edge carries a value `e`, and the sender's value `v`
    /// reaches the target as `f(e, v)` before the combiner folds it in.
    pub fn weighted(
        env: &WorkerEnv,
        combine: Combine<M>,
        edge_fn: impl Fn(&E, &M) -> M + Send + Sync + 'static,
    ) -> Self {
        let numv = env.local_count();
        let workers = env.workers();
        Propagation {
            env: env.clone(),
            combine: combine.clone(),
            edge_fn: Arc::new(edge_fn),
            pending_edges: Vec::new(),
            local_adj: vec![Vec::new(); numv],
            remote_adj: vec![Vec::new(); numv],
            values: (0..numv).map(|_| combine.identity()).collect(),
            queue: VecDeque::new(),
            in_queue: vec![false; numv],
            changed: Vec::new(),
            is_changed: vec![false; numv],
            staging: (0..workers)
                .map(|peer| PeerStage::new(env.topo.local_count(peer)))
                .collect(),
            synchronous: false,
            messages: 0,
        }
    }

    /// Register a weighted propagation edge (full model).
    pub fn add_weighted_edge(&mut self, src_local: u32, dst: VertexId, edge: E) {
        self.pending_edges.push((src_local, dst, edge));
    }

    /// Seed/overwrite the value of a local vertex and schedule it for
    /// propagation. The converged value is readable next superstep.
    pub fn set_value(&mut self, local: u32, m: M) {
        if self.values[local as usize] != m {
            self.values[local as usize] = m;
            self.mark_changed(local);
        }
        self.enqueue(local);
    }

    /// Overwrite a value *without* scheduling propagation or activation —
    /// used e.g. to retire vertices between phases of multi-phase
    /// algorithms (Min-Label SCC's removed vertices).
    pub fn set_value_silent(&mut self, local: u32, m: M) {
        self.values[local as usize] = m;
    }

    /// Current (post-convergence) value of a local vertex.
    pub fn get_value(&self, local: u32) -> &M {
        &self.values[local as usize]
    }

    fn enqueue(&mut self, local: u32) {
        if !self.in_queue[local as usize] {
            self.in_queue[local as usize] = true;
            self.queue.push_back(local);
        }
    }

    fn mark_changed(&mut self, local: u32) {
        if !self.is_changed[local as usize] {
            self.is_changed[local as usize] = true;
            self.changed.push(local);
        }
    }

    /// Fold `m` into `local`'s value; enqueue on change.
    fn absorb(&mut self, local: u32, m: M) {
        let cur = &mut self.values[local as usize];
        let next = self.combine.join(cur.clone(), m);
        if next != *cur {
            *cur = next;
            self.mark_changed(local);
            self.enqueue(local);
        }
    }

    fn split_pending_edges(&mut self) {
        for (src, dst, e) in std::mem::take(&mut self.pending_edges) {
            let peer = self.env.worker_of(dst);
            let dst_local = self.env.local_of(dst);
            if peer == self.env.worker {
                self.local_adj[src as usize].push((dst_local, e));
            } else {
                self.remote_adj[src as usize].push((peer as u16, dst_local, e));
            }
        }
    }

    /// The local BFS-like traversal of Fig. 7: drain the worklist, folding
    /// each changed vertex's value into its local out-neighbors directly
    /// and recording remote updates in the staging tables.
    fn propagate_locally(&mut self) {
        while let Some(u) = self.queue.pop_front() {
            self.in_queue[u as usize] = false;
            let val = self.values[u as usize].clone();
            // Local neighbors: immediate asynchronous update.
            let nbrs = std::mem::take(&mut self.local_adj[u as usize]);
            for (dst, e) in &nbrs {
                let a = (self.edge_fn)(e, &val);
                self.absorb(*dst, a);
            }
            self.local_adj[u as usize] = nbrs;
            // Remote neighbors: combine into the per-peer dense stage.
            let remotes = std::mem::take(&mut self.remote_adj[u as usize]);
            for (peer, dst_local, e) in &remotes {
                let a = (self.edge_fn)(e, &val);
                self.staging[*peer as usize].stage(&self.combine, *dst_local, a);
            }
            self.remote_adj[u as usize] = remotes;
        }
    }
}

impl<AV, M: Codec + Clone + PartialEq + Send, E: Codec + Clone + Send> Channel<AV>
    for Propagation<M, E>
{
    fn name(&self) -> &'static str {
        "propagation"
    }

    fn serialize(&mut self, cx: &mut SerializeCx<'_>) {
        if !self.pending_edges.is_empty() {
            self.split_pending_edges();
        }
        self.propagate_locally();
        for peer in 0..self.staging.len() {
            let stage = &mut self.staging[peer];
            if stage.dirty.is_empty() {
                continue;
            }
            self.messages += stage.dirty.len() as u64;
            let slots = &mut stage.slots;
            let dirty = &mut stage.dirty;
            cx.frame(peer, |buf| {
                // Walk only the touched slots, draining them for the next
                // round; first-touch order keeps the wire deterministic.
                for dst_local in dirty.drain(..) {
                    let m = slots[dst_local as usize]
                        .take()
                        .expect("dirty slot is occupied");
                    dst_local.encode(buf);
                    m.encode(buf);
                }
            });
        }
    }

    fn deserialize(&mut self, cx: &mut DeserializeCx<'_, AV>) {
        for (_from, mut r) in cx.frames() {
            while !r.is_empty() {
                let dst_local: u32 = r.get();
                let m: M = r.get();
                self.absorb(dst_local, m);
            }
        }
        // Everyone whose value changed this superstep must observe the new
        // value next superstep.
        for local in self.changed.drain(..) {
            self.is_changed[local as usize] = false;
            cx.activate(local);
        }
    }

    fn again(&self) -> bool {
        !self.synchronous && !self.queue.is_empty()
    }

    fn message_count(&self) -> u64 {
        self.messages
    }

    fn encode_state(&self, buf: &mut Vec<u8>) -> bool {
        // Adjacency (with edge values — hence the `E: Codec` bound on
        // this impl), converged values, and the block-mode worklist that
        // may legitimately carry over a superstep boundary. The combiner
        // and edge function are rebuilt by the algorithm's constructor.
        self.pending_edges.encode(buf);
        self.local_adj.encode(buf);
        self.remote_adj.encode(buf);
        self.values.encode(buf);
        (self.queue.len() as u32).encode(buf);
        for &v in &self.queue {
            v.encode(buf);
        }
        self.in_queue.encode(buf);
        self.changed.encode(buf);
        self.is_changed.encode(buf);
        (self.staging.len() as u32).encode(buf);
        for stage in &self.staging {
            stage.slots.encode(buf);
            stage.dirty.encode(buf);
        }
        self.messages.encode(buf);
        true
    }

    fn decode_state(&mut self, r: &mut pc_bsp::codec::Reader<'_>) {
        self.pending_edges = r.get();
        self.local_adj = r.get();
        self.remote_adj = r.get();
        self.values = r.get();
        let qlen: u32 = r.get();
        self.queue = (0..qlen).map(|_| r.get::<u32>()).collect();
        self.in_queue = r.get();
        self.changed = r.get();
        self.is_changed = r.get();
        let stages: u32 = r.get();
        assert_eq!(stages as usize, self.staging.len(), "stage count drifted");
        for stage in &mut self.staging {
            stage.slots = r.get();
            stage.dirty = r.get();
        }
        self.messages = r.get();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::VertexCtx;
    use crate::engine::{run, Algorithm};
    use pc_bsp::{Config, Topology};
    use pc_graph::{gen, reference, Graph};
    use std::sync::Arc;

    /// Min-label propagation over an undirected graph: the channel version
    /// of HCC. Everything happens in TWO supersteps regardless of
    /// diameter.
    struct MinLabel {
        g: Arc<Graph>,
    }
    impl Algorithm for MinLabel {
        type Value = u32;
        type Channels = (Propagation<u32>,);
        fn channels(&self, env: &WorkerEnv) -> Self::Channels {
            (Propagation::new(env, Combine::min_u32()),)
        }
        fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u32, ch: &mut Self::Channels) {
            if v.step() == 1 {
                for &t in self.g.neighbors(v.id) {
                    ch.0.add_edge(v.local, t);
                }
                ch.0.set_value(v.local, v.id);
            } else {
                *value = *ch.0.get_value(v.local);
                v.vote_to_halt();
            }
        }
    }

    #[test]
    fn converges_in_two_supersteps_on_huge_diameter() {
        // A 2000-vertex chain: message passing would need ~2000 supersteps.
        // With a locality-preserving (blocked) partition the label crosses
        // workers only 3 times, so the fixpoint takes a handful of rounds —
        // the behaviour the paper gets from partition-tagged vertex ids.
        let g = Arc::new(gen::chain(2000));
        let topo = Arc::new(Topology::blocked(g.n(), 4));
        let expect = reference::connected_components(&g);
        for cfg in [Config::sequential(4), Config::with_workers(4)] {
            let out = run(&MinLabel { g: Arc::clone(&g) }, &topo, &cfg);
            assert_eq!(out.values, expect);
            assert_eq!(out.stats.supersteps, 2, "fixpoint inside one superstep");
            assert!(out.stats.rounds < 10, "rounds = {}", out.stats.rounds);
        }
    }

    #[test]
    fn random_placement_still_converges_in_two_supersteps() {
        // Random placement degrades rounds (every hop crosses workers) but
        // never correctness, and the superstep count stays at 2.
        let g = Arc::new(gen::chain(300));
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let expect = reference::connected_components(&g);
        let out = run(
            &MinLabel { g: Arc::clone(&g) },
            &topo,
            &Config::sequential(4),
        );
        assert_eq!(out.values, expect);
        assert_eq!(out.stats.supersteps, 2);
    }

    #[test]
    fn multi_component_labels_match_union_find() {
        let g = Arc::new(gen::rmat(9, 1200, gen::RmatParams::default(), 21, false));
        let topo = Arc::new(Topology::hashed(g.n(), 4));
        let expect = reference::connected_components(&g);
        let out = run(
            &MinLabel { g: Arc::clone(&g) },
            &topo,
            &Config::sequential(4),
        );
        assert_eq!(out.values, expect);
    }

    #[test]
    fn partitioned_graph_uses_fewer_messages() {
        let g = Arc::new(gen::grid2d(30, 30, 0.0, 3));
        let expect = reference::connected_components(&g);

        let random = Arc::new(Topology::hashed(g.n(), 4));
        let out_random = run(
            &MinLabel { g: Arc::clone(&g) },
            &random,
            &Config::sequential(4),
        );

        let owners = pc_graph::partition::bfs_blocks(&*g, 4);
        let part = Arc::new(Topology::from_owners(4, owners));
        let out_part = run(
            &MinLabel { g: Arc::clone(&g) },
            &part,
            &Config::sequential(4),
        );

        assert_eq!(out_random.values, expect);
        assert_eq!(out_part.values, expect);
        assert!(
            out_part.stats.remote_bytes() < out_random.stats.remote_bytes() / 2,
            "partitioned {} vs random {}",
            out_part.stats.remote_bytes(),
            out_random.stats.remote_bytes()
        );
    }

    #[test]
    fn directed_propagation_follows_edge_direction() {
        // 0 → 1 → 2, labels flow only forward.
        let g = Arc::new(Graph::from_edges(3, &[(0, 1), (1, 2)], true));
        let topo = Arc::new(Topology::hashed(3, 2));
        let out = run(&MinLabel { g }, &topo, &Config::sequential(2));
        assert_eq!(out.values, vec![0, 0, 0]);

        let g_rev = Arc::new(Graph::from_edges(3, &[(1, 0), (2, 1)], true));
        let topo = Arc::new(Topology::hashed(3, 2));
        let out = run(&MinLabel { g: g_rev }, &topo, &Config::sequential(2));
        assert_eq!(
            out.values,
            vec![0, 1, 2],
            "labels cannot flow against edges"
        );
    }

    #[test]
    fn reseeding_supports_multiphase_algorithms() {
        /// Phase 1: min-label; phase 2: re-seed with id+100 and re-run.
        struct TwoPhase {
            g: Arc<Graph>,
        }
        impl Algorithm for TwoPhase {
            type Value = (u32, u32); // results of the two phases
            type Channels = (Propagation<u32>,);
            fn channels(&self, env: &WorkerEnv) -> Self::Channels {
                (Propagation::new(env, Combine::min_u32()),)
            }
            fn compute(
                &self,
                v: &mut VertexCtx<'_>,
                value: &mut Self::Value,
                ch: &mut Self::Channels,
            ) {
                match v.step() {
                    1 => {
                        for &t in self.g.neighbors(v.id) {
                            ch.0.add_edge(v.local, t);
                        }
                        ch.0.set_value(v.local, v.id);
                    }
                    2 => {
                        value.0 = *ch.0.get_value(v.local);
                        ch.0.set_value(v.local, v.id + 100);
                    }
                    _ => {
                        value.1 = *ch.0.get_value(v.local);
                        v.vote_to_halt();
                    }
                }
            }
        }
        let g = Arc::new(gen::cycle(40));
        let topo = Arc::new(Topology::hashed(40, 4));
        let out = run(&TwoPhase { g }, &topo, &Config::sequential(4));
        for (id, &(a, b)) in out.values.iter().enumerate() {
            assert_eq!(a, 0, "phase 1 label of {id}");
            assert_eq!(b, 100, "phase 2 label of {id}");
        }
    }

    /// Full-model propagation: asynchronous shortest paths
    /// (`f(w, d) = d + w`, min combiner) on a directed weighted chain.
    struct AsyncDistances {
        edges: Arc<Vec<(u32, u32, u32)>>, // (src, dst, weight), directed
    }
    impl Algorithm for AsyncDistances {
        type Value = u64;
        type Channels = (Propagation<u64, u32>,);
        fn channels(&self, env: &WorkerEnv) -> Self::Channels {
            (Propagation::weighted(
                env,
                Combine::min_u64(),
                |w: &u32, d: &u64| d.saturating_add(*w as u64),
            ),)
        }
        fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u64, ch: &mut Self::Channels) {
            if v.step() == 1 {
                for &(_, t, w) in self.edges.iter().filter(|&&(s, _, _)| s == v.id) {
                    ch.0.add_weighted_edge(v.local, t, w);
                }
                if v.id == 0 {
                    ch.0.set_value(v.local, 0);
                }
            } else {
                *value = *ch.0.get_value(v.local);
                v.vote_to_halt();
            }
        }
    }

    #[test]
    fn weighted_edges_transform_values() {
        // Chain 0 →(1) 1 →(2) 2 →(3) 3 …: dist(k) = k(k+1)/2.
        let n = 50u32;
        let edges: Vec<(u32, u32, u32)> = (0..n - 1).map(|i| (i, i + 1, i + 1)).collect();
        let topo = Arc::new(Topology::hashed(n as usize, 4));
        let algo = AsyncDistances {
            edges: Arc::new(edges),
        };
        for cfg in [Config::sequential(4), Config::with_workers(4)] {
            let out = run(&algo, &topo, &cfg);
            for k in 0..n as u64 {
                assert_eq!(out.values[k as usize], k * (k + 1) / 2, "vertex {k}");
            }
            assert_eq!(out.stats.supersteps, 2, "whole relaxation in one superstep");
        }
    }

    #[test]
    fn silent_overwrite_does_not_propagate() {
        struct Silent {
            g: Arc<Graph>,
        }
        impl Algorithm for Silent {
            type Value = u32;
            type Channels = (Propagation<u32>,);
            fn channels(&self, env: &WorkerEnv) -> Self::Channels {
                (Propagation::new(env, Combine::min_u32()),)
            }
            fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u32, ch: &mut Self::Channels) {
                if v.step() == 1 {
                    for &t in self.g.neighbors(v.id) {
                        ch.0.add_edge(v.local, t);
                    }
                    // Overwrite silently: no propagation should happen.
                    ch.0.set_value_silent(v.local, v.id);
                } else {
                    *value = *ch.0.get_value(v.local);
                    v.vote_to_halt();
                }
            }
        }
        let g = Arc::new(gen::chain(50));
        let topo = Arc::new(Topology::hashed(50, 2));
        let out = run(&Silent { g }, &topo, &Config::sequential(2));
        // Values stay as seeded: nothing propagated.
        for (id, &v) in out.values.iter().enumerate() {
            assert_eq!(v, id as u32);
        }
        assert_eq!(out.stats.messages(), 0);
    }
}
