//! Epoch-stamped active-vertex worklists.
//!
//! The engine used to keep `active: Vec<bool>` per worker and scan all of
//! it every superstep — O(n/workers) even when two vertices are active
//! (SSSP wavefronts, WCC tails, SCC phases). A [`Frontier`] keeps a dense
//! list of the active vertices instead, with an epoch-stamp array for O(1)
//! dedup of activations, so a superstep costs O(active).
//!
//! Activation order is made deterministic by sorting the next list at the
//! superstep boundary, which also preserves the historical ascending
//! compute order (so sequential and threaded runs, and old and new
//! engines, visit vertices identically).

/// Dense active list + epoch-stamped membership for one worker.
#[derive(Debug)]
pub struct Frontier {
    /// The currently-executing superstep's epoch, starting at 1.
    epoch: u32,
    /// `stamp[v] == epoch + 1` ⇔ `v` is already queued for the next
    /// superstep.
    stamp: Vec<u32>,
    /// Vertices active this superstep, ascending.
    current: Vec<u32>,
    /// Vertices activated for the next superstep, in activation order.
    next: Vec<u32>,
}

impl Frontier {
    /// A frontier over `n` local vertices, all initially active (epoch 1).
    pub fn all_active(n: usize) -> Self {
        Frontier {
            epoch: 1,
            stamp: vec![1; n],
            current: (0..n as u32).collect(),
            next: Vec::with_capacity(n.min(1024)),
        }
    }

    /// Rebuild a frontier from a checkpoint taken at a superstep
    /// boundary: `current` is the next superstep's active set (ascending,
    /// as [`Frontier::advance`] left it) and `epoch` is the boundary's
    /// epoch (`superstep + 1` — the engine's step counter plus one, which
    /// is exactly where a live frontier sits after `advance`).
    pub fn restore(n: usize, epoch: u32, current: Vec<u32>) -> Self {
        let mut stamp = vec![0u32; n];
        for &v in &current {
            stamp[v as usize] = epoch;
        }
        Frontier {
            epoch,
            stamp,
            current,
            next: Vec::new(),
        }
    }

    /// Number of vertices active this superstep.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// True when nothing is active this superstep.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// The `i`-th active vertex (ascending order).
    #[inline]
    pub fn at(&self, i: usize) -> u32 {
        self.current[i]
    }

    /// The active vertices of this superstep, ascending.
    pub fn current(&self) -> &[u32] {
        &self.current
    }

    /// Queue `local` for the next superstep (idempotent).
    #[inline]
    pub fn activate(&mut self, local: u32) {
        let s = &mut self.stamp[local as usize];
        if *s != self.epoch + 1 {
            *s = self.epoch + 1;
            self.next.push(local);
        }
    }

    /// Split into the current active list and an activation handle over
    /// the next one, so a caller can iterate the frontier and activate
    /// from the same scope (the compute loop's hot path).
    pub fn split(&mut self) -> (&[u32], Activator<'_>) {
        (
            &self.current,
            Activator {
                next_epoch: self.epoch + 1,
                stamp: &mut self.stamp,
                next: &mut self.next,
            },
        )
    }

    /// Vertices queued for the next superstep so far. After the last
    /// exchange round this *is* the next superstep's active count, which
    /// is what the fused round reduction publishes.
    pub fn pending(&self) -> usize {
        self.next.len()
    }

    /// Superstep boundary: the queued vertices become the active set
    /// (sorted ascending), the epoch advances. Returns the new active
    /// count.
    pub fn advance(&mut self) -> usize {
        std::mem::swap(&mut self.current, &mut self.next);
        self.next.clear();
        // Mostly-sorted input (compute-phase activations arrive ascending);
        // pdqsort handles that in near-linear time.
        self.current.sort_unstable();
        self.epoch += 1;
        self.current.len()
    }
}

/// Borrowed activation handle produced by [`Frontier::split`].
pub struct Activator<'a> {
    next_epoch: u32,
    stamp: &'a mut [u32],
    next: &'a mut Vec<u32>,
}

impl Activator<'_> {
    /// Queue `local` for the next superstep (idempotent).
    #[inline]
    pub fn activate(&mut self, local: u32) {
        let s = &mut self.stamp[local as usize];
        if *s != self.next_epoch {
            *s = self.next_epoch;
            self.next.push(local);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_activates_like_direct_calls() {
        let mut f = Frontier::all_active(5);
        {
            let (current, mut act) = f.split();
            assert_eq!(current, &[0, 1, 2, 3, 4]);
            act.activate(4);
            act.activate(1);
            act.activate(4);
        }
        assert_eq!(f.pending(), 2);
        assert_eq!(f.advance(), 2);
        assert_eq!(f.current(), &[1, 4]);
    }

    #[test]
    fn starts_all_active_ascending() {
        let f = Frontier::all_active(4);
        assert_eq!(f.current(), &[0, 1, 2, 3]);
        assert_eq!(f.len(), 4);
        assert_eq!(f.pending(), 0);
    }

    #[test]
    fn activation_dedups_and_sorts() {
        let mut f = Frontier::all_active(6);
        f.activate(5);
        f.activate(2);
        f.activate(5);
        f.activate(2);
        assert_eq!(f.pending(), 2);
        assert_eq!(f.advance(), 2);
        assert_eq!(f.current(), &[2, 5]);
        assert!(f.pending() == 0);
    }

    #[test]
    fn empty_advance_terminates() {
        let mut f = Frontier::all_active(3);
        assert_eq!(f.advance(), 0);
        assert!(f.is_empty());
    }

    #[test]
    fn epochs_do_not_leak_across_supersteps() {
        let mut f = Frontier::all_active(3);
        f.activate(1);
        f.advance();
        // Re-activating in the new epoch must enqueue again.
        f.activate(1);
        assert_eq!(f.pending(), 1);
        assert_eq!(f.advance(), 1);
        assert_eq!(f.current(), &[1]);
    }
}
