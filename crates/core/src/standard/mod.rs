//! The standard channels of Table I: direct messages, combined messages
//! and the aggregator. These mirror Pregel's native facilities one-to-one;
//! a Pregel program ports to them by replacing each matched send/receive
//! pair with one channel's send/receive methods (§V-A).

pub mod aggregator;
pub mod combined;
pub mod direct;
