//! The `Aggregator` channel (Table I, right column).
//!
//! Global communication: every vertex may [`Aggregator::add`] a value
//! during a superstep; the values are reduced with the channel's
//! [`Combine`] and the global result is readable on every worker in the
//! next superstep. Used e.g. by PageRank's sink-mass redistribution
//! (Fig. 1) and S-V's fixpoint detection.
//!
//! Implementation: each worker folds its local contributions, broadcasts
//! the single partial to every worker (M−1 tiny messages), and every
//! worker folds the partials it receives — one exchange round, no master.

use crate::channel::{Channel, DeserializeCx, SerializeCx, WorkerEnv};
use crate::combine::Combine;
use pc_bsp::codec::Codec;

/// Global-reduction channel producing values of type `M`.
pub struct Aggregator<M> {
    combine: Combine<M>,
    partial: M,
    added: bool,
    incoming: M,
    readable: M,
    messages: u64,
}

impl<M: Codec + Clone + Send> Aggregator<M> {
    /// Create this worker's instance with the global reduction operator.
    pub fn new(_env: &WorkerEnv, combine: Combine<M>) -> Self {
        let identity = combine.identity();
        Aggregator {
            combine,
            partial: identity.clone(),
            added: false,
            incoming: identity.clone(),
            readable: identity,
            messages: 0,
        }
    }

    /// Contribute a value to this superstep's global reduction.
    pub fn add(&mut self, v: M) {
        self.combine.apply(&mut self.partial, v);
        self.added = true;
    }

    /// The global result of the *previous* superstep's contributions
    /// (identity if nothing was added).
    pub fn result(&self) -> &M {
        &self.readable
    }
}

impl<AV, M: Codec + Clone + Send> Channel<AV> for Aggregator<M> {
    fn name(&self) -> &'static str {
        "aggregator"
    }

    fn before_superstep(&mut self, _step: u64) {
        self.readable = std::mem::replace(&mut self.incoming, self.combine.identity());
        self.partial = self.combine.identity();
        self.added = false;
    }

    fn serialize(&mut self, cx: &mut SerializeCx<'_>) {
        if !self.added {
            return;
        }
        // Fold our own partial in directly and broadcast it to the others.
        self.combine.apply(&mut self.incoming, self.partial.clone());
        for peer in 0..cx.workers() {
            if peer == cx.env().worker {
                continue;
            }
            self.messages += 1;
            let partial = &self.partial;
            cx.frame(peer, |buf| partial.encode(buf));
        }
        self.added = false;
    }

    fn deserialize(&mut self, cx: &mut DeserializeCx<'_, AV>) {
        for (_from, mut r) in cx.frames() {
            let partial: M = r.get();
            self.combine.apply(&mut self.incoming, partial);
        }
    }

    fn message_count(&self) -> u64 {
        self.messages
    }

    fn encode_state(&self, buf: &mut Vec<u8>) -> bool {
        // `incoming` holds the next superstep's global result (our own
        // partial folded in at serialize time plus every received
        // partial); `partial`/`added` reset at the next `before_superstep`
        // and `readable` is the stale current-superstep view.
        self.incoming.encode(buf);
        self.messages.encode(buf);
        true
    }

    fn decode_state(&mut self, r: &mut pc_bsp::codec::Reader<'_>) {
        self.incoming = r.get();
        self.messages = r.get();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::VertexCtx;
    use crate::engine::{run, Algorithm};
    use pc_bsp::{Config, Topology};
    use std::sync::Arc;

    /// Sum all vertex ids globally; every vertex checks the result.
    struct GlobalSum;
    impl Algorithm for GlobalSum {
        type Value = u64;
        type Channels = (Aggregator<u64>,);
        fn channels(&self, env: &WorkerEnv) -> Self::Channels {
            (Aggregator::new(env, Combine::sum_u64()),)
        }
        fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u64, ch: &mut Self::Channels) {
            if v.step() == 1 {
                ch.0.add(v.id as u64);
            } else {
                *value = *ch.0.result();
                v.vote_to_halt();
            }
        }
    }

    #[test]
    fn global_sum_reaches_everyone() {
        let n = 100u64;
        let topo = Arc::new(Topology::hashed(n as usize, 4));
        let expect = n * (n - 1) / 2;
        for cfg in [Config::sequential(4), Config::with_workers(4)] {
            let out = run(&GlobalSum, &topo, &cfg);
            assert!(out.values.iter().all(|&v| v == expect));
        }
    }

    #[test]
    fn aggregator_resets_every_superstep() {
        struct EveryStep;
        impl Algorithm for EveryStep {
            type Value = Vec<u64>;
            type Channels = (Aggregator<u64>,);
            fn channels(&self, env: &WorkerEnv) -> Self::Channels {
                (Aggregator::new(env, Combine::sum_u64()),)
            }
            fn compute(
                &self,
                v: &mut VertexCtx<'_>,
                value: &mut Vec<u64>,
                ch: &mut Self::Channels,
            ) {
                value.push(*ch.0.result());
                if v.step() <= 2 {
                    ch.0.add(v.step()); // everyone adds the step number
                } else {
                    v.vote_to_halt();
                }
            }
        }
        let n = 10u64;
        let topo = Arc::new(Topology::hashed(n as usize, 2));
        let out = run(&EveryStep, &topo, &Config::sequential(2));
        for v in &out.values {
            // step1 sees identity, step2 sees n*1, step3 sees n*2.
            assert_eq!(v, &vec![0, n, 2 * n]);
        }
    }

    #[test]
    fn min_aggregator() {
        struct GlobalMin;
        impl Algorithm for GlobalMin {
            type Value = u32;
            type Channels = (Aggregator<u32>,);
            fn channels(&self, env: &WorkerEnv) -> Self::Channels {
                (Aggregator::new(env, Combine::min_u32()),)
            }
            fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u32, ch: &mut Self::Channels) {
                if v.step() == 1 {
                    ch.0.add(v.id + 5);
                } else {
                    *value = *ch.0.result();
                    v.vote_to_halt();
                }
            }
        }
        let topo = Arc::new(Topology::hashed(64, 8));
        let out = run(&GlobalMin, &topo, &Config::with_workers(8));
        assert!(out.values.iter().all(|&v| v == 5));
    }

    #[test]
    fn silent_superstep_costs_no_bytes() {
        struct Silent;
        impl Algorithm for Silent {
            type Value = u64;
            type Channels = (Aggregator<u64>,);
            fn channels(&self, env: &WorkerEnv) -> Self::Channels {
                (Aggregator::new(env, Combine::sum_u64()),)
            }
            fn compute(&self, v: &mut VertexCtx<'_>, _value: &mut u64, _ch: &mut Self::Channels) {
                v.vote_to_halt();
            }
        }
        let topo = Arc::new(Topology::hashed(10, 4));
        let out = run(&Silent, &topo, &Config::sequential(4));
        assert_eq!(out.stats.total_bytes(), 0);
        assert_eq!(out.stats.messages(), 0);
    }
}
