//! The `CombinedMessage` channel (Table I, middle column).
//!
//! Messages addressed to the same vertex are merged with a per-channel
//! [`Combine`] function on **both** sides of the wire, exactly like a
//! Pregel combiner:
//!
//! * the sender keeps one hash table per destination worker and folds every
//!   `send_message` into the entry for its destination, so each
//!   `(worker, destination)` pair ships at most one `(dst, value)` pair per
//!   superstep;
//! * the receiver folds arriving pairs into a per-destination table.
//!
//! Because the combiner is *per channel*, it applies in programs where
//! Pregel's single global combiner cannot (S-V, SCC mix combinable and
//! non-combinable messages in one type) — the §V-A analysis measures up to
//! 5.5× message inflation in Pregel+ from exactly this.
//!
//! The hash tables are the general-case cost this channel pays for dynamic
//! destinations; [`crate::ScatterCombine`] replaces them with a pre-sorted
//! linear scan when the destination set is static.

use crate::channel::{Channel, DeserializeCx, SerializeCx, WorkerEnv};
use crate::combine::Combine;
use pc_bsp::codec::Codec;
use pc_graph::VertexId;
use std::collections::HashMap;

/// Sender- and receiver-combined message channel carrying values of `M`.
pub struct CombinedMessage<M> {
    env: WorkerEnv,
    combine: Combine<M>,
    /// Sender-side combine tables, one per destination worker.
    staged: Vec<HashMap<VertexId, M>>,
    /// Receive-side combine table for the in-flight superstep, keyed by
    /// destination local index.
    incoming: HashMap<u32, M>,
    readable: HashMap<u32, M>,
    messages: u64,
}

fn fold_into<K: std::hash::Hash + Eq, M: Clone>(
    map: &mut HashMap<K, M>,
    key: K,
    m: M,
    combine: &Combine<M>,
) {
    match map.entry(key) {
        std::collections::hash_map::Entry::Occupied(mut e) => {
            combine.apply(e.get_mut(), m);
        }
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(m);
        }
    }
}

impl<M: Codec + Clone + Send> CombinedMessage<M> {
    /// Create this worker's instance with the channel's combiner.
    pub fn new(env: &WorkerEnv, combine: Combine<M>) -> Self {
        CombinedMessage {
            env: env.clone(),
            combine,
            staged: (0..env.workers()).map(|_| HashMap::new()).collect(),
            incoming: HashMap::new(),
            readable: HashMap::new(),
            messages: 0,
        }
    }

    /// Send `m` toward `dst`; it is folded into `dst`'s combined value for
    /// the next superstep.
    pub fn send_message(&mut self, dst: VertexId, m: M) {
        let peer = self.env.worker_of(dst);
        fold_into(&mut self.staged[peer], dst, m, &self.combine);
    }

    /// The combined value delivered to `local` this superstep, if any
    /// message arrived.
    pub fn get_message(&self, local: u32) -> Option<&M> {
        self.readable.get(&local)
    }

    /// Combined value or the combiner's identity.
    pub fn get_or_identity(&self, local: u32) -> M {
        self.get_message(local)
            .cloned()
            .unwrap_or_else(|| self.combine.identity())
    }
}

impl<AV, M: Codec + Clone + Send> Channel<AV> for CombinedMessage<M> {
    fn name(&self) -> &'static str {
        "combined"
    }

    fn before_superstep(&mut self, _step: u64) {
        self.readable = std::mem::take(&mut self.incoming);
    }

    fn serialize(&mut self, cx: &mut SerializeCx<'_>) {
        for peer in 0..self.staged.len() {
            if self.staged[peer].is_empty() {
                continue;
            }
            self.messages += self.staged[peer].len() as u64;
            let batch = std::mem::take(&mut self.staged[peer]);
            cx.frame(peer, |buf| {
                for (dst, m) in &batch {
                    dst.encode(buf);
                    m.encode(buf);
                }
            });
        }
    }

    fn deserialize(&mut self, cx: &mut DeserializeCx<'_, AV>) {
        for (_from, mut r) in cx.frames() {
            while !r.is_empty() {
                let dst: VertexId = r.get();
                let m: M = r.get();
                let local = self.env.local_of(dst);
                fold_into(&mut self.incoming, local, m, &self.combine);
                cx.activate(local);
            }
        }
    }

    fn message_count(&self) -> u64 {
        self.messages
    }

    fn encode_state(&self, buf: &mut Vec<u8>) -> bool {
        // `staged` is drained at every serialize, so the receive-side
        // combine table for the next superstep is the live state. Encoded
        // sorted by key: hash iteration order must never reach a
        // checkpoint file.
        let mut pairs: Vec<(&u32, &M)> = self.incoming.iter().collect();
        pairs.sort_unstable_by_key(|(k, _)| **k);
        (pairs.len() as u32).encode(buf);
        for (k, m) in pairs {
            k.encode(buf);
            m.encode(buf);
        }
        self.messages.encode(buf);
        true
    }

    fn decode_state(&mut self, r: &mut pc_bsp::codec::Reader<'_>) {
        self.incoming.clear();
        let n: u32 = r.get();
        for _ in 0..n {
            let k: u32 = r.get();
            let m: M = r.get();
            self.incoming.insert(k, m);
        }
        self.messages = r.get();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::VertexCtx;
    use crate::engine::{run, Algorithm};
    use pc_bsp::{Config, Topology};
    use std::sync::Arc;

    /// All vertices send 1 to vertex 0 and their id to vertex 1 (min).
    struct SumAndMin;
    impl Algorithm for SumAndMin {
        type Value = u64;
        type Channels = (CombinedMessage<u64>, CombinedMessage<u64>);
        fn channels(&self, env: &WorkerEnv) -> Self::Channels {
            (
                CombinedMessage::new(env, Combine::sum_u64()),
                CombinedMessage::new(env, Combine::min_u64()),
            )
        }
        fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u64, ch: &mut Self::Channels) {
            if v.step() == 1 {
                ch.0.send_message(0, 1);
                ch.1.send_message(1, v.id as u64 + 10);
                v.vote_to_halt();
            } else {
                if v.id == 0 {
                    *value = ch.0.get_or_identity(v.local);
                }
                if v.id == 1 {
                    *value = ch.1.get_or_identity(v.local);
                }
                v.vote_to_halt();
            }
        }
    }

    #[test]
    fn two_channels_combine_independently() {
        let n = 50;
        let topo = Arc::new(Topology::hashed(n, 4));
        for cfg in [Config::sequential(4), Config::with_workers(4)] {
            let out = run(&SumAndMin, &topo, &cfg);
            assert_eq!(out.values[0], n as u64, "sum channel");
            assert_eq!(out.values[1], 10, "min channel");
            assert_eq!(out.stats.channels.len(), 2);
        }
    }

    #[test]
    fn sender_combining_ships_one_pair_per_worker() {
        // n messages to one destination collapse to one wire pair per
        // sending worker.
        let n = 50;
        let topo = Arc::new(Topology::hashed(n, 4));
        let out = run(&SumAndMin, &topo, &Config::sequential(4));
        let sum_channel = &out.stats.channels[0];
        assert!(
            sum_channel.messages <= 4,
            "expected ≤ 4 combined pairs, got {}",
            sum_channel.messages
        );
    }

    #[test]
    fn no_message_yields_identity() {
        struct Quiet;
        impl Algorithm for Quiet {
            type Value = u64;
            type Channels = (CombinedMessage<u64>,);
            fn channels(&self, env: &WorkerEnv) -> Self::Channels {
                (CombinedMessage::new(env, Combine::sum_u64()),)
            }
            fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u64, ch: &mut Self::Channels) {
                assert!(ch.0.get_message(v.local).is_none());
                *value = ch.0.get_or_identity(v.local);
                v.vote_to_halt();
            }
        }
        let topo = Arc::new(Topology::hashed(10, 2));
        let out = run(&Quiet, &topo, &Config::sequential(2));
        assert!(out.values.iter().all(|&v| v == 0));
    }

    #[test]
    fn messages_only_live_one_superstep() {
        struct TwoRounds;
        impl Algorithm for TwoRounds {
            type Value = Vec<u64>;
            type Channels = (CombinedMessage<u64>,);
            fn channels(&self, env: &WorkerEnv) -> Self::Channels {
                (CombinedMessage::new(env, Combine::sum_u64()),)
            }
            fn compute(
                &self,
                v: &mut VertexCtx<'_>,
                value: &mut Vec<u64>,
                ch: &mut Self::Channels,
            ) {
                value.push(ch.0.get_or_identity(v.local));
                if v.step() == 1 {
                    ch.0.send_message(v.id, 7); // to self
                }
                if v.step() == 3 {
                    v.vote_to_halt();
                }
            }
        }
        let topo = Arc::new(Topology::hashed(5, 2));
        let out = run(&TwoRounds, &topo, &Config::sequential(2));
        for v in &out.values {
            assert_eq!(v, &vec![0, 7, 0], "message visible exactly once");
        }
    }

    #[test]
    fn min_combining_is_order_independent() {
        // Min over messages from all vertices to vertex 3.
        struct MinTo3;
        impl Algorithm for MinTo3 {
            type Value = u32;
            type Channels = (CombinedMessage<u32>,);
            fn channels(&self, env: &WorkerEnv) -> Self::Channels {
                (CombinedMessage::new(env, Combine::min_u32()),)
            }
            fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u32, ch: &mut Self::Channels) {
                if v.step() == 1 {
                    ch.0.send_message(3, 1000 - v.id);
                    v.vote_to_halt();
                } else {
                    *value = ch.0.get_or_identity(v.local);
                    v.vote_to_halt();
                }
            }
        }
        let topo = Arc::new(Topology::hashed(100, 7));
        let out = run(&MinTo3, &topo, &Config::with_workers(7));
        assert_eq!(out.values[3], 1000 - 99);
    }
}
