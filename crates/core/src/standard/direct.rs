//! The `DirectMessage` channel (Table I, first column).
//!
//! Point-to-point messages: a vertex sends `(dst, value)` pairs; the
//! receiver iterates the values addressed to each vertex in the next
//! superstep. The receive side is a flat counting-sorted array with
//! per-vertex ranges — the "message iterator" the paper credits for the
//! 45% pointer-jumping win over Pregel+'s nested vectors (§V-A analysis).

use crate::channel::{Channel, DeserializeCx, SerializeCx, WorkerEnv};
use pc_bsp::codec::Codec;
use pc_graph::VertexId;

/// Point-to-point message channel carrying values of type `M`.
#[derive(Debug)]
pub struct DirectMessage<M> {
    env: WorkerEnv,
    /// Staged sends, bucketed per destination worker as `(dst, value)`.
    staged: Vec<Vec<(VertexId, M)>>,
    /// Messages received this superstep as `(dst local index, value)`.
    incoming: Vec<(u32, M)>,
    /// Readable state: values sorted by destination with range offsets.
    read_vals: Vec<M>,
    read_offsets: Vec<u32>,
    messages: u64,
}

impl<M: Codec + Clone + Send> DirectMessage<M> {
    /// Create this worker's instance.
    pub fn new(env: &WorkerEnv) -> Self {
        let numv = env.local_count();
        DirectMessage {
            env: env.clone(),
            staged: (0..env.workers()).map(|_| Vec::new()).collect(),
            incoming: Vec::new(),
            read_vals: Vec::new(),
            read_offsets: vec![0; numv + 1],
            messages: 0,
        }
    }

    /// Send `m` to the vertex with global id `dst`; it becomes readable at
    /// the destination in the next superstep.
    pub fn send_message(&mut self, dst: VertexId, m: M) {
        self.staged[self.env.worker_of(dst)].push((dst, m));
    }

    /// The messages delivered to local vertex `local` this superstep.
    pub fn messages(&self, local: u32) -> &[M] {
        let lo = self.read_offsets[local as usize] as usize;
        let hi = self.read_offsets[local as usize + 1] as usize;
        &self.read_vals[lo..hi]
    }

    /// Whether `local` received anything this superstep.
    pub fn has_messages(&self, local: u32) -> bool {
        !self.messages(local).is_empty()
    }
}

impl<AV, M: Codec + Clone + Send> Channel<AV> for DirectMessage<M> {
    fn name(&self) -> &'static str {
        "direct"
    }

    fn before_superstep(&mut self, _step: u64) {
        // Sort the superstep's deliveries by destination and expose them as
        // one flat value array with per-vertex ranges.
        let numv = self.read_offsets.len() - 1;
        self.incoming.sort_by_key(|&(local, _)| local);
        self.read_offsets.iter_mut().for_each(|o| *o = 0);
        for &(local, _) in &self.incoming {
            self.read_offsets[local as usize + 1] += 1;
        }
        for i in 0..numv {
            self.read_offsets[i + 1] += self.read_offsets[i];
        }
        self.read_vals.clear();
        self.read_vals
            .extend(self.incoming.drain(..).map(|(_, m)| m));
    }

    fn serialize(&mut self, cx: &mut SerializeCx<'_>) {
        for peer in 0..self.staged.len() {
            if self.staged[peer].is_empty() {
                continue;
            }
            self.messages += self.staged[peer].len() as u64;
            let batch = std::mem::take(&mut self.staged[peer]);
            cx.frame(peer, |buf| {
                for (dst, m) in &batch {
                    dst.encode(buf);
                    m.encode(buf);
                }
            });
        }
    }

    fn deserialize(&mut self, cx: &mut DeserializeCx<'_, AV>) {
        for (_from, mut r) in cx.frames() {
            while !r.is_empty() {
                let dst: VertexId = r.get();
                let m: M = r.get();
                let local = self.env.local_of(dst);
                self.incoming.push((local, m));
                cx.activate(local);
            }
        }
    }

    fn message_count(&self) -> u64 {
        self.messages
    }

    fn encode_state(&self, buf: &mut Vec<u8>) -> bool {
        // At a superstep boundary `staged` is drained and the readable
        // arrays are stale (the next `before_superstep` rebuilds them
        // from `incoming`), so the deliveries pending for the next
        // superstep plus the message counter are the whole state.
        self.incoming.encode(buf);
        self.messages.encode(buf);
        true
    }

    fn decode_state(&mut self, r: &mut pc_bsp::codec::Reader<'_>) {
        self.incoming = r.get();
        self.messages = r.get();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::VertexCtx;
    use crate::engine::{run, Algorithm};
    use pc_bsp::{Config, Topology};
    use std::sync::Arc;

    /// Every vertex sends its id to vertices `id/2` and `id/3`; receivers
    /// collect the count and sum of incoming messages.
    struct FanIn;
    impl Algorithm for FanIn {
        type Value = (u64, u64); // (count, sum)
        type Channels = (DirectMessage<u32>,);
        fn channels(&self, env: &WorkerEnv) -> Self::Channels {
            (DirectMessage::new(env),)
        }
        fn compute(&self, v: &mut VertexCtx<'_>, value: &mut Self::Value, ch: &mut Self::Channels) {
            if v.step() == 1 {
                ch.0.send_message(v.id / 2, v.id);
                ch.0.send_message(v.id / 3, v.id);
                v.vote_to_halt();
            } else {
                let msgs = ch.0.messages(v.local);
                *value = (msgs.len() as u64, msgs.iter().map(|&m| m as u64).sum());
                v.vote_to_halt();
            }
        }
    }

    #[test]
    fn direct_messages_are_grouped_per_receiver() {
        let n = 100u32;
        let topo = Arc::new(Topology::hashed(n as usize, 4));
        for cfg in [Config::sequential(4), Config::with_workers(4)] {
            let out = run(&FanIn, &topo, &cfg);
            // Oracle: recompute fan-in sequentially.
            let mut expect = vec![(0u64, 0u64); n as usize];
            for id in 0..n {
                for dst in [id / 2, id / 3] {
                    expect[dst as usize].0 += 1;
                    expect[dst as usize].1 += id as u64;
                }
            }
            assert_eq!(out.values, expect);
            assert_eq!(out.stats.messages(), 2 * n as u64);
            // Each message is 4 bytes dst + 4 bytes value (+ frame headers).
            assert!(out.stats.total_bytes() >= 2 * n as u64 * 8);
        }
    }

    /// Token passing along a chain: only the token holder is active.
    struct TokenPass {
        n: u32,
    }
    impl Algorithm for TokenPass {
        type Value = bool; // visited by the token
        type Channels = (DirectMessage<u8>,);
        fn channels(&self, env: &WorkerEnv) -> Self::Channels {
            (DirectMessage::new(env),)
        }
        fn compute(&self, v: &mut VertexCtx<'_>, value: &mut bool, ch: &mut Self::Channels) {
            let has_token = (v.step() == 1 && v.id == 0) || ch.0.has_messages(v.local);
            if has_token {
                *value = true;
                if v.id + 1 < self.n {
                    ch.0.send_message(v.id + 1, 1);
                }
            }
            v.vote_to_halt();
        }
    }

    #[test]
    fn activation_wakes_only_receivers() {
        let n = 20u32;
        let topo = Arc::new(Topology::hashed(n as usize, 3));
        let out = run(&TokenPass { n }, &topo, &Config::sequential(3));
        assert!(out.values.iter().all(|&v| v), "token visited everyone");
        assert_eq!(out.stats.supersteps, n as u64);
        assert_eq!(out.stats.messages(), (n - 1) as u64);
    }

    #[test]
    fn empty_supersteps_deliver_nothing() {
        let topo = Arc::new(Topology::hashed(10, 2));
        let out = run(&TokenPass { n: 1 }, &topo, &Config::sequential(2));
        // Vertex 0 exists among 10 vertices; only it gets the token.
        assert_eq!(out.values.iter().filter(|&&v| v).count(), 1);
        assert_eq!(out.stats.messages(), 0);
    }

    #[test]
    fn variable_width_messages_roundtrip() {
        struct VecMsg;
        impl Algorithm for VecMsg {
            type Value = u64;
            type Channels = (DirectMessage<Vec<u32>>,);
            fn channels(&self, env: &WorkerEnv) -> Self::Channels {
                (DirectMessage::new(env),)
            }
            fn compute(&self, v: &mut VertexCtx<'_>, value: &mut u64, ch: &mut Self::Channels) {
                if v.step() == 1 {
                    ch.0.send_message(0, vec![v.id; (v.id % 3) as usize]);
                    v.vote_to_halt();
                } else {
                    *value = ch.0.messages(v.local).iter().map(|m| m.len() as u64).sum();
                    v.vote_to_halt();
                }
            }
        }
        let topo = Arc::new(Topology::hashed(9, 2));
        let out = run(&VecMsg, &topo, &Config::sequential(2));
        // ids 0..9, each sends id%3 elements: 0+1+2+0+1+2+0+1+2 = 9
        assert_eq!(out.values[0], 9);
    }
}
