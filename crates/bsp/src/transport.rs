//! Pluggable exchange transports.
//!
//! The channel engine's threaded driver never talks to sockets, mailboxes
//! or barriers directly — it drives an [`ExchangeTransport`], the
//! rendezvous surface every backend must provide:
//!
//! * `post` / `sync` / `take_all_into` — the per-round pairwise buffer
//!   exchange of Fig. 2/4 (post everything, flush the round, drain what
//!   arrived in deterministic sender order),
//! * `recycle` / `reclaim_into` — the buffer return path that keeps the
//!   steady-state exchange allocation-free,
//! * `reduce` / `reduce_round` — the global reductions that decide channel
//!   and vertex activity.
//!
//! Three backends ship:
//!
//! * [`InProcess`] — the shared-memory [`Hub`] (mailbox + sense-reversing
//!   barrier + double-buffered reduction slots). This is the simulated
//!   cluster: fastest, zero copies, no sockets.
//! * [`crate::tcp::Tcp`] — every worker behind a real loopback socket,
//!   length-prefixed frames, reductions as a gather/broadcast round on
//!   worker 0. Observationally identical to `InProcess` (same values,
//!   bytes, supersteps, rounds — see `tests/transport_conformance.rs`),
//!   one process-boundary step away from a distributed deployment.
//! * The same mesh under [`crate::tcp::TcpOptions::batched`] — the
//!   non-blocking batched driver: per-peer send queues with pipelined
//!   partial writes, small frames coalesced into super-frames, buffered
//!   receive. Same conformance contract, fewer syscalls and wire frames
//!   under skewed frontiers.
//!
//! **Adding a fourth backend** means implementing this trait and keeping
//! the conformance suite green; the engine, the algorithms and the metrics
//! need no changes. The contract every implementation must honor:
//!
//! 1. All workers call the transport methods in the same order (the
//!    engine's masks and reductions are global decisions, so the call
//!    sequence is lock-step by construction).
//! 2. At most one `post` per `(from, to)` pair per round; `sync` ends the
//!    round's posting; after `sync`, `take_all_into(w)` yields every
//!    buffer addressed to `w`, ordered by sender id.
//! 3. `recycle`d buffers eventually come back through `reclaim_into` on
//!    the worker whose pool fed the matching `post` (capacity reuse, not
//!    correctness — a transport may drop them at a memory cost).

use crate::exchange::Hub;
use crate::metrics::TransportStats;
use crate::pool::BufferPool;
use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// The rendezvous surface between the threaded engine driver and one
/// exchange backend. See the module docs for the contract.
pub trait ExchangeTransport: Sync {
    /// Short backend name, surfaced in [`crate::metrics::RunStats`].
    fn name(&self) -> &'static str;

    /// Number of workers exchanging through this transport.
    fn workers(&self) -> usize;

    /// Post `data` from worker `from` to worker `to` for the current
    /// round. At most once per `(from, to)` pair per round.
    fn post(&self, from: usize, to: usize, data: Vec<u8>);

    /// End `worker`'s posting for this round. After every worker's `sync`,
    /// the round's buffers are observable via [`Self::take_all_into`].
    fn sync(&self, worker: usize);

    /// Push any buffered outgoing frames to the wire. A no-op for
    /// backends that send eagerly; the batched TCP driver uses it to
    /// release frames held for coalescing when no reduction will follow
    /// this round (e.g. the multi-process result gather).
    fn flush(&self, worker: usize) {
        let _ = worker;
    }

    /// Drain every buffer addressed to `worker` this round into `out`
    /// (cleared first), ordered by sender id.
    fn take_all_into(&self, worker: usize, out: &mut Vec<(usize, Vec<u8>)>);

    /// Hand a consumed receive buffer back from `worker` (the receiver)
    /// toward `sender`'s pool.
    fn recycle(&self, worker: usize, sender: usize, buf: Vec<u8>);

    /// Move every buffer returned toward `worker` into its pool.
    fn reclaim_into(&self, worker: usize, pool: &mut BufferPool);

    /// Global sum-reduction: publish `values` (one per lane), return the
    /// per-lane sums over all workers. Synchronizes all workers.
    fn reduce(&self, worker: usize, values: &[u64]) -> Vec<u64>;

    /// The fused round epilogue: OR-combine `again`, sum `active`, one
    /// synchronization. Returns `(global_again, global_active)`.
    fn reduce_round(&self, worker: usize, again: u64, active: u64) -> (u64, u64);

    /// Wire-level counters accumulated so far, aggregated over workers.
    fn stats(&self) -> TransportStats;

    /// Wire-level counters attributable to one worker. The default returns
    /// the aggregate, which is exact when the calling process drives a
    /// single worker (the multi-process deployment); backends that host
    /// several workers in one object override this with a per-worker
    /// breakdown so rank-mode result gathering never double-counts.
    fn worker_stats(&self, worker: usize) -> TransportStats {
        let _ = worker;
        self.stats()
    }

    /// Global barrier crossings, where the backend has a barrier (0
    /// otherwise).
    fn barrier_crossings(&self) -> u64 {
        0
    }

    /// Arrival-spin iterations burned at the backend's barrier, summed
    /// over workers (0 where there is no spinning barrier).
    fn barrier_spins(&self) -> u64 {
        0
    }

    /// Readiness hint: how many iterations an idle progress loop spins
    /// before sleeping in the backend's readiness multiplexer. `None`
    /// means the backend has no kernel wait at all (in-process backends);
    /// `Some(0)` means every idle wait goes straight to `poll(2)` — the
    /// oversubscribed regime, where engine drivers should prefer yielding
    /// over burning their own spin budgets.
    fn wait_budget(&self) -> Option<u32> {
        None
    }
}

/// A typed transport failure. Backends must fail with one of these (or
/// panic with its message) rather than hang: every blocking operation
/// carries a deadline.
#[derive(Debug)]
pub enum TransportError {
    /// A blocking operation exceeded its deadline.
    Timeout {
        /// Peer the operation was waiting on (`usize::MAX` when unknown).
        peer: usize,
        /// What was being attempted.
        during: &'static str,
    },
    /// The peer closed the connection between frames.
    Disconnected {
        /// Peer that went away.
        peer: usize,
        /// What was being attempted.
        during: &'static str,
    },
    /// The peer closed the connection in the middle of a frame.
    Truncated {
        /// Peer that went away.
        peer: usize,
        /// Bytes the frame still owed.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// The peer sent something outside the wire protocol.
    Protocol {
        /// Offending peer.
        peer: usize,
        /// Human-readable description.
        detail: String,
    },
    /// The initial mesh connection could not be established.
    Connect {
        /// Peer that could not be reached.
        peer: usize,
        /// Human-readable description.
        detail: String,
    },
    /// An unexpected I/O error.
    Io {
        /// Peer involved.
        peer: usize,
        /// The underlying error kind.
        kind: std::io::ErrorKind,
        /// What was being attempted.
        during: &'static str,
    },
}

impl TransportError {
    /// The peer this failure is attributed to (`usize::MAX` when the
    /// backend could not tell). Recovery logic keys off this: a fault
    /// attributed to the acting coordinator's rank means the control
    /// plane itself is gone and a standby must take over, not just
    /// re-join.
    pub fn peer(&self) -> usize {
        match *self {
            TransportError::Timeout { peer, .. }
            | TransportError::Disconnected { peer, .. }
            | TransportError::Truncated { peer, .. }
            | TransportError::Protocol { peer, .. }
            | TransportError::Connect { peer, .. }
            | TransportError::Io { peer, .. } => peer,
        }
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Timeout { peer, during } => {
                write!(f, "timed out during {during} (peer {peer})")
            }
            TransportError::Disconnected { peer, during } => {
                write!(f, "peer {peer} disconnected during {during}")
            }
            TransportError::Truncated {
                peer,
                expected,
                got,
            } => write!(
                f,
                "peer {peer} closed mid-frame ({got} of {expected} payload bytes)"
            ),
            TransportError::Protocol { peer, detail } => {
                write!(f, "protocol violation from peer {peer}: {detail}")
            }
            TransportError::Connect { peer, detail } => {
                write!(f, "cannot connect to peer {peer}: {detail}")
            }
            TransportError::Io { peer, kind, during } => {
                write!(f, "i/o error ({kind:?}) during {during} (peer {peer})")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Per-worker wire counters, each on its own cache line so the hot
/// exchange path never contends across workers; summed once in
/// [`ExchangeTransport::stats`].
#[derive(Debug, Default)]
struct WorkerCounters {
    wire_bytes: AtomicU64,
    frames: AtomicU64,
}

/// The shared-memory backend: the [`Hub`] (mailbox, sense-reversing
/// barrier, double-buffered reduction slots) behind the
/// [`ExchangeTransport`] surface, plus wire-level counters.
#[derive(Debug)]
pub struct InProcess {
    hub: Hub,
    counters: Vec<CachePadded<WorkerCounters>>,
    round_trips: AtomicU64,
}

impl InProcess {
    /// An in-process transport for `workers` workers.
    pub fn new(workers: usize) -> Self {
        InProcess::with_budget(workers, None)
    }

    /// [`InProcess::new`] with an explicit barrier spin budget (see
    /// [`crate::exchange::SpinBarrier::with_budget`]).
    pub fn with_budget(workers: usize, budget: Option<u32>) -> Self {
        InProcess {
            hub: Hub::with_budget(workers, 2, budget),
            counters: (0..workers)
                .map(|_| CachePadded::new(WorkerCounters::default()))
                .collect(),
            round_trips: AtomicU64::new(0),
        }
    }

    /// The underlying hub (for direct barrier/mailbox access in tests).
    pub fn hub(&self) -> &Hub {
        &self.hub
    }
}

impl ExchangeTransport for InProcess {
    fn name(&self) -> &'static str {
        "in-process"
    }

    fn workers(&self) -> usize {
        self.hub.workers()
    }

    fn post(&self, from: usize, to: usize, data: Vec<u8>) {
        // Each worker only touches its own padded counters: no cross-core
        // cache-line traffic on the hot path.
        let c = &self.counters[from];
        c.wire_bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
        c.frames.fetch_add(1, Ordering::Relaxed);
        self.hub.mailbox().post(from, to, data);
    }

    fn sync(&self, _worker: usize) {
        self.hub.sync();
    }

    fn take_all_into(&self, worker: usize, out: &mut Vec<(usize, Vec<u8>)>) {
        self.hub.mailbox().take_all_into(worker, out);
    }

    fn recycle(&self, _worker: usize, sender: usize, buf: Vec<u8>) {
        self.hub.recycle(sender, std::iter::once(buf));
    }

    fn reclaim_into(&self, worker: usize, pool: &mut BufferPool) {
        self.hub.reclaim_into(worker, pool);
    }

    fn reduce(&self, worker: usize, values: &[u64]) -> Vec<u64> {
        if worker == 0 {
            self.round_trips.fetch_add(1, Ordering::Relaxed);
        }
        self.hub.reduce(worker, values)
    }

    fn reduce_round(&self, worker: usize, again: u64, active: u64) -> (u64, u64) {
        if worker == 0 {
            self.round_trips.fetch_add(1, Ordering::Relaxed);
        }
        self.hub.reduce_round(worker, again, active)
    }

    fn stats(&self) -> TransportStats {
        let mut total = TransportStats {
            round_trips: self.round_trips.load(Ordering::Relaxed),
            ..TransportStats::default()
        };
        for c in &self.counters {
            total.wire_bytes += c.wire_bytes.load(Ordering::Relaxed);
            total.frames += c.frames.load(Ordering::Relaxed);
        }
        total
    }

    fn worker_stats(&self, worker: usize) -> TransportStats {
        let c = &self.counters[worker];
        TransportStats {
            wire_bytes: c.wire_bytes.load(Ordering::Relaxed),
            frames: c.frames.load(Ordering::Relaxed),
            // Reductions are global events; charge them to worker 0 so the
            // per-worker breakdown still sums to `stats()`.
            round_trips: if worker == 0 {
                self.round_trips.load(Ordering::Relaxed)
            } else {
                0
            },
            ..TransportStats::default()
        }
    }

    fn barrier_crossings(&self) -> u64 {
        self.hub.barrier_crossings()
    }

    fn barrier_spins(&self) -> u64 {
        self.hub.barrier_spins()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// The InProcess wrapper preserves the Hub's exchange semantics and
    /// counts frames/bytes/round-trips.
    #[test]
    fn in_process_exchange_and_counters() {
        let t = Arc::new(InProcess::new(3));
        let mut handles = Vec::new();
        for w in 0..3usize {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for to in 0..3 {
                    t.post(w, to, vec![w as u8; w + 1]);
                }
                t.sync(w);
                let mut got = Vec::new();
                t.take_all_into(w, &mut got);
                let senders: Vec<usize> = got.iter().map(|&(s, _)| s).collect();
                assert_eq!(senders, vec![0, 1, 2], "sender order is deterministic");
                for (s, buf) in got {
                    t.recycle(w, s, buf);
                }
                t.reduce_round(w, 1 << w, w as u64)
            }));
        }
        for h in handles {
            let (mask, active) = h.join().unwrap();
            assert_eq!(mask, 0b111);
            assert_eq!(active, 3);
        }
        let stats = t.stats();
        assert_eq!(stats.frames, 9);
        assert_eq!(stats.wire_bytes, 3 * (1 + 2 + 3));
        assert_eq!(stats.round_trips, 1);
        // The recycled buffers are waiting for their senders.
        let mut pool = BufferPool::new();
        t.reclaim_into(1, &mut pool);
        assert_eq!(pool.available(), 3);
    }
}
