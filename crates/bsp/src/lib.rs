//! # pc-bsp — simulated-cluster BSP substrate
//!
//! This crate is the "hardware" of the reproduction: an in-process stand-in
//! for the 8-node cluster the paper runs on. It provides
//!
//! * [`codec`] — a compact, deterministic binary codec so message *bytes*
//!   can be accounted exactly (the paper's "message (GB)" columns),
//! * [`buffer`] — per-destination raw byte buffers and the channel frame
//!   format used by the channel engine,
//! * [`pool`] — per-worker buffer pools that make the steady-state
//!   exchange path allocation-free (buffers cycle sender → receiver →
//!   sender instead of being dropped and reallocated every round),
//! * [`exchange`] — the pairwise mailbox through which workers swap buffers
//!   at superstep boundaries, plus the sense-reversing barrier and
//!   double-buffered single-crossing reductions used by the threaded
//!   execution mode,
//! * [`transport`] — the pluggable [`ExchangeTransport`] rendezvous
//!   surface behind which the backends live: [`transport::InProcess`]
//!   (the `Hub`) and [`tcp::Tcp`] (real loopback sockets),
//! * [`topology`] — vertex → worker ownership maps (hash partition or an
//!   explicit partition vector),
//! * [`metrics`] — per-channel and per-run statistics (bytes, messages,
//!   supersteps, exchange rounds, wall time, transport wire counters).
//!
//! Both the channel engine (`pc-channels`) and the baseline Pregel engine
//! (`pc-pregel`) are built on these primitives, so their byte accounting is
//! directly comparable.

pub mod buffer;
pub mod codec;
pub mod exchange;
pub mod metrics;
pub mod poll;
pub mod pool;
pub mod tcp;
pub mod topology;
pub mod trace;
pub mod transport;

pub use buffer::{iter_frames, FrameWriter, OutBuffers};
pub use codec::{Codec, FixedWidth, Reader};
pub use exchange::{Hub, Mailbox, SharedReduce, SpinBarrier};
pub use metrics::{ChannelMetrics, RunStats, TransportStats};
pub use pool::{BufferPool, PoolStats};
pub use tcp::{Tcp, TcpOptions};
pub use topology::{MirrorHub, MirrorPlan, Topology};
pub use trace::{RankTrace, SpanKind, SuperstepStats, TraceEvent, Tracer};
pub use transport::{ExchangeTransport, InProcess, TransportError};

/// How the simulated cluster executes its workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One OS thread per worker, barrier-synchronized (default; mirrors the
    /// paper's one-process-per-node deployment).
    #[default]
    Threads,
    /// Workers run in a deterministic round-robin on the calling thread.
    /// Used by tests and property-based checks.
    Sequential,
}

/// Which exchange backend carries the threaded workers' traffic.
///
/// Sequential mode moves buffers directly and ignores this choice. Both
/// backends are observationally identical (same values, bytes,
/// supersteps, rounds — enforced by `tests/transport_conformance.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Shared-memory mailbox + barrier ([`transport::InProcess`], the
    /// simulated cluster; default).
    #[default]
    InProcess,
    /// A full mesh of loopback TCP sockets ([`tcp::Tcp`]): real
    /// length-prefixed wire traffic, reductions as gather/broadcast
    /// rounds on worker 0. Synchronous: one blocking write per frame.
    Tcp,
    /// The same socket mesh under the non-blocking batched driver
    /// ([`TcpOptions::batched`]): pipelined sends, per-peer send queues,
    /// small frames coalesced into super-frames. Observationally
    /// identical to every other backend (conformance-pinned); faster
    /// under skewed frontiers.
    TcpBatched,
}

impl TransportKind {
    /// The CLI name of this transport (accepted back by `FromStr`).
    pub fn as_str(&self) -> &'static str {
        match self {
            TransportKind::InProcess => "in-process",
            TransportKind::Tcp => "tcp",
            TransportKind::TcpBatched => "tcp-batched",
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "in-process" | "inprocess" | "hub" => Ok(TransportKind::InProcess),
            "tcp" => Ok(TransportKind::Tcp),
            "tcp-batched" | "batched" => Ok(TransportKind::TcpBatched),
            other => Err(format!(
                "unknown transport '{other}' (in-process|tcp|tcp-batched)"
            )),
        }
    }
}

/// The distributed role of one process in a multi-process run: which rank
/// it drives and the socket mesh connecting it to its peers.
///
/// When [`Config::dist`] carries one of these, the engine runs exactly one
/// worker (`rank`) in the calling process over the shared [`Tcp`] mesh —
/// the other ranks live in other OS processes (or, in tests, other
/// threads sharing the same mesh object). Final values and statistics are
/// gathered to rank 0 through the same transport.
#[derive(Debug, Clone)]
pub struct RankRole {
    /// The worker this process drives, in `0..Config::workers`.
    pub rank: usize,
    /// The socket mesh connecting all ranks ([`Tcp::loopback`] for
    /// simulated multi-process tests, [`Tcp::mesh`] for real processes).
    pub transport: std::sync::Arc<Tcp>,
    /// The rank final results are gathered to — rank 0 normally, the
    /// acting coordinator after a failover (result gather, `--verify`
    /// and stats output follow the acting coordinator).
    pub gather_root: usize,
    /// Recovery epochs this rank has been through (copied into
    /// [`RunStats::recoveries`] by the rank driver and summed over ranks
    /// at the gather root).
    pub recoveries: u64,
    /// Total microseconds this rank spent in recovery (mesh teardown to
    /// resumed superstep loop), promoted into [`RunStats::recovery_us`].
    pub recovery_us: u64,
}

/// Superstep checkpointing policy.
///
/// When a [`Config`] carries one of these, the engine's worker drivers
/// snapshot their state (vertex values, frontier, channel state, byte and
/// pool counters) into `dir` every `every` supersteps, with worker 0
/// committing a manifest once all workers pass the checkpoint barrier.
/// The mechanics (segment files, digests, atomic commit, GC) live in the
/// `pc-ckpt` crate; this is just the knob the engine reads.
#[derive(Debug, Clone)]
pub struct CkptPolicy {
    /// Checkpoint cadence in supersteps (a checkpoint is taken after
    /// every `every`-th superstep that is not the run's last).
    pub every: u64,
    /// Checkpoint directory, shared by all workers/ranks of the run.
    pub dir: std::path::PathBuf,
}

/// Run-wide configuration shared by both engines.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of simulated workers (the paper uses an 8-node cluster).
    pub workers: usize,
    /// Execution mode (threads vs deterministic sequential).
    pub mode: ExecMode,
    /// Exchange backend used by the threaded mode.
    pub transport: TransportKind,
    /// Safety cap on supersteps; engines abort (panic) past this to surface
    /// non-terminating programs in tests.
    pub max_supersteps: u64,
    /// Multi-process role: when set, this process drives the single worker
    /// `dist.rank` over `dist.transport` instead of spawning threads, and
    /// `mode`/`transport` are ignored.
    pub dist: Option<RankRole>,
    /// Explicit [`exchange::SpinBarrier`] spin budget (iterations spent
    /// spinning before yielding). `None` keeps the adaptive default: spin
    /// when cores outnumber workers, park immediately otherwise.
    pub spin_budget: Option<u32>,
    /// Superstep checkpointing (threaded and multi-process drivers only);
    /// `None` disables it.
    pub ckpt: Option<CkptPolicy>,
    /// Superstep-resolution tracing (threaded and multi-process drivers
    /// only; the sequential reference never traces). When set, every
    /// worker records a [`trace::RankTrace`] — phase spans plus
    /// per-superstep counters — and `RunStats` carries the merged
    /// timeline. Off (`false`, the default) it is a true no-op: the
    /// engine branches on a `None` recorder and touches nothing else.
    pub trace: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            workers: 8,
            mode: ExecMode::Threads,
            transport: TransportKind::InProcess,
            max_supersteps: 1_000_000,
            dist: None,
            spin_budget: None,
            ckpt: None,
            trace: false,
        }
    }
}

impl Config {
    /// Config with `workers` workers and the default threaded mode.
    pub fn with_workers(workers: usize) -> Self {
        Config {
            workers,
            ..Config::default()
        }
    }

    /// Deterministic sequential config, handy in tests.
    pub fn sequential(workers: usize) -> Self {
        Config {
            workers,
            mode: ExecMode::Sequential,
            ..Config::default()
        }
    }

    /// Threaded config exchanging over loopback TCP sockets.
    pub fn tcp(workers: usize) -> Self {
        Config {
            workers,
            transport: TransportKind::Tcp,
            ..Config::default()
        }
    }

    /// Threaded config over loopback TCP sockets under the non-blocking
    /// batched driver.
    pub fn tcp_batched(workers: usize) -> Self {
        Config {
            workers,
            transport: TransportKind::TcpBatched,
            ..Config::default()
        }
    }

    /// Config for one rank of a multi-process run: `workers` total ranks,
    /// of which this process drives `rank` over `transport`.
    pub fn rank(workers: usize, rank: usize, transport: std::sync::Arc<Tcp>) -> Self {
        assert!(rank < workers, "rank {rank} out of range 0..{workers}");
        Config {
            workers,
            transport: TransportKind::Tcp,
            dist: Some(RankRole {
                rank,
                transport,
                gather_root: 0,
                recoveries: 0,
                recovery_us: 0,
            }),
            ..Config::default()
        }
    }
}
