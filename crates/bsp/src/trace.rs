//! Superstep-resolution tracing: per-worker timelines the run can export.
//!
//! [`RunStats`](crate::metrics::RunStats) answers *how much* (total bytes,
//! total stall); this module answers *when* and *where*. Each traced
//! worker owns a [`Tracer`] — a preallocated, bounded event buffer fed by
//! a monotonic clock — that records spans ([`SpanKind`]) for the phases
//! of every superstep plus one [`SuperstepStats`] row of counters per
//! superstep. When a run finishes, each worker's stream becomes a
//! [`RankTrace`]; multi-process runs ship them to rank 0 over the same
//! gather codec that carries the result values, where
//! [`align_epochs`]/[`merge_timelines`] put every rank on one time base
//! and [`chrome_trace_json`] renders the whole run as Chrome trace-event
//! JSON (one track per rank, loadable in Perfetto or `chrome://tracing`).
//!
//! Tracing off is a true no-op: the engine branches on an
//! `Option<Tracer>` that is `None`, the transport's poll-wait probe is a
//! single thread-local `is-none` check on an already-slow path (a kernel
//! wait), and nothing else in the exchange path looks at this module.
//! The conformance suite pins the byte-identity of untraced runs, and
//! the `exchange_json` bench asserts a traced run changes no counter.

use crate::codec::{Codec, Reader};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Preallocated per-worker event capacity. A traced run records a
/// handful of spans per round, so this covers tens of thousands of
/// rounds; past it events are dropped (and counted) rather than grown —
/// tracing must never allocate on the superstep path.
pub const EVENT_CAPACITY: usize = 1 << 16;

/// What a traced span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The vertex-program phase of one superstep.
    Compute,
    /// One buffer-exchange round (serialize, post, sync, take,
    /// deserialize).
    Exchange,
    /// A global reduction (the fused round epilogue, or the channel-free
    /// activity reduction).
    Barrier,
    /// One kernel readiness wait in the batched TCP driver's multiplexer
    /// (recorded by the transport, attributed to the superstep that was
    /// in flight).
    PollWait,
    /// Snapshot write + checkpoint barrier at a checkpoint boundary.
    Checkpoint,
    /// Restoring a committed checkpoint before the first superstep.
    Recovery,
}

impl SpanKind {
    /// Stable name, used as the Chrome trace event name.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::Exchange => "exchange",
            SpanKind::Barrier => "barrier",
            SpanKind::PollWait => "poll-wait",
            SpanKind::Checkpoint => "checkpoint",
            SpanKind::Recovery => "recovery",
        }
    }

    fn code(&self) -> u8 {
        match self {
            SpanKind::Compute => 0,
            SpanKind::Exchange => 1,
            SpanKind::Barrier => 2,
            SpanKind::PollWait => 3,
            SpanKind::Checkpoint => 4,
            SpanKind::Recovery => 5,
        }
    }

    fn from_code(code: u8) -> SpanKind {
        match code {
            0 => SpanKind::Compute,
            1 => SpanKind::Exchange,
            2 => SpanKind::Barrier,
            3 => SpanKind::PollWait,
            4 => SpanKind::Checkpoint,
            5 => SpanKind::Recovery,
            other => panic!("unknown span kind code {other}"),
        }
    }
}

/// One closed span on a worker's timeline. Timestamps are microseconds
/// from the owning tracer's origin until [`align_epochs`] shifts them
/// onto the run-wide epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What the span covers.
    pub kind: SpanKind,
    /// Superstep the span belongs to (1-based, the engine's counter).
    pub superstep: u64,
    /// Start, µs from the trace epoch.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
}

impl Codec for TraceEvent {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.kind.code().encode(buf);
        self.superstep.encode(buf);
        self.start_us.encode(buf);
        self.dur_us.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Self {
        TraceEvent {
            kind: SpanKind::from_code(r.get()),
            superstep: r.get(),
            start_us: r.get(),
            dur_us: r.get(),
        }
    }
    const FIXED_SIZE: Option<usize> = Some(1 + 3 * 8);
}

/// Per-superstep counters — the row the `--superstep-table` summary and
/// `RunStats::timeline` are made of. On a worker these are that worker's
/// share; after [`merge_timelines`] they are run-global sums.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SuperstepStats {
    /// Superstep number (1-based).
    pub superstep: u64,
    /// Exchange rounds this superstep ran.
    pub rounds: u64,
    /// Vertices active (computed) in this superstep.
    pub active: u64,
    /// Application messages sent during this superstep.
    pub messages: u64,
    /// Remote channel bytes sent during this superstep.
    pub remote_bytes: u64,
    /// Transport kernel-wait µs charged to this superstep
    /// (send + recv stall deltas of the worker's transport counters).
    pub stall_us: u64,
    /// Exchange-pool misses (allocations) during this superstep.
    pub pool_misses: u64,
    /// µs spent in the vertex-program phase.
    pub compute_us: u64,
    /// µs spent in exchange rounds (serialize → deserialize, reductions
    /// excluded).
    pub exchange_us: u64,
}

impl SuperstepStats {
    /// Accumulate another worker's row for the same superstep.
    pub fn merge(&mut self, other: &SuperstepStats) {
        assert_eq!(
            self.superstep, other.superstep,
            "merging rows of different supersteps"
        );
        self.rounds = self.rounds.max(other.rounds);
        self.active += other.active;
        self.messages += other.messages;
        self.remote_bytes += other.remote_bytes;
        self.stall_us += other.stall_us;
        self.pool_misses += other.pool_misses;
        self.compute_us += other.compute_us;
        self.exchange_us += other.exchange_us;
    }
}

impl Codec for SuperstepStats {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.superstep.encode(buf);
        self.rounds.encode(buf);
        self.active.encode(buf);
        self.messages.encode(buf);
        self.remote_bytes.encode(buf);
        self.stall_us.encode(buf);
        self.pool_misses.encode(buf);
        self.compute_us.encode(buf);
        self.exchange_us.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Self {
        SuperstepStats {
            superstep: r.get(),
            rounds: r.get(),
            active: r.get(),
            messages: r.get(),
            remote_bytes: r.get(),
            stall_us: r.get(),
            pool_misses: r.get(),
            compute_us: r.get(),
            exchange_us: r.get(),
        }
    }
    const FIXED_SIZE: Option<usize> = Some(9 * 8);
}

/// One worker's (rank's) complete trace: its event stream, per-superstep
/// counter rows, and the wall-clock anchor that lets rank 0 merge
/// streams from different processes onto one epoch.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RankTrace {
    /// The worker/rank this stream belongs to.
    pub rank: u32,
    /// Wall clock (unix µs) at this tracer's monotonic origin. Before
    /// [`align_epochs`] event timestamps are relative to this; after,
    /// this holds the rank's offset from the run-wide epoch.
    pub epoch_us: u64,
    /// Events dropped once [`EVENT_CAPACITY`] was reached.
    pub dropped: u64,
    /// Closed spans, in recording order.
    pub events: Vec<TraceEvent>,
    /// One counter row per executed superstep.
    pub timeline: Vec<SuperstepStats>,
}

impl Codec for RankTrace {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.rank.encode(buf);
        self.epoch_us.encode(buf);
        self.dropped.encode(buf);
        self.events.encode(buf);
        self.timeline.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Self {
        RankTrace {
            rank: r.get(),
            epoch_us: r.get(),
            dropped: r.get(),
            events: r.get(),
            timeline: r.get(),
        }
    }
}

/// A per-worker span recorder: a monotonic clock plus preallocated event
/// and timeline buffers. Owned by the engine's worker driver; absent
/// (`None`) when tracing is off.
#[derive(Debug)]
pub struct Tracer {
    rank: u32,
    origin: Instant,
    epoch_us: u64,
    events: Vec<TraceEvent>,
    dropped: u64,
    timeline: Vec<SuperstepStats>,
}

impl Tracer {
    /// A tracer for `rank`, anchored to now.
    pub fn new(rank: usize) -> Self {
        let epoch_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        Tracer {
            rank: rank as u32,
            origin: Instant::now(),
            epoch_us,
            events: Vec::with_capacity(EVENT_CAPACITY),
            dropped: 0,
            timeline: Vec::with_capacity(256),
        }
    }

    /// The monotonic origin all of this tracer's timestamps are relative
    /// to (shared with the poll-wait probe).
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Microseconds since the origin — span start timestamps.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Close a span opened at `start_us` (from [`Tracer::now_us`]) and
    /// record it; returns the span's duration in µs.
    pub fn end(&mut self, kind: SpanKind, superstep: u64, start_us: u64) -> u64 {
        let dur_us = self.now_us().saturating_sub(start_us);
        self.record(TraceEvent {
            kind,
            superstep,
            start_us,
            dur_us,
        });
        dur_us
    }

    /// Record one closed event, dropping (and counting) past capacity.
    pub fn record(&mut self, ev: TraceEvent) {
        if self.events.len() < self.events.capacity() {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Append one superstep's counter row.
    pub fn superstep(&mut self, row: SuperstepStats) {
        self.timeline.push(row);
    }

    /// Move the poll-wait spans the transport probe accumulated on this
    /// thread into the event stream, attributed to `superstep`.
    pub fn drain_poll_spans(&mut self, superstep: u64) {
        POLL_PROBE.with(|cell| {
            if let Some(probe) = cell.borrow_mut().as_mut() {
                for (start_us, dur_us) in probe.spans.drain(..) {
                    self.record(TraceEvent {
                        kind: SpanKind::PollWait,
                        superstep,
                        start_us,
                        dur_us,
                    });
                }
            }
        });
    }

    /// Seal the stream into its shippable form.
    pub fn finish(self) -> RankTrace {
        RankTrace {
            rank: self.rank,
            epoch_us: self.epoch_us,
            dropped: self.dropped,
            events: self.events,
            timeline: self.timeline,
        }
    }
}

/// The transport-side poll-wait probe: spans recorded from inside
/// [`crate::tcp`]'s readiness multiplexer, on the worker's own thread,
/// without the transport ever seeing the tracer. `(start_us, dur_us)`
/// relative to the installing tracer's origin.
struct PollProbe {
    origin: Instant,
    spans: Vec<(u64, u64)>,
}

thread_local! {
    static POLL_PROBE: RefCell<Option<PollProbe>> = const { RefCell::new(None) };
}

/// Uninstalls the thread's poll-wait probe on drop.
pub struct PollProbeGuard(());

impl Drop for PollProbeGuard {
    fn drop(&mut self) {
        POLL_PROBE.with(|cell| *cell.borrow_mut() = None);
    }
}

/// Install the poll-wait probe on the calling thread, anchored to the
/// tracer's `origin`. The engine's worker driver holds the guard for the
/// run; transports record through [`note_poll_wait`].
pub fn install_poll_probe(origin: Instant) -> PollProbeGuard {
    POLL_PROBE.with(|cell| {
        *cell.borrow_mut() = Some(PollProbe {
            origin,
            spans: Vec::with_capacity(1024),
        })
    });
    PollProbeGuard(())
}

/// Record one kernel readiness wait that started at `start` and lasted
/// `waited_us`. Called by the batched TCP driver's multiplexer; a no-op
/// (one thread-local check) unless the calling thread installed a probe.
pub fn note_poll_wait(start: Instant, waited_us: u64) {
    POLL_PROBE.with(|cell| {
        if let Some(probe) = cell.borrow_mut().as_mut() {
            let start_us = start.duration_since(probe.origin).as_micros() as u64;
            if probe.spans.len() < probe.spans.capacity() {
                probe.spans.push((start_us, waited_us));
            }
        }
    });
}

/// Shift every rank's timestamps onto one epoch: the earliest rank
/// origin becomes 0 and each event's `start_us` becomes its offset from
/// it. In-process runs share a clock, so this is exact; multi-process
/// runs on one host share `CLOCK_MONOTONIC` anyway and the wall-clock
/// anchor keeps multi-host traces sane.
pub fn align_epochs(traces: &mut [RankTrace]) {
    let Some(min) = traces.iter().map(|t| t.epoch_us).min() else {
        return;
    };
    for t in traces {
        let offset = t.epoch_us - min;
        t.epoch_us = offset;
        for e in &mut t.events {
            e.start_us += offset;
        }
    }
}

/// Merge per-rank timelines into one run-global timeline: rows of the
/// same superstep are summed (rounds, identical everywhere, are kept).
pub fn merge_timelines(traces: &[RankTrace]) -> Vec<SuperstepStats> {
    let mut merged: Vec<SuperstepStats> = Vec::new();
    for t in traces {
        if merged.is_empty() {
            merged = t.timeline.clone();
            continue;
        }
        assert_eq!(
            merged.len(),
            t.timeline.len(),
            "rank {} disagrees on the superstep count",
            t.rank
        );
        for (into, from) in merged.iter_mut().zip(&t.timeline) {
            into.merge(from);
        }
    }
    merged
}

/// Render rank traces as Chrome trace-event JSON: an array of complete
/// (`"ph": "X"`) events, one `tid` (track) per rank, each track named
/// via a `thread_name` metadata event. Timestamps are µs on the aligned
/// epoch. Loadable in Perfetto (ui.perfetto.dev) or `chrome://tracing`.
pub fn chrome_trace_json(traces: &[RankTrace]) -> String {
    let mut json = String::from("[\n");
    let mut first = true;
    let mut emit = |line: &str, json: &mut String| {
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str(line);
    };
    for t in traces {
        emit(
            &format!(
                "  {{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"rank {}\"}}}}",
                t.rank, t.rank
            ),
            &mut json,
        );
        for e in &t.events {
            emit(
                &format!(
                    "  {{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"name\":\"{}\",\
                     \"ts\":{},\"dur\":{},\"args\":{{\"superstep\":{}}}}}",
                    t.rank,
                    e.kind.as_str(),
                    e.start_us,
                    e.dur_us,
                    e.superstep
                ),
                &mut json,
            );
        }
    }
    json.push_str("\n]\n");
    json
}

/// Render a merged timeline as the `--superstep-table` text block.
pub fn superstep_table(timeline: &[SuperstepStats]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>9} {:>7} {:>10} {:>10} {:>12} {:>10} {:>10} {:>11} {:>11}",
        "superstep",
        "rounds",
        "active",
        "messages",
        "remote B",
        "stall µs",
        "pool miss",
        "compute µs",
        "exchange µs"
    );
    for r in timeline {
        let _ = writeln!(
            out,
            "{:>9} {:>7} {:>10} {:>10} {:>12} {:>10} {:>10} {:>11} {:>11}",
            r.superstep,
            r.rounds,
            r.active,
            r.messages,
            r.remote_bytes,
            r.stall_us,
            r.pool_misses,
            r.compute_us,
            r.exchange_us
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace(rank: u32, epoch_us: u64) -> RankTrace {
        RankTrace {
            rank,
            epoch_us,
            dropped: 0,
            events: vec![
                TraceEvent {
                    kind: SpanKind::Compute,
                    superstep: 1,
                    start_us: 10,
                    dur_us: 5,
                },
                TraceEvent {
                    kind: SpanKind::Exchange,
                    superstep: 1,
                    start_us: 15,
                    dur_us: 8,
                },
                TraceEvent {
                    kind: SpanKind::PollWait,
                    superstep: 2,
                    start_us: 30,
                    dur_us: 100,
                },
            ],
            timeline: vec![
                SuperstepStats {
                    superstep: 1,
                    rounds: 2,
                    active: 7,
                    messages: 11,
                    remote_bytes: 130,
                    stall_us: 3,
                    pool_misses: 1,
                    compute_us: 5,
                    exchange_us: 8,
                },
                SuperstepStats {
                    superstep: 2,
                    rounds: 1,
                    active: 2,
                    messages: 3,
                    remote_bytes: 40,
                    stall_us: 100,
                    pool_misses: 0,
                    compute_us: 2,
                    exchange_us: 4,
                },
            ],
        }
    }

    /// The gather codec round-trips a complete rank trace bit-exactly —
    /// every span field and every per-superstep counter row.
    #[test]
    fn rank_trace_codec_round_trips() {
        let t = sample_trace(3, 1_000_000);
        let mut buf = Vec::new();
        t.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let back = RankTrace::decode(&mut r);
        assert!(r.is_empty(), "trailing bytes");
        assert_eq!(back, t);
    }

    /// Every span kind survives its wire code.
    #[test]
    fn span_kind_codes_round_trip() {
        for kind in [
            SpanKind::Compute,
            SpanKind::Exchange,
            SpanKind::Barrier,
            SpanKind::PollWait,
            SpanKind::Checkpoint,
            SpanKind::Recovery,
        ] {
            assert_eq!(SpanKind::from_code(kind.code()), kind);
            assert!(!kind.as_str().is_empty());
        }
    }

    /// Epoch alignment shifts the later rank's events by the origin gap
    /// and leaves the earliest rank untouched.
    #[test]
    fn align_epochs_puts_ranks_on_one_time_base() {
        let mut traces = vec![sample_trace(0, 5_000), sample_trace(1, 5_250)];
        align_epochs(&mut traces);
        assert_eq!(traces[0].epoch_us, 0);
        assert_eq!(traces[1].epoch_us, 250);
        assert_eq!(traces[0].events[0].start_us, 10);
        assert_eq!(traces[1].events[0].start_us, 260);
    }

    /// Merged timelines sum counters per superstep and keep the (global,
    /// identical) round count.
    #[test]
    fn merge_timelines_sums_per_superstep() {
        let traces = vec![sample_trace(0, 0), sample_trace(1, 0)];
        let merged = merge_timelines(&traces);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].superstep, 1);
        assert_eq!(merged[0].active, 14);
        assert_eq!(merged[0].messages, 22);
        assert_eq!(merged[0].remote_bytes, 260);
        assert_eq!(merged[0].rounds, 2, "rounds are global, not summed");
        assert_eq!(merged[1].stall_us, 200);
    }

    /// The Chrome export is structurally valid JSON with one named track
    /// per rank and one complete event per span.
    #[test]
    fn chrome_trace_json_is_wellformed() {
        let mut traces = vec![sample_trace(0, 100), sample_trace(1, 150)];
        align_epochs(&mut traces);
        let json = chrome_trace_json(&traces);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches("thread_name").count(), 2);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 6);
        assert!(json.contains("\"name\":\"poll-wait\""));
        assert!(!json.contains(",\n]"), "trailing comma: {json}");
    }

    /// The event buffer is bounded: past capacity events are counted,
    /// not stored (and never reallocate).
    #[test]
    fn tracer_event_buffer_saturates() {
        let mut t = Tracer::new(0);
        let cap = t.events.capacity();
        for i in 0..(cap + 10) {
            t.record(TraceEvent {
                kind: SpanKind::Compute,
                superstep: i as u64,
                start_us: 0,
                dur_us: 0,
            });
        }
        assert_eq!(t.events.len(), cap);
        assert_eq!(t.events.capacity(), cap);
        assert_eq!(t.dropped, 10);
    }

    /// The poll probe feeds spans to the tracer on the same thread and
    /// is a no-op once the guard drops.
    #[test]
    fn poll_probe_records_only_while_installed() {
        let mut t = Tracer::new(0);
        {
            let _guard = install_poll_probe(t.origin());
            note_poll_wait(Instant::now(), 42);
            t.drain_poll_spans(7);
        }
        note_poll_wait(Instant::now(), 99); // probe gone: dropped
        t.drain_poll_spans(8);
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].kind, SpanKind::PollWait);
        assert_eq!(t.events[0].superstep, 7);
        assert_eq!(t.events[0].dur_us, 42);
    }

    /// The superstep table renders one row per superstep.
    #[test]
    fn superstep_table_has_one_row_per_superstep() {
        let table = superstep_table(&sample_trace(0, 0).timeline);
        assert_eq!(table.lines().count(), 3); // header + 2 rows
        assert!(table.contains("superstep"));
    }
}
