//! Buffer pooling for the zero-allocation steady-state exchange path.
//!
//! Every exchange round used to allocate one fresh `Vec<u8>` per non-empty
//! destination and drop the received buffers after deserialization. With a
//! [`BufferPool`] per worker the buffers instead cycle: a drained buffer is
//! replaced by a pooled one (keeping its capacity), and consumed receive
//! buffers are recycled back to their *sender's* pool once deserialized —
//! by the sequential driver directly, or through [`crate::exchange::Hub`]'s
//! per-sender return stacks in threaded mode. After one warm-up round per
//! peer the exchange path performs no buffer allocations at all.
//!
//! Reuse is observable: the pool counts hits (a pooled buffer was
//! available) and misses (a fresh allocation was needed), and the engine
//! surfaces the totals in [`crate::metrics::RunStats`].

/// Hit/miss counters of one or more [`BufferPool`]s.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffer requests served from the pool.
    pub hits: u64,
    /// Buffer requests that had to allocate.
    pub misses: u64,
}

impl PoolStats {
    /// Fraction of requests served from the pool (1.0 when there were no
    /// requests at all — nothing was allocated either).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulate another pool's counters.
    pub fn merge(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Rounds of footprint history kept for the high-water trim policy.
const TRIM_WINDOW: usize = 32;
/// Minimum history before trimming kicks in (avoids trimming during
/// warm-up, when footprints are still growing toward steady state).
const TRIM_MIN_SAMPLES: usize = 8;
/// Capacity slack over the p90 footprint. `Vec` growth doubles, so pooled
/// capacity legitimately sits up to ~2× the bytes a round actually
/// writes; only capacity beyond this slack is released.
const TRIM_SLACK: usize = 2;

/// A freelist of byte buffers owned by one worker.
///
/// Not thread-safe by design — each worker owns one; cross-thread
/// recycling goes through the `Hub`'s per-sender return stacks so the pool
/// itself stays lock-free on the hot path.
///
/// ## High-water trimming
///
/// A pool that never frees pins the peak: one giant superstep leaves
/// giant buffers in the freelist forever. The pool therefore tracks the
/// byte footprint of recent rounds (bytes returned per round, measured
/// before buffers are cleared) and, at every [`BufferPool::end_round`],
/// releases pooled *capacity* down to [`TRIM_SLACK`] × the p90 of that
/// window. Trimming shrinks buffers in place (`Vec::shrink_to`) rather
/// than dropping them, so hit/miss accounting — and with it the
/// cross-mode determinism contract on [`PoolStats`] — is completely
/// unaffected by when or whether a trim happens.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    stats: PoolStats,
    /// Total capacity currently parked in `free`.
    free_bytes: usize,
    /// Bytes returned (buffer lengths at `put`) since the last
    /// `end_round`.
    round_put_bytes: usize,
    /// Footprints of the last [`TRIM_WINDOW`] rounds.
    footprints: std::collections::VecDeque<usize>,
    /// Reusable sort scratch for the p90 computation, so `end_round`
    /// allocates nothing in steady state.
    p90_scratch: Vec<usize>,
    /// Total capacity released by trims so far.
    trimmed_bytes: u64,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Seed the freelist with `count` fresh buffers of `capacity` bytes
    /// each, so a run's first exchange round is served from the pool
    /// instead of allocating per destination. Pre-warmed buffers count as
    /// neither hits nor misses when added (they are charged normally when
    /// [`BufferPool::get`] hands them out), so hit/miss accounting stays
    /// a pure function of the exchange traffic — identical across
    /// execution modes as long as every mode pre-warms identically.
    pub fn prewarm(&mut self, count: usize, capacity: usize) {
        self.free.reserve(count);
        for _ in 0..count {
            let buf = Vec::with_capacity(capacity);
            self.free_bytes += buf.capacity();
            self.free.push(buf);
        }
    }

    /// Get a cleared buffer, reusing a pooled one when available. Reused
    /// buffers keep their capacity — that is the whole point.
    pub fn get(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(buf) => {
                debug_assert!(buf.is_empty());
                self.free_bytes -= buf.capacity();
                self.stats.hits += 1;
                buf
            }
            None => {
                self.stats.misses += 1;
                Vec::new()
            }
        }
    }

    /// Return a consumed buffer to the pool. The buffer's length (the
    /// bytes the round actually used) is charged to the current round's
    /// footprint before the buffer is cleared.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        self.round_put_bytes += buf.len();
        buf.clear();
        self.free_bytes += buf.capacity();
        self.free.push(buf);
    }

    /// Return many buffers at once.
    pub fn put_all(&mut self, bufs: impl IntoIterator<Item = Vec<u8>>) {
        for buf in bufs {
            self.put(buf);
        }
    }

    /// Close one exchange round: record the round's footprint and apply
    /// the high-water trim policy (see the type docs). Engines call this
    /// once per exchange round per worker.
    pub fn end_round(&mut self) {
        if self.footprints.len() == TRIM_WINDOW {
            self.footprints.pop_front();
        }
        self.footprints.push_back(self.round_put_bytes);
        self.round_put_bytes = 0;
        if self.footprints.len() < TRIM_MIN_SAMPLES {
            return;
        }
        let p90 = self.footprint_p90();
        if p90 == 0 {
            // A window dominated by idle rounds (sparse frontier) says
            // nothing about the working set; trimming to zero here would
            // just force reallocation at the next burst.
            return;
        }
        let target = TRIM_SLACK * p90;
        if self.free_bytes <= target {
            return;
        }
        // Shrink the largest buffers first; keep every Vec in the list so
        // hit/miss traffic is untouched.
        self.free
            .sort_unstable_by_key(|b| std::cmp::Reverse(b.capacity()));
        let mut free_bytes = self.free_bytes;
        for buf in &mut self.free {
            if free_bytes <= target {
                break;
            }
            let cap = buf.capacity();
            let keep = cap.saturating_sub(free_bytes - target);
            buf.shrink_to(keep);
            let released = cap - buf.capacity();
            free_bytes -= released;
            self.trimmed_bytes += released as u64;
        }
        self.free_bytes = free_bytes;
    }

    /// The 90th percentile of the recorded round footprints.
    fn footprint_p90(&mut self) -> usize {
        self.p90_scratch.clear();
        self.p90_scratch.extend(self.footprints.iter().copied());
        self.p90_scratch.sort_unstable();
        self.p90_scratch[(self.p90_scratch.len() * 9).div_ceil(10) - 1]
    }

    /// Buffers currently pooled.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Total capacity currently parked in the freelist.
    pub fn pooled_bytes(&self) -> usize {
        self.free_bytes
    }

    /// Total capacity released by the trim policy so far.
    pub fn trimmed_bytes(&self) -> u64 {
        self.trimmed_bytes
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Overwrite the hit/miss counters — used when restoring a worker
    /// from a checkpoint, so the resumed run's pool accounting continues
    /// from exactly where the snapshot left it (the re-executed tail adds
    /// its traffic once, as an unfailed run would have).
    pub fn set_stats(&mut self, stats: PoolStats) {
        self.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_get_misses_then_hits() {
        let mut pool = BufferPool::new();
        let mut buf = pool.get();
        assert_eq!(pool.stats(), PoolStats { hits: 0, misses: 1 });
        buf.extend_from_slice(&[1, 2, 3]);
        let cap = buf.capacity();
        pool.put(buf);
        let buf = pool.get();
        assert!(buf.is_empty(), "pooled buffers come back cleared");
        assert_eq!(buf.capacity(), cap, "capacity survives the round trip");
        assert_eq!(pool.stats(), PoolStats { hits: 1, misses: 1 });
    }

    #[test]
    fn put_all_and_available() {
        let mut pool = BufferPool::new();
        pool.put_all((0..3).map(|_| vec![0u8; 16]));
        assert_eq!(pool.available(), 3);
        let _ = pool.get();
        assert_eq!(pool.available(), 2);
    }

    /// Simulate one worker's exchange rounds: `count` buffers of `size`
    /// bytes cycle out and home again, then the round closes.
    fn run_round(pool: &mut BufferPool, count: usize, size: usize) {
        let mut in_flight: Vec<Vec<u8>> = (0..count)
            .map(|_| {
                let mut b = pool.get();
                b.resize(size, 7);
                b
            })
            .collect();
        pool.put_all(in_flight.drain(..));
        pool.end_round();
    }

    /// The ROADMAP regression: a one-off giant superstep must not pin
    /// peak capacity forever. After the window refills with small rounds,
    /// the giant capacity is released — without perturbing hit/miss
    /// accounting.
    #[test]
    fn one_off_giant_round_no_longer_pins_capacity() {
        const SMALL: usize = 1 << 10;
        const GIANT: usize = 1 << 20;
        let mut pool = BufferPool::new();
        for _ in 0..TRIM_MIN_SAMPLES {
            run_round(&mut pool, 4, SMALL);
        }
        let steady = pool.pooled_bytes();
        assert!((4 * SMALL..=TRIM_SLACK * 8 * SMALL).contains(&steady));

        run_round(&mut pool, 4, GIANT);
        assert!(
            pool.pooled_bytes() >= 4 * GIANT,
            "giant round grows the pool"
        );

        // The very next small round already sees the giant as an outlier
        // (p90 of the window is small) and trims back down.
        run_round(&mut pool, 4, SMALL);
        assert!(
            pool.pooled_bytes() <= TRIM_SLACK * 8 * SMALL,
            "giant capacity still pinned: {} bytes pooled",
            pool.pooled_bytes()
        );
        assert!(pool.trimmed_bytes() >= 3 * GIANT as u64);

        // Hit/miss traffic is exactly what an untrimmed pool would show:
        // 4 warm-up misses, everything else a hit.
        let stats = pool.stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits as usize, 4 * (TRIM_MIN_SAMPLES + 2) - 4);
        // And the trimmed buffers are still *in* the pool (count-wise).
        assert_eq!(pool.available(), 4);
    }

    /// Steady-state rounds never trigger the trim: pooled capacity stays
    /// within the slack budget and nothing is released.
    #[test]
    fn steady_rounds_do_not_trim() {
        let mut pool = BufferPool::new();
        for _ in 0..3 * TRIM_WINDOW {
            run_round(&mut pool, 3, 4096);
        }
        assert_eq!(pool.trimmed_bytes(), 0, "steady state must not churn");
        assert_eq!(pool.stats().misses, 3);
    }

    /// A sparse-frontier phase (mostly idle rounds) must not trim the
    /// working set to zero — an idle window carries no sizing signal,
    /// and a pool that trimmed to nothing would quietly reallocate on
    /// the next burst.
    #[test]
    fn idle_rounds_do_not_trim_to_zero() {
        let mut pool = BufferPool::new();
        for _ in 0..TRIM_MIN_SAMPLES {
            run_round(&mut pool, 2, 8192);
        }
        let steady = pool.pooled_bytes();
        // A long idle stretch: nothing sent, nothing put.
        for _ in 0..2 * TRIM_WINDOW {
            pool.end_round();
        }
        assert_eq!(pool.pooled_bytes(), steady, "idle rounds must not trim");
        assert_eq!(pool.trimmed_bytes(), 0);
        // The next burst is served entirely from the intact pool.
        run_round(&mut pool, 2, 8192);
        assert_eq!(pool.stats().misses, 2, "burst after idling stays warm");
    }

    /// A sustained shift to a bigger working set must also not churn: the
    /// window adapts and trimming stops once big rounds dominate it.
    #[test]
    fn sustained_growth_adapts_without_oscillating() {
        let mut pool = BufferPool::new();
        for _ in 0..TRIM_WINDOW {
            run_round(&mut pool, 2, 1 << 10);
        }
        for _ in 0..2 * TRIM_WINDOW {
            run_round(&mut pool, 2, 1 << 16);
        }
        let trimmed_after_shift = pool.trimmed_bytes();
        for _ in 0..TRIM_WINDOW {
            run_round(&mut pool, 2, 1 << 16);
        }
        assert_eq!(
            pool.trimmed_bytes(),
            trimmed_after_shift,
            "no further trimming once the window reflects the new footprint"
        );
        assert!(pool.pooled_bytes() >= 2 * (1 << 16));
    }

    #[test]
    fn hit_rate_edge_cases() {
        assert_eq!(PoolStats::default().hit_rate(), 1.0);
        let s = PoolStats {
            hits: 99,
            misses: 1,
        };
        assert!((s.hit_rate() - 0.99).abs() < 1e-12);
        let mut m = PoolStats { hits: 1, misses: 0 };
        m.merge(&s);
        assert_eq!(
            m,
            PoolStats {
                hits: 100,
                misses: 1
            }
        );
    }
}
