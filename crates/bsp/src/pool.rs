//! Buffer pooling for the zero-allocation steady-state exchange path.
//!
//! Every exchange round used to allocate one fresh `Vec<u8>` per non-empty
//! destination and drop the received buffers after deserialization. With a
//! [`BufferPool`] per worker the buffers instead cycle: a drained buffer is
//! replaced by a pooled one (keeping its capacity), and consumed receive
//! buffers are recycled back to their *sender's* pool once deserialized —
//! by the sequential driver directly, or through [`crate::exchange::Hub`]'s
//! per-sender return stacks in threaded mode. After one warm-up round per
//! peer the exchange path performs no buffer allocations at all.
//!
//! Reuse is observable: the pool counts hits (a pooled buffer was
//! available) and misses (a fresh allocation was needed), and the engine
//! surfaces the totals in [`crate::metrics::RunStats`].

/// Hit/miss counters of one or more [`BufferPool`]s.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffer requests served from the pool.
    pub hits: u64,
    /// Buffer requests that had to allocate.
    pub misses: u64,
}

impl PoolStats {
    /// Fraction of requests served from the pool (1.0 when there were no
    /// requests at all — nothing was allocated either).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulate another pool's counters.
    pub fn merge(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// A freelist of byte buffers owned by one worker.
///
/// Not thread-safe by design — each worker owns one; cross-thread
/// recycling goes through the `Hub`'s per-sender return stacks so the pool
/// itself stays lock-free on the hot path.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    stats: PoolStats,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Get a cleared buffer, reusing a pooled one when available. Reused
    /// buffers keep their capacity — that is the whole point.
    pub fn get(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(buf) => {
                debug_assert!(buf.is_empty());
                self.stats.hits += 1;
                buf
            }
            None => {
                self.stats.misses += 1;
                Vec::new()
            }
        }
    }

    /// Return a consumed buffer to the pool.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        self.free.push(buf);
    }

    /// Return many buffers at once.
    pub fn put_all(&mut self, bufs: impl IntoIterator<Item = Vec<u8>>) {
        for buf in bufs {
            self.put(buf);
        }
    }

    /// Buffers currently pooled.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_get_misses_then_hits() {
        let mut pool = BufferPool::new();
        let mut buf = pool.get();
        assert_eq!(pool.stats(), PoolStats { hits: 0, misses: 1 });
        buf.extend_from_slice(&[1, 2, 3]);
        let cap = buf.capacity();
        pool.put(buf);
        let buf = pool.get();
        assert!(buf.is_empty(), "pooled buffers come back cleared");
        assert_eq!(buf.capacity(), cap, "capacity survives the round trip");
        assert_eq!(pool.stats(), PoolStats { hits: 1, misses: 1 });
    }

    #[test]
    fn put_all_and_available() {
        let mut pool = BufferPool::new();
        pool.put_all((0..3).map(|_| vec![0u8; 16]));
        assert_eq!(pool.available(), 3);
        let _ = pool.get();
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn hit_rate_edge_cases() {
        assert_eq!(PoolStats::default().hit_rate(), 1.0);
        let s = PoolStats {
            hits: 99,
            misses: 1,
        };
        assert!((s.hit_rate() - 0.99).abs() < 1e-12);
        let mut m = PoolStats { hits: 1, misses: 0 };
        m.merge(&s);
        assert_eq!(
            m,
            PoolStats {
                hits: 100,
                misses: 1
            }
        );
    }
}
