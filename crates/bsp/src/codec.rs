//! Compact little-endian binary codec.
//!
//! Message size is a first-class metric in the paper (every table reports a
//! "message (GB)" column), so serialization must be exact and deterministic.
//! We avoid general-purpose serializers and write values with no framing
//! overhead beyond what the encoding itself needs.
//!
//! Two encoding disciplines coexist:
//!
//! * [`Codec`] — minimal encoding; every channel encodes its own small
//!   message type. This is what the channel system uses.
//! * [`FixedWidth`] — pads every value to a constant width (the size of the
//!   largest enum variant). This reproduces how a C++ Pregel system
//!   instantiates its single message struct "large enough to carry all those
//!   message values" (paper §II-B); the baseline engine uses it.

/// A cursor over received bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> &'a [u8] {
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Decode one value.
    pub fn get<T: Codec>(&mut self) -> T {
        T::decode(self)
    }
}

/// Types that can be written to / read from a wire buffer.
///
/// Implementations must be loss-free round trips: `decode(encode(x)) == x`.
pub trait Codec: Sized {
    /// Append the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decode one value, advancing the reader.
    fn decode(r: &mut Reader<'_>) -> Self;
    /// Exact encoded size in bytes when it is the same for every value of
    /// the type (used to pre-size buffers and by [`FixedWidth`]).
    const FIXED_SIZE: Option<usize> = None;

    /// Encoded size of this particular value.
    ///
    /// Variable-width types are measured by encoding into a thread-local
    /// scratch buffer whose capacity is reused across calls, so repeated
    /// size queries on the hot path do not allocate.
    fn encoded_size(&self) -> usize {
        match Self::FIXED_SIZE {
            Some(n) => n,
            None => SIZE_SCRATCH.with(|cell| {
                // `take` leaves a fresh Vec behind, so a reentrant
                // `encoded_size` inside `encode` degrades to an allocation
                // instead of corrupting the measurement.
                let mut buf = cell.take();
                buf.clear();
                self.encode(&mut buf);
                let n = buf.len();
                cell.set(buf);
                n
            }),
        }
    }
}

thread_local! {
    /// Reusable measuring buffer for [`Codec::encoded_size`].
    static SIZE_SCRATCH: std::cell::Cell<Vec<u8>> = const { std::cell::Cell::new(Vec::new()) };
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl Codec for $t {
            #[inline]
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn decode(r: &mut Reader<'_>) -> Self {
                let n = core::mem::size_of::<$t>();
                let b = r.take(n);
                <$t>::from_le_bytes(b.try_into().unwrap())
            }
            const FIXED_SIZE: Option<usize> = Some(core::mem::size_of::<$t>());
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Codec for bool {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Self {
        r.take(1)[0] != 0
    }
    const FIXED_SIZE: Option<usize> = Some(1);
}

impl Codec for () {
    #[inline]
    fn encode(&self, _buf: &mut Vec<u8>) {}
    #[inline]
    fn decode(_r: &mut Reader<'_>) -> Self {}
    const FIXED_SIZE: Option<usize> = Some(0);
}

macro_rules! tuple_codec {
    ($($name:ident : $idx:tt),+ ; $count:expr) => {
        impl<$($name: Codec),+> Codec for ($($name,)+) {
            #[inline]
            fn encode(&self, buf: &mut Vec<u8>) {
                $(self.$idx.encode(buf);)+
            }
            #[inline]
            fn decode(r: &mut Reader<'_>) -> Self {
                ($($name::decode(r),)+)
            }
            const FIXED_SIZE: Option<usize> = {
                // Sum of member sizes when all members are fixed.
                let mut total = 0usize;
                let mut all_fixed = true;
                $(
                    match $name::FIXED_SIZE {
                        Some(n) => total += n,
                        None => all_fixed = false,
                    }
                )+
                if all_fixed { Some(total) } else { None }
            };
        }
    };
}

tuple_codec!(A:0; 1);
tuple_codec!(A:0, B:1; 2);
tuple_codec!(A:0, B:1, C:2; 3);
tuple_codec!(A:0, B:1, C:2, D:3; 4);
tuple_codec!(A:0, B:1, C:2, D:3, E:4; 5);

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Self {
        if r.take(1)[0] == 0 {
            None
        } else {
            Some(T::decode(r))
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Self {
        let n = u32::decode(r) as usize;
        let mut out = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            out.push(T::decode(r));
        }
        out
    }
}

impl<T: Codec, const N: usize> Codec for [T; N] {
    fn encode(&self, buf: &mut Vec<u8>) {
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Self {
        core::array::from_fn(|_| T::decode(r))
    }
    const FIXED_SIZE: Option<usize> = match T::FIXED_SIZE {
        Some(n) => Some(n * N),
        None => None,
    };
}

/// Fixed-width encoding used by the monolithic-message Pregel baseline.
///
/// In a C++ Pregel system the message type is a single struct whose size is
/// the size of its *largest* use (paper §II-B). `WIDTH` models
/// `sizeof(Message)`; every value is padded to it on the wire.
pub trait FixedWidth: Codec {
    /// Constant wire width of every value of this type.
    const WIDTH: usize;

    /// Encode padded to exactly [`Self::WIDTH`] bytes.
    fn encode_fixed(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        self.encode(buf);
        let used = buf.len() - start;
        assert!(
            used <= Self::WIDTH,
            "value encoded to {used} bytes, exceeding declared WIDTH {}",
            Self::WIDTH
        );
        buf.resize(start + Self::WIDTH, 0);
    }

    /// Decode a value that was written with [`FixedWidth::encode_fixed`].
    fn decode_fixed(r: &mut Reader<'_>) -> Self {
        let slab = r.take(Self::WIDTH);
        let mut inner = Reader::new(slab);
        Self::decode(&mut inner)
    }
}

macro_rules! fixed_width_prim {
    ($($t:ty),*) => {$(
        impl FixedWidth for $t {
            const WIDTH: usize = core::mem::size_of::<$t>();
        }
    )*};
}

fixed_width_prim!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl<A, B> FixedWidth for (A, B)
where
    A: Codec + FixedWidth,
    B: Codec + FixedWidth,
{
    const WIDTH: usize = A::WIDTH + B::WIDTH;
}

impl<A, B, C> FixedWidth for (A, B, C)
where
    A: Codec + FixedWidth,
    B: Codec + FixedWidth,
    C: Codec + FixedWidth,
{
    const WIDTH: usize = A::WIDTH + B::WIDTH + C::WIDTH;
}

impl<A, B, C, D> FixedWidth for (A, B, C, D)
where
    A: Codec + FixedWidth,
    B: Codec + FixedWidth,
    C: Codec + FixedWidth,
    D: Codec + FixedWidth,
{
    const WIDTH: usize = A::WIDTH + B::WIDTH + C::WIDTH + D::WIDTH;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + core::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(T::decode(&mut r), v);
        assert!(r.is_empty(), "trailing bytes after decode");
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(123_456_789u32);
        roundtrip(u64::MAX);
        roundtrip(-42i32);
        roundtrip(i64::MIN);
        roundtrip(3.5f32);
        roundtrip(-0.25f64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(());
    }

    #[test]
    fn tuple_roundtrips() {
        roundtrip((1u32, 2u64));
        roundtrip((1u32, 2.0f64, 3u8));
        roundtrip((1u32, 2u32, 3u32, 4u32));
        roundtrip((1u8, 2u16, 3u32, 4u64, 5i8));
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(Some(17u32));
        roundtrip(Option::<u32>::None);
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip([1u32, 2, 3, 4]);
        roundtrip(vec![(1u32, 9.5f64), (2, -1.0)]);
    }

    #[test]
    fn fixed_sizes_are_reported() {
        assert_eq!(u32::FIXED_SIZE, Some(4));
        assert_eq!(<(u32, u64)>::FIXED_SIZE, Some(12));
        assert_eq!(<[u32; 3]>::FIXED_SIZE, Some(12));
        assert_eq!(Vec::<u32>::FIXED_SIZE, None);
        assert_eq!(Option::<u32>::FIXED_SIZE, None);
        assert_eq!(<()>::FIXED_SIZE, Some(0));
    }

    #[test]
    fn encoded_size_matches_actual() {
        let v = vec![1u32, 2, 3];
        let mut buf = Vec::new();
        v.encode(&mut buf);
        assert_eq!(v.encoded_size(), buf.len());
        assert_eq!(7u32.encoded_size(), 4);
    }

    #[test]
    fn fixed_width_pads_to_constant() {
        // A "message" that is sometimes small: Option<u32> inside a padded
        // slab of 16 bytes (modelling an enum sized to its largest variant).
        #[derive(Debug, PartialEq)]
        struct Msg(Option<u32>);
        impl Codec for Msg {
            fn encode(&self, buf: &mut Vec<u8>) {
                self.0.encode(buf);
            }
            fn decode(r: &mut Reader<'_>) -> Self {
                Msg(Option::decode(r))
            }
        }
        impl FixedWidth for Msg {
            const WIDTH: usize = 16;
        }
        for v in [Msg(None), Msg(Some(7))] {
            let mut buf = Vec::new();
            v.encode_fixed(&mut buf);
            assert_eq!(buf.len(), 16);
            let mut r = Reader::new(&buf);
            assert_eq!(Msg::decode_fixed(&mut r), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn fixed_width_tuples() {
        assert_eq!(<(u32, u32)>::WIDTH, 8);
        assert_eq!(<(u32, u32, u32, u32)>::WIDTH, 16);
        let mut buf = Vec::new();
        (1u32, 2u32, 3u32, 4u32).encode_fixed(&mut buf);
        assert_eq!(buf.len(), 16);
    }

    #[test]
    #[should_panic(expected = "exceeding declared WIDTH")]
    fn fixed_width_overflow_panics() {
        #[derive(Debug)]
        struct Big(Vec<u8>);
        impl Codec for Big {
            fn encode(&self, buf: &mut Vec<u8>) {
                self.0.encode(buf);
            }
            fn decode(r: &mut Reader<'_>) -> Self {
                Big(Vec::decode(r))
            }
        }
        impl FixedWidth for Big {
            const WIDTH: usize = 4;
        }
        let mut buf = Vec::new();
        Big(vec![1, 2, 3, 4, 5, 6, 7, 8]).encode_fixed(&mut buf);
    }

    #[test]
    fn sequential_values_in_one_buffer() {
        let mut buf = Vec::new();
        1u32.encode(&mut buf);
        (2u32, 3.0f64).encode(&mut buf);
        true.encode(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(r.get::<u32>(), 1);
        assert_eq!(r.get::<(u32, f64)>(), (2, 3.0));
        assert!(r.get::<bool>());
        assert!(r.is_empty());
    }
}
