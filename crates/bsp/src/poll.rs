//! A `libc`-free `poll(2)` for the batched TCP driver.
//!
//! The readiness multiplexer ([`crate::tcp`]) needs exactly one kernel
//! facility: "sleep until any of these sockets can make progress, or a
//! deadline passes". The standard library does not expose it and this
//! workspace deliberately carries no `libc`/`mio`/`tokio` dependency, so
//! this module issues the raw syscall itself — `poll` on x86-64 Linux,
//! `ppoll` on aarch64 Linux (which never had a plain `poll` syscall).
//! Everything else (interest computation, deadline bookkeeping, stall
//! accounting) stays in safe Rust on top of [`poll`].
//!
//! On targets without a wired-up syscall the fallback naps briefly and
//! reports every registered interest as ready: the caller's progress pass
//! probes the non-blocking sockets itself, so behavior degrades to a
//! paced busy-poll instead of breaking.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Readable data (or a peer's orderly shutdown) is available.
pub const POLLIN: i16 = 0x001;
/// Writing now would not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition on the socket (always polled, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always polled, never requested).
pub const POLLHUP: i16 = 0x010;
/// The fd is not open (always polled, never requested).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` set — ABI-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Register `fd` with the given interest mask ([`POLLIN`] |
    /// [`POLLOUT`]); error conditions are always reported.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The interest this entry was registered with.
    pub fn events(&self) -> i16 {
        self.events
    }

    /// The raw readiness the kernel reported.
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// A read on this socket would make progress: data, EOF or an error
    /// to collect ([`POLLHUP`]/[`POLLERR`] surface through `read`, so
    /// the consumer sees the same typed error either way).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0
    }

    /// A write on this socket would make progress (or fail loudly).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR | POLLNVAL) != 0
    }
}

/// Wait until at least one entry of `fds` is ready or `timeout` passes.
///
/// Returns the number of entries with non-zero `revents` — 0 means the
/// timeout expired. A nonzero timeout is rounded *up* to the syscall's
/// millisecond granularity, so a sliver of remaining deadline never
/// degrades into a 0 ms busy-poll. `EINTR` is reported as `Ok(0)`:
/// callers sit in deadline-checked loops and simply re-issue the wait.
pub fn poll(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    sys::poll(fds, timeout)
}

/// Clamp `timeout` to the syscall's `i32` millisecond argument, rounding
/// a nonzero duration up to at least 1 ms.
#[allow(dead_code)] // unused on targets where ppoll takes a timespec
fn timeout_ms(timeout: Duration) -> i32 {
    if timeout.is_zero() {
        return 0;
    }
    let ms = timeout.as_millis();
    let ms = if timeout.subsec_nanos().is_multiple_of(1_000_000) {
        ms
    } else {
        ms + 1
    };
    ms.min(i32::MAX as u128) as i32
}

/// Map a raw syscall return to the poll contract (`EINTR` → `Ok(0)`).
#[allow(dead_code)] // unused by the portable fallback
fn syscall_result(ret: i64) -> io::Result<usize> {
    const EINTR: i64 = 4;
    if ret >= 0 {
        Ok(ret as usize)
    } else if -ret == EINTR {
        Ok(0)
    } else {
        Err(io::Error::from_raw_os_error(-ret as i32))
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use super::PollFd;
    use std::io;
    use std::time::Duration;

    const SYS_POLL: i64 = 7;

    pub fn poll(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
        let ms = super::timeout_ms(timeout);
        let ret: i64;
        // SAFETY: `poll(2)` reads and writes exactly `fds.len()` pollfd
        // entries at `fds.as_mut_ptr()` — a live, exclusively borrowed
        // slice of `#[repr(C)]` structs matching the kernel ABI. The
        // syscall clobbers rcx/r11 (declared) and only touches memory it
        // was pointed at.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_POLL => ret,
                in("rdi") fds.as_mut_ptr(),
                in("rsi") fds.len(),
                in("rdx") ms,
                out("rcx") _,
                out("r11") _,
                options(nostack),
            );
        }
        super::syscall_result(ret)
    }
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod sys {
    use super::PollFd;
    use std::io;
    use std::time::Duration;

    /// aarch64 Linux never had plain `poll`; `ppoll` takes a timespec.
    const SYS_PPOLL: i64 = 73;

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    pub fn poll(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
        let ts = Timespec {
            tv_sec: timeout.as_secs().min(i64::MAX as u64) as i64,
            tv_nsec: i64::from(timeout.subsec_nanos()),
        };
        let ret: i64;
        // SAFETY: as on x86-64 — `fds` is a live exclusive slice of
        // ABI-matching pollfds, `ts` outlives the call, the sigmask is
        // null (no mask change), and x8/x0..x4 carry the ppoll ABI.
        unsafe {
            core::arch::asm!(
                "svc #0",
                in("x8") SYS_PPOLL,
                inlateout("x0") fds.as_mut_ptr() as i64 => ret,
                in("x1") fds.len(),
                in("x2") &ts as *const Timespec,
                in("x3") 0i64,
                in("x4") 0i64,
                options(nostack),
            );
        }
        super::syscall_result(ret)
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    use super::PollFd;
    use std::io;
    use std::time::Duration;

    /// Portable fallback: nap briefly, then report every registered
    /// interest as ready — the caller's non-blocking progress pass probes
    /// the sockets itself, so this is a paced busy-poll, not a lie the
    /// caller can act on blindly.
    pub fn poll(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
        std::thread::sleep(timeout.min(Duration::from_millis(1)));
        for f in fds.iter_mut() {
            f.revents = f.events;
        }
        Ok(fds.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn connected_socket_is_writable_immediately() {
        let (a, _b) = pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let n = poll(&mut fds, Duration::from_secs(5)).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].writable());
        assert!(!fds[0].readable() || cfg!(not(target_os = "linux")));
    }

    #[test]
    fn silent_socket_times_out_promptly() {
        let (a, _b) = pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let started = Instant::now();
        let n = poll(&mut fds, Duration::from_millis(50)).unwrap();
        // The portable fallback reports interests as ready; on Linux the
        // silent socket must simply time out.
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            assert_eq!(n, 0);
            assert!(started.elapsed() >= Duration::from_millis(40));
        }
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn data_arrival_wakes_a_read_wait() {
        let (a, mut b) = pair();
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            b.write_all(&[42]).unwrap();
            b // keep the socket open past the poll
        });
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Duration::from_secs(10)).unwrap();
        assert!(n >= 1);
        assert!(fds[0].readable());
        drop(writer.join().unwrap());
    }

    #[test]
    fn hangup_wakes_a_read_wait() {
        let (a, b) = pair();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Duration::from_secs(10)).unwrap();
        assert!(n >= 1);
        // EOF surfaces as POLLIN (a read returns 0) and usually POLLHUP;
        // either way the entry reads as actionable.
        assert!(fds[0].readable());
    }

    #[test]
    fn zero_timeout_is_a_nonblocking_probe() {
        let (a, _b) = pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let started = Instant::now();
        let _ = poll(&mut fds, Duration::ZERO).unwrap();
        assert!(started.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn sub_millisecond_timeouts_round_up() {
        assert_eq!(timeout_ms(Duration::ZERO), 0);
        assert_eq!(timeout_ms(Duration::from_nanos(1)), 1);
        assert_eq!(timeout_ms(Duration::from_micros(999)), 1);
        assert_eq!(timeout_ms(Duration::from_millis(7)), 7);
        assert_eq!(timeout_ms(Duration::from_secs(1 << 40)), i32::MAX);
    }

    #[test]
    fn eintr_and_errors_map_to_the_contract() {
        assert_eq!(syscall_result(3).unwrap(), 3);
        assert_eq!(syscall_result(0).unwrap(), 0);
        assert_eq!(syscall_result(-4).unwrap(), 0); // EINTR retries
        let err = syscall_result(-9).unwrap_err(); // EBADF
        assert_eq!(err.raw_os_error(), Some(9));
    }
}
